"""Figure 12 bench: cost vs. migration duration across SO1-2 .. SO8-16.

Paper: (a) Marlin holds the best corner everywhere — up to 4.4x cheaper than
L-ZK at SO1-2, up to 2.5x faster migration than S-ZK at SO8-16; (b) Meta
Cost's share shrinks as clusters grow (75% -> 28% for L-ZK); (c) Marlin's
migration throughput scales linearly while ZooKeeper's flattens and FDB is
capped by fixed resources.
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import fig12


def test_fig12_cost_vs_duration(benchmark):
    results = benchmark.pedantic(
        lambda: fig12.run_sweep(scale=BENCH_SCALE, seed=1),
        rounds=1,
        iterations=1,
    )
    fig = fig12.summarize(results)
    emit(fig, benchmark)
    assert fig.findings["cost_ratio_L-ZK_at_SO1-2"] > 2.5
    assert fig.findings["migration_speedup_S-ZK_at_SO8-16"] > 1.5
    # 12c: Marlin scales ~linearly (8x sweep); S-ZK's gains diminish.
    assert fig.findings["tps_scaling_Marlin"] > 4.0
    assert fig.findings["tps_scaling_S-ZK"] < fig.findings["tps_scaling_Marlin"]
    # Marlin has the shortest migration at the largest scale.
    largest = [r for r in fig.rows if r["scale_out"] == "SO8-16"]
    marlin = next(r for r in largest if r["system"] == "Marlin")
    assert all(
        marlin["migration_duration_s"] <= r["migration_duration_s"]
        for r in largest
    )
