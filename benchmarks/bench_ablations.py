"""Ablations of the design choices DESIGN.md calls out.

* **Cache warm-up (§4.4.1)** — disabling the Squall-style warm-up scan makes
  migrations commit faster but leaves the destination cold: post-migration
  user transactions pay storage fetches.
* **Group commit (§5)** — batch size 1 vs 64: batching amortizes the
  conditional-append round trip across transactions.
* **Migration workers** — Marlin's migration throughput is a function of
  destination-side concurrency (the paper scales concurrency with node
  count); sweeping workers shows the near-linear lever.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.harness import (
    EXP_NODE_PARAMS,
    FigureResult,
    run_scale_out_scenario,
)
from dataclasses import replace


def test_ablation_cache_warmup(benchmark):
    def run_pair():
        out = {}
        for warmup in (True, False):
            params = replace(EXP_NODE_PARAMS, warmup_enabled=warmup)
            out[warmup] = run_scale_out_scenario(
                "marlin",
                initial_nodes=4,
                added_nodes=4,
                clients=24,
                granules=1600,
                scale_at=2.0,
                tail=6.0,
                node_params=params,
                seed=3,
            )
        return out

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    fig = FigureResult("Ablation warmup", "Squall-style cache warm-up on/off")
    cold_miss = {}
    for warmup, result in results.items():
        nodes = result.cluster.nodes
        new_nodes = [nodes[n] for n in range(4, 8)]
        misses = sum(n.cache.misses for n in new_nodes)
        cold_miss[warmup] = misses
        fig.add_row(
            warmup=warmup,
            migration_duration_s=result.migration_duration,
            new_node_cache_misses=misses,
            p99_latency_s=result.metrics.latency_stats()["p99"],
        )
    fig.findings["cold_miss_inflation"] = (
        cold_miss[False] / cold_miss[True] if cold_miss[True] else float("inf")
    )
    emit(fig, benchmark)
    # Without warm-up the new nodes fetch pages from storage on demand.
    assert cold_miss[False] > cold_miss[True]
    # Warm-up is the dominant per-migration cost: disabling it shortens the
    # reconfiguration window.
    assert results[False].migration_duration < results[True].migration_duration


def test_ablation_group_commit(benchmark):
    def run_pair():
        out = {}
        for batch in (1, 64):
            params = replace(EXP_NODE_PARAMS, group_commit_batch=batch)
            out[batch] = run_scale_out_scenario(
                "marlin",
                initial_nodes=4,
                added_nodes=0,
                clients=48,
                granules=1600,
                scale_at=1.0,
                tail=8.0,
                node_params=params,
                seed=3,
            )
        return out

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    fig = FigureResult("Ablation group-commit", "Group commit batch 1 vs 64")
    appends = {}
    for batch, result in results.items():
        storage = result.cluster.storages["us-west"]
        appends[batch] = storage.appends_served
        fig.add_row(
            batch=batch,
            committed=result.metrics.total_committed,
            storage_appends=storage.appends_served,
            txns_per_append=(
                result.metrics.total_committed / storage.appends_served
            ),
            p50_latency_s=result.metrics.latency_stats()["p50"],
        )
    fig.findings["append_amplification_without_batching"] = (
        appends[1] / appends[64]
    )
    emit(fig, benchmark)
    # Batching amortizes storage appends across transactions.
    assert appends[1] > appends[64]


def test_ablation_migration_workers(benchmark):
    def run_sweep():
        out = {}
        for workers in (1, 2, 4, 8):
            params = replace(EXP_NODE_PARAMS, migration_workers=workers)
            out[workers] = run_scale_out_scenario(
                "marlin",
                initial_nodes=4,
                added_nodes=4,
                clients=8,
                granules=3200,
                scale_at=1.0,
                tail=2.0,
                node_params=params,
                seed=3,
            )
        return out

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    fig = FigureResult(
        "Ablation migration-workers", "Destination-side migration concurrency"
    )
    tput = {}
    for workers, result in results.items():
        duration = result.migration_duration or 1e-9
        tput[workers] = result.metrics.total_migrations / duration
        fig.add_row(
            workers=workers,
            migrations=result.metrics.total_migrations,
            duration_s=result.migration_duration,
            migrations_per_s=tput[workers],
        )
    fig.findings["speedup_8x_workers"] = tput[8] / tput[1]
    emit(fig, benchmark)
    # Concurrency is the near-linear scalability lever (paper §6.1.4).
    assert tput[8] > 3 * tput[1]
