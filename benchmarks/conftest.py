"""Shared benchmark fixtures.

Scenario benches run one simulation per system (wall time = harness cost)
and print the regenerated paper table; run with ``-s`` to see the tables
inline, or read them from ``bench_results/``.  ``REPRO_BENCH_SCALE`` shrinks
or grows every scenario (default 0.25; 1.0 reproduces the tables quoted in
EXPERIMENTS.md).
"""

import os
import pathlib

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


def emit(figure_result, benchmark=None):
    """Print a figure table, persist it, and attach findings to the report."""
    for row in figure_result.rows:
        for key in [k for k in row if k.endswith("series") or k == "series"]:
            row.pop(key)
    text = figure_result.format_table()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = figure_result.figure.lower().replace(" ", "_")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if benchmark is not None:
        for key, value in figure_result.findings.items():
            benchmark.extra_info[key] = round(float(value), 4)
    return text


@pytest.fixture(scope="session")
def scaleout_family():
    """The §6.2 family (Figures 8-10 share these runs)."""
    from repro.experiments.family import run_family

    return run_family(scale=BENCH_SCALE, seed=1)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE
