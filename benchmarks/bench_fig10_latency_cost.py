"""Figure 10 bench: migration latency (a) and cost of UserTxn (b).

Paper: Marlin reduces migration latency 2.57x / 1.87x and cost per user
transaction 1.35x / 1.61x vs S-ZK / L-ZK; Marlin's Meta Cost is zero.
"""

from benchmarks.conftest import emit
from repro.experiments import fig10


def test_fig10_latency_and_cost(benchmark, scaleout_family):
    fig = benchmark.pedantic(
        lambda: fig10.summarize(scaleout_family), rounds=1, iterations=1
    )
    emit(fig, benchmark)
    by_system = {row["system"]: row for row in fig.rows}
    assert by_system["Marlin"]["meta_cost_usd"] == 0.0
    assert by_system["S-ZK"]["meta_cost_usd"] > 0.0
    assert fig.findings["latency_reduction_vs_S-ZK"] > 1.3
    assert fig.findings["cost_reduction_vs_S-ZK"] > 1.0
    assert fig.findings["cost_reduction_vs_L-ZK"] > 1.1
