"""Figure 13 bench: geo-distributed cost vs. migration duration (§6.5).

Paper: with compute/storage spread over four regions and ZK/FDB pinned in US
West, Marlin's region-local migrations run up to 4.9x faster than the
ZooKeeper baselines and up to 9.5x faster than FDB (two cross-region round
trips per update); L-ZK's hardware advantage is erased by cross-region
latency.
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import fig13


def test_fig13_geo_distributed(benchmark):
    results = benchmark.pedantic(
        lambda: fig13.run_sweep(scale=BENCH_SCALE, seed=1),
        rounds=1,
        iterations=1,
    )
    fig = fig13.summarize(results)
    emit(fig, benchmark)
    assert fig.findings["migration_speedup_S-ZK_at_SO8-16"] > 3.0
    assert fig.findings["migration_speedup_FDB_at_SO8-16"] > 5.0
    # FDB's two round trips per update hurt more than ZK's one.
    assert (
        fig.findings["migration_speedup_FDB_at_SO8-16"]
        > fig.findings["migration_speedup_S-ZK_at_SO8-16"]
    )
    # L-ZK's hardware advantage is offset by cross-region latency.
    assert 0.7 < fig.findings["szk_over_lzk_duration_geo"] < 1.5
