"""Micro-benchmarks of MarlinCommit protocol shapes.

Measures the *simulated* latency of each commit shape (1PC, 2PC across two
nodes, recovery-style commit to a log participant, contended CAS retry) —
the per-operation costs that produce the macro results — and wall-times the
simulator while doing it.
"""

import pytest

from repro.core.commit import LogParticipant, NodeParticipant, marlin_commit
from repro.engine.node import GTABLE, glog_name
from repro.engine.txn import TxnContext
from repro.storage.log import Put, RecordKind
from tests.conftest import make_cluster, run_gen


@pytest.fixture
def pair():
    cluster = make_cluster("marlin", num_nodes=2, num_keys=4096)
    cluster.run(until=0.05)
    return cluster


def sim_latency(cluster, gen):
    start = cluster.sim.now
    run_gen(cluster, gen)
    return cluster.sim.now - start


def test_one_phase_commit_latency(benchmark, pair):
    node = pair.nodes[0]

    def one_commit():
        ctx = TxnContext(0)
        ctx.write(node.glog, "usertable", 1, "v")
        return sim_latency(pair, marlin_commit(node, ctx, [NodeParticipant(0)]))

    latency = benchmark(one_commit)
    benchmark.extra_info["sim_latency_ms"] = round(latency * 1000, 3)
    assert latency < 0.01  # one storage round trip


def test_two_phase_commit_latency(benchmark, pair):
    node = pair.nodes[0]

    def two_pc():
        ctx = TxnContext(0)
        ctx.write(node.glog, GTABLE, 5, 0)
        branch = TxnContext(1)
        branch.txn_id = ctx.txn_id
        branch.write(pair.nodes[1].glog, GTABLE, 5, 0)
        pair.nodes[1].txns[ctx.txn_id] = branch
        return sim_latency(
            pair,
            marlin_commit(node, ctx, [NodeParticipant(1), NodeParticipant(0)]),
        )

    latency = benchmark(two_pc)
    benchmark.extra_info["sim_latency_ms"] = round(latency * 1000, 3)
    assert latency < 0.02  # vote round trip + parallel appends


def test_recovery_commit_to_log_participant(benchmark, pair):
    node = pair.nodes[0]
    src_log = glog_name(1)

    def recovery_commit():
        end = pair.storages[pair.nodes[1].region].log(src_log).end_lsn
        node.lsn_tracker[src_log] = end
        ctx = TxnContext(0)
        ctx.write(node.glog, GTABLE, 7, 0)
        return sim_latency(
            pair,
            marlin_commit(
                node,
                ctx,
                [LogParticipant(src_log, (Put(GTABLE, 7, 0),)), NodeParticipant(0)],
            ),
        )

    latency = benchmark(recovery_commit)
    benchmark.extra_info["sim_latency_ms"] = round(latency * 1000, 3)


def test_contended_cas_retry_cost(benchmark, pair):
    """Cost of a failed TryLog + ClearMetaCache + refresh + successful retry."""
    node = pair.nodes[0]
    log = pair.storages[node.region].log(node.glog)

    def contended():
        log.append("intruder", RecordKind.COMMIT_DATA, ())
        ctx = TxnContext(0)
        ctx.write(node.glog, "usertable", 2, "v")
        first = sim_latency(pair, marlin_commit(node, ctx, [NodeParticipant(0)]))
        retry = sim_latency(pair, marlin_commit(node, ctx, [NodeParticipant(0)]))
        return first + retry

    latency = benchmark(contended)
    benchmark.extra_info["sim_latency_ms"] = round(latency * 1000, 3)
