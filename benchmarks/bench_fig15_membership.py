"""Figure 15 bench: MTable stress test (§6.7).

Paper: membership-update performance is comparable across systems up to
~160 nodes; beyond that Marlin degrades because TryLog's optimistic
concurrency control on the single SysLog retries under contention, while the
serialized external services keep up.
"""

from benchmarks.conftest import emit
from repro.experiments import fig15

NODE_COUNTS = (20, 80, 160, 240)


def test_fig15_membership_stress(benchmark):
    def sweep():
        results = {}
        for system in ("marlin", "zk-small", "zk-large", "fdb"):
            for nodes in NODE_COUNTS:
                results[(system, nodes)] = fig15.run_stress(system, nodes, seed=1)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fig = fig15.summarize(results)
    emit(fig, benchmark)
    # Comparable at moderate scale...
    assert results[("marlin", 80)]["efficiency"] > 0.95
    # ... degraded beyond ~160 nodes, unlike the external services.
    marlin_large = results[("marlin", 240)]
    zk_large = results[("zk-small", 240)]
    assert marlin_large["mean_latency_s"] > 2 * zk_large["mean_latency_s"]
    assert marlin_large["efficiency"] < zk_large["efficiency"]
    assert zk_large["efficiency"] > 0.95
    # The degradation mechanism is CAS retries on SysLog.
    assert marlin_large["retries"] > results[("marlin", 20)]["retries"]
