"""Figure 8 bench: MigrationTxn throughput over time (YCSB scale-out).

Regenerates the paper's series: migration throughput per second for Marlin /
S-ZK / L-ZK during an 8->16 scale-out, plus the headline ratios (paper: 2.3x
/ 1.9x higher throughput; 2.6x / 1.9x faster completion).
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import fig8
from repro.experiments.family import run_family


def test_fig08_migration_throughput(benchmark, scaleout_family):
    fig = fig8.summarize(scaleout_family)

    def rerun_one():
        # The timed body: one fresh Marlin scale-out run (the family fixture
        # is shared across figure benches, so time a representative member).
        return run_family(scale=BENCH_SCALE, systems=("marlin",), seed=2)

    benchmark.pedantic(rerun_one, rounds=1, iterations=1)
    emit(fig, benchmark)
    assert fig.findings["migration_tps_vs_S-ZK"] > 1.3
    assert fig.findings["scaleout_speedup_vs_S-ZK"] > 1.3
    assert fig.findings["migration_tps_vs_L-ZK"] > 1.1
