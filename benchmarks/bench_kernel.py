"""Micro-benchmarks of the simulation kernel's hot paths.

Unlike the scenario benches (which wall-time whole paper figures), these
measure the raw mechanics every figure is built on: events/sec through the
scheduler, process spawn/finish churn, future fan-in, RPC round trips, and
the metrics recording hooks (with an allocation-per-op counter, so a
regression that reintroduces per-record list/object churn fails loudly).

Runs two ways:

* standalone — ``python benchmarks/bench_kernel.py [--quick]`` prints one
  line per bench; ``benchmarks/run_all.py`` wraps this and emits JSON;
* under pytest — each bench doubles as a (tiny-sized) test so the file
  cannot rot silently; ``--benchmark-disable`` keeps it cheap in CI.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Dict

from repro.cluster.metrics import MetricsCollector
from repro.sim.core import Simulator, Timeout, all_of
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RpcEndpoint

__all__ = [
    "ALL_BENCHES", "bench_tracer_overhead", "run_bench", "run_kernel_suite",
]

#: Default event counts per bench (full mode / quick mode).
SIZES = {
    "raw_events": (1_000_000, 100_000),
    "timer_events": (500_000, 50_000),
    "process_churn": (60_000, 6_000),
    "futures_fanin": (2_000, 200),
    "rpc_roundtrip": (20_000, 2_000),
    "metrics_record": (1_000_000, 100_000),
}


def bench_raw_events(n: int) -> Dict[str, float]:
    """Same-time callback chains: the ``call_soon`` fast path."""
    sim = Simulator(seed=1)
    remaining = [n]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.call_soon(tick)

    for _ in range(64):
        sim.call_soon(tick)
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {"events": sim.events_executed, "wall_s": dt,
            "events_per_sec": sim.events_executed / dt}


def bench_timer_events(n: int) -> Dict[str, float]:
    """True timers at distinct times: the heap slow path."""
    sim = Simulator(seed=2)
    rng = sim.rng
    remaining = [n]

    def tick() -> None:
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.call_after(1e-6 + rng.random() * 1e-4, tick)

    for _ in range(64):
        sim.call_after(rng.random() * 1e-4, tick)
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {"events": sim.events_executed, "wall_s": dt,
            "events_per_sec": sim.events_executed / dt}


def bench_process_churn(n: int) -> Dict[str, float]:
    """Spawn/step/finish cycles: generator dispatch plus future resolution."""
    sim = Simulator(seed=3)

    def child():
        yield None
        yield Timeout(1e-6)
        return 1

    def parent(count):
        total = 0
        for _ in range(count):
            total += yield sim.spawn(child())
        return total

    per_parent = n // 8
    for i in range(8):
        sim.spawn(parent(per_parent), name=f"parent-{i}")
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {"events": sim.events_executed, "processes": per_parent * 8,
            "wall_s": dt, "events_per_sec": sim.events_executed / dt,
            "processes_per_sec": per_parent * 8 / dt}


def bench_futures_fanin(rounds: int, fan: int = 100) -> Dict[str, float]:
    """``all_of`` over wide fan-in: callback flush through the ready queue."""
    sim = Simulator(seed=4)

    def one_round():
        futs = [sim.event() for _ in range(fan)]
        for i, fut in enumerate(futs):
            sim.call_soon(fut.resolve, i)
        values = yield all_of(sim, futs)
        return len(values)

    def driver():
        for _ in range(rounds):
            yield sim.spawn(one_round())

    sim.spawn(driver(), name="fanin-driver")
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {"events": sim.events_executed, "rounds": rounds, "fan": fan,
            "wall_s": dt, "events_per_sec": sim.events_executed / dt}


def bench_rpc_roundtrip(n: int) -> Dict[str, float]:
    """Intra-region RPC ping-pong with timeouts armed (and cancelled)."""
    sim = Simulator(seed=5)
    network = Network(sim, LatencyModel(jitter_frac=0.0))
    server = RpcEndpoint(sim, network, "server", "us-west")
    client = RpcEndpoint(sim, network, "client", "us-west")
    server.register("ping", lambda x: x + 1)

    def driver():
        total = 0
        for i in range(n):
            total += yield client.call("server", "ping", i, timeout=1.0)
        return total

    sim.spawn(driver(), name="rpc-driver")
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {"events": sim.events_executed, "calls": n, "wall_s": dt,
            "events_per_sec": sim.events_executed / dt,
            "calls_per_sec": n / dt}


def bench_metrics_record(n: int) -> Dict[str, float]:
    """``record_commit``/``record_abort`` throughput and allocation per op.

    ``bytes_per_op`` is the tracemalloc-measured net heap growth per record
    call.  The streaming ``array``-backed collector stays under ~24 B/op
    (two packed doubles plus amortised growth); a per-bucket list of boxed
    floats sits well above it, so this doubles as the hot-path regression
    guard for the "no list-append / no numpy in record_*" criterion.
    """
    collector = MetricsCollector(bucket=1.0)
    t0 = time.perf_counter()
    t = 0.0
    for i in range(n):
        t += 1e-5
        collector.record_commit(t, t * 0.5)  # distinct float per call
        if i % 4 == 0:
            collector.record_abort(t, "lock_timeout")
    dt = time.perf_counter() - t0
    ops = n + n // 4 + (1 if n % 4 else 0)

    # Separate, smaller pass under tracemalloc for the allocation counter.
    alloc_n = min(n, 50_000)
    fresh = MetricsCollector(bucket=1.0)
    fresh.record_commit(0.0, 0.001)  # touch lazy structures once
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    t = 0.0
    for _ in range(alloc_n):
        t += 1e-5
        fresh.record_commit(t, t * 0.5)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    bytes_per_op = (after - before) / alloc_n
    return {"ops": ops, "wall_s": dt, "ops_per_sec": ops / dt,
            "bytes_per_op": bytes_per_op}


def bench_tracer_overhead(n: int) -> Dict[str, float]:
    """RPC ping-pong with tracing off vs. on: what span recording costs.

    The *off* leg pays only the ``if tracer is not None`` guards — the
    always-on cost every run carries, which the ``rpc_roundtrip`` bench
    (and its ``--assert-floor`` gate against the committed baselines)
    keeps honest.  The *on* leg records two spans plus a counter bump per
    call.  Both legs execute the same seeded schedule; ``schedule_drift``
    must stay 0 — tracing is purely observational, never perturbing the
    event stream.

    Reported separately from ``ALL_BENCHES``: there is no baseline entry
    for it in older ``BENCH_PR*.json`` reports, and its headline number is
    a ratio (overhead fraction), not a rate.
    """
    from repro.obs import Tracer

    def leg(traced: bool):
        sim = Simulator(seed=5)
        network = Network(sim, LatencyModel(jitter_frac=0.0))
        tracer = Tracer(sim) if traced else None
        if tracer is not None:
            network.tracer = tracer
        server = RpcEndpoint(sim, network, "server", "us-west")
        client = RpcEndpoint(sim, network, "client", "us-west")
        server.register("ping", lambda x: x + 1)

        def driver():
            total = 0
            for i in range(n):
                total += yield client.call("server", "ping", i, timeout=1.0)
            return total

        sim.spawn(driver(), name="rpc-driver")
        t0 = time.perf_counter()
        sim.run()
        return sim.events_executed, time.perf_counter() - t0, tracer

    events_off, off_s, _ = leg(False)
    events_on, on_s, tracer = leg(True)
    spans = sum(1 for ev in tracer.events if ev[0] == "B")
    return {
        "calls": n,
        "off_calls_per_sec": n / off_s,
        "on_calls_per_sec": n / on_s,
        "overhead_frac": on_s / off_s - 1.0,
        "spans_recorded": spans,
        "schedule_drift": abs(events_on - events_off),
    }


ALL_BENCHES: Dict[str, Callable[[int], Dict[str, float]]] = {
    "raw_events": bench_raw_events,
    "timer_events": bench_timer_events,
    "process_churn": bench_process_churn,
    "futures_fanin": bench_futures_fanin,
    "rpc_roundtrip": bench_rpc_roundtrip,
    "metrics_record": bench_metrics_record,
}


def run_bench(name: str, quick: bool = False) -> Dict[str, float]:
    full, small = SIZES[name]
    return ALL_BENCHES[name](small if quick else full)


def run_kernel_suite(quick: bool = False) -> Dict[str, Dict[str, float]]:
    return {name: run_bench(name, quick=quick) for name in ALL_BENCHES}


# -- pytest entry points (tiny sizes; the suite collects these so the file
# -- and the kernel APIs it exercises cannot drift apart unnoticed) ----------

def _pytest_size(name: str) -> int:
    return max(64, SIZES[name][1] // 10)


def test_bench_raw_events(benchmark):
    result = benchmark(bench_raw_events, _pytest_size("raw_events"))
    assert result["events"] >= _pytest_size("raw_events")


def test_bench_timer_events(benchmark):
    result = benchmark(bench_timer_events, _pytest_size("timer_events"))
    assert result["events"] >= _pytest_size("timer_events")


def test_bench_process_churn(benchmark):
    result = benchmark(bench_process_churn, _pytest_size("process_churn"))
    assert result["processes"] > 0


def test_bench_futures_fanin(benchmark):
    result = benchmark(bench_futures_fanin, 20)
    assert result["rounds"] == 20


def test_bench_rpc_roundtrip(benchmark):
    result = benchmark(bench_rpc_roundtrip, 200)
    assert result["calls"] == 200


def test_bench_metrics_record(benchmark):
    result = benchmark(bench_metrics_record, 50_000)
    assert result["ops"] > 0


def test_bench_tracer_overhead(benchmark):
    result = benchmark(bench_tracer_overhead, 200)
    assert result["spans_recorded"] == 2 * 200  # call + serve per ping
    assert result["schedule_drift"] == 0


def main(argv=None) -> Dict[str, Dict[str, float]]:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes (finishes in a few seconds)")
    parser.add_argument("bench", nargs="*", metavar="BENCH",
                        help="subset of benches to run (default: all of "
                             f"{', '.join(ALL_BENCHES)})")
    args = parser.parse_args(argv)
    unknown = [b for b in args.bench if b not in ALL_BENCHES]
    if unknown:
        parser.error(
            f"unknown bench(es): {', '.join(unknown)} "
            f"(choose from {', '.join(ALL_BENCHES)})"
        )
    names = args.bench or list(ALL_BENCHES)
    results = {}
    for name in names:
        results[name] = run_bench(name, quick=args.quick)
        line = ", ".join(
            f"{k}={v:,.0f}" if v >= 100 else f"{k}={v:.4g}"
            for k, v in results[name].items()
        )
        print(f"{name:16s} {line}")
    return results


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
