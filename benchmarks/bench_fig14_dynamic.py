"""Figure 14 bench: bursty workload with autoscaling (§6.6).

Paper: Marlin completes scale-out 2.6x/2.3x and scale-in 3.8x/2.6x faster
than S-ZK/L-ZK, reaches the high-load plateau sooner, and releases idle
nodes sooner after the load drop (12 s vs 45 s / 32 s), giving the lowest
realtime cost.
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import fig14


def test_fig14_dynamic_workload(benchmark):
    scale = max(BENCH_SCALE, 0.2)
    results = benchmark.pedantic(
        lambda: {
            system: fig14.run_dynamic(system, scale=scale, seed=1)
            for system in ("marlin", "zk-small", "zk-large")
        },
        rounds=1,
        iterations=1,
    )
    fig = fig14.summarize(results)
    emit(fig, benchmark)
    assert fig.findings["scale_out_speedup_vs_S-ZK"] > 1.3
    assert fig.findings["scale_in_speedup_vs_S-ZK"] > 1.3
    # Idle nodes released soonest under Marlin -> lowest realtime cost.
    assert (
        fig.findings["release_delay_marlin_s"]
        < fig.findings["release_delay_S-ZK_s"]
    )
    by_system = {row["system"]: row for row in fig.rows}
    assert (
        by_system["Marlin"]["total_cost_usd"]
        < by_system["S-ZK"]["total_cost_usd"]
    )
