"""Figure 9 bench: realtime user-transaction throughput and abort ratio.

Regenerates the paper's timelines: user throughput dips during
reconfiguration and reaches the post-scale-out plateau sooner with Marlin;
Marlin's abort ratio during reconfiguration is lower than the ZooKeeper
baselines'.
"""

from benchmarks.conftest import emit
from repro.experiments import fig9


def test_fig09_user_throughput(benchmark, scaleout_family):
    fig = benchmark.pedantic(
        lambda: fig9.summarize(scaleout_family), rounds=1, iterations=1
    )
    emit(fig, benchmark)
    by_system = {row["system"]: row for row in fig.rows}
    # Throughput roughly doubles after doubling the cluster (saturated before).
    assert by_system["Marlin"]["speedup_after"] > 1.4
    # Marlin aborts less during reconfiguration than S-ZK.
    assert fig.findings["abort_ratio_S-ZK_minus_marlin"] > -0.02
