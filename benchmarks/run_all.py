"""Run the kernel micro-bench suite and emit a machine-readable JSON report.

This is the perf trajectory anchor for the repo: each kernel-touching PR runs

    python benchmarks/run_all.py --quick          # tier-2 smoke, < 60 s
    python benchmarks/run_all.py --out BENCH_PRn.json --baseline BENCH_PRm.json

and commits the JSON so events/sec regressions are visible in review.  With
``--baseline`` the previous report (or a raw ``{bench: {...}}`` results dump)
is embedded and per-bench speedups are computed on the throughput metric.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # running as a script: make repro importable
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_kernel import ALL_BENCHES, run_bench  # noqa: E402

#: The headline throughput metric per bench (used for speedup computation).
RATE_METRIC = {
    "raw_events": "events_per_sec",
    "timer_events": "events_per_sec",
    "process_churn": "events_per_sec",
    "futures_fanin": "events_per_sec",
    "rpc_roundtrip": "events_per_sec",
    "metrics_record": "ops_per_sec",
}


def _load_baseline(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    # Accept either a full report ({"results": {...}}) or a bare results dump.
    return data.get("results", data)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small bench sizes; finishes in a few seconds")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="previous report to embed and compute speedups against")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline is not None:  # validate before spending bench time
        if not args.baseline.is_file():
            parser.error(f"baseline not found: {args.baseline}")
        try:
            baseline = _load_baseline(args.baseline)
        except json.JSONDecodeError as exc:
            parser.error(f"baseline {args.baseline} is not valid JSON: {exc}")

    results = {}
    for name in ALL_BENCHES:
        results[name] = run_bench(name, quick=args.quick)
        rate = results[name][RATE_METRIC[name]]
        print(f"{name:16s} {RATE_METRIC[name]}={rate:,.0f}", flush=True)

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "quick": args.quick,
        },
        "results": results,
    }
    if baseline is not None:
        report["baseline"] = baseline
        speedup = {}
        for name, metric in RATE_METRIC.items():
            before = baseline.get(name, {}).get(metric)
            if before:
                speedup[name] = round(results[name][metric] / before, 3)
        report["speedup"] = speedup
        print("speedups vs baseline:",
              ", ".join(f"{k}={v}x" for k, v in speedup.items()))

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
