"""Run the kernel micro-bench suite and emit a machine-readable JSON report.

This is the perf trajectory anchor for the repo: each kernel-touching PR runs

    python benchmarks/run_all.py --quick          # tier-2 smoke, < 60 s
    python benchmarks/run_all.py --out BENCH_PRn.json --baseline BENCH_PRm.json

and commits the JSON so events/sec regressions are visible in review.  With
``--baseline`` the previous report (or a raw ``{bench: {...}}`` results dump)
is embedded and per-bench speedups are computed on the throughput metric.

Besides the kernel micro-benches the report carries a ``"sweep"`` section:
serial vs. parallel wall-clock of the detector-sweep grid through
``Sweep.run(workers=N)`` (the PR 4 process-pool runner), with a
bit-identity cross-check between the two runs.  ``--skip-sweep`` omits it
for kernel-only runs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # running as a script: make repro importable
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_kernel import ALL_BENCHES, run_bench  # noqa: E402

#: The headline throughput metric per bench (used for speedup computation).
RATE_METRIC = {
    "raw_events": "events_per_sec",
    "timer_events": "events_per_sec",
    "process_churn": "events_per_sec",
    "futures_fanin": "events_per_sec",
    "rpc_roundtrip": "events_per_sec",
    "metrics_record": "ops_per_sec",
}


#: Workers for the parallel leg; 4 matches the acceptance grid ("a 4-worker
#: run on a 4-core machine") — on fewer cores the measured speedup degrades
#: toward time-slicing parity, so ``cpu_count`` is recorded alongside.
SWEEP_WORKERS = 4


def run_sweep_bench(quick: bool) -> dict:
    """Serial vs. parallel wall-clock for the detector-sweep grid."""
    from repro.experiments.detector_sweep import build_sweep

    if quick:
        sweep = build_sweep(
            scale=0.2, intervals=(0.25, 1.0), misses=(1, 4), vote_gate=(True,)
        )
    else:
        sweep = build_sweep(scale=0.5)
    t0 = time.perf_counter()
    serial = sweep.run()
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = sweep.run(workers=SWEEP_WORKERS)
    parallel_s = time.perf_counter() - t0
    # A failed parallel cell must abort the report loudly (with the
    # structured failure), not crash the comparison below.
    from repro.experiments.parallel import raise_failures

    raise_failures([cell for _point, cell in parallel], context="sweep bench")
    # Full summaries (commits, aborts, latency p99, cost, probe verdicts),
    # not just counters — the docs promise a real bit-identity cross-check.
    identical = all(
        s.summary() == p.summary()
        for (_ps, s), (_pp, p) in zip(serial, parallel)
    )
    return {
        "cells": len(sweep),
        "workers": SWEEP_WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "bit_identical": identical,
    }


def _load_baseline(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    # Accept either a full report ({"results": {...}}) or a bare results dump.
    return data.get("results", data)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small bench sizes; finishes in a few seconds")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="previous report to embed and compute speedups against")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the serial-vs-parallel sweep wall-clock section")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline is not None:  # validate before spending bench time
        if not args.baseline.is_file():
            parser.error(f"baseline not found: {args.baseline}")
        try:
            baseline = _load_baseline(args.baseline)
        except json.JSONDecodeError as exc:
            parser.error(f"baseline {args.baseline} is not valid JSON: {exc}")

    results = {}
    for name in ALL_BENCHES:
        results[name] = run_bench(name, quick=args.quick)
        rate = results[name][RATE_METRIC[name]]
        print(f"{name:16s} {RATE_METRIC[name]}={rate:,.0f}", flush=True)

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "quick": args.quick,
        },
        "results": results,
    }
    if not args.skip_sweep:
        report["sweep"] = sweep = run_sweep_bench(args.quick)
        print(
            f"{'sweep_parallel':16s} cells={sweep['cells']} "
            f"serial={sweep['serial_s']}s parallel={sweep['parallel_s']}s "
            f"({sweep['workers']} workers on {sweep['cpu_count']} cpus, "
            f"speedup={sweep['speedup']}x, "
            f"bit_identical={sweep['bit_identical']})",
            flush=True,
        )
    if baseline is not None:
        report["baseline"] = baseline
        speedup = {}
        for name, metric in RATE_METRIC.items():
            before = baseline.get(name, {}).get(metric)
            if before:
                speedup[name] = round(results[name][metric] / before, 3)
        report["speedup"] = speedup
        print("speedups vs baseline:",
              ", ".join(f"{k}={v}x" for k, v in speedup.items()))

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
