"""Run the kernel micro-bench suite and emit a machine-readable JSON report.

This is the perf trajectory anchor for the repo: each kernel-touching PR runs

    python benchmarks/run_all.py --quick          # tier-2 smoke, < 60 s
    python benchmarks/run_all.py --out BENCH_PRn.json

and commits the JSON so events/sec regressions are visible in review.
``--baseline`` defaults to the newest committed ``BENCH_PR*.json`` in the
repo root (highest PR number; pass a path to override, or ``--baseline
none`` to disable): the previous report (or a raw ``{bench: {...}}``
results dump) is embedded, per-bench speedups are computed on the
throughput metric, and a delta table is printed, so the trajectory
comparison is automatic rather than manual.  ``--assert-floor FRAC`` turns
the comparison into a gate: exit non-zero if any bench falls below
``FRAC`` x baseline — CI runs this in quick mode with a generous floor to
catch order-of-magnitude regressions (a bench that stopped exercising the
kernel, an accidental O(n) in the hot loop), not run-to-run noise.

Besides the kernel micro-benches the report carries a ``"sweep"`` section:
serial vs. parallel wall-clock of the detector-sweep grid through
``Sweep.run(workers=N)`` (the PR 4 process-pool runner), with a
bit-identity cross-check between the two runs.  ``--skip-sweep`` omits it
for kernel-only runs.  A ``"replication"`` section prices the replica-set
ship modes against an ``off`` run of the same seeded cluster and gates on
off-run bit-identity (the replication-off hook must stay free).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

if __package__ in (None, ""):  # running as a script: make repro importable
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_kernel import (  # noqa: E402
    ALL_BENCHES,
    bench_tracer_overhead,
    run_bench,
)

#: The headline throughput metric per bench (used for speedup computation).
RATE_METRIC = {
    "raw_events": "events_per_sec",
    "timer_events": "events_per_sec",
    "process_churn": "events_per_sec",
    "futures_fanin": "events_per_sec",
    "rpc_roundtrip": "events_per_sec",
    "metrics_record": "ops_per_sec",
}


#: RPC round trips for the tracer on/off comparison (full / quick).  Its own
#: report section (not ``RATE_METRIC``): the headline is an overhead *ratio*
#: with no baseline entry in pre-tracing ``BENCH_PR*.json`` reports, so it
#: must not feed the ``--assert-floor`` gate.
TRACER_CALLS = (20_000, 2_000)

#: Workers for the parallel leg; 4 matches the acceptance grid ("a 4-worker
#: run on a 4-core machine") — on fewer cores the measured speedup degrades
#: toward time-slicing parity, so ``cpu_count`` is recorded alongside.
SWEEP_WORKERS = 4


def run_sweep_bench(quick: bool) -> dict:
    """Serial vs. parallel wall-clock for the detector-sweep grid."""
    from repro.experiments.detector_sweep import build_sweep

    if quick:
        sweep = build_sweep(
            scale=0.2, intervals=(0.25, 1.0), misses=(1, 4), vote_gate=(True,)
        )
    else:
        sweep = build_sweep(scale=0.5)
    t0 = time.perf_counter()
    serial = sweep.run()
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = sweep.run(workers=SWEEP_WORKERS)
    parallel_s = time.perf_counter() - t0
    # A failed parallel cell must abort the report loudly (with the
    # structured failure), not crash the comparison below.
    from repro.experiments.parallel import raise_failures

    raise_failures([cell for _point, cell in parallel], context="sweep bench")
    # Full summaries (commits, aborts, latency p99, cost, probe verdicts),
    # not just counters — the docs promise a real bit-identity cross-check.
    identical = all(
        s.summary() == p.summary()
        for (_ps, s), (_pp, p) in zip(serial, parallel)
    )
    return {
        "cells": len(sweep),
        "workers": SWEEP_WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else 0.0,
        "bit_identical": identical,
    }


#: Client count / run length for the replication section (full / quick).
#: Its own report key (not ``RATE_METRIC``, same reasoning as the tracer
#: section): the headline is the per-mode cost of WAL shipping relative to
#: the in-report ``off`` run, with no baseline entry in pre-replication
#: ``BENCH_PR*.json`` reports, so it must not feed the ``--assert-floor``
#: gate.
REPLICATION_RUN = ((8, 6.0), (4, 2.0))


def run_replication_bench(quick: bool) -> dict:
    """Per-mode cost of replica-set WAL shipping, plus the off-parity gate.

    One small seeded cluster per mode (``off`` / ``sync_quorum`` / ``async``
    / ``piggyback``) under the same closed-loop YCSB load; each entry
    reports committed transactions, sim events, wall seconds and the ship
    counters.  ``off_parity`` re-runs the ``off`` cluster and checks the
    two fingerprints are identical — the replication-off hook must stay a
    dead attribute test, bit-for-bit.
    """
    from repro.cluster import Cluster, ClusterConfig
    from repro.engine.replication import ReplicationSpec
    from repro.experiments.harness import start_clients

    clients_n, until = REPLICATION_RUN[1] if quick else REPLICATION_RUN[0]

    def one(mode: str) -> dict:
        spec = (
            None
            if mode == "off"
            else ReplicationSpec(factor=3, mode=mode, quorum=2)
        )
        cluster = Cluster(ClusterConfig(
            num_nodes=3, num_keys=3072, keys_per_granule=64, seed=17,
            replication=spec,
        ))
        t0 = time.perf_counter()
        cluster.run(until=0.2)
        _router, clients = start_clients(cluster, clients_n, seed=17)
        cluster.run(until=until)
        for client in clients:
            client.stop()
        cluster.settle(0.3)
        wall = time.perf_counter() - t0
        stats = (
            cluster.replicas.stats() if cluster.replicas is not None else {}
        )
        return {
            "committed": cluster.metrics.total_committed,
            "events": cluster.sim.events_executed,
            "wall_s": round(wall, 3),
            "events_per_sec": round(cluster.sim.events_executed / wall)
            if wall else 0,
            "ships": stats.get("ships", 0),
            "bytes_shipped": stats.get("bytes_shipped", 0),
        }

    report = {mode: one(mode)
              for mode in ("off", "sync_quorum", "async", "piggyback")}
    rerun = one("off")
    report["off_parity"] = (
        report["off"]["committed"] == rerun["committed"]
        and report["off"]["events"] == rerun["events"]
    )
    return report


def _load_baseline(path: pathlib.Path) -> dict:
    data = json.loads(path.read_text())
    # Accept either a full report ({"results": {...}}) or a bare results dump.
    return data.get("results", data)


def _newest_committed_baseline() -> "pathlib.Path | None":
    """The repo-root ``BENCH_PR<n>.json`` with the highest PR number."""
    candidates = []
    for path in REPO_ROOT.glob("BENCH_PR*.json"):
        digits = "".join(c for c in path.stem if c.isdigit())
        if digits:
            candidates.append((int(digits), path))
    return max(candidates)[1] if candidates else None


def _print_delta_table(results: dict, baseline: dict, speedup: dict) -> None:
    print(f"\n{'bench':16s} {'baseline':>14s} {'current':>14s} {'speedup':>8s}")
    for name, metric in RATE_METRIC.items():
        before = baseline.get(name, {}).get(metric)
        now = results[name][metric]
        if before:
            print(f"{name:16s} {before:14,.0f} {now:14,.0f} "
                  f"{speedup[name]:7.2f}x")
        else:
            print(f"{name:16s} {'-':>14s} {now:14,.0f} {'-':>8s}")


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small bench sizes; finishes in a few seconds")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--baseline", default=None,
                        help="previous report to compare against (default: the "
                             "newest BENCH_PR*.json in the repo root; pass "
                             "'none' to disable)")
    parser.add_argument("--assert-floor", type=float, default=None,
                        metavar="FRAC",
                        help="exit non-zero if any bench's rate falls below "
                             "FRAC x the baseline rate (regression gate)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the serial-vs-parallel sweep wall-clock section")
    args = parser.parse_args(argv)

    baseline = None
    baseline_path = None
    if args.baseline is None:
        baseline_path = _newest_committed_baseline()
    elif args.baseline.lower() != "none":
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.is_file():  # validate before spending bench time
            parser.error(f"baseline not found: {baseline_path}")
    if baseline_path is not None:
        try:
            baseline = _load_baseline(baseline_path)
            print(f"baseline: {baseline_path}")
        except json.JSONDecodeError as exc:
            parser.error(f"baseline {baseline_path} is not valid JSON: {exc}")
    if args.assert_floor is not None and baseline is None:
        parser.error("--assert-floor needs a baseline report to compare against")

    results = {}
    for name in ALL_BENCHES:
        results[name] = run_bench(name, quick=args.quick)
        rate = results[name][RATE_METRIC[name]]
        print(f"{name:16s} {RATE_METRIC[name]}={rate:,.0f}", flush=True)

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "quick": args.quick,
        },
        "results": results,
    }
    report["tracer"] = tracer = bench_tracer_overhead(
        TRACER_CALLS[1] if args.quick else TRACER_CALLS[0]
    )
    print(
        f"{'tracer_overhead':16s} calls={tracer['calls']:,} "
        f"off={tracer['off_calls_per_sec']:,.0f}/s "
        f"on={tracer['on_calls_per_sec']:,.0f}/s "
        f"(overhead={tracer['overhead_frac']:+.1%}, "
        f"schedule_drift={tracer['schedule_drift']:.0f})",
        flush=True,
    )
    report["replication"] = repl = run_replication_bench(args.quick)
    off_events = repl["off"]["events"] or 1
    for mode in ("off", "sync_quorum", "async", "piggyback"):
        entry = repl[mode]
        print(
            f"{'repl_' + mode:16s} committed={entry['committed']:,} "
            f"events={entry['events']:,} "
            f"(x{entry['events'] / off_events:.2f} vs off) "
            f"ships={entry['ships']:,} wall={entry['wall_s']}s",
            flush=True,
        )
    print(f"{'repl_off_parity':16s} {repl['off_parity']}", flush=True)
    if not repl["off_parity"]:
        # Replication-off runs diverging between two executions is a
        # determinism break, not a perf number — fail loudly.
        print("REPLICATION OFF-PARITY VIOLATED: seeded off-runs diverged")
        sys.exit(1)
    if not args.skip_sweep:
        report["sweep"] = sweep = run_sweep_bench(args.quick)
        print(
            f"{'sweep_parallel':16s} cells={sweep['cells']} "
            f"serial={sweep['serial_s']}s parallel={sweep['parallel_s']}s "
            f"({sweep['workers']} workers on {sweep['cpu_count']} cpus, "
            f"speedup={sweep['speedup']}x, "
            f"bit_identical={sweep['bit_identical']})",
            flush=True,
        )
    if baseline is not None:
        report["baseline"] = baseline
        speedup = {}
        for name, metric in RATE_METRIC.items():
            before = baseline.get(name, {}).get(metric)
            if before:
                speedup[name] = round(results[name][metric] / before, 3)
        report["speedup"] = speedup
        _print_delta_table(results, baseline, speedup)

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    if args.assert_floor is not None:
        floor = args.assert_floor
        offenders = [
            f"{name}: {ratio:.2f}x < {floor}x"
            for name, ratio in report["speedup"].items()
            if ratio < floor
        ]
        # A bench with no baseline rate must fail the gate too — otherwise a
        # renamed bench (or metric) turns the CI gate into a silent no-op.
        offenders += [
            f"{name}: no baseline rate to compare against"
            for name in RATE_METRIC
            if name not in report["speedup"]
        ]
        if offenders:
            print(f"FLOOR VIOLATED (vs {baseline_path}): "
                  + "; ".join(offenders))
            sys.exit(1)
        print(f"floor ok: all benches >= {floor}x of {baseline_path}")
    return report


if __name__ == "__main__":
    main()
