"""Figure 11 bench: TPC-C scale-out (warehouse = granule).

Paper: migration completes 2.5x / 1.5x faster than S-ZK / L-ZK, with less
user-transaction degradation during reconfiguration.  TPC-C exercises the
distributed-transaction path (multi-warehouse NEW-ORDER / PAYMENT over 2PC).
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import fig11


def test_fig11_tpcc_scaleout(benchmark):
    # TPC-C needs enough warehouses for stable first-to-last durations.
    scale = max(BENCH_SCALE, 0.5)
    results = benchmark.pedantic(
        lambda: fig11.run_tpcc_family(scale=scale, seed=1),
        rounds=1,
        iterations=1,
    )
    fig = fig11.summarize(results)
    emit(fig, benchmark)
    assert fig.findings["migration_speedup_vs_S-ZK"] > 1.2
    assert fig.findings["migration_speedup_vs_L-ZK"] > 1.0
