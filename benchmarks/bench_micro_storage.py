"""Micro-benchmarks of the substrate hot paths (pytest-benchmark proper).

These time the pure-Python data structures every simulated second leans on:
conditional appends, page-store replay, clock cache, lock table and the
Zipfian sampler.
"""

import random

from repro.engine.buffer import CacheManager
from repro.engine.locks import LockTable
from repro.storage.log import LogRecord, Put, RecordKind, SharedLog
from repro.storage.pagestore import PageStore
from repro.workload.distributions import Zipfian


def test_log_append_throughput(benchmark):
    log = SharedLog("bench")

    def append():
        log.append("txn", RecordKind.COMMIT_DATA, (Put("t", 1, "v"),))

    benchmark(append)


def test_log_conditional_append(benchmark):
    log = SharedLog("bench")

    def cas_append():
        log.append("txn", RecordKind.COMMIT_DATA, (), expected_lsn=log.end_lsn)

    benchmark(cas_append)


def test_log_failed_cas_is_cheap(benchmark):
    log = SharedLog("bench")
    log.append("txn", RecordKind.COMMIT_DATA, ())

    def failed_cas():
        log.append("txn", RecordKind.COMMIT_DATA, (), expected_lsn=0)

    benchmark(failed_cas)


def test_pagestore_apply(benchmark):
    ps = PageStore()
    state = {"lsn": 0}

    def apply():
        state["lsn"] += 1
        ps.apply(
            "log",
            LogRecord(state["lsn"], "t", RecordKind.COMMIT_DATA, (Put("t", 1, "v"),)),
        )

    benchmark(apply)


def test_cache_hit_path(benchmark):
    cache = CacheManager(1024)
    for i in range(1024):
        cache.put(i, i)

    def hit():
        cache.get(512)

    benchmark(hit)


def test_cache_eviction_path(benchmark):
    cache = CacheManager(256)
    state = {"key": 0}

    def churn():
        state["key"] += 1
        cache.put(state["key"], state["key"])

    benchmark(churn)


def test_lock_acquire_release(benchmark):
    locks = LockTable()
    state = {"txn": 0}

    def cycle():
        state["txn"] += 1
        txn = f"t{state['txn']}"
        locks.acquire(txn, ("tab", 1), True)
        locks.release_all(txn)

    benchmark(cycle)


def test_zipfian_sampling(benchmark):
    dist = Zipfian(100_000, theta=0.99)
    rng = random.Random(7)
    benchmark(dist.sample, rng)
