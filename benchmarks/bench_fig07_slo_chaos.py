"""Figure 7 bench: SLO under chaos (identical fault schedules per system).

Regenerates the fig7-style grid the ROADMAP asks for: marlin vs. zk/fdb
under the same declarative fault schedules (partition, packet loss, gray
failure, storage stall, crash+restart), with SLO probes — p99 ceiling,
throughput floor, abort ceiling, unavailability window — evaluated per cell.
"""

from benchmarks.conftest import BENCH_SCALE, emit
from repro.experiments import fig7


def test_fig07_slo_under_chaos(benchmark):
    results = fig7.run_grid(scale=BENCH_SCALE, seed=1)
    fig = fig7.summarize(results)

    def rerun_one():
        # Timed body: one fresh chaotic cell (partition is the paper's shape).
        return fig7.run_grid(
            scale=BENCH_SCALE, systems=("marlin",), seed=2,
            fault_kinds=("partition",),
        )

    benchmark.pedantic(rerun_one, rounds=1, iterations=1)
    emit(fig, benchmark)
    # Every cell committed work through its fault, and the crash fault was
    # detected and failed over on the marlin side.
    assert all(row["committed"] > 0 for row in fig.rows)
    crash_marlin = [
        row for row in fig.rows
        if row["fault"] == "crash_restart" and row["system"] == "Marlin"
    ]
    assert crash_marlin and crash_marlin[0]["failovers"] >= 1
