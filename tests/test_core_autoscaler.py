"""Tests for the autoscaling controller (§6.6)."""

import pytest

from repro.core.autoscaler import Autoscaler
from tests.conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster("marlin", num_nodes=2, num_keys=4096)
    c.run(until=0.05)
    return c


class TestPolicy:
    def test_desired_nodes_from_load(self, cluster):
        scaler = Autoscaler(cluster, clients_per_node=25, min_nodes=2, max_nodes=16)
        cluster.client_count = 100
        assert scaler.desired_nodes() == 4
        cluster.client_count = 101
        assert scaler.desired_nodes() == 5

    def test_clamped_to_bounds(self, cluster):
        scaler = Autoscaler(cluster, clients_per_node=25, min_nodes=2, max_nodes=4)
        cluster.client_count = 1000
        assert scaler.desired_nodes() == 4
        cluster.client_count = 0
        assert scaler.desired_nodes() == 2


class TestScalingActions:
    def test_scales_out_on_load_increase(self, cluster):
        scaler = Autoscaler(
            cluster, interval=0.5, clients_per_node=25, min_nodes=2, cooldown=0.1
        )
        scaler.start()
        cluster.client_count = 100
        cluster.run(until=5.0)
        scaler.stop()
        assert len(cluster.live_node_ids()) == 4
        assert any(a["kind"] == "scale-out" for a in scaler.actions)

    def test_scales_in_on_load_drop(self, cluster):
        scaler = Autoscaler(
            cluster, interval=0.5, clients_per_node=25, min_nodes=2, cooldown=0.1
        )
        cluster.client_count = 100
        scaler.start()
        cluster.run(until=5.0)
        assert len(cluster.live_node_ids()) == 4
        cluster.client_count = 40
        cluster.run(until=10.0)
        scaler.stop()
        assert len(cluster.live_node_ids()) == 2
        assert any(a["kind"] == "scale-in" for a in scaler.actions)

    def test_steady_load_no_actions(self, cluster):
        scaler = Autoscaler(
            cluster, interval=0.5, clients_per_node=25, min_nodes=2, cooldown=0.1
        )
        cluster.client_count = 50
        scaler.start()
        cluster.run(until=5.0)
        scaler.stop()
        assert scaler.actions == []
        assert len(cluster.live_node_ids()) == 2

    def test_cooldown_limits_action_rate(self, cluster):
        scaler = Autoscaler(
            cluster, interval=0.2, clients_per_node=25, min_nodes=2, cooldown=10.0
        )
        scaler.start()
        cluster.client_count = 100
        cluster.run(until=3.0)
        scaler.stop()
        assert len(scaler.actions) <= 1
