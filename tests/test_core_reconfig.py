"""Tests for the five reconfiguration transactions (Table 1 / Algorithm 1)."""

import pytest

from repro.core.reconfig import (
    NodeAlreadyExistsError,
    NodeNotExistError,
    add_node_txn,
    delete_node_txn,
    migration_txn,
    recovery_migr_txn,
    run_with_retries,
    scan_gtable_txn,
)
from repro.engine.node import GTABLE, SYSLOG, glog_name
from repro.engine.txn import AbortReason, TxnAborted, WrongNodeError
from repro.storage.log import RecordKind
from tests.conftest import make_cluster, run_gen


@pytest.fixture
def trio():
    cluster = make_cluster("marlin", num_nodes=3, num_keys=3072)
    cluster.run(until=0.05)
    return cluster


def syslog_of(cluster):
    return cluster.storages[cluster.config.home_region].log(SYSLOG)


class TestAddNodeTxn:
    def test_add_new_node(self, trio):
        node = trio._make_node(99)
        node.start()
        node.gtable.update(trio.assignment_from_views())
        committed = run_gen(trio, add_node_txn(node.runtime))
        assert committed
        assert node.mtable[99] == "node-99"
        trio.settle()
        assert trio.ground_truth_mtable()[99] == "node-99"

    def test_existing_node_rejected(self, trio):
        runtime = trio.nodes[0].runtime
        with pytest.raises(NodeAlreadyExistsError):
            run_gen(trio, add_node_txn(runtime))

    def test_concurrent_adds_serialize(self, trio):
        """Two AddNodeTxns race on SysLog; CAS admits them one at a time."""
        a = trio._make_node(50)
        b = trio._make_node(51)
        for n in (a, b):
            n.start()
        pa = trio.sim.spawn(add_node_txn(a.runtime), daemon=True)
        pb = trio.sim.spawn(add_node_txn(b.runtime), daemon=True)
        trio.run(until=trio.sim.now + 2.0)
        results = (pa.result.result(), pb.result.result())
        # At least one wins outright; the loser observed a CAS conflict.
        assert any(results)
        if not all(results):
            loser = a if not results[0] else b
            committed = run_gen(trio, add_node_txn(loser.runtime))
            assert committed
        assert 50 in trio.nodes[0].runtime.members() or 50 in a.mtable
        assert syslog_of(trio).end_lsn >= 3

    def test_retry_wrapper_wins_eventually(self, trio):
        a = trio._make_node(60)
        b = trio._make_node(61)
        for n in (a, b):
            n.start()
        pa = trio.sim.spawn(
            run_with_retries(a, lambda: add_node_txn(a.runtime)), daemon=True
        )
        pb = trio.sim.spawn(
            run_with_retries(b, lambda: add_node_txn(b.runtime)), daemon=True
        )
        trio.run(until=trio.sim.now + 2.0)
        assert pa.result.result() and pb.result.result()
        assert a.mtable.keys() >= {60} and b.mtable.keys() >= {61}


class TestDeleteNodeTxn:
    def test_delete_member(self, trio):
        committed = run_gen(trio, delete_node_txn(trio.nodes[0].runtime, 2))
        assert committed
        assert 2 not in trio.nodes[0].mtable
        trio.settle()
        assert 2 not in trio.ground_truth_mtable()

    def test_delete_unknown_rejected(self, trio):
        with pytest.raises(NodeNotExistError):
            run_gen(trio, delete_node_txn(trio.nodes[0].runtime, 42))

    def test_double_delete_rejected(self, trio):
        run_gen(trio, delete_node_txn(trio.nodes[0].runtime, 2))
        with pytest.raises(NodeNotExistError):
            run_gen(trio, delete_node_txn(trio.nodes[0].runtime, 2))

    def test_stale_deleter_discovers_change(self, trio):
        """Node 1 doesn't know node 2 was already deleted; CAS + refresh."""
        run_gen(trio, delete_node_txn(trio.nodes[0].runtime, 2))
        runtime1 = trio.nodes[1].runtime
        assert 2 in trio.nodes[1].mtable  # stale view
        committed = run_gen(trio, delete_node_txn(runtime1, 2))
        assert not committed  # CAS failed, view refreshed
        assert 2 not in trio.nodes[1].mtable
        with pytest.raises(NodeNotExistError):
            run_gen(trio, delete_node_txn(runtime1, 2))


class TestMigrationTxn:
    def test_successful_migration(self, trio):
        dst = trio.nodes[0]
        granule = trio.nodes[1].owned_granules()[0]
        committed = run_gen(trio, migration_txn(dst.runtime, granule, 1))
        assert committed
        assert dst.gtable[granule] == 0
        trio.settle()
        assert trio.nodes[1].gtable[granule] == 0  # src applied at decision
        assert trio.ground_truth_gtable()[granule] == 0

    def test_both_glogs_record_swap(self, trio):
        dst = trio.nodes[0]
        granule = trio.nodes[1].owned_granules()[0]
        run_gen(trio, migration_txn(dst.runtime, granule, 1))
        trio.settle()
        for nid in (0, 1):
            node = trio.nodes[nid]
            log = trio.storages[node.region].log(node.glog)
            assert any(r.kind is RecordKind.VOTE_YES for r in log.records)
            assert any(r.kind is RecordKind.DECISION_COMMIT for r in log.records)

    def test_wrong_source_aborts(self, trio):
        dst = trio.nodes[0]
        granule = trio.nodes[2].owned_granules()[0]  # owned by 2, not 1
        with pytest.raises(WrongNodeError) as excinfo:
            run_gen(trio, migration_txn(dst.runtime, granule, 1))
        assert excinfo.value.owner == 2

    def test_migrating_own_granule_aborts(self, trio):
        dst = trio.nodes[0]
        granule = dst.owned_granules()[0]
        with pytest.raises(WrongNodeError):
            run_gen(trio, migration_txn(dst.runtime, granule, 1))

    def test_user_lock_blocks_migration(self, trio):
        """An in-flight user txn holds an S lock on the GTable entry."""
        src = trio.nodes[1]
        granule = src.owned_granules()[0]
        src.locks.acquire("user-1", (GTABLE, granule), False)
        dst = trio.nodes[0]
        with pytest.raises(TxnAborted) as excinfo:
            run_gen(trio, migration_txn(dst.runtime, granule, 1))
        assert excinfo.value.reason is AbortReason.LOCK_CONFLICT
        # After the user txn finishes, migration succeeds.
        src.locks.release_all("user-1")
        assert run_gen(trio, migration_txn(dst.runtime, granule, 1))

    def test_concurrent_migrations_of_same_granule(self, trio):
        granule = trio.nodes[2].owned_granules()[0]
        p0 = trio.sim.spawn(
            migration_txn(trio.nodes[0].runtime, granule, 2), daemon=True
        )
        p1 = trio.sim.spawn(
            migration_txn(trio.nodes[1].runtime, granule, 2), daemon=True
        )
        trio.run(until=trio.sim.now + 2.0)
        winners = [
            nid for nid, proc in ((0, p0), (1, p1))
            if proc.result.exception is None and proc.result.result()
        ]
        assert len(winners) == 1
        trio.settle()
        assert trio.ground_truth_gtable()[granule] == winners[0]

    def test_frozen_source_times_out(self, trio):
        granule = trio.nodes[1].owned_granules()[0]
        trio.nodes[1].freeze()
        with pytest.raises(TxnAborted) as excinfo:
            run_gen(trio, migration_txn(trio.nodes[0].runtime, granule, 1), limit=30.0)
        assert excinfo.value.reason is AbortReason.NODE_FAILED

    def test_warmup_populates_destination_cache(self, trio):
        dst = trio.nodes[0]
        granule = trio.nodes[1].owned_granules()[0]
        before = len(dst.cache)
        run_gen(trio, migration_txn(dst.runtime, granule, 1))
        assert len(dst.cache) > before


class TestRecoveryMigrTxn:
    def test_recover_from_frozen_node(self, trio):
        victim = trio.nodes[2]
        granules = victim.owned_granules()
        trio.fail_node(2)
        trio.settle()
        committed, taken = run_gen(
            trio, recovery_migr_txn(trio.nodes[0].runtime, granules, 2)
        )
        assert committed
        assert taken == granules
        assert all(trio.nodes[0].gtable[g] == 0 for g in granules)

    def test_commits_to_dead_nodes_glog(self, trio):
        victim = trio.nodes[2]
        granules = victim.owned_granules()
        end_before = trio.storages[victim.region].log(victim.glog).end_lsn
        trio.fail_node(2)
        trio.settle()
        run_gen(trio, recovery_migr_txn(trio.nodes[0].runtime, granules, 2))
        trio.settle()
        log = trio.storages[victim.region].log(victim.glog)
        assert log.end_lsn > end_before
        assert log.records[end_before].kind is RecordKind.VOTE_YES

    def test_validation_skips_moved_granules(self, trio):
        """Granules no longer owned by the dead node are not taken."""
        granule = trio.nodes[1].owned_granules()[0]
        run_gen(trio, migration_txn(trio.nodes[0].runtime, granule, 1))
        trio.settle()
        committed, taken = run_gen(
            trio, recovery_migr_txn(trio.nodes[2].runtime, [granule], 1)
        )
        assert committed and taken == []

    def test_race_with_reviving_node(self, trio):
        """The revived owner's commit and the recovery CAS serialize."""
        victim = trio.nodes[2]
        granules = victim.owned_granules()
        trio.fail_node(2)
        trio.settle()
        # Recovery starts; meanwhile the victim revives and commits.
        proc = trio.sim.spawn(
            recovery_migr_txn(trio.nodes[0].runtime, granules, 2), daemon=True
        )
        trio.resume_node(2)
        fut = victim.committer.submit("revived", RecordKind.COMMIT_DATA, ())
        trio.run(until=trio.sim.now + 2.0)
        recovery_committed, taken = proc.result.result()
        revived_ok = fut.result().ok
        # Exactly one side observes a conflict on the victim's GLog.
        assert recovery_committed != revived_ok or not (
            recovery_committed and revived_ok
        )


class TestScanGTableTxn:
    def test_full_scan(self, trio):
        result = run_gen(trio, scan_gtable_txn(trio.nodes[0].runtime))
        assert len(result) == trio.gmap.num_granules
        assert set(result.values()) <= {0, 1, 2}

    def test_scan_reflects_migration(self, trio):
        granule = trio.nodes[1].owned_granules()[0]
        run_gen(trio, migration_txn(trio.nodes[0].runtime, granule, 1))
        result = run_gen(trio, scan_gtable_txn(trio.nodes[2].runtime))
        assert result[granule] == 0

    def test_scan_with_frozen_member_aborts(self, trio):
        trio.fail_node(2)
        with pytest.raises(TxnAborted):
            run_gen(trio, scan_gtable_txn(trio.nodes[0].runtime), limit=60.0)
