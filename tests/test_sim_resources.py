"""Unit tests for CPU resources and async queues."""

import pytest

from repro.sim.core import SimError, Simulator, Timeout
from repro.sim.resources import CpuResource, Queue


@pytest.fixture
def sim():
    return Simulator(seed=1)


class TestCpuResource:
    def test_single_worker_serializes_jobs(self, sim):
        cpu = CpuResource(sim, workers=1)
        finished = []

        def job(name):
            yield from cpu.run(1.0)
            finished.append((name, sim.now))

        sim.spawn(job("a"))
        sim.spawn(job("b"))
        sim.run()
        assert finished == [("a", 1.0), ("b", 2.0)]

    def test_parallel_workers(self, sim):
        cpu = CpuResource(sim, workers=2)
        finished = []

        def job(name):
            yield from cpu.run(1.0)
            finished.append((name, sim.now))

        for name in ("a", "b", "c"):
            sim.spawn(job(name))
        sim.run()
        assert finished == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_fifo_queueing(self, sim):
        cpu = CpuResource(sim, workers=1)
        order = []

        def job(name, start_delay):
            yield Timeout(start_delay)
            yield from cpu.run(1.0)
            order.append(name)

        sim.spawn(job("late", 0.2))
        sim.spawn(job("early", 0.1))
        sim.spawn(job("first", 0.0))
        sim.run()
        assert order == ["first", "early", "late"]

    def test_saturation_throughput(self, sim):
        """4 workers x 10ms service => max 400 jobs/sec."""
        cpu = CpuResource(sim, workers=4)
        done = []

        def job():
            yield from cpu.run(0.01)
            done.append(sim.now)

        for _ in range(100):
            sim.spawn(job())
        sim.run()
        assert max(done) == pytest.approx(100 * 0.01 / 4)

    def test_utilization_tracking(self, sim):
        cpu = CpuResource(sim, workers=2)

        def job():
            yield from cpu.run(1.0)

        sim.spawn(job())
        sim.run()
        assert cpu.busy_time == pytest.approx(1.0)
        assert cpu.utilization(elapsed=1.0) == pytest.approx(0.5)
        assert cpu.jobs_completed == 1

    def test_in_use_and_queued(self, sim):
        cpu = CpuResource(sim, workers=1)

        def job():
            yield from cpu.run(5.0)

        sim.spawn(job())
        sim.spawn(job())
        sim.run(until=1.0)
        assert cpu.in_use == 1
        assert cpu.queued == 1

    def test_release_without_acquire_raises(self, sim):
        cpu = CpuResource(sim, workers=1)
        with pytest.raises(SimError):
            cpu.release()

    def test_needs_positive_workers(self, sim):
        with pytest.raises(ValueError):
            CpuResource(sim, workers=0)

    def test_utilization_zero_elapsed(self, sim):
        cpu = CpuResource(sim, workers=1)
        assert cpu.utilization(0.0) == 0.0


class TestQueue:
    def test_put_then_get(self, sim):
        q = Queue(sim)
        q.put("x")
        got = sim.run_until(q.get())
        assert got == "x"

    def test_get_blocks_until_put(self, sim):
        q = Queue(sim)
        got = []

        def consumer():
            item = yield q.get()
            got.append((item, sim.now))

        sim.spawn(consumer())
        sim.call_after(2.0, q.put, "late")
        sim.run()
        assert got == [("late", 2.0)]

    def test_fifo_order(self, sim):
        q = Queue(sim)
        for i in range(3):
            q.put(i)
        got = []

        def consumer():
            for _ in range(3):
                got.append((yield q.get()))

        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2]

    def test_multiple_waiters_fifo(self, sim):
        q = Queue(sim)
        got = []

        def consumer(name):
            item = yield q.get()
            got.append((name, item))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))
        sim.call_after(1.0, q.put, "a")
        sim.call_after(2.0, q.put, "b")
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_drain(self, sim):
        q = Queue(sim)
        for i in range(4):
            q.put(i)
        assert q.drain() == [0, 1, 2, 3]
        assert len(q) == 0

    def test_len(self, sim):
        q = Queue(sim)
        assert len(q) == 0
        q.put(1)
        q.put(2)
        assert len(q) == 2
