"""Replica sets (``engine/replication.py``): placement, shipping, promotion.

The headline contract is the **quorum-safety property**: under
``sync_quorum`` with at most ``factor - quorum`` crashed replicas, every
write whose commit was acknowledged to a client is present on at least one
surviving replica — swept over seeds and kill timings with hypothesis.
Around it: spec/config validation, seeded-placement determinism, ship/tail
catch-up per mode, failover promotion with RPO/RTO measurement, the
vacuous-zero probe semantics (no failover -> ``value=None ok=True``), the
bit-identical replicated-replay fingerprint (``test_chaos.py`` style), and
the pinned fig17 golden cells that rotate the cache epoch.

Profile: ``HYPOTHESIS_PROFILE=ci`` shrinks the property sweep for CI.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import Crash, FaultSchedule, Partition
from repro.chaos.scenarios import replica_link_degradation
from repro.cluster import ClusterConfig
from repro.cluster.metrics import MetricsCollector
from repro.engine.replication import (
    REPLICATION_MODES,
    ReplicationSpec,
    planned_followers,
    record_bytes,
)
from repro.experiments.goldens import FIG17_REPLICATION_GOLDEN, cache_epoch
from repro.experiments.runner import _probe_measure, run_spec
from repro.experiments.spec import ProbeSpec, TopologySpec
from repro.storage.log import RecordKind
from tests.conftest import make_cluster
from tests.test_workload_client import start_clients

settings.register_profile(
    "ci", max_examples=3, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "default", max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


class TestReplicationSpec:
    def test_defaults_valid(self):
        spec = ReplicationSpec()
        assert spec.factor == 3
        assert spec.mode == "sync_quorum"
        assert spec.quorum == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "raft"},
            {"factor": 1},
            {"quorum": 0},
            {"factor": 3, "quorum": 4},
            {"lag_budget": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ReplicationSpec(**kwargs)

    def test_round_trips_through_dict(self):
        for mode in REPLICATION_MODES:
            spec = ReplicationSpec(factor=4, mode=mode, quorum=3)
            assert ReplicationSpec.from_dict(spec.to_dict()) == spec

    def test_config_rejects_non_marlin(self):
        with pytest.raises(ValueError, match="marlin"):
            ClusterConfig(
                coordination="zk-small", replication=ReplicationSpec()
            )

    def test_topology_spec_validates_eagerly(self):
        with pytest.raises(ValueError):
            TopologySpec(replication={"mode": "raft"})

    def test_topology_spec_omits_replication_when_off(self):
        # Pre-replication spec JSON (and the cache keys hashed from it)
        # must stay byte-identical when the field is unset.
        assert "replication" not in TopologySpec().to_dict()
        with_repl = TopologySpec(replication={"mode": "async"})
        assert with_repl.to_dict()["replication"] == {"mode": "async"}

    def test_record_bytes_monotone(self):
        assert record_bytes(RecordKind.COMMIT_DATA, ()) == 32
        assert record_bytes(RecordKind.COMMIT_DATA, (1, 2)) > record_bytes(
            RecordKind.COMMIT_DATA, (1,)
        )


class TestPlacement:
    def test_planned_followers_deterministic_and_excludes_primary(self):
        ids = range(5)
        first = planned_followers(7, 2, ids, 3)
        assert first == planned_followers(7, 2, ids, 3)
        assert len(first) == 2
        assert 2 not in first

    def test_seed_shuffles_placement(self):
        ids = range(8)
        picks = {planned_followers(seed, 0, ids, 3) for seed in range(20)}
        assert len(picks) > 1

    def test_attach_matches_planned_followers(self):
        cluster = make_cluster(
            "marlin", num_nodes=4, seed=13,
            replication=ReplicationSpec(factor=3, mode="async"),
        )
        assert cluster.replicas is not None
        for nid in cluster.nodes:
            assert cluster.replicas.followers[nid] == planned_followers(
                13, nid, cluster.nodes, 3
            )
            assert cluster.nodes[nid].replicator is cluster.replicas

    def test_replication_off_leaves_hook_none(self):
        cluster = make_cluster("marlin", num_nodes=2, seed=13)
        assert cluster.replicas is None
        assert all(n.replicator is None for n in cluster.nodes.values())


def _run_replicated(mode, seed=11, until=4.0, quorum=2, schedule=None):
    cluster = make_cluster(
        "marlin", num_nodes=3, num_keys=3072, seed=seed,
        failure_detection=schedule is not None,
        replication=ReplicationSpec(factor=3, mode=mode, quorum=quorum),
    )
    proc = cluster.chaos.run_schedule(schedule) if schedule else None
    cluster.run(until=0.2)
    _router, clients = start_clients(cluster, count=6, request_timeout=0.5)
    if proc is not None:
        cluster.sim.run_until(proc.result, limit=120.0)
    cluster.run(until=until)
    for c in clients:
        c.stop()
    cluster.settle(0.5)
    return cluster


class TestShipping:
    @pytest.mark.parametrize("mode", REPLICATION_MODES)
    def test_tails_catch_up_at_quiescence(self, mode):
        cluster = _run_replicated(mode)
        manager = cluster.replicas
        assert manager.ships > 0
        assert manager.bytes_shipped > 0
        for nid in cluster.nodes:
            acked = manager.acked_lsn[nid]
            tails = [
                manager.tails[(fid, nid)] for fid in manager.followers[nid]
            ]
            # Quiescent, fault-free: every ship ran to completion, so all
            # followers hold the primary's full acked tail.
            assert all(t.acked_lsn == acked for t in tails)
            assert all(
                t.bytes_received == manager.acked_bytes[nid] for t in tails
            )

    def test_sync_quorum_tracks_acks_inline(self):
        cluster = _run_replicated("sync_quorum")
        manager = cluster.replicas
        # quorum acks are on the commit path: acks arrived for every ship.
        assert manager.acks >= manager.ships
        assert manager.ship_failures == 0

    def test_follower_gtable_mirrors_ownership(self):
        cluster = _run_replicated("sync_quorum")
        manager = cluster.replicas
        truth = cluster.ground_truth_gtable()
        for (fid, nid), tail in manager.tails.items():
            for granule, owner in tail.gtable.items():
                if owner == nid:
                    assert truth[granule] == nid


class TestPromotion:
    @pytest.mark.parametrize("mode", REPLICATION_MODES)
    def test_crash_promotes_most_caught_up_follower(self, mode):
        schedule = FaultSchedule().at(
            2.0, Crash(node=1, rejoin=True, duration=4.0)
        )
        cluster = _run_replicated(mode, until=12.0, schedule=schedule)
        manager = cluster.replicas
        assert len(cluster.metrics.failovers) == 1
        assert manager.promotions == 1
        # RPO was measured (one sample per promotion); sync_quorum's lag is
        # zero by construction in a partition-free run.
        assert len(cluster.metrics.rpo_samples) == 1
        assert len(cluster.metrics.rto_samples) == 1
        if mode == "sync_quorum":
            assert cluster.metrics.rpo_samples[0] == 0.0
        assert cluster.metrics.rto_samples[0] > 0.0
        # The restarted node reconciled its tails on recovery.
        assert manager.reconciles >= 1
        # Ownership is consistent at quiescence: nothing still owned by the
        # dead node's pre-crash view that the survivors disagree about.
        truth = cluster.ground_truth_gtable()
        for node in cluster.nodes.values():
            for granule, owner in node.gtable.items():
                assert truth[granule] == owner

    def test_link_degradation_creates_async_lag(self):
        followers = planned_followers(11, 1, range(3), 3)
        schedule = replica_link_degradation(1, followers, at=1.0, duration=1.0)
        schedule.at(2.2, Crash(node=1, rejoin=True, duration=4.0))
        cluster = _run_replicated("async", until=12.0, schedule=schedule)
        assert cluster.replicas.promotions == 1
        assert cluster.metrics.rpo_samples[0] > 0.0


class TestQuorumSafety:
    """No client-acked write vanishes from every surviving replica."""

    @given(
        seed=st.integers(min_value=1, max_value=10_000),
        kill_decis=st.integers(min_value=10, max_value=30),
    )
    def test_sync_quorum_survives_one_crash(self, seed, kill_decis):
        kill_at = kill_decis / 10.0
        schedule = FaultSchedule().at(kill_at, Crash(node=1, rejoin=False))
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, seed=seed,
            failure_detection=True,
            replication=ReplicationSpec(factor=3, mode="sync_quorum", quorum=2),
        )
        proc = cluster.chaos.run_schedule(schedule)
        # Bootstrap-era GLog records (membership seeding) predate the ship
        # path: tails start *at* this baseline, so only later LSNs are
        # subject to the quorum guarantee.
        baseline = cluster.replicas.acked_lsn[1]
        cluster.run(until=0.2)
        _router, clients = start_clients(cluster, count=6, request_timeout=0.5)
        cluster.sim.run_until(proc.result, limit=120.0)
        cluster.run(until=kill_at + 5.0)
        for c in clients:
            c.stop()
        cluster.settle(0.5)

        manager = cluster.replicas
        dead = cluster.nodes[1]
        # The primary-side ledger froze at the crash: every LSN at or below
        # it was quorum-acked before the client saw a commit.
        acked = manager.acked_lsn[1]
        log = cluster.storages[dead.region].log(dead.glog)
        acked_txns = {
            r.txn_id
            for r in log.read_from(0)
            if baseline < r.lsn <= acked
            and r.kind in (RecordKind.COMMIT_DATA, RecordKind.DECISION_COMMIT)
        }
        surviving = set()
        for fid in manager.followers[1]:
            tail = manager.tails[(fid, 1)]
            surviving |= tail.applied_txns
            surviving |= set(tail.pending)
        missing = acked_txns - surviving
        assert not missing, (
            f"acked writes lost from every surviving replica: {missing}"
        )


class TestRpoRtoProbes:
    def _result(self, metrics, duration=10.0):
        class _R:
            pass

        r = _R()
        r.metrics = metrics
        r.duration = duration
        return r

    def test_rpo_probe_reports_worst_case(self):
        m = MetricsCollector()
        m.record_rpo(2.0, 128.0)
        m.record_rpo(6.0, 0.0)
        probe = ProbeSpec(name="rpo", kind="rpo_bytes", threshold=0.0)
        value, ok = _probe_measure(probe, self._result(m), (0.0, 10.0))
        assert value == 128.0
        assert not ok
        # Windowed: the clean failover's window passes on its own.
        value, ok = _probe_measure(probe, self._result(m), (5.0, 10.0))
        assert value == 0.0
        assert ok

    def test_rto_probe_thresholds(self):
        m = MetricsCollector()
        m.record_rto(3.0, 1.25)
        probe = ProbeSpec(name="rto", kind="rto_s", threshold=5.0)
        value, ok = _probe_measure(probe, self._result(m), (0.0, 10.0))
        assert value == 1.25
        assert ok

    @pytest.mark.parametrize("kind", ["rpo_bytes", "rto_s"])
    def test_vacuous_zero_reports_none_ok(self, kind):
        # Zero failovers: the probe is *unmeasured*, never a measured 0.0 —
        # the fig7 vacuous-SLO footgun, closed for the replication probes.
        probe = ProbeSpec(name=kind, kind=kind, threshold=0.0)
        value, ok = _probe_measure(
            probe, self._result(MetricsCollector()), (0.0, 10.0)
        )
        assert value is None
        assert ok


def _replicated_fingerprint(seed: int, mode: str = "sync_quorum"):
    """One replicated chaotic run; every bit-sensitive counter we track."""
    schedule = (
        FaultSchedule()
        .at(0.8, Partition(groups=((2,), (0, 1)), duration=1.0))
        .at(2.0, Crash(node=1, rejoin=True, duration=3.0))
    )
    cluster = _run_replicated(mode, seed=seed, until=9.0, schedule=schedule)
    manager = cluster.replicas
    return {
        "events_executed": cluster.sim.events_executed,
        "now": cluster.sim.now,
        "messages_sent": cluster.network.messages_sent,
        "committed": cluster.metrics.total_committed,
        "aborted": cluster.metrics.total_aborted,
        "failovers": list(cluster.metrics.failovers),
        "rpo": list(cluster.metrics.rpo_samples),
        "rto": list(cluster.metrics.rto_samples),
        "ships": manager.ships,
        "acks": manager.acks,
        "bytes_shipped": manager.bytes_shipped,
        "promotions": manager.promotions,
        "ground_truth": sorted(cluster.ground_truth_gtable().items()),
    }


class TestReplicatedDeterminism:
    def test_replicated_chaotic_run_bit_identical(self):
        first = _replicated_fingerprint(seed=31)
        second = _replicated_fingerprint(seed=31)
        assert first == second

    def test_mode_changes_the_run(self):
        # Sanity: the fingerprint is sensitive to the ship mode (the
        # equality above is not vacuous).
        sync = _replicated_fingerprint(seed=31, mode="sync_quorum")
        async_ = _replicated_fingerprint(seed=31, mode="async")
        assert sync != async_


class TestFig17Golden:
    @pytest.mark.parametrize("cell", sorted(FIG17_REPLICATION_GOLDEN))
    def test_lagged_crash_cell_matches_golden(self, cell):
        from repro.experiments import fig17_replication as fig17

        result = run_spec(
            fig17.replication_spec(cell, "lagged_crash", scale=0.25, seed=1)
        )
        m = result.metrics
        probes = {p.name: p for p in result.probes}
        repl = result.extras["replication"]
        actual = {
            "committed": m.total_committed,
            "aborted": m.total_aborted,
            "failovers": len(m.failovers),
            "promotions": repl["promotions"],
            "ships": repl["ships"],
            "bytes_shipped": repl["bytes_shipped"],
            "rpo_bytes": probes["rpo_bytes"].value,
            "rto_s": probes["rto_s"].value,
        }
        assert actual == FIG17_REPLICATION_GOLDEN[cell]

    def test_golden_contrast_is_the_figure_finding(self):
        golden = FIG17_REPLICATION_GOLDEN
        assert golden["sync_q2"]["rpo_bytes"] == 0.0
        assert golden["async"]["rpo_bytes"] > 0.0

    def test_cache_epoch_covers_replication_golden(self):
        # The epoch is a content hash over the goldens payload; a replication
        # behaviour change that re-captures the golden must rotate it.
        import repro.experiments.goldens as g

        before = cache_epoch()
        original = g.FIG17_REPLICATION_GOLDEN
        g.FIG17_REPLICATION_GOLDEN = dict(original, probe=1)
        try:
            assert g.cache_epoch() != before
        finally:
            g.FIG17_REPLICATION_GOLDEN = original
