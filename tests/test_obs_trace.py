"""Deterministic tracing: tracer unit tests, exporters, spec wiring.

Covers the observability contract end to end:

* ``Tracer`` span/instant/counter mechanics, prefix filtering, the bounded
  flight-recorder ring, and picklable detachment;
* Chrome trace-event export — schema validity (the subset Perfetto needs),
  dangling-span closing, and the validator's own error paths;
* byte-identical traces across two identically-seeded runs *in one
  process* (the strongest determinism claim: no process-global counters
  leak into tracks or span args);
* span-tree integrity across the process-pool transport (pooled == serial,
  byte for byte);
* ``counter_max`` / ``counter_min`` probe kinds over the structured
  counters registry;
* ``TraceSpec`` serialisation back-compat: untraced specs serialise to the
  exact same JSON as before the field existed (cache keys stay stable).
"""

import json
import pickle

import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.parallel import run_cells
from repro.experiments.runner import run_spec
from repro.experiments.spec import (
    ProbeSpec,
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
)
from repro.obs import (
    TraceData,
    Tracer,
    chrome_trace,
    forensic_report,
    span_summary,
    trace_json,
    validate_chrome_trace,
)


class FakeSim:
    def __init__(self):
        self.now = 0.0


def make_trace(**kw):
    sim = FakeSim()
    return sim, Tracer(sim, **kw)


def small_spec(trace=None, seed=7, probes=()):
    """A fast (~2 s sim) mixed 2PC + fast-path cell."""
    return ScenarioSpec(
        name="obs-test",
        topology=TopologySpec(nodes=3, coordination="marlin"),
        workload=WorkloadSpec(
            kind="ycsb", clients=4, granules=64,
            incr_fraction=0.2, remote_fraction=0.5,
        ),
        probes=list(probes),
        trace=trace,
        seed=seed,
        duration=2.0,
    )


class TestTracerUnit:
    def test_span_ids_and_event_tuples(self):
        sim, tr = make_trace()
        root = tr.begin("node-0", "2pc", args={"txn": "t1"})
        sim.now = 0.5
        child = tr.begin("node-0", "2pc.prepare", parent=root)
        sim.now = 1.0
        tr.end(child)
        tr.end(root, args={"outcome": "commit"})
        assert root == 1 and child == 2
        assert tr.events[0] == ("B", 1, 0, "node-0", "2pc", 0.0, {"txn": "t1"})
        assert tr.events[1] == ("B", 2, 1, "node-0", "2pc.prepare", 0.5, None)
        assert tr.events[2] == ("E", 2, 1.0, None)
        assert tr.events[3] == ("E", 1, 1.0, {"outcome": "commit"})

    def test_prefix_filter_drops_spans_but_not_counters(self):
        _sim, tr = make_trace(prefixes=["2pc"])
        kept = tr.begin("n", "2pc.prepare")
        dropped = tr.begin("n", "rpc:user_txn")
        tr.instant("n", "edge:vote")
        tr.instant("n", "2pc:decided")
        tr.count("rpc.user_txn")
        assert kept == 1 and dropped == 0
        tr.end(dropped)  # no-op handle, must not raise or record
        names = [ev[4] if ev[0] == "B" else ev[2] for ev in tr.events
                 if ev[0] in ("B", "I")]
        assert names == ["2pc.prepare", "2pc:decided"]
        assert tr.counters == {"rpc.user_txn": 1}

    def test_flight_recorder_ring_is_bounded(self):
        _sim, tr = make_trace(ring_size=4)
        for i in range(10):
            tr.instant("n", f"ev{i}")
        ring = list(tr.rings["n"])
        assert len(ring) == 4
        assert [name for _t, _k, name, _a in ring] == [
            "ev6", "ev7", "ev8", "ev9"
        ]
        # The full event list is NOT bounded — only the ring is.
        assert len(tr.events) == 10

    def test_detach_is_picklable_and_carries_open_spans(self):
        sim, tr = make_trace()
        sid = tr.begin("n", "recovery")
        sim.now = 3.0
        data = tr.detach()
        clone = pickle.loads(pickle.dumps(data))
        assert isinstance(clone, TraceData)
        assert clone.open_spans == {sid: ("n", "recovery", 0.0)}
        assert clone.end_time == 3.0

    def test_span_summary_closes_dangling_at_end_time(self):
        sim, tr = make_trace()
        done = tr.begin("n", "gc_flush")
        sim.now = 0.25
        tr.end(done)
        tr.begin("n", "gc_flush")  # never ended (crash window)
        sim.now = 1.0
        summary = span_summary(tr.detach())
        assert summary["gc_flush"]["count"] == 2
        assert summary["gc_flush"]["total_s"] == pytest.approx(0.25 + 0.75)


class TestChromeExport:
    def _trace_with_open_span(self):
        sim, tr = make_trace()
        root = tr.begin("node-0", "2pc")
        sim.now = 0.5
        tr.end(root, args={"outcome": "commit"})
        tr.instant("chaos", "chaos:inject", args={"event": "Crash"})
        tr.begin("node-1", "recovery")  # dangling
        sim.now = 2.0
        return tr.detach()

    def test_schema_is_valid(self):
        doc = chrome_trace(self._trace_with_open_span())
        assert validate_chrome_trace(doc) == []
        # One thread_name metadata event per track, deterministically tid'd.
        names = {
            ev["tid"]: ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "thread_name"
        }
        assert sorted(names.values()) == ["chaos", "node-0", "node-1"]

    def test_dangling_span_closed_at_end_time_and_flagged(self):
        doc = chrome_trace(self._trace_with_open_span())
        by_name = {
            ev["name"]: ev for ev in doc["traceEvents"] if ev["ph"] == "X"
        }
        assert by_name["recovery"]["args"]["open"] == 1
        # Began at t=0.5, closed at end_time=2.0 -> 1.5 s of dangling work.
        assert by_name["recovery"]["dur"] == pytest.approx(1.5e6)
        assert "open" not in by_name["2pc"]["args"]
        assert by_name["2pc"]["args"]["outcome"] == "commit"

    def test_validator_flags_malformed_events(self):
        assert validate_chrome_trace([]) == ["top level must be a JSON object"]
        assert validate_chrome_trace({"traceEvents": []}) == [
            "traceEvents must be a non-empty list"
        ]
        errors = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "Z", "pid": 1, "tid": 1},
            {"name": "y", "ph": "X", "pid": 1, "tid": 7, "ts": -1.0,
             "dur": "no"},
        ]})
        assert any("bad ph" in e for e in errors)
        assert any("ts must be" in e for e in errors)
        assert any("non-negative dur" in e for e in errors)
        assert any("tid 7" in e for e in errors)


class TestTraceDeterminism:
    def test_two_seeded_runs_are_byte_identical(self):
        spec = small_spec(trace=TraceSpec())
        blobs = [trace_json(run_spec(spec).trace) for _ in range(2)]
        assert blobs[0] == blobs[1]
        assert validate_chrome_trace(json.loads(blobs[0])) == []

    def test_tracing_is_purely_observational(self):
        off = run_spec(small_spec())
        on = run_spec(small_spec(trace=TraceSpec()))
        assert off.trace is None
        assert "counters" not in off.extras
        assert on.trace is not None and on.trace.events
        # Same schedule, same outcomes: tracing never perturbs the run.
        assert off.metrics.total_committed == on.metrics.total_committed
        assert off.metrics.total_aborted == on.metrics.total_aborted
        counters = on.extras["counters"]
        assert counters["txn.committed"] == on.metrics.total_committed
        assert "2pc" in on.extras["span_summary"]

    def test_trace_filter_limits_spans(self):
        result = run_spec(small_spec(trace=TraceSpec(filter=["2pc"])))
        names = set(span_summary(result.trace))
        assert names and all(n.startswith("2pc") for n in names)


class TestProcessPoolTrace:
    def test_pooled_trace_matches_serial_byte_for_byte(self):
        spec = small_spec(trace=TraceSpec())
        serial = run_spec(spec)
        pooled = run_cells([spec, small_spec(trace=TraceSpec(), seed=8)],
                           workers=2)
        assert trace_json(pooled[0].trace) == trace_json(serial.trace)

    def test_span_tree_integrity_after_transport(self):
        spec = small_spec(trace=TraceSpec())
        trace = run_cells([spec], workers=2)[0].trace
        begun, ended = set(), set()
        for ev in trace.events:
            if ev[0] == "B":
                sid, parent = ev[1], ev[2]
                assert sid not in begun, "span id reused"
                # Parents are recorded before their children (the RPC path
                # propagates ids forward in sim time).
                assert parent == 0 or parent in begun
                begun.add(sid)
            elif ev[0] == "E":
                assert ev[1] in begun, "end without begin"
                ended.add(ev[1])
        assert begun, "pooled run recorded no spans"
        assert set(trace.open_spans) == begun - ended


class TestCounterProbes:
    def test_counter_min_and_max_verdicts(self):
        result = run_spec(small_spec(trace=TraceSpec(), probes=[
            ProbeSpec(name="committed_floor", kind="counter_min",
                      counter="txn.committed", threshold=1.0),
            ProbeSpec(name="suspicion_ceiling", kind="counter_max",
                      counter="detector.suspicions", threshold=0.0),
        ]))
        verdicts = {p.name: p for p in result.probes}
        floor = verdicts["committed_floor"]
        assert floor.ok and floor.value >= 1.0
        # No faults, no detector -> the counter reads 0 and the ceiling holds.
        ceiling = verdicts["suspicion_ceiling"]
        assert ceiling.ok and ceiling.value == 0.0

    def test_counter_probe_reads_zero_when_untraced(self):
        result = run_spec(small_spec(probes=[
            ProbeSpec(name="committed_floor", kind="counter_min",
                      counter="txn.committed", threshold=1.0),
        ]))
        probe = result.probes[0]
        assert probe.value == 0.0 and not probe.ok

    def test_counter_kind_requires_counter_name(self):
        with pytest.raises(ValueError, match="counter"):
            ProbeSpec(name="bad", kind="counter_max", threshold=1.0)


class TestSpecSerialization:
    def test_untraced_spec_json_is_unchanged(self):
        """Back-compat: no ``trace`` key, no ``counter`` key — the canonical
        JSON (and therefore every cache key) is identical to pre-tracing."""
        spec = small_spec(probes=[ProbeSpec(name="p99", kind="latency",
                                            threshold=0.5)])
        data = spec.to_dict()
        assert "trace" not in data
        assert "counter" not in data["probes"][0]
        assert ScenarioSpec.from_dict(data) == spec

    def test_traced_spec_round_trips(self):
        spec = small_spec(
            trace=TraceSpec(flight_recorder=64, filter=["2pc", "rpc:"]),
            probes=[ProbeSpec(name="floor", kind="counter_min",
                              counter="txn.committed", threshold=1.0)],
        )
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.trace.filter == ["2pc", "rpc:"]
        assert clone.probes[0].counter == "txn.committed"

    def test_trace_spec_validates_ring_size(self):
        with pytest.raises(ValueError):
            TraceSpec(flight_recorder=0)


class TestForensicReport:
    def test_report_renders_ring_tail(self):
        sim, tr = make_trace(ring_size=8)
        tr.begin("node-0", "2pc", args={"txn": "t9"})
        sim.now = 0.5
        tr.instant("node-0", "edge:vote", args={"txn": "t9"})

        class Shell:  # anything with .tracer / ._chaos duck-types
            tracer = tr
            _chaos = None

        report = forensic_report(Shell())
        assert "flight recorder [node-0]" in report
        assert "edge:vote" in report and "txn=t9" in report

    def test_report_without_tracer_points_at_tracespec(self):
        class Shell:
            tracer = None

        assert "tracing off" in forensic_report(Shell())


class TestCli:
    def test_trace_flag_writes_valid_byte_stable_trace(self, tmp_path, capsys):
        spec_path = tmp_path / "cell.json"
        spec_path.write_text(json.dumps(small_spec().to_dict()))
        out1, out2 = tmp_path / "t1.json", tmp_path / "t2.json"
        assert cli_main(["run", str(spec_path), "--trace", str(out1),
                         "--json"]) == 0
        assert cli_main(["run", str(spec_path), "--trace", str(out2),
                         "--json"]) == 0
        captured = capsys.readouterr()
        assert f"[trace] wrote {out1}" in captured.err
        blob1, blob2 = out1.read_bytes(), out2.read_bytes()
        assert blob1 == blob2
        assert validate_chrome_trace(json.loads(blob1)) == []

    def test_trace_rejected_for_figure_targets(self):
        with pytest.raises(SystemExit, match="--trace"):
            cli_main(["run", "fig7", "--trace", "out.json"])
