"""Tests for the invariant checker itself."""

import pytest

from repro.core.invariants import (
    InvariantViolation,
    check_invariants,
    check_view_consistency,
)


class FakeNode:
    def __init__(self, node_id, owned, frozen=False):
        self.node_id = node_id
        self._owned = list(owned)
        self.frozen = frozen

    def owned_granules(self):
        return self._owned


class TestCheckInvariants:
    def test_valid_snapshot_passes(self):
        check_invariants({0: 1, 1: 1, 2: 2}, 3, {1: "node-1", 2: "node-2"})

    def test_orphan_granule_fails(self):
        with pytest.raises(InvariantViolation, match="I3"):
            check_invariants({0: 1, 2: 2}, 3)

    def test_unknown_granule_fails(self):
        with pytest.raises(InvariantViolation, match="unknown"):
            check_invariants({0: 1, 1: 1, 7: 1}, 2)

    def test_non_member_owner_fails(self):
        with pytest.raises(InvariantViolation, match="I2"):
            check_invariants({0: 9}, 1, {1: "node-1"})

    def test_membership_optional(self):
        check_invariants({0: 9}, 1)  # no membership given: owner unchecked


class TestViewConsistency:
    def test_disjoint_views_pass(self):
        nodes = [FakeNode(1, [0, 1]), FakeNode(2, [2, 3])]
        check_view_consistency(nodes, 4)

    def test_dual_claim_fails(self):
        nodes = [FakeNode(1, [0, 1]), FakeNode(2, [1])]
        with pytest.raises(InvariantViolation, match="I4"):
            check_view_consistency(nodes, 2)

    def test_unclaimed_granule_fails(self):
        nodes = [FakeNode(1, [0])]
        with pytest.raises(InvariantViolation, match="I5"):
            check_view_consistency(nodes, 2)

    def test_frozen_nodes_ignored(self):
        nodes = [FakeNode(1, [0, 1]), FakeNode(2, [0], frozen=True)]
        check_view_consistency(nodes, 2)  # frozen claim doesn't count
