"""Executable TLA+ model: random-interleaving exploration of migration.

Mirrors the appendix's TLC configuration (3 nodes, 6 granules, 6 migrations)
and then pushes beyond it with hypothesis-driven exploration.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import MigrationModel, ModelViolation, Update


def tlc_model(num_migrations=6):
    return MigrationModel(nodes=[1, 2, 3], granules=[1, 2, 3, 4, 5, 6],
                          num_migrations=num_migrations)


class TestModelBasics:
    def test_initial_state_satisfies_invariants(self):
        tlc_model().check_invariants()

    def test_spec_assumption_enforced(self):
        with pytest.raises(ValueError):
            MigrationModel(nodes=[1, 2, 3], granules=[1, 2], num_migrations=1)

    def test_do_migrate_updates_both_views(self):
        m = tlc_model()
        src, g, dst = m.enabled_migrations()[0]
        m.do_migrate(src, g, dst)
        assert m.gtabs[src][g] == dst
        assert m.gtabs[dst][g] == dst
        assert len(m.glogs[src]) == 1 and len(m.glogs[dst]) == 1
        m.check_invariants()

    def test_do_migrate_precondition(self):
        m = tlc_model()
        g = 1
        owner = m.gtabs[1][g]
        non_owner = next(n for n in m.nodes if n != owner)
        with pytest.raises(ValueError):
            m.do_migrate(non_owner, g, owner)

    def test_refresh_propagates_update(self):
        m = tlc_model()
        src, g, dst = m.enabled_migrations()[0]
        m.do_migrate(src, g, dst)
        third = next(n for n in m.nodes if n not in (src, dst))
        refreshes = [(n, u) for n, u in m.enabled_refreshes() if n == third]
        assert refreshes
        node, update = refreshes[0]
        m.do_refresh(node, update)
        assert m.gtabs[third][g] == dst
        m.check_invariants()

    def test_refresh_precondition(self):
        m = tlc_model()
        bogus = Update(99, 1, 2, 3)
        m.glogs[2].append(bogus)
        if m.gtabs[1][1] != 2:
            with pytest.raises(ValueError):
                m.do_refresh(1, bogus)

    def test_migrations_bounded(self):
        m = tlc_model(num_migrations=2)
        rng = random.Random(0)
        while m.step(rng):
            pass
        assert m.num_done == 2

    def test_termination_reaches_converged_views(self):
        m = tlc_model()
        m.run(seed=3)
        assert m.terminated
        views = [tuple(sorted(m.gtabs[n].items())) for n in m.nodes]
        assert len(set(views)) == 1

    def test_dual_ownership_detected(self):
        m = tlc_model()
        g = 1
        m.gtabs[1][g] = 1
        m.gtabs[2][g] = 2
        with pytest.raises(ModelViolation):
            m.check_no_dual_ownership()

    def test_orphan_detected(self):
        m = tlc_model()
        g = 1
        for n in m.nodes:
            m.gtabs[n][g] = 0  # nobody claims it
        with pytest.raises(ModelViolation):
            m.check_has_one_ownership()


class TestTlcConfiguration:
    """The appendix's exact model-checking inputs, many random traces."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_traces_hold_invariants(self, seed):
        m = tlc_model()
        steps = m.run(seed=seed, check_each_step=True)
        assert steps >= 6  # at least the six migrations happened
        assert m.terminated


class TestHypothesisExploration:
    @settings(max_examples=40, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=5),
        granules_per_node=st.integers(min_value=1, max_value=4),
        migrations=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_invariants_hold_for_arbitrary_configs(
        self, n_nodes, granules_per_node, migrations, seed
    ):
        nodes = list(range(1, n_nodes + 1))
        granules = list(range(n_nodes * granules_per_node))
        m = MigrationModel(nodes, granules, migrations)
        m.run(seed=seed, check_each_step=True)
        assert m.terminated
