"""Lease backend: LeaseTable properties, CAS races, seeded replay.

Satellite suite for the lease/TTL coordination tentpole:

- a hypothesis property test driving :class:`repro.coord.lease.LeaseTable`
  against an independently written reference model, asserting the
  exactly-one-holder invariant — validity intervals of *different* holders
  of one lease never overlap, and an expired lease is granted to exactly
  the first claimant;
- an end-to-end race: several live nodes CAS-acquire the same expired
  lease through the RPC service in the same instant; the serialized leader
  pipeline lets exactly one win;
- bit-identical seeded replay of a full lease-mode crash/failover run —
  the backend introduces no hidden nondeterminism (it is ``hash()``-free,
  unlike fdb's salted shard map).
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coord.lease import LEASE_PREFIX, LeaseTable, lease_path
from repro.core.failure import LeaseFailureDetector
from tests.conftest import make_cluster
from tests.test_workload_client import start_clients

settings.register_profile(
    "ci", max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "default", max_examples=100, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

# --- property test: LeaseTable vs reference model -------------------------

NAMES = (lease_path(0), lease_path(1), "/lease/other")

#: One program step: (op, name, holder, ttl, dt).  Time only moves forward
#: (dt >= 0), mirroring the simulator clock the service applies ops at.
STEPS = st.tuples(
    st.sampled_from(("acquire", "renew", "release")),
    st.sampled_from(NAMES),
    st.integers(min_value=0, max_value=3),
    st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class ReferenceModel:
    """Spec-as-code for the lease semantics, written interval-first.

    Instead of mirroring the dict implementation, the model records every
    holder's validity interval ``[start, end)`` per lease; the table's
    observable results must match what the intervals imply, and the
    intervals themselves must never overlap across holders.
    """

    def __init__(self):
        #: name -> list of (holder, start, end); the last entry is current.
        self.intervals = {}
        #: Intervals closed by an explicit release (the lease is retired, so
        #: a later renew by the old holder must reject with holder=None).
        self.closed = []

    def _current(self, name, now):
        spans = self.intervals.get(name)
        if not spans:
            return None
        holder, _start, end = spans[-1]
        return (holder, end) if end > now else None

    def _holder_record(self, name):
        spans = self.intervals.get(name)
        return spans[-1] if spans else None

    def acquire(self, name, holder, ttl, now):
        live = self._current(name, now)
        if live is not None and live[0] != holder:
            return False, live[0], live[1]
        spans = self.intervals.setdefault(name, [])
        if spans and spans[-1][0] == holder:
            # Refresh: extend (or re-open) the holder's own interval.
            spans[-1] = (holder, spans[-1][1], now + ttl)
        else:
            spans.append((holder, now, now + ttl))
        return True, holder, now + ttl

    def renew(self, name, holder, ttl, now):
        record = self._holder_record(name)
        if record is None or record[0] != holder:
            return False, record[0] if record else None
        spans = self.intervals[name]
        spans[-1] = (holder, record[1], now + ttl)
        return True, holder

    def release(self, name, holder, now):
        record = self._holder_record(name)
        if record is None or record[0] != holder:
            return False
        # Close the interval at the release instant and retire the lease.
        spans = self.intervals.pop(name)
        spans[-1] = (holder, record[1], min(record[2], now))
        self.closed.append((name, spans))
        return True

    def assert_no_overlap(self):
        """Exactly-one-holder: cross-holder intervals never overlap."""
        histories = list(self.intervals.items()) + self.closed
        for name, spans in histories:
            for (h1, _s1, e1), (h2, s2, _e2) in zip(spans, spans[1:]):
                if h1 == h2:
                    continue
                assert e1 <= s2, (
                    f"{name}: holder {h1} valid until {e1} overlaps "
                    f"holder {h2} from {s2}"
                )


class TestLeaseTableProperties:
    @given(steps=st.lists(STEPS, min_size=1, max_size=60))
    def test_table_matches_reference_model(self, steps):
        table = LeaseTable()
        model = ReferenceModel()
        now = 0.0
        for op, name, holder, ttl, dt in steps:
            now += dt
            if op == "acquire":
                got = table.acquire(name, holder, ttl, now)
                want = model.acquire(name, holder, ttl, now)
            elif op == "renew":
                got = table.renew(name, holder, ttl, now)
                want = model.renew(name, holder, ttl, now)
            else:
                got = table.release(name, holder)
                want = model.release(name, holder, now)
            assert got == want, f"{op}({name}, {holder}) at t={now}"
            model.assert_no_overlap()
        # The table's final state agrees with the model's open intervals.
        for name, (holder, expires) in table.snapshot().items():
            record = model._holder_record(name)
            assert record is not None and record[0] == holder
            assert record[2] == expires

    @given(
        ttl=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        gap=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    def test_expiry_boundary_is_half_open(self, ttl, gap):
        """A lease granted at t with ttl is dead at exactly t+ttl (>= not >),
        so back-to-back holders' intervals are [t, t+ttl) half-open."""
        table = LeaseTable()
        granted, *_ = table.acquire("/lease/x", 1, ttl, 0.0)
        assert granted
        at = ttl + gap
        granted, holder, _ = table.acquire("/lease/x", 2, 9.9, at)
        assert granted and holder == 2

    def test_renew_after_takeover_rejects_with_new_holder(self):
        table = LeaseTable()
        table.acquire("/lease/x", 1, 1.0, 0.0)
        table.acquire("/lease/x", 2, 1.0, 2.0)  # expired, successor takes it
        ok, holder = table.renew("/lease/x", 1, 1.0, 2.1)
        assert not ok and holder == 2  # the fencing signal


# --- end-to-end: CAS race through the RPC service -------------------------

class TestLeaseRace:
    def test_exactly_one_claimant_wins_expired_lease(self):
        cluster = make_cluster("lease", num_nodes=3)
        cluster.run(until=0.05)
        name = "/lease/contested"
        # Plant an already-expired lease held by a phantom node 99.
        cluster.service.table.leases[name] = (99, 0.01)
        outcomes = {}

        def racer(nid):
            node = cluster.nodes[nid]
            result = yield from node.runtime.client.acquire_lease(
                node, name, nid, 1.0
            )
            outcomes[nid] = result

        for nid in cluster.live_node_ids():
            cluster.sim.spawn(racer(nid), name=f"racer:{nid}")
        cluster.run(until=1.0)
        assert set(outcomes) == set(cluster.live_node_ids())
        winners = [nid for nid, (granted, *_rest) in outcomes.items() if granted]
        assert len(winners) == 1
        losers = [nid for nid in outcomes if nid not in winners]
        # Every loser was told who won and when that grant expires.
        for nid in losers:
            _granted, holder, expires = outcomes[nid]
            assert holder == winners[0]
            assert expires > cluster.sim.now - 1.0
        assert cluster.service.acquires_granted == 1
        assert cluster.service.acquires_rejected == len(losers)


# --- bit-identical seeded replay ------------------------------------------

def _lease_crash_run(seed):
    """One lease-mode crash/failover run; returns a full behaviour digest."""
    cluster = make_cluster(
        "lease", num_nodes=3, num_keys=2048, keys_per_granule=64,
        seed=seed, failure_detection=True,
    )
    cluster.run(until=0.05)
    _router, clients = start_clients(
        cluster, count=4, seed=seed, incr_fraction=0.2, remote_fraction=0.5
    )
    cluster.run(until=1.0)
    cluster.fail_node(1)
    cluster.run(until=6.0)
    for c in clients:
        c.stop()
    cluster.settle(1.5)
    stats = cluster.failure_detection_stats()
    return {
        "now": cluster.sim.now,
        "committed": cluster.metrics.total_committed,
        "aborted": cluster.metrics.total_aborted,
        "migrations": cluster.metrics.total_migrations,
        "migration_buckets": tuple(sorted(cluster.metrics.migrations.items())),
        "failovers": tuple(cluster.metrics.failovers),
        "stats": tuple(sorted(stats.items())),
        "leases": tuple(sorted(cluster.service.table.snapshot(LEASE_PREFIX).items())),
        "renews": cluster.service.renews_served,
    }


class TestSeededReplay:
    def test_lease_failover_replays_bit_identically(self):
        first = _lease_crash_run(seed=5)
        second = _lease_crash_run(seed=5)
        assert first == second
        # And the run was non-vacuous: the expiry detector actually fenced
        # the dead node and moved its granules.
        assert first["failovers"], "no failover ran"
        assert first["migrations"], "no granules migrated"
        assert first["stats"] != ()

    def test_lease_detector_counters_fire(self):
        """The detectors report the renewal traffic fig7's column reads."""
        cluster = make_cluster(
            "lease", num_nodes=3, failure_detection=True, seed=5
        )
        cluster.run(until=2.0)
        stats = cluster.failure_detection_stats()
        assert stats["renewal_rpcs"] > 0
        assert stats["failovers_started"] == 0
        assert stats["first_failover_s"] is None
        assert all(
            isinstance(d, LeaseFailureDetector)
            for d in cluster.detectors.values()
        )
