"""Tests for group commit batching against a live single-node cluster."""

import pytest

from repro.storage.log import RecordKind
from tests.conftest import make_cluster, run_gen


@pytest.fixture
def single():
    cluster = make_cluster("marlin", num_nodes=1)
    cluster.run(until=0.05)
    return cluster


def submit_many(node, count):
    futs = [
        node.committer.submit(f"t{i}", RecordKind.COMMIT_DATA, ())
        for i in range(count)
    ]
    return futs


class TestGroupCommit:
    def test_single_submit_commits(self, single):
        node = single.nodes[0]
        fut = node.committer.submit("t1", RecordKind.COMMIT_DATA, ())
        ok, lsn = single.sim.run_until(fut)
        assert ok
        assert node.lsn_tracker[node.glog] == lsn

    def test_concurrent_submits_batch(self, single):
        node = single.nodes[0]
        before = node.committer.batches_flushed
        futs = submit_many(node, 10)
        single.run(until=single.sim.now + 0.1)
        assert all(f.result().ok for f in futs)
        flushed = node.committer.batches_flushed - before
        # 10 records needed far fewer flush RPCs than 10.
        assert flushed < 10
        assert node.committer.records_flushed >= 10

    def test_all_records_durable_in_order(self, single):
        node = single.nodes[0]
        log = single.storages[node.region].log(node.glog)
        base = log.end_lsn
        submit_many(node, 20)
        single.run(until=single.sim.now + 0.2)
        txns = [r.txn_id for r in log.records[base:]]
        assert txns == [f"t{i}" for i in range(20)]

    def test_cas_failure_fails_whole_batch(self, single):
        node = single.nodes[0]
        log = single.storages[node.region].log(node.glog)
        # Simulate a cross-node append: someone else advances the log.
        log.append("intruder", RecordKind.COMMIT_DATA, ())
        futs = submit_many(node, 5)
        single.run(until=single.sim.now + 0.1)
        results = [f.result() for f in futs]
        assert not any(ok for ok, _lsn in results)
        # Tracker was refreshed to the current LSN for retry.
        assert node.lsn_tracker[node.glog] == log.end_lsn
        assert node.committer.cas_failures >= 1

    def test_recovers_after_cas_failure(self, single):
        node = single.nodes[0]
        log = single.storages[node.region].log(node.glog)
        log.append("intruder", RecordKind.COMMIT_DATA, ())
        fut1 = node.committer.submit("t1", RecordKind.COMMIT_DATA, ())
        single.run(until=single.sim.now + 0.05)
        assert not fut1.result().ok
        fut2 = node.committer.submit("t2", RecordKind.COMMIT_DATA, ())
        ok, _ = single.sim.run_until(fut2)
        assert ok

    def test_stop_fails_pending(self, single):
        node = single.nodes[0]
        fut = node.committer.submit("t1", RecordKind.COMMIT_DATA, ())
        node.committer.stop()
        single.run(until=single.sim.now + 0.05)
        assert fut.done

    def test_max_batch_respected(self, single):
        node = single.nodes[0]
        node.committer.max_batch = 4
        submit_many(node, 12)
        single.run(until=single.sim.now + 0.2)
        assert node.committer.records_flushed >= 12
        assert node.committer.batches_flushed >= 3
