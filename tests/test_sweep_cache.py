"""Content-addressed sweep result cache: keys, hits, corruption, parity.

The contract (see ``repro/experiments/cache.py``): a cell result is keyed by
the SHA-256 of its canonical JSON spec — seed included — plus the code
epoch; a warm run returns summaries *bit-identical* to a cold run; serial
and pool execution share the same cache entries (the stored artifact is the
worker-shipped ``PortableRunResult`` pickle either way); corrupt entries and
epoch bumps degrade to misses, never to wrong results; failures are never
cached.
"""

import multiprocessing as mp
import pickle

import pytest

from repro.experiments.cache import CACHE_EPOCH, ResultCache, resolve_cache
from repro.experiments.parallel import (
    CellFailure,
    PortableRunResult,
    ProcessPoolRunner,
    run_cells,
)
from repro.experiments.spec import (
    ScenarioSpec,
    Sweep,
    TopologySpec,
    WorkloadSpec,
)

HAS_FORK = "fork" in mp.get_all_start_methods()

SEED = 13


def small_base(seed: int = SEED) -> ScenarioSpec:
    """A cheap but non-trivial cell: clients commit real transactions."""
    return ScenarioSpec(
        name="cache-cell",
        topology=TopologySpec(nodes=2),
        workload=WorkloadSpec(kind="ycsb", clients=2, granules=16),
        seed=seed,
        duration=0.6,
        warmup=0.05,
    )


def seed_sweep(seeds=(SEED, SEED + 1)) -> Sweep:
    return Sweep(small_base(), {"seed": list(seeds)})


class TestKeys:
    def test_key_is_stable_and_content_addressed(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = small_base(), small_base()
        assert cache.key(a) == cache.key(b)
        assert cache.key(a) != cache.key(small_base(seed=SEED + 1))
        assert cache.key(a) != cache.key(a.with_(duration=0.7))

    def test_epoch_is_part_of_the_key(self, tmp_path):
        spec = small_base()
        assert (
            ResultCache(tmp_path, epoch=CACHE_EPOCH).key(spec)
            != ResultCache(tmp_path, epoch=CACHE_EPOCH + "-bumped").key(spec)
        )

    def test_resolve_cache(self, tmp_path):
        assert resolve_cache(None) is None
        cache = resolve_cache(tmp_path / "c")
        assert isinstance(cache, ResultCache)
        assert resolve_cache(cache) is cache
        assert (tmp_path / "c").is_dir()


class TestSerialCache:
    def test_cold_stores_then_warm_hits_bit_identical(self, tmp_path):
        sweep = seed_sweep()
        cache = ResultCache(tmp_path)
        cold = sweep.run(cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 2, "stores": 2}
        warm = sweep.run(cache=cache)
        assert cache.stats() == {"hits": 2, "misses": 2, "stores": 2}
        for (point, c), (wpoint, w) in zip(cold, warm):
            assert point == wpoint
            assert isinstance(w, PortableRunResult)
            assert w.summary() == c.summary()
            assert list(w.metrics._lat_values) == list(c.metrics._lat_values)

    def test_uncached_run_matches_cached_run(self, tmp_path):
        sweep = seed_sweep()
        plain = sweep.run()
        cached = sweep.run(cache=tmp_path)
        warm = sweep.run(cache=tmp_path)
        for (_p, a), (_p2, b), (_p3, c) in zip(plain, cached, warm):
            assert a.summary() == b.summary() == c.summary()

    def test_corrupt_entry_is_a_miss_and_is_repaired(self, tmp_path):
        sweep = seed_sweep()
        cache = ResultCache(tmp_path)
        cold = sweep.run(cache=cache)
        # Corrupt the first expanded cell's entry (cells carry sweep-point
        # names, so the key comes from the expanded spec, not the base).
        first_cell = next(iter(sweep.expand()))[1]
        victim = cache.path_for(first_cell)
        victim.write_bytes(b"not a pickle")
        warm_cache = ResultCache(tmp_path)
        assert warm_cache.get(first_cell) is None  # corrupt -> miss, deleted
        assert not victim.exists()
        repaired = sweep.run(cache=warm_cache)
        assert warm_cache.stats()["hits"] == 1  # the untouched sibling
        assert victim.exists()  # the re-run cell was stored again
        assert [r.summary() for _p, r in repaired] == [
            r.summary() for _p, r in cold
        ]

    def test_wrong_object_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_base()
        cache.path_for(spec).write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get(spec) is None
        assert not cache.path_for(spec).exists()

    def test_epoch_bump_invalidates_everything(self, tmp_path):
        sweep = seed_sweep()
        sweep.run(cache=ResultCache(tmp_path))
        bumped = ResultCache(tmp_path, epoch=CACHE_EPOCH + "-bumped")
        sweep.run(cache=bumped)
        assert bumped.stats() == {"hits": 0, "misses": 2, "stores": 2}

    def test_custom_runner_rejects_cache(self, tmp_path):
        with pytest.raises(ValueError, match="custom `runner`"):
            seed_sweep().run(runner=lambda spec: None, cache=tmp_path)


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
class TestParallelCache:
    def test_parallel_cold_serial_warm_parity(self, tmp_path):
        sweep = seed_sweep()
        cache = ResultCache(tmp_path)
        cold = sweep.run(workers=2, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 2, "stores": 2}
        warm = sweep.run(cache=cache)  # serial read of pool-written entries
        assert cache.hits == 2
        plain = sweep.run()  # no cache at all: the ground truth
        for (_p, c), (_p2, w), (_p3, p) in zip(cold, warm, plain):
            assert c.summary() == w.summary() == p.summary()

    def test_pool_skips_cached_cells_entirely(self, tmp_path):
        specs = [spec for _point, spec in seed_sweep().expand()]
        cache = ResultCache(tmp_path)
        run_cells(specs, cache=cache)  # serial cold fill
        runner = ProcessPoolRunner(workers=2)
        results = runner.run(specs, cache=cache)
        assert cache.hits == 2
        assert all(isinstance(r, PortableRunResult) for r in results)

    def test_partial_fill_executes_only_missing_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = seed_sweep((SEED,))  # single-cell "interrupted" run
        [(_, first_result)] = first.run(cache=cache)
        resumed = seed_sweep((SEED, SEED + 1, SEED + 2))
        results = resumed.run(workers=2, cache=cache)
        assert cache.hits == 1  # only the already-finished cell
        assert cache.stores == 3
        assert results[0][1].summary() == first_result.summary()

    def test_failures_are_not_cached(self, tmp_path):
        from tests.test_parallel_sweep import POISONED

        cache = ResultCache(tmp_path)
        ok = small_base()
        results = ProcessPoolRunner(workers=2).run([ok, POISONED], cache=cache)
        assert isinstance(results[0], PortableRunResult)
        assert isinstance(results[1], CellFailure)
        assert cache.stores == 1
        assert cache.get(POISONED) is None  # still a miss next time
