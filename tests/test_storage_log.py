"""Unit tests for SharedLog and the conditional append primitive."""

import pytest

from repro.storage.log import AppendResult, Delete, Put, RecordKind, SharedLog


@pytest.fixture
def log():
    return SharedLog("glog-1")


class TestAppend:
    def test_empty_log(self, log):
        assert log.end_lsn == 0
        assert len(log) == 0

    def test_unconditional_append_advances_lsn(self, log):
        ok, lsn = log.append("t1", RecordKind.COMMIT_DATA, (Put("t", 1, "a"),))
        assert ok and lsn == 1
        ok, lsn = log.append("t2", RecordKind.COMMIT_DATA, (Put("t", 2, "b"),))
        assert ok and lsn == 2

    def test_conditional_append_success(self, log):
        result = log.append("t1", RecordKind.COMMIT_DATA, (), expected_lsn=0)
        assert result == AppendResult(True, 1)

    def test_conditional_append_stale_lsn_fails(self, log):
        log.append("t1", RecordKind.COMMIT_DATA, ())
        result = log.append("t2", RecordKind.COMMIT_DATA, (), expected_lsn=0)
        assert result == AppendResult(False, 1)
        assert len(log) == 1  # nothing appended

    def test_failure_returns_current_lsn_for_retry(self, log):
        """Paper: 'the newest LSN is returned to the caller, enabling it to
        retry the operation with an updated target_lsn'."""
        for i in range(3):
            log.append(f"t{i}", RecordKind.COMMIT_DATA, ())
        ok, current = log.append("late", RecordKind.COMMIT_DATA, (), expected_lsn=1)
        assert not ok and current == 3
        ok, new = log.append("late", RecordKind.COMMIT_DATA, (), expected_lsn=current)
        assert ok and new == 4

    def test_future_lsn_also_fails(self, log):
        result = log.append("t1", RecordKind.COMMIT_DATA, (), expected_lsn=5)
        assert result == AppendResult(False, 0)

    def test_failed_append_counter(self, log):
        log.append("t1", RecordKind.COMMIT_DATA, ())
        log.append("t2", RecordKind.COMMIT_DATA, (), expected_lsn=0)
        log.append("t3", RecordKind.COMMIT_DATA, (), expected_lsn=0)
        assert log.failed_appends == 2

    def test_record_lsn_is_position(self, log):
        log.append("t1", RecordKind.COMMIT_DATA, ())
        log.append("t2", RecordKind.VOTE_YES, ())
        assert log.record_at(1).txn_id == "t1"
        assert log.record_at(2).txn_id == "t2"
        assert log.record_at(2).lsn == 2

    def test_cas_serializes_interleaved_writers(self, log):
        """Two writers with the same expectation: exactly one wins (I1)."""
        r1 = log.append("a", RecordKind.COMMIT_DATA, (), expected_lsn=0)
        r2 = log.append("b", RecordKind.COMMIT_DATA, (), expected_lsn=0)
        assert r1.ok and not r2.ok
        assert log.record_at(1).txn_id == "a"


class TestReads:
    def test_read_from_zero_returns_all(self, log):
        for i in range(3):
            log.append(f"t{i}", RecordKind.COMMIT_DATA, ())
        assert [r.txn_id for r in log.read_from(0)] == ["t0", "t1", "t2"]

    def test_read_from_midpoint(self, log):
        for i in range(5):
            log.append(f"t{i}", RecordKind.COMMIT_DATA, ())
        assert [r.txn_id for r in log.read_from(3)] == ["t3", "t4"]

    def test_read_from_end_is_empty(self, log):
        log.append("t", RecordKind.COMMIT_DATA, ())
        assert log.read_from(1) == []

    def test_read_from_negative_clamps(self, log):
        log.append("t", RecordKind.COMMIT_DATA, ())
        assert len(log.read_from(-5)) == 1


class TestSubscription:
    def test_listener_sees_appends_in_order(self, log):
        seen = []
        log.subscribe(lambda r: seen.append(r.lsn))
        for i in range(3):
            log.append(f"t{i}", RecordKind.COMMIT_DATA, ())
        assert seen == [1, 2, 3]

    def test_listener_not_called_on_failed_cas(self, log):
        seen = []
        log.subscribe(lambda r: seen.append(r.lsn))
        log.append("t", RecordKind.COMMIT_DATA, (), expected_lsn=99)
        assert seen == []


class TestTxnOutcome:
    def test_no_decision_is_none(self, log):
        log.append("t1", RecordKind.VOTE_YES, ())
        assert log.txn_outcome("t1") is None

    def test_commit_decision(self, log):
        log.append("t1", RecordKind.VOTE_YES, ())
        log.append("t1", RecordKind.DECISION_COMMIT, ())
        assert log.txn_outcome("t1") is True

    def test_abort_decision(self, log):
        log.append("t1", RecordKind.VOTE_YES, ())
        log.append("t1", RecordKind.DECISION_ABORT, ())
        assert log.txn_outcome("t1") is False

    def test_unrelated_txn_ignored(self, log):
        log.append("t2", RecordKind.DECISION_COMMIT, ())
        assert log.txn_outcome("t1") is None


class TestEntries:
    def test_put_and_delete_are_frozen(self):
        put = Put("t", 1, "v")
        with pytest.raises(Exception):
            put.value = "other"
        delete = Delete("t", 1)
        with pytest.raises(Exception):
            delete.key = 2

    def test_entries_stored_as_tuple(self, log):
        log.append("t", RecordKind.COMMIT_DATA, [Put("t", 1, "a")])
        assert isinstance(log.record_at(1).entries, tuple)
