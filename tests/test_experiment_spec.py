"""Spec API tests: JSON round-trips, sweeps, runner parity, probes, CLI.

The parity goldens were captured on the pre-redesign harness (commit before
the spec port) at seed 11; the spec-backed runner must reproduce them
bit-identically — same event order, same RNG draws, same metrics.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.chaos import rolling_partition
from repro.engine.node import NodeParams
from repro.experiments.family import run_family
from repro.experiments import fig14, fig15
from repro.experiments.goldens import SPEC_PARITY_GOLDENS
from repro.experiments.harness import start_clients
from repro.experiments.runner import run_spec
from repro.experiments.spec import (
    FaultSpec,
    PhaseSpec,
    ProbeSpec,
    ScenarioSpec,
    Sweep,
    TopologySpec,
    WorkloadSpec,
    scale_out_spec,
)
from tests.conftest import make_cluster

SEED = 11


def roundtrip(spec_cls, instance):
    data = instance.to_dict()
    # Must survive actual JSON encoding, not just dict copying.
    decoded = json.loads(json.dumps(data))
    rebuilt = spec_cls.from_dict(decoded)
    assert rebuilt == instance
    assert rebuilt.to_dict() == data
    return rebuilt


class TestSpecRoundTrip:
    def test_topology(self):
        roundtrip(
            TopologySpec,
            TopologySpec(
                nodes=8,
                coordination="zk-large",
                regions=["us-west", "asia-east"],
                home_region="us-west",
                node_params="default",
                node_param_overrides={"cache_pages": 64, "vcpus": 2},
                storage_append_latency=0.015,
                provision_delay=1.0,
            ),
        )

    def test_workload(self):
        roundtrip(
            WorkloadSpec,
            WorkloadSpec(
                kind="tpcc", clients=24, granules=512, bind_to_nodes=[0, 2],
                client_seed_factor=31,
            ),
        )

    def test_phase(self):
        roundtrip(
            PhaseSpec,
            PhaseSpec(at=5.0, action="clients_start",
                      params={"pool": "burst", "bind_to_nodes": [0, 1]}),
        )

    def test_fault_from_schedule(self):
        schedule = rolling_partition([0, 1, 2], start=1.0, hold=0.5)
        spec = FaultSpec.from_schedule(
            schedule, failure_detection=True, detector_misses=2,
        )
        rebuilt = roundtrip(FaultSpec, spec)
        # The embedded schedule survives too (same declarative entries).
        assert rebuilt.to_schedule().to_spec() == schedule.to_spec()

    def test_probe(self):
        roundtrip(
            ProbeSpec,
            ProbeSpec(name="p99", kind="latency", threshold=0.5, pct=99.0,
                      window=[3.0, 10.0]),
        )

    def test_probe_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ProbeSpec(kind="vibes", threshold=1.0)

    def test_scenario_full_compose(self):
        spec = ScenarioSpec(
            name="everything",
            topology=TopologySpec(nodes=4, coordination="marlin"),
            workload=WorkloadSpec(kind="ycsb", clients=10, granules=256),
            phases=[
                PhaseSpec(at=2.0, action="scale_out", params={"count": 4}),
                PhaseSpec(at=6.0, action="clients_stop", params={"pool": "x"}),
            ],
            faults=FaultSpec.from_schedule(rolling_partition([0, 1])),
            probes=[ProbeSpec(name="floor", kind="throughput_floor", threshold=5.0)],
            seed=7,
            duration=12.0,
            check_invariants=False,
        )
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec

    def test_scenario_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            ScenarioSpec.from_dict({"name": "x", "granules": 5})

    def test_scale_out_spec_preserves_custom_node_params(self):
        params = NodeParams(vcpus=2, cache_pages=128)
        spec = scale_out_spec("marlin", node_params=params)
        assert spec.topology.resolve_node_params() == params
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.topology.resolve_node_params() == params

    def test_figure_specs_roundtrip(self):
        """Every figure's spec builder emits JSON-serializable specs."""
        from repro.experiments import fig7
        from repro.experiments.family import family_spec

        for spec in (
            family_spec("zk-small", scale=0.1),
            fig7.slo_spec("marlin", "partition", scale=0.1),
            fig14.dynamic_spec("marlin", scale=0.1),
            fig15.stress_spec("fdb", 8),
        ):
            assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestSweep:
    def _base(self):
        return scale_out_spec(
            "marlin", initial_nodes=2, added_nodes=2, clients=4,
            granules=64, scale_at=1.0, tail=1.0, failure_detection=True,
        )

    def test_expand_grid(self):
        sweep = Sweep(
            self._base(),
            {
                "topology.coordination": ["marlin", "zk-small"],
                "faults.detector_misses": [1, 3],
            },
        )
        cells = list(sweep.expand())
        assert len(sweep) == len(cells) == 4
        systems = [spec.topology.coordination for _pt, spec in cells]
        misses = [spec.faults.detector_misses for _pt, spec in cells]
        assert systems == ["marlin", "marlin", "zk-small", "zk-small"]
        assert misses == [1, 3, 1, 3]
        names = {spec.name for _pt, spec in cells}
        assert len(names) == 4  # distinct labels per cell

    def test_nested_list_axis(self):
        sweep = Sweep(self._base(), {"phases.0.params.count": [1, 2, 4]})
        counts = [
            spec.phases[0].params["count"] for _pt, spec in sweep.expand()
        ]
        assert counts == [1, 2, 4]

    def test_base_is_not_mutated(self):
        base = self._base()
        before = base.to_dict()
        list(Sweep(base, {"seed": [1, 2]}).expand())
        assert base.to_dict() == before

    def test_roundtrip(self):
        sweep = Sweep(self._base(), {"seed": [1, 2, 3]})
        rebuilt = Sweep.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert rebuilt == sweep

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Sweep(self._base(), {})
        with pytest.raises(ValueError):
            Sweep(self._base(), {"seed": []})


class TestRunnerParity:
    """Spec-backed runs must be bit-identical to the pre-redesign harness."""

    def test_family_parity(self):
        golden = SPEC_PARITY_GOLDENS["family"]
        results = run_family(
            scale=0.08, systems=tuple(golden), seed=SEED, clients=10
        )
        for system, expect in golden.items():
            m = results[system].metrics
            assert m.total_committed == expect["committed"]
            assert m.total_aborted == expect["aborted"]
            assert m.total_migrations == expect["migrations"]
            assert m.first_migration == expect["first_migration"]
            assert m.last_migration == expect["last_migration"]
            assert results[system].duration == expect["duration"]
            assert m.latency_stats()["mean"] == pytest.approx(
                expect["lat_mean"], rel=1e-12
            )

    def test_fig14_dynamic_parity(self):
        golden = SPEC_PARITY_GOLDENS["fig14"]
        result = fig14.run_dynamic("marlin", scale=0.12, seed=SEED)
        m = result.metrics
        assert result.duration == golden["duration"]
        assert m.total_committed == golden["committed"]
        assert m.total_aborted == golden["aborted"]
        assert m.total_migrations == golden["migrations"]
        assert m.first_migration == golden["first_migration"]
        assert m.last_migration == golden["last_migration"]
        assert len(result.scale_summaries) == 2

    def test_fig15_stress_parity(self):
        golden = SPEC_PARITY_GOLDENS["fig15"]
        cell = fig15.run_stress("marlin", 16, interval=1.5, duration=8.0, seed=SEED)
        assert cell["offered_tps"] == pytest.approx(
            golden["offered_tps"], rel=1e-12
        )
        assert cell["achieved_tps"] == golden["achieved_tps"]
        assert cell["efficiency"] == golden["efficiency"]
        assert cell["mean_latency_s"] == pytest.approx(
            golden["mean_latency_s"], rel=1e-12
        )
        assert cell["p99_latency_s"] == pytest.approx(
            golden["p99_latency_s"], rel=1e-12
        )
        assert cell["retries"] == golden["retries"]


class TestProbes:
    @pytest.fixture(scope="class")
    def probed_result(self):
        spec = scale_out_spec(
            "marlin", initial_nodes=2, added_nodes=2, clients=6,
            granules=128, scale_at=1.0, tail=2.0, seed=SEED,
        ).with_(probes=[
            ProbeSpec(name="lat", kind="latency", pct=99.0, threshold=10.0),
            ProbeSpec(name="lat_tight", kind="latency", pct=50.0, threshold=1e-9),
            ProbeSpec(name="floor", kind="throughput_floor", threshold=1.0),
            ProbeSpec(name="aborts", kind="abort_ceiling", threshold=1.0),
            ProbeSpec(name="avail", kind="unavailability", threshold=5.0),
        ])
        return run_spec(spec)

    def test_probe_verdicts(self, probed_result):
        by_name = {p.name: p for p in probed_result.probes}
        assert by_name["lat"].ok and by_name["lat"].value > 0
        assert not by_name["lat_tight"].ok  # real latency exceeds 1ns
        assert by_name["floor"].ok and by_name["floor"].value > 1.0
        assert by_name["aborts"].ok
        assert by_name["avail"].ok and by_name["avail"].value < 5.0
        assert not probed_result.slo_ok  # one failing probe flips the run

    def test_summary_is_json_ready(self, probed_result):
        payload = json.dumps(probed_result.summary())
        decoded = json.loads(payload)
        assert decoded["system"] == "marlin"
        assert len(decoded["probes"]) == 5


class TestStartClientsGuard:
    def test_zero_granule_node_skipped_with_warning(self):
        # 3 nodes, 2 granules: node 2 owns nothing.
        cluster = make_cluster("marlin", num_nodes=3, num_keys=128)
        cluster.run(until=0.05)
        with pytest.warns(UserWarning, match="owns no granules"):
            _router, clients = start_clients(cluster, 4)
        assert len(clients) == 4  # bound round-robin over nodes 0 and 1 only
        for c in clients:
            c.stop()

    def test_all_bound_nodes_empty_raises(self):
        cluster = make_cluster("marlin", num_nodes=3, num_keys=128)
        cluster.run(until=0.05)
        with pytest.warns(UserWarning):
            with pytest.raises(ValueError, match="owns any granule"):
                start_clients(cluster, 2, bind_to_nodes=[2])


class TestNewExperiments:
    def test_fig7_slo_under_chaos(self):
        from repro.experiments import fig7

        fig = fig7.run(
            scale=0.25, systems=("marlin",), seed=SEED,
            fault_kinds=("crash_restart",),
        )
        row = fig.rows[0]
        assert row["committed"] > 0
        assert row["failovers"] >= 1  # the crash was detected and failed over
        assert "unavail_s" in row and "p99_s" in row
        assert fig.findings["marlin_slo_ok_cells"] in (0, 1)

    def test_detector_sweep_gate_reduces_false_fencing(self):
        from repro.experiments import detector_sweep

        fig = detector_sweep.run(
            scale=0.5, seed=SEED, intervals=(0.25, 1.0), misses=(1, 4),
        )
        assert len(fig.rows) == 8  # 2 intervals x 2 misses x 2 gate settings
        # Nobody in the schedule dies, so every fencing is a false positive;
        # the suspicion-vote gate must not make things worse, and for this
        # seeded schedule it strictly helps.
        assert (
            fig.findings["false_fencings_gate"]
            < fig.findings["false_fencings_no_gate"]
        )
        # Aggressive detectors fence more than lenient ones overall.
        by_misses = {}
        for row in fig.rows:
            by_misses.setdefault(row["misses"], 0)
            by_misses[row["misses"]] += row["false_fencings"]
        assert by_misses[1] >= by_misses[4]

    def test_fixed_duration_rejects_overhanging_schedule(self):
        """A fault landing past the fixed horizon is a spec inconsistency,
        not something to skip silently."""
        spec = ScenarioSpec(
            topology=TopologySpec(nodes=2),
            workload=WorkloadSpec(clients=2, granules=32),
            faults=FaultSpec(schedule=[
                {"at": 4.5, "kind": "crash", "node": 1, "duration": 4.0},
            ]),
            duration=5.0,
        )
        with pytest.raises(ValueError, match="horizon"):
            run_spec(spec)

    def test_slo_spec_runs_from_json(self, tmp_path):
        """The new experiments are plain spec JSON: save, reload, run."""
        from repro.experiments import fig7

        spec = fig7.slo_spec("marlin", "storage_stall", scale=0.2, seed=SEED)
        path = tmp_path / "slo.json"
        spec.save(path)
        result = run_spec(ScenarioSpec.load(path))
        assert result.metrics.total_committed > 0
        assert {p.name for p in result.probes} == {
            "p99_latency", "throughput_floor", "abort_ceiling",
            "unavailability", "migration_p99",
        }


class TestCli:
    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        return subprocess.run(
            [sys.executable, "-m", "repro.experiments", *args],
            capture_output=True, text=True, timeout=300, cwd=root, env=env,
        )

    def test_list(self):
        proc = self._run("list", "--json")
        assert proc.returncode == 0, proc.stderr[-2000:]
        listing = json.loads(proc.stdout)
        assert "fig8" in listing and "detector_sweep" in listing and "fig7" in listing

    def test_run_figure_json(self):
        proc = self._run(
            "run", "fig8", "--scale", "0.05", "--clients", "6",
            "--systems", "marlin,zk-small", "--seed", "3", "--json",
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        payload = json.loads(proc.stdout)
        assert payload["figure"] == "Figure 8"
        assert {row["system"] for row in payload["rows"]} == {"Marlin", "S-ZK"}
        assert payload["findings"]["migration_tps_vs_S-ZK"] > 1.0

    def test_run_spec_file(self, tmp_path):
        spec = scale_out_spec(
            "marlin", initial_nodes=2, added_nodes=2, clients=4,
            granules=64, scale_at=1.0, tail=1.0, seed=5, name="cli-adhoc",
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        proc = self._run("run", str(path), "--json")
        assert proc.returncode == 0, proc.stderr[-2000:]
        summary = json.loads(proc.stdout)
        assert summary["name"] == "cli-adhoc"
        assert summary["committed"] > 0
        assert summary["migrations"] > 0

    def test_unknown_target_errors(self):
        proc = self._run("run", "fig99")
        assert proc.returncode != 0
        assert "fig99" in proc.stderr
