"""Unit tests for the NO_WAIT 2PL lock table."""

import pytest

from repro.engine.locks import LockConflict, LockTable


@pytest.fixture
def locks():
    return LockTable()


class TestSharedLocks:
    def test_multiple_readers(self, locks):
        locks.acquire("t1", "k", exclusive=False)
        locks.acquire("t2", "k", exclusive=False)
        assert locks.holders("k") == {"t1", "t2"}

    def test_reader_blocks_writer(self, locks):
        locks.acquire("t1", "k", exclusive=False)
        with pytest.raises(LockConflict):
            locks.acquire("t2", "k", exclusive=True)

    def test_reacquire_shared_is_noop(self, locks):
        locks.acquire("t1", "k", exclusive=False)
        locks.acquire("t1", "k", exclusive=False)
        assert locks.holders("k") == {"t1"}


class TestExclusiveLocks:
    def test_writer_blocks_writer(self, locks):
        locks.acquire("t1", "k", exclusive=True)
        with pytest.raises(LockConflict):
            locks.acquire("t2", "k", exclusive=True)

    def test_writer_blocks_reader(self, locks):
        locks.acquire("t1", "k", exclusive=True)
        with pytest.raises(LockConflict):
            locks.acquire("t2", "k", exclusive=False)

    def test_holder_reads_own_exclusive(self, locks):
        locks.acquire("t1", "k", exclusive=True)
        locks.acquire("t1", "k", exclusive=False)  # no conflict
        assert locks.is_exclusive("k")


class TestUpgrades:
    def test_sole_holder_upgrades(self, locks):
        locks.acquire("t1", "k", exclusive=False)
        locks.acquire("t1", "k", exclusive=True)
        assert locks.is_exclusive("k")

    def test_shared_holder_cannot_upgrade_with_others(self, locks):
        locks.acquire("t1", "k", exclusive=False)
        locks.acquire("t2", "k", exclusive=False)
        with pytest.raises(LockConflict):
            locks.acquire("t1", "k", exclusive=True)


class TestRelease:
    def test_release_all_frees_locks(self, locks):
        locks.acquire("t1", "a", exclusive=True)
        locks.acquire("t1", "b", exclusive=False)
        locks.release_all("t1")
        locks.acquire("t2", "a", exclusive=True)
        locks.acquire("t2", "b", exclusive=True)

    def test_release_one_shared_keeps_others(self, locks):
        locks.acquire("t1", "k", exclusive=False)
        locks.acquire("t2", "k", exclusive=False)
        locks.release_all("t1")
        assert locks.holders("k") == {"t2"}
        with pytest.raises(LockConflict):
            locks.acquire("t3", "k", exclusive=True)

    def test_release_unknown_txn_is_noop(self, locks):
        locks.release_all("ghost")

    def test_remaining_shared_lock_not_exclusive(self, locks):
        locks.acquire("t1", "k", exclusive=False)
        locks.acquire("t2", "k", exclusive=False)
        locks.release_all("t1")
        locks.acquire("t3", "k", exclusive=False)  # still shared

    def test_held_by(self, locks):
        locks.acquire("t1", "a", exclusive=True)
        locks.acquire("t1", "b", exclusive=False)
        assert locks.held_by("t1") == {"a", "b"}
        locks.release_all("t1")
        assert locks.held_by("t1") == set()


class TestNoWaitSemantics:
    def test_conflict_counter(self, locks):
        locks.acquire("t1", "k", exclusive=True)
        for _ in range(3):
            with pytest.raises(LockConflict):
                locks.acquire("t2", "k", exclusive=True)
        assert locks.conflicts == 3

    def test_conflict_carries_holders(self, locks):
        locks.acquire("t1", "k", exclusive=True)
        with pytest.raises(LockConflict) as excinfo:
            locks.acquire("t2", "k", exclusive=False)
        assert excinfo.value.holders == {"t1"}
        assert excinfo.value.key == "k"

    def test_failed_acquire_grants_nothing(self, locks):
        locks.acquire("t1", "k", exclusive=True)
        with pytest.raises(LockConflict):
            locks.acquire("t2", "k", exclusive=True)
        locks.release_all("t2")
        assert locks.holders("k") == {"t1"}

    def test_clear_drops_everything(self, locks):
        locks.acquire("t1", "a", exclusive=True)
        locks.clear()
        locks.acquire("t2", "a", exclusive=True)

    def test_tuple_keys(self, locks):
        """GTable entries lock ('gtable', gid) — distinct from record locks."""
        locks.acquire("t1", ("gtable", 5), exclusive=False)
        locks.acquire("t2", ("usertable", 5), exclusive=True)
        with pytest.raises(LockConflict):
            locks.acquire("t3", ("gtable", 5), exclusive=True)
