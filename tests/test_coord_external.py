"""Tests for ExternalRuntime: baselines behave like Marlin, via the service."""

import pytest

from repro.engine.node import GTABLE, TxnOp, TxnSpec
from repro.engine.txn import AbortReason, TxnAborted, WrongNodeError
from repro.sim.rpc import RemoteError
from repro.storage.log import RecordKind
from tests.conftest import make_cluster, run_gen


@pytest.fixture(params=["zk-small", "zk-large", "fdb"])
def baseline(request):
    cluster = make_cluster(request.param, num_nodes=2)
    cluster.run(until=0.05)
    return cluster


class TestUserPath:
    def test_user_txn_commits(self, baseline):
        node = baseline.nodes[0]
        granule = node.owned_granules()[0]
        key = baseline.gmap.granule(granule).lo
        spec = TxnSpec(ops=(TxnOp(True, "usertable", key),))
        result = baseline.sim.run_until(
            baseline.admin.call("node-0", "user_txn", spec, timeout=5.0)
        )
        assert result == {"status": "committed"}

    def test_wrong_node_redirect(self, baseline):
        foreign = baseline.nodes[1].owned_granules()[0]
        key = baseline.gmap.granule(foreign).lo
        spec = TxnSpec(ops=(TxnOp(True, "usertable", key),))
        with pytest.raises(RemoteError) as excinfo:
            baseline.sim.run_until(
                baseline.admin.call("node-0", "user_txn", spec, timeout=5.0)
            )
        assert isinstance(excinfo.value.cause, WrongNodeError)

    def test_appends_unconditional(self, baseline):
        """Baseline WALs never CAS-fail even after foreign appends."""
        node = baseline.nodes[0]
        log = baseline.storages[node.region].log(node.glog)
        log.append("someone", RecordKind.COMMIT_DATA, ())
        granule = node.owned_granules()[0]
        key = baseline.gmap.granule(granule).lo
        spec = TxnSpec(ops=(TxnOp(True, "usertable", key),))
        result = baseline.sim.run_until(
            baseline.admin.call("node-0", "user_txn", spec, timeout=5.0)
        )
        assert result == {"status": "committed"}


class TestMigration:
    def test_migration_updates_service(self, baseline):
        dst = baseline.nodes[0]
        granule = baseline.nodes[1].owned_granules()[0]
        committed = run_gen(baseline, dst.runtime.migrate(granule, 1, 0))
        assert committed
        assert dst.gtable[granule] == 0
        assert baseline.service.data[f"/granules/{granule}"] == 0

    def test_migration_latency_includes_service_round_trip(self, baseline):
        dst = baseline.nodes[0]
        granule = baseline.nodes[1].owned_granules()[0]
        t0 = baseline.sim.now
        run_gen(baseline, dst.runtime.migrate(granule, 1, 0))
        elapsed = baseline.sim.now - t0
        if baseline.config.coordination == "fdb":
            floor = baseline.service.config.commit_service
        else:
            floor = baseline.service.config.write_service
        assert elapsed > floor

    def test_wrong_source_aborts(self, baseline):
        dst = baseline.nodes[0]
        own = dst.owned_granules()[0]
        with pytest.raises(WrongNodeError):
            run_gen(baseline, dst.runtime.migrate(own, 1, 0))

    def test_lock_conflict_aborts(self, baseline):
        src = baseline.nodes[1]
        granule = src.owned_granules()[0]
        src.locks.acquire("user", (GTABLE, granule), False)
        with pytest.raises(TxnAborted) as excinfo:
            run_gen(baseline, baseline.nodes[0].runtime.migrate(granule, 1, 0))
        assert excinfo.value.reason is AbortReason.LOCK_CONFLICT


class TestMembership:
    def test_add_node_registers(self, baseline):
        node = baseline._make_node(9)
        node.start()
        node.gtable.update(baseline.assignment_from_views())
        ok = run_gen(baseline, node.runtime.add_node())
        assert ok
        assert baseline.service.data["/members/9"] == "node-9"
        assert node.mtable.keys() >= {0, 1, 9}

    def test_remove_node_unregisters(self, baseline):
        ok = run_gen(baseline, baseline.nodes[0].runtime.remove_node(1))
        assert ok
        assert "/members/1" not in baseline.service.data

    def test_scan_ownership(self, baseline):
        result = run_gen(baseline, baseline.nodes[0].runtime.scan_ownership())
        assert len(result) == baseline.gmap.num_granules

    def test_recover_granules_flips_entries(self, baseline):
        granules = baseline.nodes[1].owned_granules()[:3]
        baseline.fail_node(1)
        taken = run_gen(
            baseline, baseline.nodes[0].runtime.recover_granules(1, granules)
        )
        assert taken == granules
        for g in granules:
            assert baseline.service.data[f"/granules/{g}"] == 0


class TestServiceOutageLiveness:
    """ROADMAP liveness item: a reconfiguration in flight when the service
    endpoint partitions away must stall, not hang — the bounded
    request timeout + retry on the service session (``_ServiceClient``)
    resumes it once the partition heals."""

    @pytest.mark.parametrize(
        "system,service", [("zk-small", "zk"), ("fdb", "fdb")]
    )
    def test_reconfig_in_flight_completes_after_outage(self, system, service):
        from repro.chaos import coordination_outage

        cluster = make_cluster(system, num_nodes=2, seed=11)
        cluster.run(until=0.5)
        # The outage lands while the scale-out below is mid-flight and cuts
        # the service off from every node, including the joining node 2.
        schedule = coordination_outage(
            [0, 1, 2], at=0.6, duration=2.0, service=service
        )
        cluster.chaos.run_schedule(schedule)
        proc = cluster.sim.spawn(
            cluster.scale_out(1), name="scale-through-outage", daemon=True
        )
        # Pre-fix this waits forever on a dropped service reply and the
        # run_until limit trips; post-fix the reconfiguration rides the
        # outage out on retries and completes shortly after the heal.
        summary = cluster.sim.run_until(proc.result, limit=30.0)
        assert summary["migrated"] > 0
        assert cluster.sim.now > 2.6  # finished only after the heal at t=2.6
        assert 2 in cluster.live_node_ids()
        # The service's authoritative ownership map caught up with the views.
        owned_by_2 = set(cluster.nodes[2].owned_granules())
        service_map = {
            int(path.rsplit("/", 1)[-1]): owner
            for path, owner in cluster.service.data.items()
            if path.startswith("/granules/")
        }
        assert owned_by_2 == {
            g for g, owner in service_map.items() if owner == 2
        }

    def test_retries_are_bounded_when_configured(self):
        """With ``max_retries`` set, a never-healing outage surfaces
        RpcTimeout instead of retrying forever."""
        from repro.chaos import coordination_outage
        from repro.sim.rpc import RpcTimeout

        cluster = make_cluster("zk-small", num_nodes=2, seed=11)
        runtime = cluster.nodes[0].runtime
        runtime.client.request_timeout = 0.2
        runtime.client.retry_backoff = 0.05
        runtime.client.max_retries = 3
        cluster.run(until=0.5)
        schedule = coordination_outage([0, 1], at=0.6, duration=3600.0)
        cluster.chaos.run_schedule(schedule)
        cluster.run(until=0.7)
        with pytest.raises(RpcTimeout):
            run_gen(cluster, runtime.client.scan_members(cluster.nodes[0]))
