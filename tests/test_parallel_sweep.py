"""Parallel sweep executor: parity, failure semantics, probes, validation.

The load-bearing guarantee is the first class: a seeded sweep run through
the process pool is *bit-identical* to the serial path — same committed
counts, same packed latency stream, same cost report, same summaries —
because workers re-hydrate the exact JSON-round-tripped spec and run it on
a fresh simulator.  The failure classes pin the "no hung grids" contract:
a raising cell, a dying worker process, and a wedged cell all become
structured :class:`CellFailure` entries while the rest of the grid
completes.
"""

import math
import multiprocessing as mp
import os
import time

import pytest

from repro.experiments.parallel import (
    CellFailure,
    PortableRunResult,
    ProcessPoolRunner,
    run_cells,
)
from repro.experiments.runner import register_action, run_spec
from repro.experiments.spec import (
    FaultSpec,
    PhaseSpec,
    ProbeSpec,
    ScenarioSpec,
    Sweep,
    TopologySpec,
    WorkloadSpec,
    scale_out_spec,
)

SEED = 11

HAS_FORK = "fork" in mp.get_all_start_methods()


def small_base(seed: int = SEED) -> ScenarioSpec:
    return scale_out_spec(
        "marlin", initial_nodes=2, added_nodes=2, clients=4,
        granules=64, scale_at=1.0, tail=1.0, seed=seed,
    )


def tiny_spec(name: str, phases=(), tail: float = 0.1) -> ScenarioSpec:
    """A clientless 2-node scenario: the cheapest runnable cell."""
    return ScenarioSpec(
        name=name,
        topology=TopologySpec(nodes=2),
        workload=WorkloadSpec(kind="none", granules=32),
        phases=list(phases),
        tail=tail,
    )


POISONED = ScenarioSpec(
    name="poisoned",
    topology=TopologySpec(nodes=2),
    workload=WorkloadSpec(clients=2, granules=32),
    # Horizon (8.5s) overhangs the fixed duration: run_spec raises.
    faults=FaultSpec(
        schedule=[{"at": 4.5, "kind": "crash", "node": 1, "duration": 4.0}]
    ),
    duration=5.0,
)


# Test-only phase actions for the crash/timeout paths.  Registered at import
# time, so fork-started workers inherit them.
@register_action("test_exit_hard")
def _act_exit_hard(ctx) -> None:
    os._exit(17)


@register_action("test_block_forever")
def _act_block_forever(ctx, seconds: float = 120.0) -> None:
    time.sleep(seconds)


class TestParity:
    """Seeded parallel sweeps are bit-identical to serial."""

    def test_two_axis_sweep_bit_identical(self):
        sweep = Sweep(
            small_base(),
            {
                "topology.coordination": ["marlin", "zk-small"],
                "seed": [SEED, SEED + 1],
            },
        )
        serial = sweep.run()
        parallel = sweep.run(workers=4)
        assert [p for p, _r in serial] == [p for p, _r in parallel]
        for (point, s), (_point, p) in zip(serial, parallel):
            assert isinstance(p, PortableRunResult), point
            ms, mpar = s.metrics, p.metrics
            # The full latency stream, not just aggregates: bit-identical.
            assert list(ms._lat_values) == list(mpar._lat_values)
            assert dict(ms.committed) == dict(mpar.committed)
            assert dict(ms.aborted) == dict(mpar.aborted)
            assert ms.failovers == mpar.failovers
            assert ms.first_migration == mpar.first_migration
            assert ms.last_migration == mpar.last_migration
            assert s.duration == p.duration
            assert s.cost == p.cost  # CostReport is a frozen dataclass
            assert s.scale_summaries == p.scale_summaries
            assert s.summary() == p.summary()

    def test_portable_result_series_match_serial(self):
        spec = small_base()
        serial = run_spec(spec)
        (portable,) = ProcessPoolRunner(workers=1).run([spec])
        assert portable.throughput_series() == serial.throughput_series()
        assert portable.latency_series(pct=99.0) == serial.latency_series(pct=99.0)
        assert portable.abort_series() == serial.abort_series()
        assert portable.migration_series() == serial.migration_series()
        assert portable.migration_duration == serial.migration_duration

    def test_deterministic_ordering_with_unbalanced_cells(self):
        # The first cell is by far the slowest; with completion-order keying
        # it would come back last.  Results must stay in input order.
        specs = [
            small_base().with_(name="slow"),
            tiny_spec("fast-a"),
            tiny_spec("fast-b"),
        ]
        results = ProcessPoolRunner(workers=3).run(specs)
        assert [r.spec.name for r in results] == ["slow", "fast-a", "fast-b"]


class TestFailureSemantics:
    def test_poisoned_cell_is_structured_error_and_grid_completes(self):
        results = run_cells(
            [small_base(), POISONED, small_base(seed=SEED + 1)], workers=2
        )
        failure = results[1]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "error"
        assert failure.error == "ValueError"
        assert "horizon" in failure.message
        assert failure.name == "poisoned"
        assert "run_spec" in failure.traceback
        # The rest of the grid completed normally.
        assert results[0].metrics.total_committed > 0
        assert results[2].metrics.total_committed > 0

    def test_sweep_run_keeps_structured_failures_in_grid_order(self):
        # One leg of the duration axis overhangs the fault schedule.
        base = POISONED.with_(name="sweep-poison")
        sweep = Sweep(base, {"duration": [5.0, 10.0]})
        results = sweep.run(workers=2)
        assert isinstance(results[0][1], CellFailure)
        assert results[1][1].metrics.total_committed > 0
        summaries = [r.summary() for _p, r in results]
        assert summaries[0]["failed"] is True
        assert "failed" not in summaries[1]

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_worker_death_is_structured_crash(self):
        crash = tiny_spec(
            "crasher", phases=[PhaseSpec(at=0.2, action="test_exit_hard")]
        )
        results = ProcessPoolRunner(workers=2, start_method="fork").run(
            [crash, small_base()]
        )
        failure = results[0]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "crash"
        assert failure.exitcode == 17
        assert results[1].metrics.total_committed > 0

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_wedged_cell_times_out_and_grid_completes(self):
        wedged = tiny_spec(
            "wedged", phases=[PhaseSpec(at=0.2, action="test_block_forever")]
        )
        runner = ProcessPoolRunner(workers=2, timeout=1.5, start_method="fork")
        t0 = time.monotonic()
        results = runner.run([wedged, small_base()])
        failure = results[0]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "timeout"
        assert "1.5" in failure.message
        assert results[1].metrics.total_committed > 0
        # The grid did not hang for the sleep's 120s.
        assert time.monotonic() - t0 < 60.0

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_crash_with_pending_cells_does_not_lose_them(self):
        # Regression: the crash handler used to re-feed the next pending
        # cell into the *dead* worker's queue, losing it and hanging the
        # grid.  One worker + a crash + two pending cells exercises exactly
        # that path.
        crash = tiny_spec(
            "crasher", phases=[PhaseSpec(at=0.2, action="test_exit_hard")]
        )
        results = ProcessPoolRunner(workers=1, start_method="fork").run(
            [crash, tiny_spec("after-a"), tiny_spec("after-b")]
        )
        assert results[0].kind == "crash"
        assert [r.spec.name for r in results[1:]] == ["after-a", "after-b"]

    @pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
    def test_timeout_with_pending_cells_does_not_lose_them(self):
        wedged = tiny_spec(
            "wedged", phases=[PhaseSpec(at=0.2, action="test_block_forever")]
        )
        runner = ProcessPoolRunner(workers=1, timeout=1.5, start_method="fork")
        results = runner.run([wedged, tiny_spec("after-a"), tiny_spec("after-b")])
        assert results[0].kind == "timeout"
        assert [r.spec.name for r in results[1:]] == ["after-a", "after-b"]

    def test_empty_and_single_cell(self):
        assert ProcessPoolRunner(workers=2).run([]) == []
        # run_cells forces serial for a single cell (real SpecRunResult).
        (only,) = run_cells([small_base()], workers=8)
        assert only.cluster is not None


class TestCliWorkersFlag:
    def test_single_spec_file_rejects_workers(self, tmp_path):
        from repro.experiments.__main__ import main

        path = tmp_path / "single.json"
        small_base().save(path)
        with pytest.raises(SystemExit, match="axes"):
            main(["run", str(path), "--workers", "2"])


class TestSweepValidation:
    def test_unknown_top_level_axis(self):
        with pytest.raises(ValueError, match="granules"):
            Sweep(small_base(), {"granules": [64, 128]})

    def test_unknown_nested_axis_names_path(self):
        with pytest.raises(ValueError, match=r"workload\.granule_count"):
            Sweep(small_base(), {"workload.granule_count": [64, 128]})

    def test_bad_list_index_axis(self):
        with pytest.raises(ValueError, match=r"phases\.3\.at"):
            Sweep(small_base(), {"phases.3.at": [1.0]})

    def test_overlapping_axes_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            Sweep(
                small_base(),
                {
                    "faults": [None],
                    "faults.detector_misses": [1, 2],
                },
            )

    def test_duplicate_axis_pairs_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Sweep(small_base(), [("seed", [1]), ("seed", [2])])

    def test_valid_axes_still_construct(self):
        sweep = Sweep(
            small_base(),
            {"faults.detector_misses": [1, 3], "phases.0.params.count": [1, 2]},
        )
        assert len(sweep) == 4

    def test_invalid_axis_value_rejected_at_construction(self):
        with pytest.raises(ValueError, match="workload.kind"):
            Sweep(small_base(), {"workload.kind": ["no-such-workload"]})

    def test_invalid_non_first_axis_value_also_rejected(self):
        # Regression: only values[0] used to be probed, letting a bad later
        # value through to fail deep inside expand().
        with pytest.raises(ValueError, match="no-such-workload"):
            Sweep(small_base(), {"workload.kind": ["ycsb", "no-such-workload"]})

    def test_custom_runner_plus_workers_rejected(self):
        sweep = Sweep(small_base(), {"seed": [1, 2]})
        with pytest.raises(ValueError, match="not both"):
            sweep.run(runner=lambda spec: None, workers=4)


class TestProbeExtensions:
    def test_probe_roundtrip_with_new_fields(self):
        probe = ProbeSpec(
            name="mig", kind="migration_latency", pct=95.0, threshold=1.5,
            window=[2.0, 9.0], every=1.0,
        )
        rebuilt = ProbeSpec.from_dict(probe.to_dict())
        assert rebuilt == probe
        assert rebuilt.every == 1.0
        assert rebuilt.kind == "migration_latency"

    def test_probe_rejects_nonpositive_every(self):
        with pytest.raises(ValueError, match="every"):
            ProbeSpec(kind="latency", threshold=1.0, every=0.0)

    @pytest.fixture(scope="class")
    def probed(self):
        spec = small_base().with_(probes=[
            ProbeSpec(name="p99_w", kind="latency", pct=99.0, threshold=10.0,
                      every=1.0),
            ProbeSpec(name="p99_tight_w", kind="latency", pct=99.0,
                      threshold=1e-9, every=1.0),
            ProbeSpec(name="floor_w", kind="throughput_floor", threshold=1.0,
                      every=1.0),
            ProbeSpec(name="mig", kind="migration_latency", pct=99.0,
                      threshold=60.0),
            ProbeSpec(name="mig_tight", kind="migration_latency", pct=50.0,
                      threshold=1e-12),
            ProbeSpec(name="plain", kind="abort_ceiling", threshold=1.0),
        ])
        return run_spec(spec)

    def test_series_probe_shape(self, probed):
        by_name = {p.name: p for p in probed.probes}
        series = by_name["p99_w"].series
        assert series is not None
        assert len(series) == math.ceil(probed.duration / 1.0)
        starts = [t for t, _v, _ok in series]
        assert starts == sorted(starts)
        assert all(isinstance(ok, bool) for _t, _v, ok in series)

    def test_violation_fraction_tracks_threshold(self, probed):
        by_name = {p.name: p for p in probed.probes}
        # Generous threshold: no window violates.
        assert by_name["p99_w"].violation_fraction == 0.0
        # 1 ns p99 ceiling: every window with samples violates.
        tight = by_name["p99_tight_w"]
        assert tight.violation_fraction > 0.0
        windows_with_samples = sum(1 for _t, v, _ok in tight.series if v > 0)
        violations = sum(1 for _t, _v, ok in tight.series if not ok)
        assert violations == windows_with_samples
        assert tight.violation_fraction == violations / len(tight.series)

    def test_migration_latency_probe(self, probed):
        by_name = {p.name: p for p in probed.probes}
        stats = probed.metrics.migration_latency_stats()
        assert probed.metrics.total_migrations > 0
        assert by_name["mig"].value == pytest.approx(stats["p99"])
        assert by_name["mig"].ok
        assert not by_name["mig_tight"].ok  # real migrations take real time

    def test_failover_recovery_records_migration_latency(self):
        # The control-plane SLO reads real recovery latency: a fig7 crash
        # cell's RecoveryMigrTxn batch records one migration per taken
        # granule.  (Every coordination mode runs a failure detector now —
        # the cross-system leg is asserted in tests/test_fig7_symmetry.py;
        # this cell pins the Marlin-side recording.)
        from repro.experiments import fig7

        result = run_spec(
            fig7.slo_spec("marlin", "crash_restart", scale=0.2, seed=SEED)
        )
        m = result.metrics
        assert len(m.failovers) >= 1
        assert len(m.migration_latencies) > 0
        probe = {p.name: p for p in result.probes}["migration_p99"]
        assert probe.value > 0.0
        assert probe.value == pytest.approx(m.migration_latency_stats()["p99"])

    def test_vacuous_migration_probe_reports_unmeasured(self):
        """Zero migrations -> migration_latency reports None, never 0.0.

        The fig7 footgun this pins: a baseline cell whose detector rides a
        fault out records no migrations; a vacuous 0.0 would read as 'met
        the SLO with instant migrations' and make the asymmetric comparison
        look symmetric.  'Unmeasured' must stay distinguishable from 'fast'.
        """
        spec = ScenarioSpec(
            name="vacuous-mig",
            topology=TopologySpec(nodes=2),
            workload=WorkloadSpec(kind="none", granules=32),
            probes=[
                ProbeSpec(name="mig", kind="migration_latency", pct=99.0,
                          threshold=2.0),
                ProbeSpec(name="mig_w", kind="migration_latency", pct=99.0,
                          threshold=2.0, every=1.0),
            ],
            tail=0.1,
        )
        result = run_spec(spec)
        assert result.metrics.total_migrations == 0
        by_name = {p.name: p for p in result.probes}
        for name in ("mig", "mig_w"):
            probe = by_name[name]
            assert probe.value is None, f"{name}: vacuous 0.0 leaked"
            assert probe.ok is True  # unmeasured, not violated
        # Windowed form: every window is unmeasured, so the violation
        # fraction is None ('nothing to judge'), not 0.0 ('all clean').
        windowed = by_name["mig_w"]
        assert windowed.series is not None
        assert all(v is None and ok for _t, v, ok in windowed.series)
        assert windowed.violation_fraction is None
        assert result.slo_ok

    def test_plain_probe_has_no_series(self, probed):
        by_name = {p.name: p for p in probed.probes}
        plain = by_name["plain"]
        assert plain.series is None and plain.violation_fraction is None
        assert "series" not in plain.to_dict()
        # Series probes serialize their windows.
        payload = by_name["p99_w"].to_dict()
        assert payload["violation_fraction"] == 0.0
        assert len(payload["series"]) == len(by_name["p99_w"].series)

    def test_series_survive_the_process_boundary(self):
        spec = small_base().with_(probes=[
            ProbeSpec(name="p99_w", kind="latency", pct=99.0, threshold=10.0,
                      every=1.0),
            ProbeSpec(name="mig", kind="migration_latency", pct=99.0,
                      threshold=60.0),
        ])
        serial = run_spec(spec)
        (portable,) = ProcessPoolRunner(workers=1).run([spec])
        assert [p.to_dict() for p in portable.probes] == [
            p.to_dict() for p in serial.probes
        ]
