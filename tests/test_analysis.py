"""detlint test suite: per-rule fixtures, waivers, CLI, baseline, meta.

Fixture snippets live in ``tests/analysis_fixtures/`` — deliberately buggy
code that must never be imported or collected (see the decoy test there and
``test_fixture_dir_is_never_collected``).  Each rule gets a positive fixture
(the rule fires), a negative fixture (the sanctioned idiom stays quiet), and
the waiver machinery is exercised separately.

The four historical bug classes the linter encodes (PR 7's process-global txn
counter, PR 6's id()-ordered object-set sweep, wall-clock reads inside seeded
runs, PR 4's pickled memo cache) each also get an inline minimal-repro test:
the rule must fire on the exact shape that bit us.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis.cli import main as cli_main
from repro.analysis.config import repo_relative, tags_for_path
from repro.analysis.framework import all_rules, analyze_paths, analyze_source

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).parent / "analysis_fixtures"

RULE_IDS = (
    "DET101",
    "DET102",
    "DET103",
    "DET104",
    "DET105",
    "DET106",
    "DET107",
    "DET108",
)


def lint_fixture(name):
    path = FIXTURES / name
    return analyze_source(
        path.read_text(encoding="utf-8"), path=path.as_posix()
    )


def fired(findings, rule_id):
    return [f for f in findings if f.rule == rule_id and not f.waived]


# -- rule registry -------------------------------------------------------------


def test_registry_is_complete_and_documented():
    rules = {r.id: r for r in all_rules()}
    for rid in RULE_IDS:
        assert rid in rules
        assert rules[rid].name
        assert rules[rid].doc
    # DET105 is the only advisory tier; everything else gates.
    for rid, rule in rules.items():
        expected = "advisory" if rid == "DET105" else "error"
        assert rule.severity == expected, rid


# -- per-rule fixtures ---------------------------------------------------------


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fires_on_positive_fixture(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_pos.py")
    hits = fired(findings, rule_id)
    assert hits, f"{rule_id} did not fire on its positive fixture"
    for f in hits:
        assert f.line > 0 and f.message and f.line_text
        if rule_id == "DET105":
            assert f.severity == "advisory" and not f.gates
        else:
            assert f.severity == "error" and f.gates


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_quiet_on_negative_fixture(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_neg.py")
    assert not fired(findings, rule_id), (
        f"{rule_id} false-positive on its negative fixture: "
        + "; ".join(f"{f.line}: {f.message}" for f in fired(findings, rule_id))
    )


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_negative_fixtures_are_fully_clean(rule_id):
    # Not just quiet for their own rule: the sanctioned idioms must not trip
    # any *other* gating rule either.
    findings = lint_fixture(f"{rule_id.lower()}_neg.py")
    gating = [f for f in findings if f.gates]
    assert not gating, [
        (f.rule, f.line, f.message) for f in gating
    ]


# -- historical bug classes (acceptance criterion: each fires on a minimal
# -- repro of the regression it encodes) ---------------------------------------


def test_det101_fires_on_pr7_global_txn_counter():
    source = (
        "import itertools\n"
        "_txn_counter = itertools.count(1)\n"
        "class TxnContext:\n"
        "    def __init__(self, node_id):\n"
        "        self.txn_id = (node_id, next(_txn_counter))\n"
    )
    findings = analyze_source(source, path="repro/engine/txn.py")
    assert fired(findings, "DET101")


def test_det102_fires_on_pr6_object_set_sweep():
    source = (
        "class RpcEndpoint:\n"
        "    def __init__(self):\n"
        "        self._live_processes = set()\n"
        "    def kill_all(self):\n"
        "        for proc in self._live_processes:\n"
        "            proc.kill()\n"
    )
    findings = analyze_source(source, path="repro/sim/rpc.py")
    assert fired(findings, "DET102")


def test_det103_fires_on_wall_clock_in_sim_code():
    source = "import time\n\ndef stamp(event):\n    event.at = time.time()\n"
    findings = analyze_source(source, path="repro/engine/node.py")
    assert fired(findings, "DET103")


def test_det106_fires_on_pr4_pickled_memo_cache():
    source = (
        "class MetricsCollector:\n"
        "    def __init__(self):\n"
        "        self.latencies = []\n"
        "        self._pct_cache = {}\n"
    )
    findings = analyze_source(source, path="repro/cluster/metrics.py")
    assert fired(findings, "DET106")


def test_det106_stays_quiet_once_getstate_drops_the_memo():
    source = (
        "class MetricsCollector:\n"
        "    def __init__(self):\n"
        "        self._pct_cache = {}\n"
        "    def __getstate__(self):\n"
        "        state = self.__dict__.copy()\n"
        "        state['_pct_cache'] = {}\n"
        "        return state\n"
    )
    findings = analyze_source(source, path="repro/cluster/metrics.py")
    assert not fired(findings, "DET106")


# -- scoping -------------------------------------------------------------------


def test_rules_respect_reachability_tags():
    # Wall clock is fine in tooling-classified files...
    source = "import time\nT0 = time.time()\n"
    assert not fired(
        analyze_source(source, path="repro/experiments/parallel.py"), "DET103"
    )
    # ...and fatal in sim-reachable ones.
    assert fired(
        analyze_source(source, path="repro/coord/marlin.py"), "DET103"
    )


def test_tags_for_path_classification():
    assert tags_for_path("src/repro/sim/core.py") == {"sim", "hot-path"}
    assert tags_for_path("src/repro/analysis/cli.py") == {"tooling"}
    assert tags_for_path("src/repro/experiments/parallel.py") == {
        "tooling",
        "pool-crossing",
    }
    assert tags_for_path("src/repro/experiments/runner.py") == {
        "sim",
        "pool-crossing",
    }
    assert tags_for_path("src/repro/cluster/metrics.py") == {
        "sim",
        "pool-crossing",
    }
    assert tags_for_path("src/repro/coord/marlin.py") == {"sim", "coord-core"}
    assert tags_for_path("tests/test_analysis.py") == {"tooling"}
    assert repo_relative("/abs/src/repro/sim/core.py") == "repro/sim/core.py"
    assert repo_relative("tests/conftest.py") is None


def test_scope_pragma_overrides_path_classification():
    source = "# detlint: scope=sim\nimport time\nT0 = time.time()\n"
    # Path says tooling; pragma forces sim, so DET103 fires.
    assert fired(analyze_source(source, path="tests/whatever.py"), "DET103")


def test_scope_pragma_rejects_unknown_tags():
    with pytest.raises(ValueError, match="unknown scope tag"):
        analyze_source("# detlint: scope=warp-drive\nX = 1\n")


# -- waivers -------------------------------------------------------------------


def test_waived_fixture_has_zero_gating_findings():
    findings = lint_fixture("waived_ok.py")
    assert findings, "fixture should still produce (waived) findings"
    assert not any(f.gates for f in findings)
    for f in findings:
        assert f.waived and f.waiver_reason, (f.rule, f.line)


def test_reasonless_and_unknown_waivers_are_det100_errors():
    findings = lint_fixture("waiver_missing_reason.py")
    det100 = fired(findings, "DET100")
    messages = " / ".join(f.message for f in det100)
    assert any("no reason" in m for m in (f.message for f in det100))
    assert "DET999" in messages  # the unknown-rule waiver is named
    # The reasonless waiver does not suppress: its DET101 still gates.
    assert any(f.rule == "DET101" and f.gates for f in findings)
    # The well-formed waiver on the last line does suppress its DET101.
    assert any(
        f.rule == "DET101" and f.waived and f.waiver_reason for f in findings
    )


def test_det100_itself_cannot_be_waived():
    source = (
        "# detlint: ok(DET100) — attempt to silence the hygiene rule\n"
        "# detlint: ok(DET101)\n"
    )
    findings = analyze_source(source, path="repro/sim/x.py")
    assert any(f.rule == "DET100" and f.gates for f in findings)


def test_trailing_and_standalone_waiver_placement():
    trailing = (
        "# detlint: scope=sim\n"
        "import itertools\n"
        "_c = itertools.count(1)  # detlint: ok(DET101) — fixture, never imported\n"
    )
    standalone = (
        "# detlint: scope=sim\n"
        "import itertools\n"
        "# detlint: ok(DET101) — fixture, never imported\n"
        "_c = itertools.count(1)\n"
    )
    for source in (trailing, standalone):
        findings = analyze_source(source, path="x.py")
        assert not any(f.gates for f in findings)
        assert any(f.rule == "DET101" and f.waived for f in findings)


def test_syntax_error_becomes_det000():
    findings = analyze_source("def broken(:\n", path="x.py")
    assert [f.rule for f in findings] == ["DET000"]
    assert findings[0].gates


# -- CLI -----------------------------------------------------------------------


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in RULE_IDS:
        assert rid in out


def test_cli_text_output_and_exit_code(capsys):
    rc = cli_main([str(FIXTURES / "det101_pos.py")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "DET101" in out and "[error]" in out
    assert "detlint:" in out.splitlines()[-1]

    rc = cli_main([str(FIXTURES / "det101_neg.py")])
    assert rc == 0


def test_cli_json_output_round_trips(capsys):
    rc = cli_main([str(FIXTURES / "det101_pos.py"), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["version"] == 1
    assert doc["counts"]["error"] >= 1
    det101 = [f for f in doc["findings"] if f["rule"] == "DET101"]
    assert det101
    for f in det101:
        assert f["path"].endswith("det101_pos.py")
        assert f["line"] >= 1 and f["severity"] == "error"


def test_cli_rule_selection(capsys):
    # Only DET103 requested; the DET101 fixture has no wall-clock reads.
    rc = cli_main([str(FIXTURES / "det101_pos.py"), "--rules", "DET103"])
    capsys.readouterr()
    assert rc == 0
    with pytest.raises(SystemExit):
        cli_main([str(FIXTURES / "det101_pos.py"), "--rules", "DET999"])


def test_cli_missing_path_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        cli_main(["no/such/dir"])
    capsys.readouterr()
    assert exc.value.code == 2


def test_cli_baseline_round_trip(tmp_path, capsys):
    snippet = tmp_path / "mod.py"
    snippet.write_text(
        "# detlint: scope=sim\nimport time\nT0 = time.time()\n",
        encoding="utf-8",
    )
    baseline = tmp_path / "detlint-baseline.json"

    assert cli_main([str(snippet)]) == 1
    assert cli_main([str(snippet), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()

    # Snapshot suppresses the finding and reports it as such.
    rc = cli_main([str(snippet), "--baseline", str(baseline), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["counts"]["error"] == 0
    assert doc["counts"]["suppressed"] >= 1

    # Editing the flagged line invalidates its fingerprint: re-triage.
    snippet.write_text(
        "# detlint: scope=sim\nimport time\nT0 = time.time()  # tweaked\n",
        encoding="utf-8",
    )
    assert cli_main([str(snippet), "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_baseline_fingerprints_survive_line_shifts(tmp_path):
    body = "import time\nT0 = time.time()\n"
    a = analyze_source("# detlint: scope=sim\n" + body, path="m.py")
    b = analyze_source("# detlint: scope=sim\n\n\n\n" + body, path="m.py")
    assert baseline_mod.fingerprints(a) == baseline_mod.fingerprints(b)


def test_baseline_rejects_malformed_files(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text('{"version": 99, "fingerprints": []}', encoding="utf-8")
    with pytest.raises(ValueError, match="version"):
        baseline_mod.load_baseline(bad)


# -- meta: the repo itself ------------------------------------------------------


def test_src_lints_clean():
    """CI-parity gate: zero unsuppressed error findings across src/."""
    findings = analyze_paths([str(SRC)])
    gating = [f for f in findings if f.gates]
    assert not gating, "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in gating
    )
    # Every waiver kept in the tree must carry its justification.
    for f in findings:
        if f.waived:
            assert f.waiver_reason, f"{f.path}:{f.line}: reasonless waiver"


def test_cli_entry_point_matches_ci_invocation():
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout


# -- fixture hygiene ------------------------------------------------------------


def test_every_rule_has_pos_and_neg_fixtures():
    for rid in RULE_IDS:
        assert (FIXTURES / f"{rid.lower()}_pos.py").is_file()
        assert (FIXTURES / f"{rid.lower()}_neg.py").is_file()


def test_fixture_dir_is_never_collected():
    """The decoy test module in analysis_fixtures raises on import; pytest
    must skip the whole directory (norecursedirs + collect_ignore)."""
    decoy = FIXTURES / "test_decoy_not_collected.py"
    assert decoy.is_file()
    assert "raise RuntimeError" in decoy.read_text(encoding="utf-8")
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", "tests"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "test_decoy_not_collected" not in proc.stdout
