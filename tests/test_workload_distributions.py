"""Tests for key-selection distributions."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.distributions import HotSpot, Uniform, Zipfian


class TestUniform:
    def test_bounds(self):
        dist = Uniform(100)
        rng = random.Random(0)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert min(samples) >= 0 and max(samples) < 100

    def test_roughly_flat(self):
        dist = Uniform(10)
        rng = random.Random(1)
        counts = Counter(dist.sample(rng) for _ in range(10000))
        assert all(800 < counts[i] < 1200 for i in range(10))

    def test_invalid(self):
        with pytest.raises(ValueError):
            Uniform(0)


class TestZipfian:
    def test_bounds(self):
        dist = Zipfian(1000, theta=0.99)
        rng = random.Random(0)
        for _ in range(5000):
            assert 0 <= dist.sample(rng) < 1000

    def test_skew_prefers_low_keys(self):
        dist = Zipfian(1000, theta=0.99)
        rng = random.Random(2)
        samples = [dist.sample(rng) for _ in range(20000)]
        counts = Counter(samples)
        top10 = sum(counts[i] for i in range(10))
        assert top10 > len(samples) * 0.3  # heavy head

    def test_higher_theta_more_skew(self):
        rng1, rng2 = random.Random(3), random.Random(3)
        mild = Zipfian(1000, theta=0.5)
        harsh = Zipfian(1000, theta=0.95)
        mild_head = sum(1 for _ in range(5000) if mild.sample(rng1) == 0)
        harsh_head = sum(1 for _ in range(5000) if harsh.sample(rng2) == 0)
        assert harsh_head > mild_head

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Zipfian(0)
        with pytest.raises(ValueError):
            Zipfian(10, theta=1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10_000),
        theta=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_always_in_range(self, n, theta, seed):
        dist = Zipfian(n, theta=theta)
        rng = random.Random(seed)
        for _ in range(50):
            assert 0 <= dist.sample(rng) < n


class TestHotSpot:
    def test_hot_fraction_respected(self):
        dist = HotSpot(1000, hot_set=0.1, hot_fraction=0.9)
        rng = random.Random(4)
        samples = [dist.sample(rng) for _ in range(10000)]
        hot = sum(1 for s in samples if s < 100)
        assert 0.85 < hot / len(samples) < 0.95

    def test_cold_keys_possible(self):
        dist = HotSpot(100, hot_set=0.5, hot_fraction=0.5)
        rng = random.Random(5)
        samples = {dist.sample(rng) for _ in range(5000)}
        assert any(s >= 50 for s in samples)

    def test_full_hot_set(self):
        dist = HotSpot(10, hot_set=1.0, hot_fraction=0.5)
        rng = random.Random(6)
        for _ in range(100):
            assert 0 <= dist.sample(rng) < 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            HotSpot(0)
        with pytest.raises(ValueError):
            HotSpot(10, hot_set=0.0)
