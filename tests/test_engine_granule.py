"""Unit tests for granule partitioning and placement planning."""

import pytest

from repro.engine.granule import (
    Granule,
    GranuleMap,
    contiguous_assignment,
    rebalance_plan,
)


class TestGranuleMap:
    def test_granule_count(self):
        assert GranuleMap(1000, 100).num_granules == 10
        assert GranuleMap(1001, 100).num_granules == 11

    def test_granule_of_boundaries(self):
        gmap = GranuleMap(1000, 100)
        assert gmap.granule_of(0) == 0
        assert gmap.granule_of(99) == 0
        assert gmap.granule_of(100) == 1
        assert gmap.granule_of(999) == 9

    def test_key_out_of_range(self):
        gmap = GranuleMap(1000, 100)
        with pytest.raises(KeyError):
            gmap.granule_of(1000)
        with pytest.raises(KeyError):
            gmap.granule_of(-1)

    def test_granule_ranges(self):
        gmap = GranuleMap(250, 100)
        assert gmap.granule(0) == Granule(0, 0, 100)
        assert gmap.granule(2) == Granule(2, 200, 250)  # ragged tail

    def test_granule_contains(self):
        g = Granule(1, 100, 200)
        assert 100 in g and 199 in g
        assert 200 not in g and 99 not in g

    def test_granule_id_out_of_range(self):
        with pytest.raises(KeyError):
            GranuleMap(100, 10).granule(10)

    def test_keys_in(self):
        gmap = GranuleMap(100, 10)
        assert list(gmap.keys_in(3)) == list(range(30, 40))

    def test_granules_iterator(self):
        gmap = GranuleMap(100, 30)
        granules = list(gmap.granules())
        assert len(granules) == 4
        assert granules[-1].hi == 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GranuleMap(0, 10)
        with pytest.raises(ValueError):
            GranuleMap(10, 0)

    def test_every_key_covered_exactly_once(self):
        gmap = GranuleMap(517, 64)
        for key in range(517):
            g = gmap.granule(gmap.granule_of(key))
            assert key in g


class TestContiguousAssignment:
    def test_even_split(self):
        assignment = contiguous_assignment(8, [0, 1])
        assert [assignment[g] for g in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_ragged_split(self):
        assignment = contiguous_assignment(7, [0, 1, 2])
        counts = {n: sum(1 for v in assignment.values() if v == n) for n in (0, 1, 2)}
        assert counts == {0: 3, 1: 2, 2: 2}

    def test_single_node(self):
        assignment = contiguous_assignment(5, [3])
        assert set(assignment.values()) == {3}

    def test_empty_nodes_rejected(self):
        with pytest.raises(ValueError):
            contiguous_assignment(5, [])

    def test_contiguity(self):
        assignment = contiguous_assignment(100, [0, 1, 2, 3])
        for node in (0, 1, 2, 3):
            owned = sorted(g for g, n in assignment.items() if n == node)
            assert owned == list(range(owned[0], owned[-1] + 1))


class TestRebalancePlan:
    def test_scale_out_moves_half(self):
        current = contiguous_assignment(8, [0, 1])
        moves = rebalance_plan(current, [0, 1, 2, 3])
        assert len(moves) == 4
        final = dict(current)
        for g, src, dst in moves:
            assert final[g] == src
            final[g] = dst
        counts = {n: sum(1 for v in final.values() if v == n) for n in (0, 1, 2, 3)}
        assert counts == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_already_balanced_no_moves(self):
        current = contiguous_assignment(8, [0, 1])
        assert rebalance_plan(current, [0, 1]) == []

    def test_scale_in_drains_victims(self):
        current = contiguous_assignment(8, [0, 1, 2, 3])
        moves = rebalance_plan(current, [0, 1])
        sources = {src for _g, src, _dst in moves}
        assert sources == {2, 3}
        final = dict(current)
        for g, src, dst in moves:
            final[g] = dst
        assert set(final.values()) == {0, 1}

    def test_minimal_moves(self):
        current = contiguous_assignment(100, [0, 1])
        moves = rebalance_plan(current, [0, 1, 2, 3])
        assert len(moves) == 50  # only the surplus moves

    def test_deterministic(self):
        current = contiguous_assignment(16, [0, 1])
        assert rebalance_plan(current, [0, 1, 2]) == rebalance_plan(
            current, [0, 1, 2]
        )

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            rebalance_plan({0: 0}, [])

    def test_failover_reassigns_orphans(self):
        current = {0: 9, 1: 9, 2: 0, 3: 1}  # node 9 is dead / not a target
        moves = rebalance_plan(current, [0, 1])
        moved = {g for g, _s, _d in moves}
        assert moved == {0, 1}
