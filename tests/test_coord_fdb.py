"""Tests for the FoundationDB-like baseline service."""

import pytest

from repro.coord.fdb import FDB_DEFAULT, FdbService
from repro.coord.zookeeper import ZK_SMALL, ZooKeeperService
from repro.sim.core import Simulator, all_of
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RpcEndpoint


@pytest.fixture
def env():
    sim = Simulator(seed=13)
    net = Network(sim, LatencyModel(jitter_frac=0.0))
    fdb = FdbService(sim, net)
    client = RpcEndpoint(sim, net, "client", "us-west")
    return sim, net, fdb, client


def commit(sim, client, writes):
    def txn():
        rv = yield client.call("fdb", "fdb_get_read_version")
        version = yield client.call("fdb", "fdb_commit", tuple(writes), rv)
        return version

    proc = sim.spawn(txn(), daemon=True)
    return sim.run_until(proc.result)


class TestTransactions:
    def test_commit_and_read(self, env):
        sim, _net, _fdb, client = env
        commit(sim, client, [("/a", 1)])
        assert sim.run_until(client.call("fdb", "fdb_read", "/a")) == 1

    def test_read_version_advances(self, env):
        sim, _net, _fdb, client = env
        v1 = commit(sim, client, [("/a", 1)])
        v2 = commit(sim, client, [("/a", 2)])
        assert v2 == v1 + 1

    def test_delete_via_none(self, env):
        sim, _net, _fdb, client = env
        commit(sim, client, [("/a", 1)])
        commit(sim, client, [("/a", None)])
        assert sim.run_until(client.call("fdb", "fdb_read", "/a")) is None

    def test_scan(self, env):
        sim, _net, _fdb, client = env
        commit(sim, client, [("/granules/0", 5), ("/granules/1", 6), ("/m/0", "x")])
        scan = sim.run_until(client.call("fdb", "fdb_scan", "/granules/"))
        assert scan == {"/granules/0": 5, "/granules/1": 6}

    def test_empty_commit_is_cheap(self, env):
        sim, _net, fdb, client = env
        rv = sim.run_until(client.call("fdb", "fdb_get_read_version"))
        sim.run_until(client.call("fdb", "fdb_commit", (), rv))
        assert fdb.commits_served == 0


class TestScalability:
    def _throughput(self, service_cls, n=300, **kwargs):
        sim = Simulator(seed=1)
        net = Network(sim, LatencyModel(jitter_frac=0.0))
        if service_cls is FdbService:
            FdbService(sim, net)
            client = RpcEndpoint(sim, net, "client", "us-west")

            def one(i):
                rv = yield client.call("fdb", "fdb_get_read_version")
                yield client.call("fdb", "fdb_commit", ((f"/k{i}", i),), rv)

            procs = [sim.spawn(one(i), daemon=True) for i in range(n)]
            sim.run_until(all_of(sim, [p.result for p in procs]))
        else:
            ZooKeeperService(sim, net, ZK_SMALL)
            client = RpcEndpoint(sim, net, "client", "us-west")
            futs = [client.call("zk", "zk_write", f"/k{i}", i) for i in range(n)]
            sim.run_until(all_of(sim, futs))
        return n / sim.now

    def test_fdb_outscales_zk_single_region(self):
        """Fig 12c: FDB's partitioned pipelines beat the single ZK leader."""
        assert self._throughput(FdbService) > self._throughput(ZooKeeperService)

    def test_sharding_spreads_load(self, env):
        sim, _net, fdb, client = env
        for i in range(30):
            commit(sim, client, [(f"/k{i}", i)])
        busy = [p.jobs_completed for p in fdb.pipelines]
        assert sum(busy) == 30
        assert sum(1 for b in busy if b > 0) >= 2  # multiple shards used

    def test_cost_matches_szk_hardware(self):
        assert FDB_DEFAULT.hourly_cost == pytest.approx(ZK_SMALL.hourly_cost)
