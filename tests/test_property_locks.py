"""Property-based tests for the lock table (hypothesis).

Invariants checked over random acquire/release traces:

* an exclusive lock never coexists with any other holder,
* shared holders never observe an exclusive flag,
* `held_by` and `holders` stay mutually consistent,
* waiting-mode grants are FIFO and never overlap incompatibly.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.locks import LockConflict, LockTable
from repro.sim.core import Simulator

KEYS = ["a", "b", "c"]
TXNS = [f"t{i}" for i in range(5)]


def check_consistency(locks: LockTable):
    for key in KEYS:
        holders = locks.holders(key)
        if locks.is_exclusive(key):
            assert len(holders) == 1
        for txn in holders:
            assert key in locks.held_by(txn)
    for txn in TXNS:
        for key in locks.held_by(txn):
            assert txn in locks.holders(key)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["acquire_s", "acquire_x", "release"]),
            st.sampled_from(TXNS),
            st.sampled_from(KEYS),
        ),
        max_size=40,
    )
)
def test_no_wait_trace_invariants(ops):
    locks = LockTable()
    for op, txn, key in ops:
        try:
            if op == "acquire_s":
                locks.acquire(txn, key, exclusive=False)
            elif op == "acquire_x":
                locks.acquire(txn, key, exclusive=True)
            else:
                locks.release_all(txn)
        except LockConflict:
            pass
        check_consistency(locks)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_waiting_mode_grants_are_exclusive(seed):
    """Random mix of NO_WAIT users and waiting reconfig requests."""
    sim = Simulator(seed=seed)
    locks = LockTable(sim)
    rng = random.Random(seed)
    granted_exclusive = {}

    def reconfig(txn, key):
        try:
            yield locks.acquire_async(txn, key, True, timeout=5.0)
        except LockConflict:
            return
        # While we hold X, nobody else may hold anything on key.
        assert locks.holders(key) == {txn}
        from repro.sim.core import Timeout

        yield Timeout(rng.random() * 0.01)
        assert locks.holders(key) == {txn}
        locks.release_all(txn)

    def user(txn, key):
        from repro.sim.core import Timeout

        try:
            locks.acquire(txn, key, exclusive=False)
        except LockConflict:
            return
        yield Timeout(rng.random() * 0.01)
        assert not locks.is_exclusive(key)
        locks.release_all(txn)

    for i in range(20):
        key = rng.choice(KEYS)
        if rng.random() < 0.4:
            sim.call_after(
                rng.random() * 0.05,
                lambda i=i, key=key: sim.spawn(
                    reconfig(f"r{i}", key), daemon=True
                ),
            )
        else:
            sim.call_after(
                rng.random() * 0.05,
                lambda i=i, key=key: sim.spawn(user(f"u{i}", key), daemon=True),
            )
    sim.run()
    for key in KEYS:
        assert locks.holders(key) == set()


def test_waiter_granted_after_release():
    sim = Simulator()
    locks = LockTable(sim)
    locks.acquire("user", "k", exclusive=False)
    fut = locks.acquire_async("migr", "k", True, timeout=5.0)
    sim.run(until=0.1)
    assert not fut.done
    locks.release_all("user")
    sim.run(until=0.2)
    assert fut.done and fut.exception is None
    assert locks.holders("k") == {"migr"}


def test_waiters_block_new_no_wait_acquires():
    """A queued X waiter fences later NO_WAIT readers (no writer starvation)."""
    sim = Simulator()
    locks = LockTable(sim)
    locks.acquire("user1", "k", exclusive=False)
    locks.acquire_async("migr", "k", True, timeout=5.0)
    with pytest.raises(LockConflict):
        locks.acquire("user2", "k", exclusive=False)


def test_wait_timeout_fails_future():
    sim = Simulator()
    locks = LockTable(sim)
    locks.acquire("user", "k", exclusive=True)
    fut = locks.acquire_async("migr", "k", True, timeout=0.5)
    sim.run(until=1.0)
    assert isinstance(fut.exception, LockConflict)
    # The expired waiter no longer blocks others.
    locks.release_all("user")
    locks.acquire("user2", "k", exclusive=True)


def test_fifo_wakeup_order():
    sim = Simulator()
    locks = LockTable(sim)
    locks.acquire("holder", "k", exclusive=True)
    first = locks.acquire_async("m1", "k", True, timeout=10.0)
    second = locks.acquire_async("m2", "k", True, timeout=10.0)
    locks.release_all("holder")
    sim.run(until=0.1)
    assert first.done and not second.done
    locks.release_all("m1")
    sim.run(until=0.2)
    assert second.done


def test_shared_waiters_granted_together():
    sim = Simulator()
    locks = LockTable(sim)
    locks.acquire("writer", "k", exclusive=True)
    s1 = locks.acquire_async("r1", "k", False, timeout=10.0)
    s2 = locks.acquire_async("r2", "k", False, timeout=10.0)
    locks.release_all("writer")
    sim.run(until=0.1)
    assert s1.done and s2.done
    assert locks.holders("k") == {"r1", "r2"}


def test_clear_fails_pending_waiters():
    sim = Simulator()
    locks = LockTable(sim)
    locks.acquire("holder", "k", exclusive=True)
    fut = locks.acquire_async("migr", "k", True, timeout=10.0)
    locks.clear()
    sim.run(until=0.1)
    assert isinstance(fut.exception, LockConflict)
