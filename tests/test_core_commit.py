"""Tests for MarlinCommit: 1PC/2PC, log participants, termination protocol."""

import pytest

from repro.core.commit import (
    LogParticipant,
    NodeParticipant,
    gather_votes,
    marlin_commit,
    terminate_in_doubt,
)
from repro.engine.node import GTABLE, SYSLOG, glog_name

from repro.sim.core import Simulator
from repro.storage.log import Put, RecordKind
from tests.conftest import make_cluster, make_txn_ctx, run_gen

@pytest.fixture
def pair():
    cluster = make_cluster("marlin", num_nodes=2)
    cluster.run(until=0.05)
    return cluster

def glog_of(cluster, node_id):
    node = cluster.nodes[node_id]
    return cluster.storages[node.region].log(node.glog)

class TestGatherVotes:
    def test_collects_bools(self):
        sim = Simulator()
        futs = [sim.event() for _ in range(3)]
        futs[0].resolve(True)
        futs[1].resolve(False)
        futs[2].resolve(True)
        votes = sim.run_until(gather_votes(sim, futs))
        assert votes == [True, False, True]

    def test_failure_is_no_vote(self):
        sim = Simulator()
        futs = [sim.event(), sim.event()]
        futs[0].resolve(True)
        futs[1].fail(RuntimeError("participant crashed"))
        votes = sim.run_until(gather_votes(sim, futs))
        assert votes == [True, False]

    def test_empty(self):
        sim = Simulator()
        assert sim.run_until(gather_votes(sim, [])) == []

class TestOnePhase:
    def test_commit_to_own_glog(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0, name="test")
        ctx.write(node.glog, "usertable", 1, "v")
        committed = run_gen(
            pair, marlin_commit(node, ctx, [NodeParticipant(0)])
        )
        assert committed
        record = glog_of(pair, 0).records[-1]
        assert record.kind is RecordKind.COMMIT_DATA
        assert record.txn_id == ctx.txn_id

    def test_commit_to_log_participant(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0, name="test")
        entries = (Put("mtable", 9, "node-9"),)
        committed = run_gen(
            pair, marlin_commit(node, ctx, [LogParticipant(SYSLOG, entries)])
        )
        assert committed
        syslog = pair.storages[pair.config.home_region].log(SYSLOG)
        assert syslog.records[-1].entries == entries

    def test_cas_conflict_aborts(self, pair):
        node = pair.nodes[0]
        glog_of(pair, 0).append("intruder", RecordKind.COMMIT_DATA, ())
        ctx = make_txn_ctx(0, name="test")
        ctx.write(node.glog, "usertable", 1, "v")
        committed = run_gen(pair, marlin_commit(node, ctx, [NodeParticipant(0)]))
        assert not committed
        # Tracker refreshed so the retry can succeed.
        committed = run_gen(pair, marlin_commit(node, ctx, [NodeParticipant(0)]))
        assert committed

    def test_remote_node_1pc_rejected(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0)
        with pytest.raises(ValueError):
            run_gen(pair, marlin_commit(node, ctx, [NodeParticipant(1)]))

    def test_no_participants_rejected(self, pair):
        node = pair.nodes[0]
        with pytest.raises(ValueError):
            run_gen(pair, marlin_commit(node, make_txn_ctx(0), []))

class TestTwoPhase:
    def _stage_remote(self, pair, coordinator_ctx, remote_id, granule=30):
        """Stage a branch on the remote node as migr_prepare would."""
        remote = pair.nodes[remote_id]
        branch = make_txn_ctx(remote_id)
        branch.txn_id = coordinator_ctx.txn_id
        branch.write(remote.glog, GTABLE, granule, 0)
        remote.txns[branch.txn_id] = branch
        return branch

    def test_two_node_commit(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0, name="xfer")
        ctx.write(node.glog, GTABLE, 30, 0)
        self._stage_remote(pair, ctx, 1)
        committed = run_gen(
            pair, marlin_commit(node, ctx, [NodeParticipant(1), NodeParticipant(0)])
        )
        assert committed
        pair.settle()
        for nid in (0, 1):
            log = glog_of(pair, nid)
            kinds = [r.kind for r in log.records if r.txn_id == ctx.txn_id]
            assert RecordKind.VOTE_YES in kinds
            assert RecordKind.DECISION_COMMIT in kinds

    def test_vote_records_carry_participants(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0)
        ctx.write(node.glog, GTABLE, 30, 0)
        self._stage_remote(pair, ctx, 1)
        run_gen(pair, marlin_commit(node, ctx, [NodeParticipant(1), NodeParticipant(0)]))
        vote = next(
            r for r in glog_of(pair, 0).records
            if r.txn_id == ctx.txn_id and r.kind is RecordKind.VOTE_YES
        )
        assert set(vote.participants) == {glog_name(0), glog_name(1)}

    def test_unstaged_remote_votes_no(self, pair):
        """A participant with no staged branch (crashed/restarted) votes no."""
        node = pair.nodes[0]
        ctx = make_txn_ctx(0)
        ctx.write(node.glog, GTABLE, 30, 0)
        committed = run_gen(
            pair, marlin_commit(node, ctx, [NodeParticipant(1), NodeParticipant(0)])
        )
        assert not committed
        pair.settle()
        # The coordinator voted yes then must have aborted durably.
        kinds = [
            r.kind for r in glog_of(pair, 0).records if r.txn_id == ctx.txn_id
        ]
        assert RecordKind.DECISION_ABORT in kinds

    def test_frozen_participant_times_out_and_aborts(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0)
        ctx.write(node.glog, GTABLE, 30, 0)
        self._stage_remote(pair, ctx, 1)
        pair.nodes[1].freeze()
        committed = run_gen(
            pair,
            marlin_commit(node, ctx, [NodeParticipant(1), NodeParticipant(0)]),
            limit=30.0,
        )
        assert not committed

    def test_log_participant_commit(self, pair):
        """RecoveryMigrTxn shape: log + self node participants."""
        node = pair.nodes[0]
        src_log = glog_name(1)
        end = glog_of(pair, 1).end_lsn
        node.lsn_tracker[src_log] = end
        ctx = make_txn_ctx(0, name="recovery")
        ctx.write(node.glog, GTABLE, 30, 0)
        entries = (Put(GTABLE, 30, 0),)
        committed = run_gen(
            pair,
            marlin_commit(
                node, ctx, [LogParticipant(src_log, entries), NodeParticipant(0)]
            ),
        )
        assert committed
        pair.settle()
        src_records = [r for r in glog_of(pair, 1).records if r.txn_id == ctx.txn_id]
        assert [r.kind for r in src_records] == [
            RecordKind.VOTE_YES,
            RecordKind.DECISION_COMMIT,
        ]

    def test_log_participant_cas_race_aborts(self, pair):
        """If the 'unresponsive' node wrote concurrently, recovery loses."""
        node = pair.nodes[0]
        src_log = glog_name(1)
        node.lsn_tracker[src_log] = glog_of(pair, 1).end_lsn
        glog_of(pair, 1).append("concurrent", RecordKind.COMMIT_DATA, ())
        ctx = make_txn_ctx(0, name="recovery")
        ctx.write(node.glog, GTABLE, 30, 0)
        committed = run_gen(
            pair,
            marlin_commit(
                node, ctx, [LogParticipant(src_log, ()), NodeParticipant(0)]
            ),
        )
        assert not committed

class TestTermination:
    def test_resolves_commit_from_decision(self, pair):
        node = pair.nodes[0]
        glog_of(pair, 1).append("txn-x", RecordKind.VOTE_YES, ())
        glog_of(pair, 1).append("txn-x", RecordKind.DECISION_COMMIT, ())
        outcome = run_gen(
            pair, terminate_in_doubt(node, "txn-x", [glog_name(1)])
        )
        assert outcome is True

    def test_resolves_abort_from_decision(self, pair):
        node = pair.nodes[0]
        glog_of(pair, 1).append("txn-x", RecordKind.VOTE_YES, ())
        glog_of(pair, 1).append("txn-x", RecordKind.DECISION_ABORT, ())
        outcome = run_gen(pair, terminate_in_doubt(node, "txn-x", [glog_name(1)]))
        assert outcome is False

    def test_all_votes_without_decision_is_commit(self, pair):
        """Cornus rule: all participant logs voted yes => committed."""
        node = pair.nodes[0]
        logs = [glog_name(0), glog_name(1)]
        for nid in (0, 1):
            glog_of(pair, nid).append(
                "txn-x", RecordKind.VOTE_YES, (), participants=tuple(logs)
            )
        outcome = run_gen(pair, terminate_in_doubt(node, "txn-x", logs))
        assert outcome is True
        pair.settle()
        # Finalization appended commit decisions so replay can apply.
        for nid in (0, 1):
            assert glog_of(pair, nid).txn_outcome("txn-x") is True

    def test_silent_participant_claimed_aborted(self, pair):
        """A log with no vote gets an abort claimed into it."""
        node = pair.nodes[0]
        logs = [glog_name(0), glog_name(1)]
        glog_of(pair, 0).append(
            "txn-x", RecordKind.VOTE_YES, (), participants=tuple(logs)
        )
        # glog-1 never votes.
        outcome = run_gen(
            pair,
            terminate_in_doubt(
                node, "txn-x", logs, grace=0.001, poll=0.001, max_polls=2
            ),
            limit=30.0,
        )
        assert outcome is False
        pair.settle()
        assert glog_of(pair, 1).txn_outcome("txn-x") is False
        assert glog_of(pair, 0).txn_outcome("txn-x") is False
