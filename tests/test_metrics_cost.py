"""Tests for the metrics collector and cost model (§6.1.4-§6.1.5)."""

import pytest

from repro.cluster.cost import CostModel
from repro.cluster.metrics import MetricsCollector


class TestMetricsCollector:
    def test_throughput_series_buckets(self):
        m = MetricsCollector(bucket=1.0)
        for t in (0.1, 0.5, 1.2, 2.9):
            m.record_commit(t, 0.01)
        series = dict(m.throughput_series(until=3.0))
        assert series[0.0] == 2 and series[1.0] == 1 and series[2.0] == 1

    def test_sub_second_buckets(self):
        m = MetricsCollector(bucket=0.5)
        m.record_commit(0.6, 0.01)
        series = dict(m.throughput_series(until=1.0))
        assert series[0.5] == pytest.approx(2.0)  # 1 txn / 0.5 s

    def test_abort_ratio_series(self):
        m = MetricsCollector()
        m.record_commit(0.1, 0.01)
        m.record_abort(0.2, "lock_conflict")
        m.record_abort(0.3, "lock_conflict")
        series = dict(m.abort_ratio_series(until=1.0))
        assert series[0.0] == pytest.approx(2 / 3)

    def test_abort_ratio_empty_bucket_is_zero(self):
        m = MetricsCollector()
        assert dict(m.abort_ratio_series(until=2.0))[1.0] == 0.0

    def test_abort_reasons_tallied(self):
        m = MetricsCollector()
        m.record_abort(0.1, "timeout")
        m.record_abort(0.2, "timeout")
        m.record_abort(0.3, "wrong_node")
        assert m.abort_reasons == {"timeout": 2, "wrong_node": 1}

    def test_migration_duration(self):
        m = MetricsCollector()
        m.record_migration(5.0)
        m.record_migration(7.5)
        m.record_migration(6.0)
        assert m.migration_duration == pytest.approx(2.5)

    def test_migration_duration_empty(self):
        assert MetricsCollector().migration_duration == 0.0

    def test_latency_stats(self):
        m = MetricsCollector()
        for latency in (0.01, 0.02, 0.03, 0.04):
            m.record_commit(0.5, latency)
        stats = m.latency_stats()
        assert stats["mean"] == pytest.approx(0.025)
        assert stats["p50"] == pytest.approx(0.025)

    def test_latency_series_percentile(self):
        m = MetricsCollector()
        for latency in (0.01, 0.09):
            m.record_commit(0.5, latency)
        series = dict(m.latency_series(until=1.0, pct=50.0))
        assert series[0.0] == pytest.approx(0.05)

    def test_migration_latency_stats(self):
        m = MetricsCollector()
        m.record_migration(1.0, latency=0.004)
        m.record_migration(1.1, latency=0.006)
        assert m.migration_latency_stats()["mean"] == pytest.approx(0.005)

    def test_node_seconds_integration(self):
        m = MetricsCollector()
        m.record_node_count(0.0, 2)
        m.record_node_count(10.0, 4)
        assert m.node_seconds(until=20.0) == pytest.approx(2 * 10 + 4 * 10)

    def test_node_seconds_clamped_to_until(self):
        m = MetricsCollector()
        m.record_node_count(0.0, 2)
        m.record_node_count(50.0, 8)
        assert m.node_seconds(until=10.0) == pytest.approx(20.0)

    def test_node_seconds_empty(self):
        assert MetricsCollector().node_seconds(10.0) == 0.0

    def test_node_count_must_be_monotonic(self):
        m = MetricsCollector()
        m.record_node_count(5.0, 2)
        with pytest.raises(ValueError):
            m.record_node_count(4.0, 3)

    def test_node_count_equal_times_allowed(self):
        m = MetricsCollector()
        m.record_node_count(5.0, 2)
        m.record_node_count(5.0, 3)
        assert m.node_seconds(until=6.0) == pytest.approx(3.0)

    def test_series_cache_invalidated_by_new_records(self):
        m = MetricsCollector()
        m.record_commit(0.5, 0.01)
        assert dict(m.throughput_series(until=1.0))[0.0] == 1
        assert dict(m.latency_series(until=1.0))[0.0] == pytest.approx(0.01)
        m.record_commit(0.6, 0.03)
        assert dict(m.throughput_series(until=1.0))[0.0] == 2
        assert dict(m.latency_series(until=1.0))[0.0] == pytest.approx(0.02)

    def test_latencies_view_reconstructs_buckets(self):
        m = MetricsCollector(bucket=1.0)
        m.record_commit(0.2, 0.01)
        m.record_commit(1.7, 0.02)
        m.record_commit(0.9, 0.03)
        assert m.latencies == {0: [0.01, 0.03], 1: [0.02]}

    def test_latency_series_out_of_order_commits(self):
        # Commit times are usually monotonic (sim time) but the collector
        # must not rely on it for correctness of the grouped series.
        m = MetricsCollector()
        m.record_commit(2.5, 0.04)
        m.record_commit(0.5, 0.01)
        m.record_commit(2.6, 0.06)
        series = dict(m.latency_series(until=3.0))
        assert series[0.0] == pytest.approx(0.01)
        assert series[1.0] == 0.0
        assert series[2.0] == pytest.approx(0.05)


class TestCostModel:
    def _metrics(self, nodes=4, committed=1000, duration=100.0):
        m = MetricsCollector()
        m.record_node_count(0.0, nodes)
        for i in range(committed):
            m.record_commit(duration * i / committed, 0.01)
        return m

    def test_db_cost(self):
        model = CostModel(compute_hourly=0.192)
        report = model.price(self._metrics(nodes=4), duration=3600.0)
        assert report.db_cost == pytest.approx(4 * 0.192)

    def test_meta_cost_zero_for_marlin(self):
        model = CostModel(compute_hourly=0.192, coordination_hourly=0.0)
        report = model.price(self._metrics(), duration=3600.0)
        assert report.meta_cost == 0.0
        assert report.meta_fraction == 0.0

    def test_meta_cost_for_zk(self):
        model = CostModel(compute_hourly=0.192, coordination_hourly=0.597)
        report = model.price(self._metrics(), duration=3600.0)
        assert report.meta_cost == pytest.approx(0.597)

    def test_cost_per_million(self):
        model = CostModel(compute_hourly=0.192)
        report = model.price(
            self._metrics(nodes=1, committed=1000), duration=3600.0
        )
        assert report.cost_per_million_txns == pytest.approx(0.192 / 1000 * 1e6)

    def test_cost_per_million_no_txns(self):
        model = CostModel(compute_hourly=0.192)
        report = model.price(self._metrics(committed=0), duration=100.0)
        assert report.cost_per_million_txns == float("inf")

    def test_geo_multiple_coordination_clusters(self):
        """§6.5: one ZK per region would multiply Meta Cost."""
        one = CostModel(0.192, 0.597, coordination_clusters=1)
        four = CostModel(0.192, 0.597, coordination_clusters=4)
        m = self._metrics()
        assert four.price(m, 3600.0).meta_cost == pytest.approx(
            4 * one.price(m, 3600.0).meta_cost
        )

    def test_realtime_cost_series_steps(self):
        model = CostModel(compute_hourly=3600.0)  # $1/sec/node for readability
        m = MetricsCollector()
        m.record_node_count(0.0, 1)
        m.record_node_count(5.0, 3)
        series = dict(model.realtime_cost_series(m, until=8.0, bucket=1.0))
        assert series[0.0] == pytest.approx(1.0)
        assert series[6.0] == pytest.approx(3.0)

    def test_realtime_cost_includes_meta(self):
        model = CostModel(compute_hourly=0.0, coordination_hourly=3600.0)
        m = MetricsCollector()
        m.record_node_count(0.0, 5)
        series = dict(model.realtime_cost_series(m, until=2.0))
        assert series[1.0] == pytest.approx(1.0)
