"""Fault-point sweep: kill the coordinator/participants at every FSM edge.

The tentpole robustness suite for crash-recoverable 2PC:

- a hypothesis-driven sweep that crashes a node immediately before or after
  each journaled participant-FSM transition (``core/participant.py``),
  restarts it inside the vote-timeout window, and asserts the paper's
  ground-truth invariants at quiescence — atomicity across granules,
  durability (no stranded prepares on live logs), and no leaked locks;
- the same sweep replayed under every external coordination backend
  (``zk-small`` / ``fdb`` / ``lease`` — ``TestBaselineFaultPointSweep``),
  since the 2PC data plane is mode-independent;
- unit tests for the FSM itself, the pure WAL-scan classifier
  (``core/recovery.py:analyze``), and the knobs/regressions the sweep
  depends on (termination calibration from ``NodeParams``, replay waiter
  bounds, restart with a transaction in flight).

Profile: ``HYPOTHESIS_PROFILE=ci`` shrinks the sweep to a smoke budget for
the CI job; the default profile runs the full ≥20-seed sweep.
"""

import os
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.commit import terminate_in_doubt
from repro.core.invariants import (
    InvariantViolation,
    check_atomicity,
    check_durability,
    check_no_leaked_locks,
)
from repro.core.participant import (
    EDGE_NAMES,
    InvalidTransition,
    ParticipantFSM,
    TRANSITIONS,
    TxnState,
)
from repro.core.recovery import analyze
from repro.engine.node import NodeCrashed, NodeParams, glog_name
from repro.obs import Tracer, forensics
from repro.sim.core import Timeout
from repro.storage.log import LogRecord, RecordKind
from repro.storage.replay import MAX_WAITERS_PER_LOG, ReplayInterrupted
from tests.conftest import make_cluster, run_gen
from tests.test_workload_client import start_clients

settings.register_profile(
    "ci", max_examples=3, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "default", max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

#: Every (role, edge, phase) crash point, mirroring fig16's grid.
EDGE_POINTS = tuple(
    (role, edge, phase)
    for role in sorted(EDGE_NAMES)
    for edge in EDGE_NAMES[role]
    for phase in ("before", "after")
)

VICTIM_BY_ROLE = {"coordinator": 0, "participant": 1}


def glog_of(cluster, node_id):
    node = cluster.nodes[node_id]
    return cluster.storages[node.region].logs[node.glog]


def run_edge_kill(role, edge, phase, seed, fault_at=0.8, rejoin_after=0.3,
                  duration=3.5, coordination="marlin"):
    """One sweep cell: crash ``role``'s node at (edge, phase), restart, settle.

    Returns the cluster (post-quiescence) and whether the fault fired.
    """
    cluster = make_cluster(
        coordination, num_nodes=3, num_keys=2048, keys_per_granule=64,
        seed=seed,
    )
    # Flight recorder only: a failed invariant below reports the last spans
    # each node recorded before the kill (see assert_crash_invariants).
    cluster.attach_tracer(Tracer(cluster.sim, ring_size=64))
    cluster.run(until=0.05)
    _router, clients = start_clients(
        cluster, count=4, seed=seed, incr_fraction=0.2, remote_fraction=0.5
    )
    victim = VICTIM_BY_ROLE[role]
    node = cluster.nodes[victim]
    fired = []

    def restart():
        yield Timeout(rejoin_after)
        yield from cluster.restart_node(victim, rejoin=True)

    def hook(txn_id, e, p):
        if e != edge or p != phase or cluster.sim.now < fault_at:
            return
        node.fault_hook = None
        fired.append((cluster.sim.now, txn_id))
        cluster.fail_node(victim)
        cluster.sim.spawn(restart(), name=f"edge-restart:{victim}")

    node.fault_hook = hook
    cluster.run(until=duration)
    for c in clients:
        c.stop()
    # Long quiescence: in-doubt branches from the crash window must settle
    # through termination/recovery before the invariants are checked.
    cluster.settle(1.5)
    return cluster, bool(fired)


def assert_crash_invariants(cluster):
    logs = cluster.all_logs()
    live_glogs = [
        cluster.nodes[nid].glog for nid in cluster.live_node_ids()
    ]
    # Any violation escapes with the flight-recorder tail + fault-log
    # timeline appended, so a red sweep cell names its killing fault point.
    with forensics(cluster):
        check_atomicity(logs)
        check_durability(logs, live_glogs)
        check_no_leaked_locks(
            cluster.nodes[nid] for nid in cluster.live_node_ids()
        )


class TestFaultPointSweep:
    """Kill a node at every journaled FSM edge; invariants must hold."""

    @pytest.mark.parametrize("role,edge,phase", EDGE_POINTS)
    def test_every_edge_once(self, role, edge, phase):
        cluster, fired = run_edge_kill(role, edge, phase, seed=40)
        assert fired, f"fault point ({role}, {edge}, {phase}) never hit"
        assert_crash_invariants(cluster)
        # The restart ran a WAL recovery pass on the victim's own log.
        victim = VICTIM_BY_ROLE[role]
        reports = [
            r for r in cluster.recovery_reports if r.node_id == victim
        ]
        assert reports, "restart_node ran no recovery pass"
        assert all(r.unresolved == 0 for r in reports)
        assert cluster.metrics.total_committed > 0

    @given(
        point=st.sampled_from(EDGE_POINTS),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_seeded_sweep(self, point, seed):
        """Randomized (edge, seed) cells on top of the exhaustive grid."""
        role, edge, phase = point
        cluster, fired = run_edge_kill(role, edge, phase, seed=seed)
        # Not every seed routes a 2PC branch through the armed edge before
        # the deadline; invariants must hold either way, and a fired fault
        # must leave a clean recovery report.
        assert_crash_invariants(cluster)
        if fired:
            victim = VICTIM_BY_ROLE[role]
            reports = [
                r for r in cluster.recovery_reports if r.node_id == victim
            ]
            assert reports and all(r.unresolved == 0 for r in reports)


#: External-service coordination backends: the 2PC data plane (WAL, locks,
#: participant FSM) is identical machinery in every mode — only views and
#: membership move into the service — so the fault-point invariants must
#: hold under each backend, not just Marlin's embedded system tables.
BASELINE_MODES = ("zk-small", "fdb", "lease")


@pytest.mark.parametrize("mode", BASELINE_MODES)
class TestBaselineFaultPointSweep:
    """The edge-kill invariants hold under every coordination backend."""

    def test_representative_edge(self, mode):
        """One exhaustive cell per mode: participant killed after voting."""
        cluster, fired = run_edge_kill(
            "participant", "vote", "after", seed=40, coordination=mode
        )
        assert fired, f"({mode}) participant vote/after never hit"
        assert_crash_invariants(cluster)
        reports = [r for r in cluster.recovery_reports if r.node_id == 1]
        assert reports and all(r.unresolved == 0 for r in reports)
        assert cluster.metrics.total_committed > 0

    @given(
        point=st.sampled_from(EDGE_POINTS),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_seeded_sweep(self, mode, point, seed):
        """Randomized (edge, seed) cells per backend, as in the marlin sweep."""
        role, edge, phase = point
        cluster, fired = run_edge_kill(
            role, edge, phase, seed=seed, coordination=mode
        )
        assert_crash_invariants(cluster)
        if fired:
            victim = VICTIM_BY_ROLE[role]
            reports = [
                r for r in cluster.recovery_reports if r.node_id == victim
            ]
            assert reports and all(r.unresolved == 0 for r in reports)


class TestFailureForensics:
    """A red invariant names its killing fault point, not just 'violated'."""

    def test_violation_report_carries_killing_edge(self):
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=2048, keys_per_granule=64,
            seed=40,
        )
        cluster.attach_tracer(Tracer(cluster.sim, ring_size=256))
        cluster.run(until=0.05)
        _router, clients = start_clients(
            cluster, count=4, seed=40, incr_fraction=0.2, remote_fraction=0.5
        )
        node = cluster.nodes[1]
        fired = []

        def hook(txn_id, e, p):
            if e == "vote" and p == "after" and not fired:
                fired.append(txn_id)
                node.fault_hook = None
                cluster.fail_node(1)

        node.fault_hook = hook
        cluster.run(until=1.5)
        for c in clients:
            c.stop()
        assert fired, "vote edge never hit"
        # Forge a split decision: atomicity must fail, and the re-raised
        # violation must carry the victim's flight-recorder tail with the
        # killing FSM edge (recorded *before* the fault hook ran).
        glog_of(cluster, 0).append("txn-forged", RecordKind.DECISION_COMMIT, ())
        glog_of(cluster, 2).append("txn-forged", RecordKind.DECISION_ABORT, ())
        with pytest.raises(InvariantViolation) as err:
            assert_crash_invariants(cluster)
        msg = str(err.value)
        assert "=== forensics ===" in msg
        assert "edge:vote" in msg
        assert fired[0] in msg  # the killed txn id appears in the timeline

    def test_forensics_without_tracer_says_tracing_off(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        glog_of(cluster, 0).append("t1", RecordKind.DECISION_COMMIT, ())
        glog_of(cluster, 1).append("t1", RecordKind.DECISION_ABORT, ())
        with pytest.raises(InvariantViolation, match="tracing off"):
            with forensics(cluster):
                check_atomicity(cluster.all_logs())


class TestParticipantFSM:
    def test_happy_path_commit(self):
        fsm = ParticipantFSM("t1")
        for state in (TxnState.ACTIVE, TxnState.PREPARED, TxnState.COMMITTED):
            fsm.to(state)
        assert fsm.terminal
        assert fsm.history == [
            TxnState.INITIALIZE, TxnState.ACTIVE,
            TxnState.PREPARED, TxnState.COMMITTED,
        ]

    def test_commit_requires_prepare(self):
        fsm = ParticipantFSM("t1")
        fsm.to(TxnState.ACTIVE)
        with pytest.raises(InvalidTransition):
            fsm.to(TxnState.COMMITTED)

    def test_abort_reachable_from_every_live_state(self):
        for start in (TxnState.INITIALIZE, TxnState.ACTIVE,
                      TxnState.PREPARED, TxnState.RECOVERY):
            fsm = ParticipantFSM("t1", state=start)
            fsm.to(TxnState.ABORTED)
            assert fsm.terminal

    def test_terminal_states_refuse_everything(self):
        for terminal in (TxnState.COMMITTED, TxnState.ABORTED):
            fsm = ParticipantFSM("t1", state=terminal)
            assert fsm.terminal
            for target in TxnState:
                with pytest.raises(InvalidTransition):
                    fsm.to(target)

    def test_recovered_branch_reaches_only_terminals(self):
        assert ParticipantFSM.recovered("t1").state is TxnState.RECOVERY
        assert TRANSITIONS[TxnState.RECOVERY] == frozenset(
            {TxnState.COMMITTED, TxnState.ABORTED}
        )


def _rec(lsn, txn, kind, participants=()):
    return LogRecord(lsn, txn, kind, (), tuple(participants))


class TestAnalyze:
    def test_begun_unvoted(self):
        plan = analyze([_rec(1, "t1", RecordKind.TXN_BEGIN)], "glog-0")
        assert plan.begun_unvoted == ["t1"]
        assert not plan.in_doubt and not plan.coordinator_open

    def test_in_doubt_carries_participants(self):
        plan = analyze(
            [_rec(1, "t1", RecordKind.VOTE_YES, ("glog-0", "glog-1"))],
            "glog-0",
        )
        assert plan.in_doubt == {"t1": ("glog-0", "glog-1")}

    def test_decided_txns_are_closed(self):
        plan = analyze(
            [
                _rec(1, "t1", RecordKind.TXN_BEGIN),
                _rec(2, "t1", RecordKind.VOTE_YES, ("glog-0",)),
                _rec(3, "t1", RecordKind.DECISION_COMMIT),
            ],
            "glog-0",
        )
        assert not plan.in_doubt and not plan.begun_unvoted

    def test_coordinator_open_needs_missing_end(self):
        open_plan = analyze(
            [_rec(1, "t1", RecordKind.PREPARE, ("glog-0", "glog-1"))],
            "glog-0",
        )
        assert open_plan.coordinator_open == {"t1": ("glog-0", "glog-1")}
        closed = analyze(
            [
                _rec(1, "t1", RecordKind.PREPARE, ("glog-0", "glog-1")),
                _rec(2, "t1", RecordKind.TXN_END),
            ],
            "glog-0",
        )
        assert not closed.coordinator_open

    def test_in_doubt_subsumes_coordinator_open(self):
        """The in-doubt resolution covers the same participant list."""
        plan = analyze(
            [
                _rec(1, "t1", RecordKind.PREPARE, ("glog-0", "glog-1")),
                _rec(2, "t1", RecordKind.VOTE_YES, ("glog-0", "glog-1")),
            ],
            "glog-0",
        )
        assert "t1" in plan.in_doubt
        assert "t1" not in plan.coordinator_open


class TestTerminationCalibration:
    """Satellite: grace/poll/max_polls come from NodeParams per node."""

    def test_params_drive_claim_timing(self):
        cluster = make_cluster(
            "marlin", num_nodes=2,
            node_params=NodeParams(
                term_grace=0.05, term_poll=0.02, term_max_polls=4
            ),
        )
        cluster.run(until=0.05)
        node = cluster.nodes[0]
        # glog-1 never votes: termination must wait out grace + the poll
        # budget (max_polls reads = max_polls - 1 sleeps) before claiming.
        start = cluster.sim.now
        outcome = run_gen(
            cluster, terminate_in_doubt(node, "txn-x", [glog_name(1)])
        )
        elapsed = cluster.sim.now - start
        assert outcome is False
        assert elapsed >= 0.05 + 3 * 0.02
        assert glog_of(cluster, 1).txn_outcome("txn-x") is False

    def test_explicit_args_override_params(self):
        cluster = make_cluster(
            "marlin", num_nodes=2,
            node_params=NodeParams(
                term_grace=5.0, term_poll=5.0, term_max_polls=100
            ),
        )
        cluster.run(until=0.05)
        node = cluster.nodes[0]
        start = cluster.sim.now
        outcome = run_gen(
            cluster,
            terminate_in_doubt(
                node, "txn-x", [glog_name(1)],
                grace=0.001, poll=0.001, max_polls=2,
            ),
        )
        assert outcome is False
        assert cluster.sim.now - start < 1.0

    def test_claim_backoff_jitter_is_seeded(self):
        """Two same-seed clusters resolve a contended claim identically."""
        times = []
        for _ in range(2):
            cluster = make_cluster("marlin", num_nodes=2, seed=11)
            cluster.run(until=0.05)
            node = cluster.nodes[0]
            params = replace(
                node.params, term_grace=0.001, term_poll=0.002,
                term_max_polls=1,
            )
            node.params = params
            # Contend: a racing writer keeps appending to the silent log so
            # the first claim CAS rounds fail and the jittered backoff runs.
            log = glog_of(cluster, 1)

            def churn(log=log):
                for i in range(30):
                    log.append(f"noise-{i}", RecordKind.COMMIT_DATA, ())
                    yield Timeout(0.0005)

            cluster.sim.spawn(churn(), name="churn")
            outcome = run_gen(
                cluster, terminate_in_doubt(node, "txn-x", [glog_name(1)])
            )
            assert outcome is False
            times.append(cluster.sim.now)
        assert times[0] == times[1]


class TestReplayWaiterRegression:
    """Satellite: wait_applied must not leak waiters past a writer crash."""

    def test_fail_node_fails_future_waiters(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        node = cluster.nodes[1]
        storage = cluster.storages[node.region]
        end = storage.logs[node.glog].end_lsn
        doomed = storage.replay.wait_applied(node.glog, end + 50)
        reachable = storage.replay.wait_applied(node.glog, end)
        cluster.fail_node(1)
        cluster.settle(0.1)
        assert doomed.done and isinstance(
            doomed.exception, ReplayInterrupted
        )
        # Appends that landed before the crash still replay normally.
        assert reachable.done and reachable.exception is None

    def test_waiter_bound_enforced(self, monkeypatch):
        import repro.storage.replay as replay_mod

        monkeypatch.setattr(replay_mod, "MAX_WAITERS_PER_LOG", 3)
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        node = cluster.nodes[0]
        storage = cluster.storages[node.region]
        end = storage.logs[node.glog].end_lsn
        futs = [
            storage.replay.wait_applied(node.glog, end + 10 + i)
            for i in range(5)
        ]
        bounced = [
            f for f in futs
            if f.done and isinstance(f.exception, ReplayInterrupted)
        ]
        assert len(bounced) == 2
        assert storage.replay.waiters_failed == 2
        assert MAX_WAITERS_PER_LOG >= 1024  # the real bound stays generous


class TestRestartWithTxnInFlight:
    """Satellite: a crash mid-2PC leaks no context and no locks."""

    def test_restart_leaves_no_leaked_state(self):
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=2048, seed=33
        )
        cluster.run(until=0.05)
        _router, clients = start_clients(
            cluster, count=4, seed=33, remote_fraction=0.6
        )
        cluster.run(until=1.0)
        assert cluster.nodes[1].txns or cluster.metrics.total_committed
        cluster.fail_node(1)
        # Rejoin inside the vote-timeout window: survivors have not settled
        # the victim's branches yet, so recovery has real work.
        cluster.run(until=cluster.sim.now + 0.3)
        run_gen(cluster, cluster.restart_node(1, rejoin=True))
        cluster.run(until=cluster.sim.now + 1.0)
        for c in clients:
            c.stop()
        cluster.settle(1.5)
        node = cluster.nodes[1]
        assert not node.frozen
        assert not node.txns, f"stale txn contexts survived: {node.txns}"
        assert node.locks.holding_txns() == set()
        assert_crash_invariants(cluster)
        reports = [r for r in cluster.recovery_reports if r.node_id == 1]
        assert reports and all(r.unresolved == 0 for r in reports)

    def test_frozen_node_refuses_new_wal_work(self):
        """A vote branch forked mid-crash must not orphan a log gate."""
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        node = cluster.nodes[0]
        cluster.fail_node(0)
        with pytest.raises(NodeCrashed):
            run_gen(
                cluster,
                node.try_log(node.glog, "t1", RecordKind.TXN_BEGIN, ()),
            )
        # The gate map stays clean: nothing acquired, nothing orphaned.
        assert not node._log_gates


class TestCoordinationAvoidance:
    """Invariant-confluent increments skip 2PC on the fast path."""

    def test_pure_increment_load_avoids_all_coordination(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=2048, seed=9)
        cluster.run(until=0.05)
        _router, clients = start_clients(
            cluster, count=4, seed=9, incr_fraction=1.0
        )
        cluster.run(until=1.5)
        for c in clients:
            c.stop()
        cluster.settle(0.5)
        fast = sum(n.stats["fast_path_commits"] for n in cluster.nodes.values())
        two_pc = sum(n.stats["two_pc_commits"] for n in cluster.nodes.values())
        assert fast > 0
        assert two_pc == 0
        assert_crash_invariants(cluster)

    def test_mixed_load_reports_both_populations(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=2048, seed=9)
        cluster.run(until=0.05)
        _router, clients = start_clients(
            cluster, count=4, seed=9,
            incr_fraction=0.5, remote_fraction=0.5,
        )
        cluster.run(until=1.5)
        for c in clients:
            c.stop()
        cluster.settle(0.5)
        fast = sum(n.stats["fast_path_commits"] for n in cluster.nodes.values())
        two_pc = sum(n.stats["two_pc_commits"] for n in cluster.nodes.values())
        assert fast > 0 and two_pc > 0


class TestInvariantCheckers:
    def test_atomicity_checker_catches_split_decision(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        glog_of(cluster, 0).append("t1", RecordKind.DECISION_COMMIT, ())
        glog_of(cluster, 1).append("t1", RecordKind.DECISION_ABORT, ())
        with pytest.raises(InvariantViolation, match="atomicity"):
            check_atomicity(cluster.all_logs())

    def test_durability_checker_catches_stranded_vote(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        glog_of(cluster, 0).append("t1", RecordKind.VOTE_YES, ())
        with pytest.raises(InvariantViolation, match="durability"):
            check_durability(
                cluster.all_logs(), [cluster.nodes[0].glog]
            )
        # Dead nodes' logs are exempt (Cornus settles them lazily).
        check_durability(cluster.all_logs(), [cluster.nodes[1].glog])
