"""Tests for cluster orchestration: bootstrap, scale-out/in, geo layout."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core.invariants import check_invariants, check_view_consistency
from repro.engine.node import SYSLOG
from tests.conftest import make_cluster, run_gen


class TestBootstrap:
    def test_initial_assignment_covers_all_granules(self):
        cluster = make_cluster("marlin", num_nodes=4, num_keys=4096)
        cluster.settle()
        check_invariants(
            cluster.ground_truth_gtable(),
            cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )
        check_view_consistency(
            [cluster.nodes[n] for n in cluster.live_node_ids()],
            cluster.gmap.num_granules,
        )

    def test_views_match_ground_truth(self):
        cluster = make_cluster("marlin", num_nodes=3, num_keys=3072)
        cluster.settle()
        truth = cluster.ground_truth_gtable()
        for node in cluster.nodes.values():
            assert node.gtable == truth

    def test_balanced_initial_ownership(self):
        cluster = make_cluster("marlin", num_nodes=4, num_keys=4096)
        counts = [len(cluster.nodes[n].owned_granules()) for n in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_membership_bootstrap(self):
        cluster = make_cluster("marlin", num_nodes=3)
        cluster.settle()
        assert sorted(cluster.ground_truth_mtable()) == [0, 1, 2]
        for node in cluster.nodes.values():
            assert sorted(node.mtable) == [0, 1, 2]

    def test_external_service_seeded(self):
        cluster = make_cluster("zk-small", num_nodes=2)
        assert cluster.service.data["/members/0"] == "node-0"
        assert cluster.service.data["/granules/0"] == 0

    def test_unknown_coordination_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(coordination="etcd")

    def test_home_region_must_be_in_regions(self):
        with pytest.raises(ValueError):
            ClusterConfig(regions=("asia-east",), home_region="us-west")


class TestScaleOut:
    @pytest.mark.parametrize("kind", ["marlin", "zk-small", "fdb"])
    def test_doubling_rebalances(self, kind):
        cluster = make_cluster(kind, num_nodes=2, num_keys=4096)
        cluster.run(until=0.05)
        summary = run_gen(cluster, cluster.scale_out(2))
        assert summary["kind"] == "scale-out"
        assert summary["migrated"] > 0
        cluster.settle()
        counts = [len(cluster.nodes[n].owned_granules()) for n in range(4)]
        assert max(counts) - min(counts) <= 1
        check_view_consistency(
            [cluster.nodes[n] for n in cluster.live_node_ids()],
            cluster.gmap.num_granules,
        )

    def test_marlin_scale_out_holds_invariants(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=4096)
        cluster.run(until=0.05)
        run_gen(cluster, cluster.scale_out(2))
        cluster.settle()
        check_invariants(
            cluster.ground_truth_gtable(),
            cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )

    def test_new_nodes_join_membership(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        run_gen(cluster, cluster.scale_out(1))
        cluster.settle()
        assert sorted(cluster.ground_truth_mtable()) == [0, 1, 2]

    def test_node_count_metric_updated(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        run_gen(cluster, cluster.scale_out(2))
        counts = [n for _t, n in cluster.metrics.node_count_events]
        assert counts == [2, 4]

    def test_provision_delay_respected(self):
        cluster = make_cluster("marlin", num_nodes=2, provision_delay=1.0)
        cluster.run(until=0.05)
        t0 = cluster.sim.now
        summary = run_gen(cluster, cluster.scale_out(1))
        assert summary["duration"] >= 1.0


class TestScaleIn:
    @pytest.mark.parametrize("kind", ["marlin", "zk-small"])
    def test_drain_and_remove(self, kind):
        cluster = make_cluster(kind, num_nodes=4, num_keys=4096)
        cluster.run(until=0.05)
        summary = run_gen(cluster, cluster.scale_in([2, 3]))
        assert summary["removed"] == [2, 3]
        cluster.settle()
        assert cluster.live_node_ids() == [0, 1]
        check_view_consistency(
            [cluster.nodes[n] for n in cluster.live_node_ids()],
            cluster.gmap.num_granules,
        )

    def test_victims_leave_membership(self):
        cluster = make_cluster("marlin", num_nodes=3)
        cluster.run(until=0.05)
        run_gen(cluster, cluster.scale_in([2]))
        cluster.settle()
        assert sorted(cluster.ground_truth_mtable()) == [0, 1]

    def test_cannot_remove_all(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        with pytest.raises(ValueError):
            run_gen(cluster, cluster.scale_in([0, 1]))

    def test_scale_cycle_out_then_in(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=4096)
        cluster.run(until=0.05)
        run_gen(cluster, cluster.scale_out(2))
        cluster.settle()
        run_gen(cluster, cluster.scale_in([2, 3]))
        cluster.settle()
        check_invariants(
            cluster.ground_truth_gtable(),
            cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )
        counts = [len(cluster.nodes[n].owned_granules()) for n in (0, 1)]
        assert max(counts) - min(counts) <= 1


class TestGeoLayout:
    def test_nodes_round_robin_regions(self):
        cluster = make_cluster(
            "marlin",
            num_nodes=4,
            regions=("us-west", "asia-east"),
            home_region="us-west",
        )
        assert cluster.nodes[0].region == "us-west"
        assert cluster.nodes[1].region == "asia-east"
        assert cluster.nodes[2].region == "us-west"

    def test_glogs_live_in_node_region(self):
        cluster = make_cluster(
            "marlin",
            num_nodes=2,
            regions=("us-west", "asia-east"),
            home_region="us-west",
        )
        assert cluster.log_directory["glog-1"] == "storage-asia-east"
        assert cluster.log_directory[SYSLOG] == "storage-us-west"

    def test_geo_scale_out_works(self):
        cluster = make_cluster(
            "marlin",
            num_nodes=2,
            num_keys=2048,
            regions=("us-west", "asia-east"),
            home_region="us-west",
        )
        cluster.run(until=0.05)
        summary = run_gen(cluster, cluster.scale_out(2))
        assert summary["migrated"] > 0
        cluster.settle(0.5)
        check_view_consistency(
            [cluster.nodes[n] for n in cluster.live_node_ids()],
            cluster.gmap.num_granules,
        )


class TestPricing:
    def test_marlin_meta_cost_zero(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=10.0)
        report = cluster.price()
        assert report.meta_cost == 0.0
        assert report.db_cost > 0

    def test_zk_meta_cost_positive(self):
        cluster = make_cluster("zk-small", num_nodes=2)
        cluster.run(until=10.0)
        report = cluster.price()
        assert report.meta_cost == pytest.approx(10.0 / 3600 * 0.597)

    def test_db_cost_tracks_node_count(self):
        cluster = make_cluster("marlin", num_nodes=2)
        cluster.run(until=0.05)
        run_gen(cluster, cluster.scale_out(2))
        cluster.run(until=100.0)
        report = cluster.price()
        # 2 nodes briefly, then 4: cost between the 2-node and 4-node prices.
        two = 100 / 3600 * 2 * 0.192
        four = 100 / 3600 * 4 * 0.192
        assert two < report.db_cost <= four
