"""Property-based tests for conditional-append semantics (hypothesis).

The serializability of Marlin's reconfiguration transactions (invariant I1)
reduces to: concurrent conditional appends against the same expectation admit
exactly one winner, and LSNs are dense and monotone.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.backends import AzureAppendBlob, GcsGenerationLog, S3ExpressLog
from repro.storage.log import LogRecord, RecordKind, SharedLog
from repro.storage.pagestore import PageStore
from repro.storage.log import Put


@settings(max_examples=150, deadline=None)
@given(
    attempts=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),  # expected_lsn guess
            st.booleans(),                            # conditional?
        ),
        max_size=30,
    )
)
def test_lsn_density_and_cas_exclusion(attempts):
    log = SharedLog("prop")
    for i, (guess, conditional) in enumerate(attempts):
        before = log.end_lsn
        ok, lsn = log.append(
            f"t{i}",
            RecordKind.COMMIT_DATA,
            (),
            expected_lsn=guess if conditional else None,
        )
        if conditional and guess != before:
            assert not ok
            assert lsn == before == log.end_lsn
        else:
            assert ok
            assert lsn == before + 1 == log.end_lsn
    # LSNs are dense: record i has lsn i+1.
    for i, record in enumerate(log.records):
        assert record.lsn == i + 1


@settings(max_examples=60, deadline=None)
@given(
    n_writers=st.integers(min_value=2, max_value=8),
    rounds=st.integers(min_value=1, max_value=10),
)
def test_racing_writers_admit_one_winner_per_round(n_writers, rounds):
    """All writers CAS at the same observed LSN: exactly one wins per round."""
    log = SharedLog("race")
    for _round in range(rounds):
        observed = log.end_lsn
        winners = 0
        for w in range(n_writers):
            ok, _ = log.append(
                f"w{w}", RecordKind.COMMIT_DATA, (), expected_lsn=observed
            )
            winners += int(ok)
        assert winners == 1


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # key
            st.integers(min_value=0, max_value=99),  # value
        ),
        min_size=1,
        max_size=25,
    )
)
def test_replay_equals_sequential_application(ops):
    """Replaying the log yields the same table as applying writes in order."""
    log = SharedLog("replay")
    expected = {}
    for i, (key, value) in enumerate(ops):
        log.append(f"t{i}", RecordKind.COMMIT_DATA, (Put("tab", key, value),))
        expected[key] = value
    ps = PageStore()
    for record in log.records:
        ps.apply("replay", record)
    assert ps.snapshot("tab") == expected


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.integers(min_value=0, max_value=10), max_size=20),
    backend_name=st.sampled_from(["azure", "s3", "gcs"]),
)
def test_backends_equivalent_to_shared_log(trace, backend_name):
    """Every cloud dialect produces the same accept/reject sequence."""
    reference = SharedLog("ref")
    log = SharedLog("emu")
    backend = {
        "azure": AzureAppendBlob,
        "s3": S3ExpressLog,
        "gcs": GcsGenerationLog,
    }[backend_name](log)
    for i, guess in enumerate(trace):
        expect_ref = reference.append(
            f"t{i}", RecordKind.COMMIT_DATA, (), expected_lsn=guess
        )
        got = backend.conditional_append(f"t{i}", RecordKind.COMMIT_DATA, (), guess)
        assert got.ok == expect_ref.ok
        assert log.end_lsn == reference.end_lsn
