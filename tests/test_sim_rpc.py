"""Unit tests for the RPC layer (sync/async calls, timeouts, crashes)."""

import pytest

from repro.sim.core import Simulator, Timeout, all_of
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RemoteError, RpcEndpoint, RpcError, RpcTimeout


@pytest.fixture
def sim():
    return Simulator(seed=5)


@pytest.fixture
def net(sim):
    return Network(sim, LatencyModel(jitter_frac=0.0))


def make_pair(sim, net, region_a="us-west", region_b="us-west"):
    client = RpcEndpoint(sim, net, "client", region_a)
    server = RpcEndpoint(sim, net, "server", region_b)
    return client, server


class TestBasicCalls:
    def test_plain_handler(self, sim, net):
        client, server = make_pair(sim, net)
        server.register("add", lambda a, b: a + b)
        assert sim.run_until(client.call("server", "add", 2, 3)) == 5

    def test_generator_handler(self, sim, net):
        client, server = make_pair(sim, net)

        def slow_echo(x):
            yield Timeout(1.0)
            return x

        server.register("echo", slow_echo)
        fut = client.call("server", "echo", "hi")
        assert sim.run_until(fut) == "hi"
        assert sim.now > 1.0

    def test_round_trip_latency(self, sim, net):
        client, server = make_pair(sim, net)
        server.register("ping", lambda: "pong")
        fut = client.call("server", "ping")
        sim.run_until(fut)
        assert sim.now == pytest.approx(2 * net.latency.intra)

    def test_cross_region_round_trip(self, sim, net):
        client, server = make_pair(sim, net, "us-west", "asia-east")
        server.register("ping", lambda: "pong")
        fut = client.call("server", "ping")
        sim.run_until(fut)
        expected = 2 * net.latency.base_one_way("us-west", "asia-east")
        assert sim.now == pytest.approx(expected)

    def test_unknown_address_fails(self, sim, net):
        client, _server = make_pair(sim, net)
        fut = client.call("nowhere", "ping")
        with pytest.raises(RpcError):
            sim.run_until(fut)

    def test_unknown_method_fails(self, sim, net):
        client, _server = make_pair(sim, net)
        fut = client.call("server", "nope")
        with pytest.raises(RpcError):
            sim.run_until(fut)

    def test_handler_exception_becomes_remote_error(self, sim, net):
        client, server = make_pair(sim, net)

        def bad():
            raise ValueError("inner")

        server.register("bad", bad)
        fut = client.call("server", "bad")
        with pytest.raises(RemoteError) as excinfo:
            sim.run_until(fut)
        assert isinstance(excinfo.value.cause, ValueError)

    def test_generator_handler_exception(self, sim, net):
        client, server = make_pair(sim, net)

        def bad():
            yield Timeout(0.5)
            raise KeyError("later")

        server.register("bad", bad)
        fut = client.call("server", "bad")
        with pytest.raises(RemoteError) as excinfo:
            sim.run_until(fut)
        assert isinstance(excinfo.value.cause, KeyError)

    def test_async_calls_overlap(self, sim, net):
        """Two async RPCs issued together complete concurrently."""
        client, server = make_pair(sim, net)

        def slow(x):
            yield Timeout(1.0)
            return x

        server.register("slow", slow)
        results = []

        def proc():
            futs = [client.call("server", "slow", i) for i in range(3)]
            values = yield all_of(sim, futs)
            results.append((values, sim.now))

        sim.spawn(proc())
        sim.run()
        values, finished = results[0]
        assert values == [0, 1, 2]
        assert finished < 1.5  # parallel, not 3 seconds


class TestTimeouts:
    def test_timeout_fires_when_server_slow(self, sim, net):
        client, server = make_pair(sim, net)

        def very_slow():
            yield Timeout(10.0)
            return "late"

        server.register("slow", very_slow)
        fut = client.call("server", "slow", timeout=1.0)
        with pytest.raises(RpcTimeout):
            sim.run_until(fut)
        assert sim.now == pytest.approx(1.0)

    def test_fast_response_cancels_timeout(self, sim, net):
        client, server = make_pair(sim, net)
        server.register("ping", lambda: "pong")
        fut = client.call("server", "ping", timeout=5.0)
        assert sim.run_until(fut) == "pong"
        sim.run()  # timeout handle must be cancelled; no crash

    def test_late_response_discarded_after_timeout(self, sim, net):
        client, server = make_pair(sim, net)

        def slow():
            yield Timeout(2.0)
            return "late"

        server.register("slow", slow)
        fut = client.call("server", "slow", timeout=0.5)
        with pytest.raises(RpcTimeout):
            sim.run_until(fut)
        sim.run()  # late reply arrives; must not double-resolve
        assert isinstance(fut.exception, RpcTimeout)


class TestCrashes:
    def test_crashed_server_drops_request(self, sim, net):
        client, server = make_pair(sim, net)
        server.register("ping", lambda: "pong")
        server.crashed = True
        fut = client.call("server", "ping", timeout=1.0)
        with pytest.raises(RpcTimeout):
            sim.run_until(fut)

    def test_crashed_server_without_timeout_never_resolves(self, sim, net):
        client, server = make_pair(sim, net)
        server.register("ping", lambda: "pong")
        server.crashed = True
        fut = client.call("server", "ping")
        sim.run()
        assert not fut.done

    def test_server_crash_mid_handler_drops_response(self, sim, net):
        client, server = make_pair(sim, net)

        def slow():
            yield Timeout(2.0)
            return "done"

        server.register("slow", slow)
        fut = client.call("server", "slow", timeout=5.0)
        sim.call_after(1.0, lambda: setattr(server, "crashed", True))
        with pytest.raises(RpcTimeout):
            sim.run_until(fut)

    def test_recovered_server_serves_again(self, sim, net):
        client, server = make_pair(sim, net)
        server.register("ping", lambda: "pong")
        server.crashed = True
        fut1 = client.call("server", "ping", timeout=0.5)
        sim.run()
        assert isinstance(fut1.exception, RpcTimeout)
        server.crashed = False
        fut2 = client.call("server", "ping", timeout=0.5)
        assert sim.run_until(fut2) == "pong"

    def test_crashed_caller_sends_nothing(self, sim, net):
        client, server = make_pair(sim, net)
        served = []
        server.register("ping", lambda: served.append(1) or "pong")
        client.crashed = True
        fut = client.call("server", "ping", timeout=0.5)
        sim.run()
        assert served == []
        assert isinstance(fut.exception, RpcTimeout)


class TestCast:
    def test_cast_delivers_one_way(self, sim, net):
        client, server = make_pair(sim, net)
        seen = []
        server.register("notify", lambda msg: seen.append(msg))
        client.cast("server", "notify", "hello")
        sim.run()
        assert seen == ["hello"]

    def test_cast_to_unknown_address_is_silent(self, sim, net):
        client, _server = make_pair(sim, net)
        client.cast("nowhere", "notify", "x")
        sim.run()  # no exception

    def test_cast_to_crashed_server_dropped(self, sim, net):
        client, server = make_pair(sim, net)
        seen = []
        server.register("notify", lambda msg: seen.append(msg))
        server.crashed = True
        client.cast("server", "notify", "x")
        sim.run()
        assert seen == []


class TestRegistration:
    def test_duplicate_address_rejected(self, sim, net):
        RpcEndpoint(sim, net, "dup", "us-west")
        with pytest.raises(Exception):
            RpcEndpoint(sim, net, "dup", "us-west")

    def test_requests_served_counter(self, sim, net):
        client, server = make_pair(sim, net)
        server.register("ping", lambda: "pong")
        for _ in range(3):
            sim.run_until(client.call("server", "ping"))
        assert server.requests_served == 3
