"""Tests for the Azure / S3 / GCS conditional-write dialect emulations (§5)."""

import pytest

from repro.storage.backends import (
    HTTP_CREATED,
    HTTP_PRECONDITION_FAILED,
    AzureAppendBlob,
    GcsGenerationLog,
    S3ExpressLog,
)
from repro.storage.log import RecordKind, SharedLog


@pytest.fixture(params=["azure", "s3", "gcs"])
def backend(request):
    log = SharedLog("wal")
    cls = {
        "azure": AzureAppendBlob,
        "s3": S3ExpressLog,
        "gcs": GcsGenerationLog,
    }[request.param]
    return cls(log)


class TestDialectEquivalence:
    """All three dialects implement the same Append@LSN contract."""

    def test_append_at_current_lsn_succeeds(self, backend):
        result = backend.conditional_append("t1", RecordKind.COMMIT_DATA, (), 0)
        assert result.ok and result.lsn == 1

    def test_append_at_stale_lsn_fails(self, backend):
        backend.conditional_append("t1", RecordKind.COMMIT_DATA, (), 0)
        result = backend.conditional_append("t2", RecordKind.COMMIT_DATA, (), 0)
        assert not result.ok
        assert result.lsn == 1
        assert backend.log.end_lsn == 1

    def test_retry_with_returned_lsn_succeeds(self, backend):
        backend.conditional_append("t1", RecordKind.COMMIT_DATA, (), 0)
        failed = backend.conditional_append("t2", RecordKind.COMMIT_DATA, (), 0)
        retried = backend.conditional_append(
            "t2", RecordKind.COMMIT_DATA, (), failed.lsn
        )
        assert retried.ok and retried.lsn == 2

    def test_interleaved_writers_serialize(self, backend):
        r1 = backend.conditional_append("a", RecordKind.COMMIT_DATA, (), 0)
        r2 = backend.conditional_append("b", RecordKind.COMMIT_DATA, (), 0)
        assert r1.ok != r2.ok or backend.log.end_lsn == 2


class TestAzureDialect:
    def test_if_match_etag(self):
        blob = AzureAppendBlob(SharedLog("wal"))
        etag = blob.etag
        status, new_etag = blob.append_block(
            "t1", RecordKind.COMMIT_DATA, if_match=etag
        )
        assert status == HTTP_CREATED
        assert new_etag != etag

    def test_if_match_stale_etag_412(self):
        blob = AzureAppendBlob(SharedLog("wal"))
        old = blob.etag
        blob.append_block("t1", RecordKind.COMMIT_DATA)
        status, current = blob.append_block(
            "t2", RecordKind.COMMIT_DATA, if_match=old
        )
        assert status == HTTP_PRECONDITION_FAILED
        assert current == blob.etag

    def test_appendpos_condition(self):
        blob = AzureAppendBlob(SharedLog("wal"))
        status, _ = blob.append_block(
            "t1", RecordKind.COMMIT_DATA, if_appendpos_equal=0
        )
        assert status == HTTP_CREATED
        status, _ = blob.append_block(
            "t2", RecordKind.COMMIT_DATA, if_appendpos_equal=0
        )
        assert status == HTTP_PRECONDITION_FAILED

    def test_unconditional_append_always_succeeds(self):
        blob = AzureAppendBlob(SharedLog("wal"))
        for i in range(3):
            status, _ = blob.append_block(f"t{i}", RecordKind.COMMIT_DATA)
            assert status == HTTP_CREATED


class TestS3Dialect:
    def test_write_offset_semantics(self):
        s3 = S3ExpressLog(SharedLog("wal"))
        status, _ = s3.put("t1", RecordKind.COMMIT_DATA, write_offset_bytes=0)
        assert status == HTTP_CREATED
        status, _ = s3.put("t2", RecordKind.COMMIT_DATA, write_offset_bytes=0)
        assert status == HTTP_PRECONDITION_FAILED

    def test_if_match(self):
        s3 = S3ExpressLog(SharedLog("wal"))
        etag = s3.etag
        assert s3.put("t1", RecordKind.COMMIT_DATA, if_match=etag)[0] == HTTP_CREATED
        assert (
            s3.put("t2", RecordKind.COMMIT_DATA, if_match=etag)[0]
            == HTTP_PRECONDITION_FAILED
        )


class TestGcsDialect:
    def test_generation_match(self):
        gcs = GcsGenerationLog(SharedLog("wal"))
        gcs.upload_temp("tmp1", "t1", RecordKind.COMMIT_DATA, ())
        status, gen = gcs.compose("tmp1", if_generation_match=0)
        assert status == HTTP_CREATED and gen == 1

    def test_generation_mismatch(self):
        gcs = GcsGenerationLog(SharedLog("wal"))
        gcs.upload_temp("tmp1", "t1", RecordKind.COMMIT_DATA, ())
        gcs.compose("tmp1", if_generation_match=0)
        gcs.upload_temp("tmp2", "t2", RecordKind.COMMIT_DATA, ())
        status, gen = gcs.compose("tmp2", if_generation_match=0)
        assert status == HTTP_PRECONDITION_FAILED and gen == 1

    def test_compose_unknown_temp_raises(self):
        gcs = GcsGenerationLog(SharedLog("wal"))
        with pytest.raises(KeyError):
            gcs.compose("missing")

    def test_staged_object_consumed_on_success(self):
        gcs = GcsGenerationLog(SharedLog("wal"))
        gcs.upload_temp("tmp1", "t1", RecordKind.COMMIT_DATA, ())
        gcs.compose("tmp1", if_generation_match=0)
        with pytest.raises(KeyError):
            gcs.compose("tmp1", if_generation_match=1)
