"""Unit tests for the StorageService RPC surface."""

import pytest

from repro.sim.core import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RemoteError, RpcEndpoint
from repro.storage.log import AppendResult, Put, RecordKind
from repro.storage.service import StorageService


@pytest.fixture
def env():
    sim = Simulator(seed=7)
    net = Network(sim, LatencyModel(jitter_frac=0.0))
    storage = StorageService(sim, net, address="storage", region="us-west")
    client = RpcEndpoint(sim, net, "client", "us-west")
    return sim, net, storage, client


class TestAppendRpc:
    def test_append_over_rpc(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        fut = client.call(
            "storage", "append", "glog-1", "t1", RecordKind.COMMIT_DATA,
            (Put("tab", 1, "a"),), None,
        )
        ok, lsn = sim.run_until(fut)
        assert (ok, lsn) == (True, 1)

    def test_conditional_append_conflict_over_rpc(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        storage.log("glog-1").append("other", RecordKind.COMMIT_DATA, ())
        fut = client.call(
            "storage", "append", "glog-1", "t1", RecordKind.COMMIT_DATA, (), 0,
        )
        ok, lsn = sim.run_until(fut)
        assert (ok, lsn) == (False, 1)

    def test_append_to_missing_log_raises(self, env):
        sim, _net, _storage, client = env
        fut = client.call(
            "storage", "append", "nope", "t1", RecordKind.COMMIT_DATA, (), None,
        )
        with pytest.raises(RemoteError):
            sim.run_until(fut)

    def test_append_latency_modeled(self, env):
        sim, net, storage, client = env
        storage.create_log("glog-1")
        fut = client.call(
            "storage", "append", "glog-1", "t", RecordKind.COMMIT_DATA, (), None,
        )
        sim.run_until(fut)
        expected = 2 * net.latency.intra + storage.append_latency
        assert sim.now == pytest.approx(expected)


class TestReads:
    def test_get_page_waits_for_replay(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        storage.log("glog-1").append(
            "t1", RecordKind.COMMIT_DATA, (Put("tab", 5, "val"),)
        )
        fut = client.call("storage", "get_page", "tab", 5, "glog-1", 1)
        assert sim.run_until(fut) == "val"

    def test_get_page_returns_latest_applied(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        log = storage.log("glog-1")
        log.append("t1", RecordKind.COMMIT_DATA, (Put("tab", 5, "old"),))
        log.append("t2", RecordKind.COMMIT_DATA, (Put("tab", 5, "new"),))
        fut = client.call("storage", "get_page", "tab", 5, "glog-1", 2)
        assert sim.run_until(fut) == "new"

    def test_scan_table_snapshot(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        storage.log("glog-1").append(
            "t", RecordKind.COMMIT_DATA,
            tuple(Put("tab", i, i * 10) for i in range(3)),
        )
        fut = client.call("storage", "scan_table", "tab", "glog-1", 1)
        assert sim.run_until(fut) == {0: 0, 1: 10, 2: 20}

    def test_read_log_tail(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        log = storage.log("glog-1")
        for i in range(4):
            log.append(f"t{i}", RecordKind.COMMIT_DATA, ())
        fut = client.call("storage", "read_log", "glog-1", 2)
        records = sim.run_until(fut)
        assert [r.txn_id for r in records] == ["t2", "t3"]

    def test_log_end_lsn(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        storage.log("glog-1").append("t", RecordKind.COMMIT_DATA, ())
        fut = client.call("storage", "log_end_lsn", "glog-1")
        assert sim.run_until(fut) == 1

    def test_check_lsn_probe(self, env):
        sim, _net, storage, client = env
        storage.create_log("glog-1")
        storage.log("glog-1").append("t", RecordKind.COMMIT_DATA, ())
        assert sim.run_until(client.call("storage", "check_lsn", "glog-1", 1)) == (
            True,
            1,
        )
        assert sim.run_until(client.call("storage", "check_lsn", "glog-1", 0)) == (
            False,
            1,
        )


class TestAdmin:
    def test_create_log_idempotent(self, env):
        sim, _net, storage, client = env
        sim.run_until(client.call("storage", "create_log", "glog-9"))
        storage.log("glog-9").append("t", RecordKind.COMMIT_DATA, ())
        sim.run_until(client.call("storage", "create_log", "glog-9"))
        assert storage.log("glog-9").end_lsn == 1  # not recreated

    def test_counters(self, env):
        sim, _net, storage, client = env
        storage.create_log("l")
        sim.run_until(
            client.call("storage", "append", "l", "t", RecordKind.COMMIT_DATA, (), None)
        )
        sim.run_until(client.call("storage", "read_log", "l", 0))
        assert storage.appends_served == 1
        assert storage.reads_served == 1
