"""Tests for the extension features: suspicion voting, router sync,
single-writer archetype (the paper's §4.4.2 optimization and §5
generalization)."""

import pytest

from repro.core.archetypes import PRIMARY_KEY, SingleWriterCoordinator
from repro.core.suspicion import SuspicionFailureDetector, suspect_key
from repro.engine.node import MTABLE, SYSLOG
from repro.workload.syncer import RouterSyncer
from repro.workload.client import Router
from tests.conftest import make_cluster, run_gen


def attach_detectors(cluster, **kwargs):
    detectors = {}
    for nid in cluster.live_node_ids():
        det = SuspicionFailureDetector(cluster.nodes[nid].runtime, **kwargs)
        det.start()
        detectors[nid] = det
    return detectors


class TestSuspicionVoting:
    def test_healthy_cluster_casts_no_votes(self):
        cluster = make_cluster("marlin", num_nodes=3, num_keys=3072, seed=31)
        detectors = attach_detectors(cluster)
        cluster.run(until=5.0)
        assert all(d.votes_cast == 0 for d in detectors.values())
        assert cluster.metrics.failovers == []

    def test_votes_recorded_in_mtable(self):
        cluster = make_cluster("marlin", num_nodes=4, num_keys=4096, seed=32)
        detectors = attach_detectors(
            cluster, vote_threshold=3, miss_threshold=2, successors=2
        )
        cluster.fail_node(1)
        cluster.run(until=4.0)
        voters = [
            d for nid, d in detectors.items() if nid != 1 and d.votes_cast
        ]
        assert voters
        mtable = cluster.nodes[0].mtable
        assert any(
            isinstance(k, str) and k.startswith("suspect:1:") for k in mtable
        )

    def test_threshold_two_evicts_dead_node(self):
        cluster = make_cluster("marlin", num_nodes=4, num_keys=4096, seed=33)
        attach_detectors(cluster, vote_threshold=2, successors=2)
        cluster.run(until=0.5)
        cluster.fail_node(2)
        cluster.run(until=12.0)
        assert cluster.metrics.failovers
        assert 2 not in cluster.ground_truth_mtable()
        # Suspicion rows were cleaned up after the failover.
        survivors = [n for n in cluster.live_node_ids()]
        mtable = cluster.nodes[survivors[0]].mtable
        assert not any(
            isinstance(k, str) and k.startswith("suspect:2:") for k in mtable
        )

    def test_single_slow_probe_does_not_evict(self):
        """With threshold 2, one voter alone never triggers failover."""
        cluster = make_cluster("marlin", num_nodes=3, num_keys=3072, seed=34)
        det = SuspicionFailureDetector(
            cluster.nodes[0].runtime, vote_threshold=2, successors=1
        )
        det.start()  # only node 0 monitors
        cluster.fail_node(1)
        cluster.run(until=6.0)
        assert det.votes_cast >= 1
        assert det.failovers_started == 0
        assert 1 in cluster.ground_truth_mtable()

    def test_recovered_node_vote_retracted(self):
        cluster = make_cluster("marlin", num_nodes=3, num_keys=3072, seed=35)
        det = SuspicionFailureDetector(
            cluster.nodes[0].runtime, vote_threshold=5, successors=1
        )
        det.start()
        cluster.fail_node(1)
        cluster.run(until=4.0)
        assert det.votes_cast >= 1
        assert suspect_key(1, 0) in cluster.nodes[0].mtable
        cluster.resume_node(1)
        cluster.run(until=8.0)
        assert det.retractions >= 1
        assert suspect_key(1, 0) not in cluster.nodes[0].mtable

    def test_member_ids_ignore_suspect_rows(self):
        cluster = make_cluster("marlin", num_nodes=2, seed=36)
        node = cluster.nodes[0]
        node.mtable[suspect_key(1, 0)] = 1.0
        assert node.member_ids() == [0, 1]
        assert node.runtime.members() == {0: "node-0", 1: "node-1"}


class TestRouterSyncer:
    def test_sync_pulls_full_map(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=2048, seed=37)
        cluster.run(until=0.05)
        router = Router({})
        syncer = RouterSyncer(cluster, router, period=0.5)
        syncer.start()
        cluster.run(until=1.5)
        assert syncer.syncs >= 1
        assert len(router.map) == cluster.gmap.num_granules

    def test_sync_tracks_migrations(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=2048, seed=38)
        cluster.run(until=0.05)
        router = Router(cluster.assignment_from_views())
        syncer = RouterSyncer(cluster, router, period=0.5)
        syncer.start()
        granule = cluster.nodes[1].owned_granules()[0]
        run_gen(cluster, cluster.nodes[0].runtime.migrate(granule, 1, 0))
        cluster.run(until=cluster.sim.now + 1.5)
        assert router.map[granule] == 0

    def test_sync_survives_frozen_node(self):
        cluster = make_cluster("marlin", num_nodes=3, num_keys=3072, seed=39)
        cluster.run(until=0.05)
        router = Router({})
        syncer = RouterSyncer(cluster, router, period=0.4)
        syncer.start()
        cluster.fail_node(2)
        cluster.run(until=4.0)
        # Scans that touch the frozen member abort and are skipped.
        assert syncer.failures >= 1
        syncer.stop()

    def test_stop_halts_sync(self):
        cluster = make_cluster("marlin", num_nodes=2, seed=40)
        cluster.run(until=0.05)
        router = Router({})
        syncer = RouterSyncer(cluster, router, period=0.3)
        syncer.start()
        cluster.run(until=1.0)
        count = syncer.syncs
        syncer.stop()
        cluster.run(until=3.0)
        assert syncer.syncs == count


class TestSingleWriterArchetype:
    def make_pair(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=1024, seed=41)
        cluster.run(until=0.05)
        coords = {
            nid: SingleWriterCoordinator(cluster.nodes[nid].runtime)
            for nid in (0, 1)
        }
        return cluster, coords

    def test_bootstrap_first_writer_wins(self):
        cluster, coords = self.make_pair()
        assert run_gen(cluster, coords[0].bootstrap_primary())
        assert coords[0].is_primary()
        assert not run_gen(cluster, coords[1].bootstrap_primary())

    def test_promotion_after_primary_failure(self):
        cluster, coords = self.make_pair()
        run_gen(cluster, coords[0].bootstrap_primary())
        cluster.fail_node(0)
        ok = run_gen(cluster, coords[1].promote(failed_primary=0))
        assert ok
        assert coords[1].is_primary()
        cluster.settle()
        home = cluster.storages[cluster.config.home_region]
        assert home.pagestore.get(MTABLE, PRIMARY_KEY) == 1

    def test_stale_promotion_validates(self):
        """Promoting 'from' a node that is no longer primary is refused."""
        cluster, coords = self.make_pair()
        run_gen(cluster, coords[0].bootstrap_primary())
        assert not run_gen(cluster, coords[1].promote(failed_primary=99))

    def test_returned_old_primary_sees_new_one(self):
        cluster, coords = self.make_pair()
        run_gen(cluster, coords[0].bootstrap_primary())
        cluster.fail_node(0)
        run_gen(cluster, coords[1].promote(failed_primary=0))
        cluster.resume_node(0)
        # The old primary still believes it holds the role; when it tries to
        # re-assert (replacing "failed" primary 0 = itself), the
        # authoritative refresh reveals node 1 took over, and the validation
        # step refuses.
        assert coords[0].is_primary()
        ok = run_gen(cluster, coords[0].promote(failed_primary=0))
        assert not ok
        assert coords[0].current_primary() == 1
        assert not coords[0].is_primary()

    def test_demote_releases_role(self):
        cluster, coords = self.make_pair()
        run_gen(cluster, coords[0].bootstrap_primary())
        assert run_gen(cluster, coords[0].demote())
        assert coords[0].current_primary() is None
        assert run_gen(cluster, coords[1].bootstrap_primary())

    def test_concurrent_promotions_one_winner(self):
        cluster, coords = self.make_pair()
        run_gen(cluster, coords[0].bootstrap_primary())
        cluster.fail_node(0)
        cluster.run(until=cluster.sim.now + 0.05)
        node2 = cluster._make_node(2)
        node2.start()
        coords[2] = SingleWriterCoordinator(node2.runtime)
        p1 = cluster.sim.spawn(coords[1].promote(failed_primary=0), daemon=True)
        p2 = cluster.sim.spawn(coords[2].promote(failed_primary=0), daemon=True)
        cluster.run(until=cluster.sim.now + 2.0)
        results = [p.result.result() for p in (p1, p2)]
        assert sum(bool(r) for r in results) == 1
        winner = 1 if results[0] else 2
        assert coords[winner].is_primary()
