"""Tests for the router and closed-loop clients."""

import random

import pytest

from repro.workload.client import Client, Router
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from tests.conftest import make_cluster


@pytest.fixture
def pair():
    cluster = make_cluster("marlin", num_nodes=2)
    cluster.run(until=0.05)
    return cluster


def start_clients(cluster, count=4, seed=0, request_timeout=5.0, **ycsb_kwargs):
    router = Router(cluster.assignment_from_views())
    workload = YcsbWorkload(cluster.gmap, YcsbConfig(**ycsb_kwargs))
    clients = [
        Client(
            cluster.sim, cluster.network, "us-west", router, workload,
            cluster.metrics, cluster.gmap, seed=seed + i,
            request_timeout=request_timeout,
        )
        for i in range(count)
    ]
    for c in clients:
        c.start()
    return router, clients


class TestRouter:
    def test_route_known_granule(self):
        router = Router({0: 1, 1: 2})
        assert router.route(0) == 1
        assert router.route(1) == 2

    def test_unknown_granule_raises(self):
        with pytest.raises(KeyError):
            Router({}).route(5)

    def test_update_learns_hint(self):
        router = Router({0: 1})
        router.update(0, 3)
        assert router.route(0) == 3
        assert 3 in router.known_nodes
        assert router.redirects == 1

    def test_sync_bulk_refresh(self):
        router = Router({0: 1, 1: 1})
        router.sync({0: 2, 1: 2})
        assert router.route(0) == 2
        assert router.known_nodes == {2}

    def test_any_node_excludes(self):
        router = Router({0: 1, 1: 2})
        rng = random.Random(0)
        for _ in range(20):
            assert router.any_node(rng, exclude=1) == 2

    def test_any_node_falls_back_when_only_excluded(self):
        router = Router({0: 1})
        rng = random.Random(0)
        assert router.any_node(rng, exclude=1) == 1

    def test_any_node_cache_tracks_membership_changes(self):
        router = Router({0: 1})
        rng = random.Random(0)
        assert router.any_node(rng) == 1  # warm the cache
        router.update(1, 5)
        assert {router.any_node(rng) for _ in range(30)} == {1, 5}
        router.drop_node(1)
        assert {router.any_node(rng) for _ in range(30)} == {5}
        router.sync({0: 7, 1: 7})
        assert {router.any_node(rng) for _ in range(30)} == {7}

    def test_any_node_exclude_unknown_node_uses_full_set(self):
        router = Router({0: 1, 1: 2})
        rng = random.Random(0)
        assert {router.any_node(rng, exclude=99) for _ in range(30)} == {1, 2}


class TestClient:
    def test_clients_commit_transactions(self, pair):
        _router, clients = start_clients(pair)
        pair.run(until=1.0)
        for c in clients:
            c.stop()
        assert pair.metrics.total_committed > 50
        assert all(c.committed > 0 for c in clients)

    def test_latency_recorded(self, pair):
        _router, clients = start_clients(pair, count=2)
        pair.run(until=1.0)
        for c in clients:
            c.stop()
        stats = pair.metrics.latency_stats()
        assert 0 < stats["p50"] < 0.5

    def test_closed_loop_one_txn_at_a_time(self, pair):
        """A single client's commits never exceed time/latency bound."""
        _router, clients = start_clients(pair, count=1)
        pair.run(until=1.0)
        clients[0].stop()
        floor = pair.metrics.latency_stats()["p50"]
        assert clients[0].committed <= 1.0 / floor * 1.5

    def test_stale_router_recovers_via_hint(self, pair):
        """Point every granule at node 0; misroutes redirect to node 1."""
        router, clients = start_clients(pair, count=2)
        for granule in list(router.map):
            router.map[granule] = 0
        pair.run(until=1.0)
        for c in clients:
            c.stop()
        assert router.redirects > 0
        assert pair.metrics.total_committed > 10
        assert pair.metrics.abort_reasons.get("wrong_node", 0) > 0

    def test_client_retries_through_node_freeze(self, pair):
        """Without failover, txns on the dead node's granules retry forever
        (the paper's clients never give up); timeouts are recorded."""
        router, clients = start_clients(pair, count=2, request_timeout=0.2)
        pair.run(until=0.5)
        retries_before = sum(c.retries for c in clients)
        pair.fail_node(1)
        pair.run(until=2.0)
        for c in clients:
            c.stop()
        assert pair.metrics.abort_reasons.get("timeout", 0) > 0
        assert sum(c.retries for c in clients) > retries_before

    def test_failover_unblocks_clients(self):
        """With ring detection on, commits resume after the failover."""
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, failure_detection=True
        )
        cluster.run(until=0.05)
        _router, clients = start_clients(cluster, count=3, request_timeout=0.2)
        cluster.run(until=0.5)
        cluster.fail_node(1)
        cluster.run(until=6.0)  # detection + recovery
        checkpoint = cluster.metrics.total_committed
        cluster.run(until=8.0)
        for c in clients:
            c.stop()
        assert cluster.metrics.failovers
        assert cluster.metrics.total_committed > checkpoint

    def test_stop_halts_issue_loop(self, pair):
        _router, clients = start_clients(pair, count=1)
        pair.run(until=0.5)
        clients[0].stop()
        count = pair.metrics.total_committed
        pair.run(until=1.5)
        assert pair.metrics.total_committed == count
