"""fig7 symmetry: every coordination mode detects and recovers the crash.

Regression suite for the symmetric-failure-detection tentpole.  Before it,
only Marlin ran a detector, so the crash_restart column compared Marlin's
failover against baselines that silently never recovered — an asymmetric
(and flattering) comparison.  Now all four modes detect: Marlin's
vote-gated ring, zk/fdb the session-confirmed ring, lease TTL expiry + CAS
self-promotion.  This suite pins that symmetry:

- every mode sees the byte-identical crash schedule (it is part of the
  spec, not the harness);
- every mode records at least one failover with a full recovery (all 100
  of the victim's granules migrated) and a finite, non-vacuous
  ``migration_p99_s``;
- every mode pays measurable liveness traffic (``renewal_rpcs``) and
  detects after the fault lands (``first_failover_s > FAULT_AT``);
- the lease cell matches :data:`FIG7_LEASE_GOLDEN` exactly — re-capturing
  it on behaviour change rotates ``CACHE_EPOCH`` automatically.
"""

import json

import pytest

from repro.experiments import fig7
from repro.experiments.goldens import FIG7_LEASE_GOLDEN
from repro.experiments.runner import run_spec

SYSTEMS = fig7.DEFAULT_SYSTEMS
SCALE = 0.25
SEED = 1


@pytest.fixture(scope="module")
def crash_cells():
    """One crash_restart cell per coordination mode, shared by the module."""
    specs = {
        system: fig7.slo_spec(system, "crash_restart", scale=SCALE, seed=SEED)
        for system in SYSTEMS
    }
    results = {system: run_spec(spec) for system, spec in specs.items()}
    return specs, results


def test_covers_all_four_modes():
    assert set(SYSTEMS) == {"marlin", "zk-small", "fdb", "lease"}


def test_crash_schedule_is_byte_identical_across_modes(crash_cells):
    specs, _results = crash_cells
    blobs = {
        system: json.dumps(spec.faults.schedule, sort_keys=True)
        for system, spec in specs.items()
    }
    assert len(set(blobs.values())) == 1, blobs
    assert all(spec.faults.failure_detection for spec in specs.values())


@pytest.mark.parametrize("system", SYSTEMS)
def test_every_mode_fails_over_and_recovers(crash_cells, system):
    _specs, results = crash_cells
    result = results[system]
    m = result.metrics
    probes = {p.name: p for p in result.probes}
    fd = result.extras.get("failure_detection") or {}
    # Node 1 owns a quarter of the 400 granules; a full failover moves all
    # of them exactly once.
    assert len(m.failovers) == 1, f"{system}: {m.failovers}"
    assert m.failovers[0][1] == 1  # the victim
    assert m.total_migrations == 100
    # Non-vacuous control-plane SLO: the probe measured real migrations.
    assert probes["migration_p99"].value is not None
    assert probes["migration_p99"].value > 0.0
    # Detection happened after the fault landed, and liveness maintenance
    # (heartbeats / session pings / lease renewals) was actually paid.
    assert fd.get("first_failover_s") is not None
    assert fd["first_failover_s"] > fig7.FAULT_AT
    assert fd["renewal_rpcs"] > 0
    assert m.total_committed > 0


def test_lease_cell_matches_golden(crash_cells):
    _specs, results = crash_cells
    result = results["lease"]
    m = result.metrics
    probes = {p.name: p for p in result.probes}
    fd = result.extras["failure_detection"]
    actual = {
        "committed": m.total_committed,
        "aborted": m.total_aborted,
        "migrations": m.total_migrations,
        "failovers": len(m.failovers),
        "migration_p99_s": probes["migration_p99"].value,
        "first_failover_s": fd["first_failover_s"],
        "renewal_rpcs": fd["renewal_rpcs"],
    }
    assert actual == FIG7_LEASE_GOLDEN


def test_summarize_emits_detection_columns(crash_cells):
    """The fig7 table carries the detection-latency/renewal-traffic
    trade-off for every mode."""
    _specs, results = crash_cells
    fig = fig7.summarize(
        {("crash_restart", system): results[system] for system in SYSTEMS}
    )
    assert len(fig.rows) == len(SYSTEMS)
    for row in fig.rows:
        assert row["detection_latency_s"] is not None
        assert row["detection_latency_s"] > 0.0
        assert row["renewal_rpcs"] > 0
        assert row["migration_p99_s"] is not None
    # Lease detection is bounded by ttl + check_interval = 2.0s; the ring
    # detectors need miss_threshold probes plus confirmation.  The ordering
    # is part of the trade-off story, so pin it loosely.
    by_system = {row["system"]: row for row in fig.rows}
    assert by_system["Lease"]["detection_latency_s"] < 2.0
