"""Unit tests for the clock-replacement cache manager."""

import pytest

from repro.engine.buffer import MISS, CacheManager


class TestBasics:
    def test_miss_then_hit(self):
        cache = CacheManager(4)
        assert cache.get("p1") is MISS
        cache.put("p1", "v1")
        assert cache.get("p1") == "v1"
        assert cache.hits == 1 and cache.misses == 1

    def test_update_in_place(self):
        cache = CacheManager(4)
        cache.put("p1", "old")
        cache.put("p1", "new")
        assert cache.get("p1") == "new"
        assert len(cache) == 1

    def test_cached_none_is_not_miss(self):
        cache = CacheManager(4)
        cache.put("p1", None)
        assert cache.get("p1") is None

    def test_contains_and_len(self):
        cache = CacheManager(4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CacheManager(0)

    def test_hit_ratio(self):
        cache = CacheManager(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_ratio == pytest.approx(0.5)


class TestClockEviction:
    def test_evicts_when_full(self):
        cache = CacheManager(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("c") == 3

    def test_second_chance_protects_referenced(self):
        cache = CacheManager(2)
        cache.put("a", 1)
        cache.put("b", 2)
        # Reference "a" so its ref bit survives one clock sweep; the clock
        # clears both ref bits then evicts "a" (hand order) only after "b".
        cache.get("a")  # ref(a)=1
        cache.put("c", 3)
        # "a" was re-referenced: after one sweep, a victim must be found among
        # pages with ref=0; "b" was not re-referenced after insertion sweep.
        assert "c" in cache
        assert len(cache) == 2

    def test_all_referenced_still_evicts_one(self):
        cache = CacheManager(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        for key in ("a", "b", "c"):
            cache.get(key)
        cache.put("d", "d")
        assert len(cache) == 3
        assert "d" in cache

    def test_eviction_order_unreferenced_first(self):
        cache = CacheManager(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("b")
        cache.get("c")
        cache.put("d", 4)  # "a" has ref from insert; sweep clears, evicts a
        cache.put("e", 5)
        assert "d" in cache and "e" in cache

    def test_pinned_pages_never_evicted(self):
        cache = CacheManager(2)
        cache.put("a", 1)
        cache.pin("a")
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)
        assert cache.get("a") == 1
        cache.unpin("a")

    def test_all_pinned_raises(self):
        cache = CacheManager(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.pin("a")
        cache.pin("b")
        with pytest.raises(RuntimeError):
            cache.put("c", 3)

    def test_heavy_churn_respects_capacity(self):
        cache = CacheManager(16)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 16
        assert cache.evictions == 1000 - 16


class TestInvalidate:
    def test_invalidate_cached(self):
        cache = CacheManager(4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.get("a") is MISS

    def test_invalidate_missing(self):
        cache = CacheManager(4)
        assert cache.invalidate("nope") is False

    def test_hole_is_reused(self):
        cache = CacheManager(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        cache.put("c", 3)
        assert "b" in cache and "c" in cache

    def test_clear(self):
        cache = CacheManager(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is MISS
        cache.put("b", 2)  # usable after clear
        assert cache.get("b") == 2
