"""Property test: the split-heap kernel vs a single-heap reference model.

The split scheduler (ready queue + fire-and-forget heap + cancellable heap,
one shared seq counter) claims to execute *exactly* the global ``(time,
scheduling-seq)`` order of the classic single-heap kernel.  The reference
model here IS that classic kernel, reduced to its ordering essence: every
scheduling — ``call_soon`` included — takes a ``(when, seq)`` ticket into
one binary heap, pops run in ``(when, seq)`` order, cancellation is a lazy
flag.  Hypothesis drives both kernels with the same randomized program of
interleaved ``call_soon`` / ``call_at`` / ``call_after`` / ``timer`` /
``timer_token`` / ``cancel`` operations issued from *inside* callbacks
(heavy on time ties, so the heap-vs-ready merge rule is actually exercised),
and the execution traces must match event for event.
"""

import itertools
import random
from heapq import heappop, heappush

from hypothesis import given, settings, strategies as st

from repro.sim.core import Simulator

#: Small discrete delays, repeated values on purpose: ties between heap
#: entries and ready entries at the same instant are the interesting case.
DELAYS = (0.0, 0.0, 0.25, 0.5, 0.5, 1.0, 2.5)

KINDS = ("soon", "at", "after", "timer", "timer_token")


class Token:
    """Shared cancellation token: duck-types both Handle and timer_token."""

    cancelled = False

    def cancel(self):
        self.cancelled = True


class ReferenceKernel:
    """The classic single-heap scheduler, stripped to its ordering contract."""

    def __init__(self):
        self._heap = []
        self._seq = itertools.count(1)
        self.now = 0.0

    def _push(self, when, fn):
        token = Token()
        heappush(self._heap, (when, next(self._seq), token, fn))
        return token

    def call_soon(self, fn):
        return self._push(self.now, fn)

    def call_at(self, when, fn):
        return self._push(when, fn)

    def call_after(self, delay, fn):
        return self._push(self.now + delay, fn)

    def timer(self, delay, fn):
        self._push(self.now + delay, fn)
        return None

    def timer_token(self, delay, fn):
        return self._push(self.now + delay, fn)

    def run(self):
        while self._heap:
            when, _seq, token, fn = heappop(self._heap)
            if token.cancelled:
                continue
            self.now = when
            fn()


class KernelAdapter:
    """The real :class:`Simulator` behind the reference's driving surface."""

    def __init__(self):
        self.sim = Simulator(seed=0)

    @property
    def now(self):
        return self.sim.now

    def call_soon(self, fn):
        return self.sim.call_soon(fn)

    def call_at(self, when, fn):
        return self.sim.call_at(when, fn)

    def call_after(self, delay, fn):
        return self.sim.call_after(delay, fn)

    def timer(self, delay, fn):
        self.sim.timer(delay, fn)
        return None

    def timer_token(self, delay, fn):
        token = Token()
        self.sim.timer_token(delay, token, fn)
        return token

    def run(self):
        self.sim.run()


def drive(kernel, seed: int, n_initial: int, budget: int = 120):
    """Run one randomized program against ``kernel``; return its trace.

    The program itself is derived from ``random.Random(seed)`` draws made
    inside callbacks, so two kernels produce the same program if and only if
    they execute callbacks in the same order — divergence shows up as a
    trace mismatch either way.
    """
    rng = random.Random(seed)
    trace = []
    tokens = []
    state = {"left": budget, "label": 0}

    def schedule_random():
        if state["left"] <= 0:
            return
        state["left"] -= 1
        state["label"] += 1
        label = state["label"]
        kind = rng.choice(KINDS)
        delay = rng.choice(DELAYS)

        def cb(label=label):
            trace.append((label, kernel.now))
            for _ in range(rng.randrange(3)):
                schedule_random()
            if tokens and rng.random() < 0.3:
                tokens[rng.randrange(len(tokens))].cancel()

        if kind == "soon":
            token = kernel.call_soon(cb)
        elif kind == "at":
            token = kernel.call_at(kernel.now + delay, cb)
        elif kind == "after":
            token = kernel.call_after(delay, cb)
        elif kind == "timer":
            token = kernel.timer(delay, cb)
        else:
            token = kernel.timer_token(delay, cb)
        if token is not None:
            tokens.append(token)

    for _ in range(n_initial):
        schedule_random()
    kernel.run()
    return trace


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n_initial=st.integers(1, 6))
def test_split_heap_matches_single_heap_reference(seed, n_initial):
    reference = drive(ReferenceKernel(), seed, n_initial)
    actual = drive(KernelAdapter(), seed, n_initial)
    assert actual == reference


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_step_matches_inlined_run(seed):
    """`step()` (the one-event entry point) pops in the same order as the
    inlined `run()` loop."""
    run_trace = drive(KernelAdapter(), seed, 3)

    class StepAdapter(KernelAdapter):
        def run(self):
            while self.sim.step():
                pass

    step_trace = drive(StepAdapter(), seed, 3)
    assert step_trace == run_trace


class TestTimerToken:
    """Unit coverage for the new caller-token cancellable timer."""

    def test_fires_like_call_after(self):
        sim = Simulator()
        seen = []
        sim.timer_token(1.5, Token(), seen.append, "fired")
        sim.run()
        assert seen == ["fired"]
        assert sim.now == 1.5

    def test_cancelled_token_suppresses_the_callback(self):
        sim = Simulator()
        seen = []
        token = Token()
        sim.timer_token(1.0, token, seen.append, "no")
        sim.timer(2.0, seen.append, "yes")
        token.cancel()
        sim.run()
        assert seen == ["yes"]

    def test_past_due_lands_on_the_ready_queue(self):
        sim = Simulator()
        seen = []
        token = Token()
        sim.timer_token(0.0, token, seen.append, "now")
        sim.run()
        assert seen == ["now"]
        assert sim.now == 0.0

    def test_cancellable_and_fnf_heaps_merge_by_seq(self):
        """Same-time entries across the two heaps run in scheduling order."""
        sim = Simulator()
        order = []
        sim.call_after(1.0, order.append, "cancellable-first")
        sim.timer(1.0, order.append, "fnf-second")
        sim.timer_token(1.0, Token(), order.append, "token-third")
        sim.timer(1.0, order.append, "fnf-fourth")
        sim.run()
        assert order == [
            "cancellable-first", "fnf-second", "token-third", "fnf-fourth"
        ]
