"""Unit tests for transaction contexts and abort taxonomy."""

import pytest

from repro.engine.txn import (
    AbortReason,
    TxnAborted,
    TxnContext,
    TxnStatus,
    WrongNodeError,
)
from repro.storage.log import Delete, Put


class TestTxnContext:
    def test_fresh_context(self):
        ctx = TxnContext(node_id=3)
        assert ctx.status is TxnStatus.ACTIVE
        assert ctx.node_id == 3
        assert not ctx.is_reconfig
        assert ctx.participant_logs == []

    def test_unique_ids(self):
        ids = {TxnContext(1).txn_id for _ in range(100)}
        assert len(ids) == 100

    def test_writes_grouped_by_log(self):
        ctx = TxnContext(1)
        ctx.write("glog-1", "usertable", 5, "v")
        ctx.write("glog-2", "gtable", 9, 2)
        ctx.delete("glog-1", "usertable", 6)
        assert ctx.participant_logs == ["glog-1", "glog-2"]
        assert ctx.entries_for("glog-1") == (
            Put("usertable", 5, "v"),
            Delete("usertable", 6),
        )
        assert ctx.entries_for("glog-2") == (Put("gtable", 9, 2),)

    def test_entries_for_unknown_log_empty(self):
        assert TxnContext(1).entries_for("nope") == ()

    def test_mark_committed(self):
        ctx = TxnContext(1)
        ctx.mark_committed()
        assert ctx.status is TxnStatus.COMMITTED

    def test_mark_aborted_records_reason(self):
        ctx = TxnContext(1)
        ctx.mark_aborted(AbortReason.LOCK_CONFLICT)
        assert ctx.status is TxnStatus.ABORTED
        assert ctx.abort_reason is AbortReason.LOCK_CONFLICT

    def test_reconfig_flag_and_name(self):
        ctx = TxnContext(1, is_reconfig=True, name="MigrationTxn")
        assert ctx.is_reconfig
        assert ctx.name == "MigrationTxn"


class TestAbortExceptions:
    def test_txn_aborted_carries_reason(self):
        exc = TxnAborted(AbortReason.CAS_CONFLICT, "glog-1 moved")
        assert exc.reason is AbortReason.CAS_CONFLICT
        assert "glog-1 moved" in str(exc)

    def test_wrong_node_error_is_txn_aborted(self):
        exc = WrongNodeError(granule=7, owner=2)
        assert isinstance(exc, TxnAborted)
        assert exc.reason is AbortReason.WRONG_NODE
        assert exc.granule == 7
        assert exc.owner == 2

    def test_wrong_node_unknown_owner(self):
        exc = WrongNodeError(granule=7, owner=None)
        assert exc.owner is None

    def test_abort_reasons_distinct(self):
        values = {r.value for r in AbortReason}
        assert len(values) == len(list(AbortReason))
