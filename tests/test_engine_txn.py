"""Unit tests for transaction contexts and abort taxonomy."""

import itertools

import pytest

from repro.engine.txn import (
    AbortReason,
    TxnAborted,
    TxnContext,
    TxnStatus,
    WrongNodeError,
)
from repro.storage.log import Delete, Put

#: Test-side seq allocator: TxnContext has no process-global fallback counter
#: (detlint DET101 — PR 7's trace-identity leak), so bare construction passes
#: an explicit seq just as ComputeNode.next_txn_seq() does in production.
_seqs = itertools.count(1)


def make_ctx(node_id, **kwargs):
    return TxnContext(node_id, seq=next(_seqs), **kwargs)


class TestTxnContext:
    def test_fresh_context(self):
        ctx = make_ctx(node_id=3)
        assert ctx.status is TxnStatus.ACTIVE
        assert ctx.node_id == 3
        assert not ctx.is_reconfig
        assert ctx.participant_logs == []

    def test_unique_ids(self):
        ids = {make_ctx(1).txn_id for _ in range(100)}
        assert len(ids) == 100

    def test_seq_is_required(self):
        # The module-level fallback counter was removed: constructing a
        # context without an explicit per-node seq must fail loudly.
        with pytest.raises(TypeError, match="seq"):
            TxnContext(1)

    def test_txn_id_is_a_pure_function_of_node_and_seq(self):
        assert TxnContext(4, seq=17).txn_id == TxnContext(4, seq=17).txn_id

    def test_writes_grouped_by_log(self):
        ctx = make_ctx(1)
        ctx.write("glog-1", "usertable", 5, "v")
        ctx.write("glog-2", "gtable", 9, 2)
        ctx.delete("glog-1", "usertable", 6)
        assert ctx.participant_logs == ["glog-1", "glog-2"]
        assert ctx.entries_for("glog-1") == (
            Put("usertable", 5, "v"),
            Delete("usertable", 6),
        )
        assert ctx.entries_for("glog-2") == (Put("gtable", 9, 2),)

    def test_entries_for_unknown_log_empty(self):
        assert make_ctx(1).entries_for("nope") == ()

    def test_mark_committed(self):
        ctx = make_ctx(1)
        ctx.mark_committed()
        assert ctx.status is TxnStatus.COMMITTED

    def test_mark_aborted_records_reason(self):
        ctx = make_ctx(1)
        ctx.mark_aborted(AbortReason.LOCK_CONFLICT)
        assert ctx.status is TxnStatus.ABORTED
        assert ctx.abort_reason is AbortReason.LOCK_CONFLICT

    def test_reconfig_flag_and_name(self):
        ctx = make_ctx(1, is_reconfig=True, name="MigrationTxn")
        assert ctx.is_reconfig
        assert ctx.name == "MigrationTxn"


class TestAbortExceptions:
    def test_txn_aborted_carries_reason(self):
        exc = TxnAborted(AbortReason.CAS_CONFLICT, "glog-1 moved")
        assert exc.reason is AbortReason.CAS_CONFLICT
        assert "glog-1 moved" in str(exc)

    def test_wrong_node_error_is_txn_aborted(self):
        exc = WrongNodeError(granule=7, owner=2)
        assert isinstance(exc, TxnAborted)
        assert exc.reason is AbortReason.WRONG_NODE
        assert exc.granule == 7
        assert exc.owner == 2

    def test_wrong_node_unknown_owner(self):
        exc = WrongNodeError(granule=7, owner=None)
        assert exc.owner is None

    def test_abort_reasons_distinct(self):
        values = {r.value for r in AbortReason}
        assert len(values) == len(list(AbortReason))
