"""Tests for the TPC-C workload generator."""

import random
from collections import Counter

import pytest

from repro.engine.granule import GranuleMap
from repro.workload.tpcc import TpccConfig, TpccWorkload


@pytest.fixture
def gmap():
    # 64 warehouses, one granule each.
    return GranuleMap(num_keys=64 * 64, keys_per_granule=64)


@pytest.fixture
def wl(gmap):
    return TpccWorkload(gmap)


def home_warehouse(gmap, spec):
    return gmap.granule_of(spec.home_key)


class TestMix:
    def test_transaction_mix_close_to_spec(self, wl):
        rng = random.Random(0)
        for _ in range(5000):
            wl.next_txn(rng)
        total = sum(wl.generated.values())
        assert wl.generated["new_order"] / total == pytest.approx(0.45, abs=0.03)
        assert wl.generated["payment"] / total == pytest.approx(0.43, abs=0.03)
        for minor in ("order_status", "delivery", "stock_level"):
            assert wl.generated[minor] / total == pytest.approx(0.04, abs=0.02)

    def test_remote_fraction_estimate(self, wl):
        assert wl.remote_fraction() == pytest.approx(
            0.45 * 0.10 + 0.43 * 0.15
        )


class TestNewOrder:
    def test_shape(self, gmap):
        wl = TpccWorkload(gmap)
        rng = random.Random(1)
        spec = wl._new_order(rng)
        tables = Counter(op.table for op in spec.ops)
        assert tables["warehouse"] == 1
        assert tables["district"] == 1
        assert 5 <= tables["stock"] <= 15
        assert tables["stock"] == tables["order_line"] == tables["item"]

    def test_district_write_for_next_oid(self, gmap):
        wl = TpccWorkload(gmap)
        spec = wl._new_order(random.Random(2))
        district_ops = [op for op in spec.ops if op.table == "district"]
        assert district_ops[0].write

    def test_remote_stock_crosses_warehouses(self, gmap):
        wl = TpccWorkload(gmap, TpccConfig(remote_new_order=1.0))
        rng = random.Random(3)
        crossed = 0
        for _ in range(200):
            spec = wl._new_order(rng)
            home = home_warehouse(gmap, spec)
            warehouses = {
                gmap.granule_of(op.key) for op in spec.ops if op.table == "stock"
            }
            if warehouses - {home}:
                crossed += 1
        assert crossed > 100

    def test_local_only_when_disabled(self, gmap):
        wl = TpccWorkload(gmap, TpccConfig(remote_new_order=0.0))
        rng = random.Random(4)
        for _ in range(100):
            spec = wl._new_order(rng)
            home = home_warehouse(gmap, spec)
            assert all(gmap.granule_of(op.key) == home for op in spec.ops)


class TestPayment:
    def test_shape(self, gmap):
        wl = TpccWorkload(gmap)
        spec = wl._payment(random.Random(5))
        tables = [op.table for op in spec.ops]
        assert tables == ["warehouse", "district", "customer", "history"]
        assert all(op.write for op in spec.ops)

    def test_remote_customer(self, gmap):
        wl = TpccWorkload(gmap, TpccConfig(remote_payment=1.0))
        rng = random.Random(6)
        remote = 0
        for _ in range(100):
            spec = wl._payment(rng)
            home = home_warehouse(gmap, spec)
            customer = next(op for op in spec.ops if op.table == "customer")
            if gmap.granule_of(customer.key) != home:
                remote += 1
        assert remote == 100


class TestReadOnlyTxns:
    def test_order_status_reads_only(self, gmap):
        wl = TpccWorkload(gmap)
        spec = wl._order_status(random.Random(7))
        assert all(not op.write for op in spec.ops)

    def test_stock_level_reads_only(self, gmap):
        wl = TpccWorkload(gmap)
        spec = wl._stock_level(random.Random(8))
        assert all(not op.write for op in spec.ops)

    def test_delivery_touches_all_districts(self, gmap):
        wl = TpccWorkload(gmap)
        spec = wl._delivery(random.Random(9))
        orders = sum(1 for op in spec.ops if op.table == "orders")
        assert orders == wl.config.districts_per_warehouse


class TestWarehouseBinding:
    def test_home_warehouse_in_range(self, gmap):
        wl = TpccWorkload(gmap, warehouse_lo=10, warehouse_hi=20)
        rng = random.Random(10)
        for _ in range(200):
            spec = wl.next_txn(rng)
            assert 10 <= home_warehouse(gmap, spec) < 20

    def test_bad_range(self, gmap):
        with pytest.raises(ValueError):
            TpccWorkload(gmap, warehouse_lo=50, warehouse_hi=10)

    def test_single_warehouse_never_remote(self):
        gmap = GranuleMap(num_keys=64, keys_per_granule=64)
        wl = TpccWorkload(gmap, TpccConfig(remote_new_order=1.0, remote_payment=1.0))
        rng = random.Random(11)
        spec = wl._payment(rng)
        assert home_warehouse(gmap, spec) == 0
