"""Tests for ring failure detection and the failover driver (§4.4.2)."""

import pytest

from repro.chaos import Partition
from repro.core.failure import RingFailureDetector, run_failover
from repro.core.invariants import check_invariants, check_view_consistency
from repro.engine.node import SYSLOG
from repro.storage.log import RecordKind
from tests.conftest import make_cluster, run_gen


@pytest.fixture
def trio():
    cluster = make_cluster("marlin", num_nodes=3, num_keys=3072)
    cluster.run(until=0.05)
    return cluster


class TestRingTargets:
    def test_successor_ring(self, trio):
        det0 = RingFailureDetector(trio.nodes[0].runtime)
        det2 = RingFailureDetector(trio.nodes[2].runtime)
        assert det0.ring_targets() == [1]
        assert det2.ring_targets() == [0]  # wraps around

    def test_two_successors(self, trio):
        det = RingFailureDetector(trio.nodes[0].runtime, successors=2)
        assert det.ring_targets() == [1, 2]

    def test_single_node_has_no_targets(self):
        cluster = make_cluster("marlin", num_nodes=1)
        det = RingFailureDetector(cluster.nodes[0].runtime)
        assert det.ring_targets() == []

    def test_targets_follow_membership(self, trio):
        det = RingFailureDetector(trio.nodes[0].runtime)
        trio.nodes[0].mtable.pop(1)
        assert det.ring_targets() == [2]


class TestRunFailover:
    def test_takes_granules_and_removes_member(self, trio):
        victim_granules = trio.nodes[2].owned_granules()
        trio.fail_node(2)
        trio.settle()
        taken = run_gen(trio, run_failover(trio.nodes[0].runtime, 2))
        assert sorted(taken) == victim_granules
        assert 2 not in trio.nodes[0].mtable
        trio.settle()
        check_invariants(
            trio.ground_truth_gtable(), trio.gmap.num_granules,
            trio.ground_truth_mtable(),
        )

    def test_noop_for_unknown_node(self, trio):
        taken = run_gen(trio, run_failover(trio.nodes[0].runtime, 42))
        assert taken == []

    def test_failover_broadcast_syncs_survivors(self, trio):
        trio.fail_node(2)
        trio.settle()
        run_gen(trio, run_failover(trio.nodes[0].runtime, 2))
        trio.run(until=trio.sim.now + 0.1)
        assert 2 not in trio.nodes[1].mtable
        # Node 1 learned the new owner of the dead node's granules.
        assert all(owner != 2 for owner in trio.nodes[1].gtable.values())

    def test_concurrent_failovers_are_safe(self, trio):
        trio.fail_node(2)
        trio.settle()
        p0 = trio.sim.spawn(run_failover(trio.nodes[0].runtime, 2), daemon=True)
        p1 = trio.sim.spawn(run_failover(trio.nodes[1].runtime, 2), daemon=True)
        trio.run(until=trio.sim.now + 5.0)
        taken0 = p0.result.result() if p0.result.exception is None else []
        taken1 = p1.result.result() if p1.result.exception is None else []
        assert set(taken0).isdisjoint(taken1)
        trio.settle()
        live = [trio.nodes[n] for n in trio.live_node_ids()]
        check_view_consistency(live, trio.gmap.num_granules)


class TestEndToEndDetection:
    def test_detector_drives_failover(self):
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, failure_detection=True
        )
        cluster.run(until=0.5)
        cluster.fail_node(1)
        cluster.run(until=10.0)
        assert cluster.metrics.failovers
        t, dead, granules = cluster.metrics.failovers[0]
        assert dead == 1 and granules > 0
        assert 1 not in cluster.ground_truth_mtable()
        check_invariants(
            cluster.ground_truth_gtable(),
            cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )

    def test_healthy_cluster_never_fails_over(self):
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, failure_detection=True
        )
        cluster.run(until=5.0)
        assert cluster.metrics.failovers == []
        assert sorted(cluster.ground_truth_mtable()) == [0, 1, 2]
        # The whole detection pipeline stayed quiet, and says so — while
        # still paying (and reporting) its steady-state probe traffic.
        stats = cluster.failure_detection_stats()
        assert {k: stats[k] for k in (
            "suspicions_raised", "stand_downs",
            "failovers_started", "fencings_committed",
        )} == {
            "suspicions_raised": 0, "stand_downs": 0,
            "failovers_started": 0, "fencings_committed": 0,
        }
        assert stats["first_failover_s"] is None
        assert stats["renewal_rpcs"] > 0

    def test_pipeline_counters_track_detection(self):
        """suspicion -> failover -> fencing shows up in the always-on
        per-detector counters and (when traced) the counters registry."""
        from repro.obs import Tracer

        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, failure_detection=True
        )
        cluster.attach_tracer(Tracer(cluster.sim))
        cluster.run(until=0.5)
        cluster.fail_node(1)
        cluster.run(until=10.0)
        stats = cluster.failure_detection_stats()
        assert stats["suspicions_raised"] >= 1
        assert stats["failovers_started"] >= 1
        # Exactly one survivor won the vote-gated fencing race.
        assert stats["fencings_committed"] == 1
        counters = cluster.tracer.counters
        assert counters["detector.suspicions"] == stats["suspicions_raised"]
        assert counters["detector.fencings"] == 1

    def test_asymmetric_partition_fences_not_double_owns(self):
        """A node unreachable from its monitors but still reachable from
        storage keeps appending to its GLog — RecoveryMigrTxn's CAS on that
        same GLog must fence it, never yielding a double-owned granule."""
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, seed=33,
            failure_detection=True,
        )
        cluster.run(until=0.5)
        victim = cluster.nodes[1]
        # The victim's own monitoring is beside the point here (and under an
        # asymmetric partition its probes would miss too, racing a failover
        # in the opposite direction); stop it so the test pins exactly one
        # recovery direction: monitors fencing the victim.
        cluster.detectors.pop(1).stop()
        # Inbound-only partition: peers cannot reach node 1, node 1 can still
        # send — and storage is in no group, so its WAL stays writable.
        event = Partition(groups=((1,), (0, 2)), symmetric=False)
        cluster.chaos.inject(event)
        owned_before = victim.owned_granules()
        assert owned_before
        # The victim keeps committing to its GLog through the partition.
        pre_fence = victim.committer.submit(
            "gray-pre-fence", RecordKind.COMMIT_DATA, ()
        )
        cluster.run(until=1.0)
        assert pre_fence.result().ok  # storage reachable, CAS still current
        # Monitors miss 3 heartbeats and run the failover.
        cluster.run(until=8.0)
        assert cluster.metrics.failovers
        assert cluster.metrics.failovers[0][1] == 1
        assert 1 not in cluster.ground_truth_mtable()
        # Alive, stale, and still claiming its granules...
        assert not victim.frozen
        assert victim.owned_granules() == owned_before
        # ...but fenced: the recovery's append into glog-1 broke its CAS.
        fenced = victim.committer.submit(
            "gray-post-fence", RecordKind.COMMIT_DATA, ()
        )
        cluster.run(until=cluster.sim.now + 1.0)
        assert not fenced.result().ok
        # ClearMetaCache + refresh: the victim discovers it owns nothing.
        run_gen(cluster, victim.runtime.handle_cas_failure(victim.glog))
        run_gen(cluster, victim.runtime.handle_cas_failure(SYSLOG))
        assert victim.owned_granules() == []
        assert 1 not in victim.mtable
        cluster.chaos.clear(event)
        cluster.settle(0.5)
        # No double ownership anywhere: ground truth and live views agree.
        check_invariants(
            cluster.ground_truth_gtable(), cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )
        live = [cluster.nodes[n] for n in cluster.live_node_ids()]
        check_view_consistency(live, cluster.gmap.num_granules)

    def test_symmetric_partition_no_mutual_fencing(self):
        """The suspicion-vote gate (ISSUE 3) breaks the fencing cascade.

        A symmetrically-partitioned node misses everyone's heartbeats *and*
        everyone misses its own, so pre-gate both directions fenced: the
        cluster fenced the victim and the victim — through still-reachable
        storage — fenced its healthy ring successor.  With the (default) vote
        gate, votes serialize through SysLog and the victim, seeing the vote
        against itself, stands down: only the genuinely unreachable node is
        fenced.
        """
        from repro.chaos import FaultSchedule, Partition

        schedule = FaultSchedule().at(
            1.0, Partition(groups=((1,), (0, 2, 3)), duration=4.0)
        )
        # Gate on (the default): only node 1 is fenced.
        cluster = make_cluster(
            "marlin", num_nodes=4, num_keys=4096, seed=31,
            failure_detection=True,
        )
        cluster.chaos.run_schedule(schedule)
        cluster.run(until=10.0)
        fenced = {dead for _t, dead, _g in cluster.metrics.failovers}
        assert fenced == {1}
        members = sorted(
            k for k in cluster.ground_truth_mtable() if isinstance(k, int)
        )
        assert members == [0, 2, 3]
        assert sum(d.stand_downs for d in cluster.detectors.values()) >= 1
        # Vote hygiene: no suspicion rows left behind in MTable.
        assert all(
            isinstance(k, int) for k in cluster.ground_truth_mtable()
        )
        # The fenced-but-alive victim refreshes and rejoins cleanly.
        victim = cluster.nodes[1]
        run_gen(cluster, victim.runtime.handle_cas_failure(victim.glog))
        run_gen(cluster, victim.runtime.handle_cas_failure(SYSLOG))
        assert run_gen(cluster, victim.runtime.add_node())
        cluster.settle(0.5)
        check_invariants(
            cluster.ground_truth_gtable(), cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )

    def test_mutual_monitor_pair_survives_symmetric_partition(self):
        """A 2-node cluster is a mutual-monitor pair: under a transient
        symmetric partition, the ungated detectors fence *each other* and
        wipe the whole membership; with the vote gate both sides see the
        vote against themselves and stand down — no fencing, cluster intact.
        """
        from repro.chaos import FaultSchedule, Partition

        cluster = make_cluster(
            "marlin", num_nodes=2, num_keys=2048, seed=13,
            failure_detection=True,
        )
        cluster.chaos.run_schedule(
            FaultSchedule().at(1.0, Partition(groups=((0,), (1,)), duration=4.0))
        )
        cluster.run(until=10.0)
        assert cluster.metrics.failovers == []
        members = sorted(
            k for k in cluster.ground_truth_mtable() if isinstance(k, int)
        )
        assert members == [0, 1]
        assert sum(d.stand_downs for d in cluster.detectors.values()) >= 2
        cluster.settle(0.5)
        check_invariants(
            cluster.ground_truth_gtable(), cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )

    def test_symmetric_partition_cascades_without_gate(self):
        """Documents the pre-gate behavior: both directions fence."""
        from repro.chaos import FaultSchedule, Partition

        cluster = make_cluster(
            "marlin", num_nodes=4, num_keys=4096, seed=31,
            failure_detection=True, detector_vote_gate=False,
        )
        cluster.chaos.run_schedule(
            FaultSchedule().at(1.0, Partition(groups=((1,), (0, 2, 3)), duration=4.0))
        )
        cluster.run(until=10.0)
        fenced = {dead for _t, dead, _g in cluster.metrics.failovers}
        # The isolated node fenced its healthy ring successor through storage.
        assert 1 in fenced and len(fenced) > 1

    def test_revived_node_is_fenced(self):
        """After failover, the revived node cannot commit on stolen granules."""
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, failure_detection=True
        )
        cluster.run(until=0.5)
        stolen = cluster.nodes[1].owned_granules()
        cluster.fail_node(1)
        cluster.run(until=8.0)
        assert cluster.metrics.failovers
        cluster.resume_node(1)
        # The revived node still *believes* it owns the granules...
        assert cluster.nodes[1].owned_granules() == stolen
        from repro.storage.log import RecordKind

        fut = cluster.nodes[1].committer.submit(
            "revived-txn", RecordKind.COMMIT_DATA, ()
        )
        cluster.run(until=cluster.sim.now + 1.0)
        assert not fut.result().ok  # CAS fenced by RecoveryMigrTxn's append
