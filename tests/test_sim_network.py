"""Unit tests for the region-aware network latency model."""

import random

import pytest

from repro.sim.core import Simulator
from repro.sim.network import (
    AZURE_REGIONS,
    INTRA_REGION_ONE_WAY,
    LatencyModel,
    Network,
)


@pytest.fixture
def sim():
    return Simulator(seed=3)


class TestLatencyModel:
    def test_intra_region_base(self):
        model = LatencyModel()
        assert model.base_one_way("us-west", "us-west") == INTRA_REGION_ONE_WAY

    def test_cross_region_base_is_symmetric(self):
        model = LatencyModel()
        for a in AZURE_REGIONS:
            for b in AZURE_REGIONS:
                assert model.base_one_way(a, b) == model.base_one_way(b, a)

    def test_cross_region_much_slower_than_intra(self):
        model = LatencyModel()
        for a in AZURE_REGIONS:
            for b in AZURE_REGIONS:
                if a != b:
                    assert model.base_one_way(a, b) > 100 * model.intra

    def test_unknown_pair_uses_default(self):
        model = LatencyModel(default_cross=0.2)
        assert model.base_one_way("mars", "venus") == 0.2

    def test_jitter_bounds(self):
        model = LatencyModel(jitter_frac=0.1)
        rng = random.Random(0)
        base = model.base_one_way("us-west", "asia-east")
        for _ in range(200):
            sample = model.one_way(rng, "us-west", "asia-east")
            assert base <= sample <= base * 1.1

    def test_zero_jitter_is_deterministic(self):
        model = LatencyModel(jitter_frac=0.0)
        rng = random.Random(0)
        assert model.one_way(rng, "us-west", "us-west") == model.intra

    def test_custom_matrix(self):
        model = LatencyModel(cross={frozenset(("a", "b")): 0.5})
        assert model.base_one_way("a", "b") == 0.5


class TestNetwork:
    def test_delivery_delayed_by_latency(self, sim):
        net = Network(sim, LatencyModel(jitter_frac=0.0))
        seen = []
        net.deliver("us-west", "us-west", lambda: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(INTRA_REGION_ONE_WAY)]

    def test_cross_region_delivery_slower(self, sim):
        net = Network(sim, LatencyModel(jitter_frac=0.0))
        times = {}
        net.deliver("us-west", "us-west", lambda: times.setdefault("intra", sim.now))
        net.deliver("us-west", "asia-east", lambda: times.setdefault("cross", sim.now))
        sim.run()
        assert times["cross"] > times["intra"] * 100

    def test_messages_counted(self, sim):
        net = Network(sim)
        for _ in range(5):
            net.deliver("us-west", "us-west", lambda: None)
        sim.run()
        assert net.messages_sent == 5

    def test_delivery_passes_args(self, sim):
        net = Network(sim)
        seen = []
        net.deliver("us-west", "us-west", lambda a, b: seen.append(a + b), 1, 2)
        sim.run()
        assert seen == [3]
