"""Unit tests for the page store, replay service and GetPage@LSN semantics."""

import pytest

from repro.sim.core import Simulator
from repro.storage.log import Delete, LogRecord, Put, RecordKind, SharedLog
from repro.storage.pagestore import PageStore
from repro.storage.replay import ReplayService


def rec(lsn, txn, kind, entries=()):
    return LogRecord(lsn=lsn, txn_id=txn, kind=kind, entries=tuple(entries))


class TestPageStore:
    def test_commit_data_applies_immediately(self):
        ps = PageStore()
        ps.apply("l", rec(1, "t1", RecordKind.COMMIT_DATA, [Put("tab", 1, "a")]))
        assert ps.get("tab", 1) == "a"
        assert ps.applied_lsn["l"] == 1

    def test_delete_entry(self):
        ps = PageStore()
        ps.apply("l", rec(1, "t1", RecordKind.COMMIT_DATA, [Put("tab", 1, "a")]))
        ps.apply("l", rec(2, "t2", RecordKind.COMMIT_DATA, [Delete("tab", 1)]))
        assert ps.get("tab", 1) is None
        assert not ps.contains("tab", 1)

    def test_vote_is_provisional_until_commit(self):
        ps = PageStore()
        ps.apply("l", rec(1, "t1", RecordKind.VOTE_YES, [Put("tab", 1, "a")]))
        assert ps.get("tab", 1) is None
        assert ps.pending_txns("l") == ["t1"]
        ps.apply("l", rec(2, "t1", RecordKind.DECISION_COMMIT))
        assert ps.get("tab", 1) == "a"
        assert ps.pending_txns("l") == []

    def test_vote_discarded_on_abort(self):
        ps = PageStore()
        ps.apply("l", rec(1, "t1", RecordKind.VOTE_YES, [Put("tab", 1, "a")]))
        ps.apply("l", rec(2, "t1", RecordKind.DECISION_ABORT))
        assert ps.get("tab", 1) is None
        assert ps.pending_txns("l") == []

    def test_pending_isolated_per_log(self):
        ps = PageStore()
        ps.apply("l1", rec(1, "t1", RecordKind.VOTE_YES, [Put("tab", 1, "a")]))
        ps.apply("l2", rec(1, "t1", RecordKind.VOTE_YES, [Put("tab", 2, "b")]))
        ps.apply("l1", rec(2, "t1", RecordKind.DECISION_COMMIT))
        assert ps.get("tab", 1) == "a"
        assert ps.get("tab", 2) is None  # l2's share still pending

    def test_out_of_order_replay_rejected(self):
        ps = PageStore()
        with pytest.raises(ValueError):
            ps.apply("l", rec(2, "t1", RecordKind.COMMIT_DATA))

    def test_snapshot_is_a_copy(self):
        ps = PageStore()
        ps.apply("l", rec(1, "t", RecordKind.COMMIT_DATA, [Put("tab", 1, "a")]))
        snap = ps.snapshot("tab")
        snap[1] = "mutated"
        assert ps.get("tab", 1) == "a"

    def test_table_size(self):
        ps = PageStore()
        ps.apply(
            "l",
            rec(
                1,
                "t",
                RecordKind.COMMIT_DATA,
                [Put("tab", i, i) for i in range(4)],
            ),
        )
        assert ps.table_size("tab") == 4

    def test_records_applied_counter(self):
        ps = PageStore()
        ps.apply("l", rec(1, "t", RecordKind.COMMIT_DATA))
        ps.apply("l", rec(2, "t", RecordKind.COMMIT_DATA))
        assert ps.records_applied == 2


class TestReplayService:
    def setup_method(self):
        self.sim = Simulator(seed=1)
        self.ps = PageStore()
        self.replay = ReplayService(self.sim, self.ps, lag=0.01)
        self.log = SharedLog("glog")
        self.replay.track(self.log)

    def test_replay_applies_after_lag(self):
        self.log.append("t1", RecordKind.COMMIT_DATA, (Put("tab", 1, "a"),))
        assert self.ps.get("tab", 1) is None
        self.sim.run(until=0.005)
        assert self.ps.get("tab", 1) is None
        self.sim.run(until=0.02)
        assert self.ps.get("tab", 1) == "a"

    def test_replay_preserves_lsn_order(self):
        for i in range(10):
            self.log.append(f"t{i}", RecordKind.COMMIT_DATA, (Put("tab", 1, i),))
        self.sim.run()
        assert self.ps.get("tab", 1) == 9
        assert self.ps.applied_lsn["glog"] == 10

    def test_wait_applied_blocks_until_replayed(self):
        self.log.append("t1", RecordKind.COMMIT_DATA, (Put("tab", 1, "a"),))
        fut = self.replay.wait_applied("glog", 1)
        assert not fut.done
        result = self.sim.run_until(fut)
        assert result == 1
        assert self.sim.now == pytest.approx(0.01)

    def test_wait_applied_immediate_when_caught_up(self):
        self.log.append("t1", RecordKind.COMMIT_DATA, ())
        self.sim.run()
        fut = self.replay.wait_applied("glog", 1)
        assert fut.done

    def test_wait_for_future_lsn(self):
        fut = self.replay.wait_applied("glog", 3)
        for i in range(3):
            self.sim.call_after(i * 0.1, self.log.append, f"t{i}", RecordKind.COMMIT_DATA, ())
        self.sim.run_until(fut)
        assert self.ps.applied_lsn["glog"] == 3

    def test_multiple_waiters_resolved_together(self):
        futs = [self.replay.wait_applied("glog", 1) for _ in range(3)]
        self.log.append("t", RecordKind.COMMIT_DATA, ())
        self.sim.run()
        assert all(f.done for f in futs)
