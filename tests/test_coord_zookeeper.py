"""Tests for the ZooKeeper-like baseline service."""

import pytest

from repro.coord.zookeeper import ZK_LARGE, ZK_SMALL, ZooKeeperService
from repro.sim.core import Simulator, all_of
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RpcEndpoint


@pytest.fixture
def env():
    sim = Simulator(seed=11)
    net = Network(sim, LatencyModel(jitter_frac=0.0))
    zk = ZooKeeperService(sim, net)
    client = RpcEndpoint(sim, net, "client", "us-west")
    return sim, net, zk, client


class TestKvOperations:
    def test_write_read(self, env):
        sim, _net, _zk, client = env
        sim.run_until(client.call("zk", "zk_write", "/a", 1))
        assert sim.run_until(client.call("zk", "zk_read", "/a")) == 1

    def test_write_returns_version(self, env):
        sim, _net, _zk, client = env
        v1 = sim.run_until(client.call("zk", "zk_write", "/a", 1))
        v2 = sim.run_until(client.call("zk", "zk_write", "/a", 2))
        assert v2 == v1 + 1

    def test_delete(self, env):
        sim, _net, _zk, client = env
        sim.run_until(client.call("zk", "zk_write", "/a", 1))
        assert sim.run_until(client.call("zk", "zk_delete", "/a")) is True
        assert sim.run_until(client.call("zk", "zk_read", "/a")) is None

    def test_delete_missing(self, env):
        sim, _net, _zk, client = env
        assert sim.run_until(client.call("zk", "zk_delete", "/nope")) is False

    def test_scan_prefix(self, env):
        sim, _net, _zk, client = env
        for i in range(3):
            sim.run_until(client.call("zk", "zk_write", f"/granules/{i}", i))
        sim.run_until(client.call("zk", "zk_write", "/members/0", "n0"))
        scan = sim.run_until(client.call("zk", "zk_scan", "/granules/"))
        assert scan == {"/granules/0": 0, "/granules/1": 1, "/granules/2": 2}

    def test_multi_atomic(self, env):
        sim, _net, _zk, client = env
        ops = (("set", "/a", 1), ("set", "/b", 2), ("delete", "/c", None))
        assert sim.run_until(client.call("zk", "zk_multi", ops)) is True
        assert sim.run_until(client.call("zk", "zk_read", "/b")) == 2


class TestLeaderBottleneck:
    def _throughput(self, config, n_requests=200):
        sim = Simulator(seed=1)
        net = Network(sim, LatencyModel(jitter_frac=0.0))
        zk = ZooKeeperService(sim, net, config)
        client = RpcEndpoint(sim, net, "client", "us-west")
        futs = [
            client.call("zk", "zk_write", f"/k{i}", i) for i in range(n_requests)
        ]
        sim.run_until(all_of(sim, futs))
        return n_requests / sim.now

    def test_writes_serialize_at_leader(self, env):
        sim, _net, zk, client = env
        futs = [client.call("zk", "zk_write", f"/k{i}", i) for i in range(50)]
        sim.run_until(all_of(sim, futs))
        # 50 writes cannot finish faster than 50x the pipeline service time.
        assert sim.now >= 50 * zk.config.write_service

    def test_large_config_outperforms_small(self):
        assert self._throughput(ZK_LARGE) > self._throughput(ZK_SMALL)

    def test_reads_do_not_queue_on_leader(self, env):
        sim, _net, zk, client = env
        sim.run_until(client.call("zk", "zk_write", "/a", 1))
        t0 = sim.now
        futs = [client.call("zk", "zk_read", "/a") for _ in range(50)]
        sim.run_until(all_of(sim, futs))
        assert sim.now - t0 < 50 * zk.config.write_service


class TestWatches:
    def test_watch_event_on_write(self, env):
        sim, net, _zk, client = env
        events = []
        watcher = RpcEndpoint(sim, net, "watcher", "us-west")
        watcher.register("zk_watch_event", lambda p, v: events.append((p, v)))
        sim.run_until(client.call("zk", "zk_watch", "watcher"))
        sim.run_until(client.call("zk", "zk_write", "/a", 42))
        sim.run(until=sim.now + 0.01)
        assert ("/a", 42) in events

    def test_watch_event_on_delete(self, env):
        sim, net, _zk, client = env
        events = []
        watcher = RpcEndpoint(sim, net, "watcher", "us-west")
        watcher.register("zk_watch_event", lambda p, v: events.append((p, v)))
        sim.run_until(client.call("zk", "zk_watch", "watcher"))
        sim.run_until(client.call("zk", "zk_write", "/a", 1))
        sim.run_until(client.call("zk", "zk_delete", "/a"))
        sim.run(until=sim.now + 0.01)
        assert ("/a", None) in events

    def test_costs(self):
        assert ZK_SMALL.hourly_cost == pytest.approx(0.597)
        assert ZK_LARGE.hourly_cost == pytest.approx(1.173)
