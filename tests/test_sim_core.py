"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.core import (
    ProcessCrashed,
    ProcessKilled,
    SimError,
    Simulator,
    Timeout,
    all_of,
    any_of,
)


@pytest.fixture
def sim():
    return Simulator(seed=42)


class TestScheduling:
    def test_now_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_call_after_runs_at_correct_time(self, sim):
        seen = []
        sim.call_after(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_call_at_absolute_time(self, sim):
        seen = []
        sim.call_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.call_after(2.0, lambda: order.append("b"))
        sim.call_after(1.0, lambda: order.append("a"))
        sim.call_after(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            sim.call_after(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_cannot_schedule_in_past(self, sim):
        sim.call_after(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.call_at(1.0, lambda: None)

    def test_cancelled_handle_does_not_fire(self, sim):
        seen = []
        handle = sim.call_after(1.0, lambda: seen.append(1))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_run_until_time_stops_early(self, sim):
        seen = []
        sim.call_after(1.0, lambda: seen.append("early"))
        sim.call_after(10.0, lambda: seen.append("late"))
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_not_overshot_by_cancelled_heap_top(self, sim):
        """A cancelled timer at the heap top must not drag the clock past
        ``until`` (the pre-PR-2 seed-kernel overshoot; ROADMAP trade-off)."""
        seen = []
        cancelled = sim.call_after(5.0, lambda: seen.append("cancelled"))
        sim.call_after(20.0, lambda: seen.append("late"))
        cancelled.cancel()
        sim.run(until=10.0)
        assert seen == []
        assert sim.now == 10.0
        sim.run()
        assert seen == ["late"]
        assert sim.now == 20.0

    def test_run_until_not_overshot_by_cancelled_ready_entry(self, sim):
        seen = []
        sim.call_after(1.0, lambda: seen.append("early"))
        sim.call_after(9.0, lambda: sim.call_soon(lambda: seen.append("x")).cancel())
        sim.call_after(20.0, lambda: seen.append("late"))
        sim.run(until=10.0)
        assert seen == ["early"]
        assert sim.now == 10.0

    def test_run_until_limit_honours_cancellation_pruning(self, sim):
        """run_until's deadline probe must also skip cancelled heap tops."""
        fut = sim.event(name="target")
        sim.call_after(3.0, lambda: seen.cancel())
        seen = sim.call_after(4.0, lambda: None)
        sim.call_after(8.0, fut.resolve)
        assert sim.run_until(fut, limit=8.0) is None
        assert sim.now == 8.0

    def test_nested_scheduling(self, sim):
        seen = []
        sim.call_after(1.0, lambda: sim.call_after(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]

    def test_events_executed_counter(self, sim):
        for _ in range(5):
            sim.call_after(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestProcesses:
    def test_process_returns_value(self, sim):
        def proc():
            yield Timeout(1.0)
            return 99

        p = sim.spawn(proc())
        assert sim.run_until(p.result) == 99
        assert sim.now == 1.0

    def test_timeout_sequencing(self, sim):
        trace = []

        def proc():
            trace.append(sim.now)
            yield Timeout(0.5)
            trace.append(sim.now)
            yield Timeout(0.25)
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0, 0.5, 0.75]

    def test_yield_none_resumes_same_time(self, sim):
        trace = []

        def proc():
            yield None
            trace.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert trace == [0.0]

    def test_wait_on_future(self, sim):
        fut = sim.event()
        got = []

        def proc():
            value = yield fut
            got.append(value)

        sim.spawn(proc())
        sim.call_after(2.0, fut.resolve, "hello")
        sim.run()
        assert got == ["hello"]

    def test_wait_on_already_done_future(self, sim):
        fut = sim.event()
        fut.resolve("ready")
        got = []

        def proc():
            got.append((yield fut))

        sim.spawn(proc())
        sim.run()
        assert got == ["ready"]

    def test_failed_future_raises_in_process(self, sim):
        fut = sim.event()
        caught = []

        def proc():
            try:
                yield fut
            except ValueError as exc:
                caught.append(str(exc))

        sim.spawn(proc())
        sim.call_after(1.0, fut.fail, ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_wait_on_process(self, sim):
        def inner():
            yield Timeout(2.0)
            return "inner-done"

        got = []

        def outer():
            value = yield sim.spawn(inner())
            got.append((value, sim.now))

        sim.spawn(outer())
        sim.run()
        assert got == [("inner-done", 2.0)]

    def test_yield_from_composition(self, sim):
        def sub(x):
            yield Timeout(1.0)
            return x * 2

        result = []

        def main():
            a = yield from sub(3)
            b = yield from sub(a)
            result.append(b)

        sim.spawn(main())
        sim.run()
        assert result == [12]
        assert sim.now == 2.0

    def test_unhandled_exception_crashes_run(self, sim):
        def bad():
            yield Timeout(1.0)
            raise RuntimeError("kaboom")

        sim.spawn(bad())
        with pytest.raises(ProcessCrashed) as excinfo:
            sim.run()
        assert isinstance(excinfo.value.exc, RuntimeError)

    def test_daemon_exception_does_not_crash_run(self, sim):
        def bad():
            yield Timeout(1.0)
            raise RuntimeError("quiet")

        p = sim.spawn(bad(), daemon=True)
        sim.run()
        assert isinstance(p.result.exception, RuntimeError)

    def test_kill_process(self, sim):
        cleaned = []

        def proc():
            try:
                yield Timeout(100.0)
            except ProcessKilled:
                cleaned.append(sim.now)
                raise

        p = sim.spawn(proc())
        sim.call_after(1.0, p.kill)
        sim.run()
        assert cleaned == [1.0]
        assert isinstance(p.result.exception, ProcessKilled)

    def test_kill_finished_process_is_noop(self, sim):
        def proc():
            yield Timeout(1.0)
            return 1

        p = sim.spawn(proc())
        sim.run()
        p.kill()
        sim.run()
        assert p.result.result() == 1

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(SimError):
            sim.spawn(lambda: None)

    def test_yield_bad_value_crashes(self, sim):
        def proc():
            yield 42

        sim.spawn(proc())
        with pytest.raises(ProcessCrashed):
            sim.run()

    def test_two_processes_interleave(self, sim):
        trace = []

        def proc(name, step):
            for _ in range(3):
                yield Timeout(step)
                trace.append((name, sim.now))

        sim.spawn(proc("a", 1.0))
        sim.spawn(proc("b", 1.5))
        sim.run()
        # At t=3.0 both resume; b scheduled its resumption first (at t=1.5),
        # so FIFO tie-breaking runs b before a.
        assert trace == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]


class TestFutures:
    def test_double_resolve_raises(self, sim):
        fut = sim.event()
        fut.resolve(1)
        with pytest.raises(SimError):
            fut.resolve(2)

    def test_result_before_done_raises(self, sim):
        fut = sim.event()
        with pytest.raises(SimError):
            fut.result()

    def test_result_reraises_failure(self, sim):
        fut = sim.event()
        fut.fail(KeyError("missing"))
        with pytest.raises(KeyError):
            fut.result()

    def test_callbacks_run_through_heap(self, sim):
        order = []
        fut = sim.event()
        fut.add_done_callback(lambda f: order.append("cb"))
        fut.resolve()
        order.append("inline")
        sim.run()
        assert order == ["inline", "cb"]

    def test_run_until_failed_future_raises(self, sim):
        fut = sim.event()
        sim.call_after(1.0, fut.fail, ValueError("x"))
        with pytest.raises(ValueError):
            sim.run_until(fut)

    def test_run_until_drained_heap_raises(self, sim):
        fut = sim.event()
        with pytest.raises(SimError):
            sim.run_until(fut)


class TestCombinators:
    def test_all_of_collects_values(self, sim):
        futs = [sim.event() for _ in range(3)]
        for i, f in enumerate(futs):
            sim.call_after(float(3 - i), f.resolve, i * 10)
        gathered = all_of(sim, futs)
        assert sim.run_until(gathered) == [0, 10, 20]

    def test_all_of_empty(self, sim):
        gathered = all_of(sim, [])
        assert sim.run_until(gathered) == []

    def test_all_of_fails_fast(self, sim):
        futs = [sim.event() for _ in range(2)]
        sim.call_after(1.0, futs[1].fail, RuntimeError("first"))
        sim.call_after(2.0, futs[0].resolve, "late")
        gathered = all_of(sim, futs)
        with pytest.raises(RuntimeError):
            sim.run_until(gathered)

    def test_any_of_returns_first(self, sim):
        futs = [sim.event() for _ in range(3)]
        sim.call_after(2.0, futs[0].resolve, "slow")
        sim.call_after(1.0, futs[2].resolve, "fast")
        index, value = sim.run_until(any_of(sim, futs))
        assert (index, value) == (2, "fast")

    def test_any_of_requires_futures(self, sim):
        with pytest.raises(SimError):
            any_of(sim, [])


class TestTwoTierScheduler:
    """The ready-queue/timer-heap split must preserve (time, seq) order."""

    def test_heap_entries_at_now_precede_ready_entries(self, sim):
        # Two timers land at t=1.0 (scheduled before the clock got there);
        # the first one issues a call_soon.  The old kernel ran strictly in
        # sequence order: timer1, timer2, then the call_soon callback.
        order = []
        sim.call_at(1.0, lambda: (order.append("timer1"),
                                  sim.call_soon(lambda: order.append("soon"))))
        sim.call_at(1.0, lambda: order.append("timer2"))
        sim.run()
        assert order == ["timer1", "timer2", "soon"]

    def test_call_soon_and_defer_interleave_fifo(self, sim):
        order = []
        sim.call_soon(lambda: order.append("a"))
        sim.defer(lambda: order.append("b"))
        sim.call_soon(lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_cancelled_call_soon_handle_does_not_fire(self, sim):
        seen = []
        handle = sim.call_soon(lambda: seen.append(1))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_timer_fires_at_offset(self, sim):
        seen = []
        sim.timer(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_timer_zero_delay_runs_at_current_time_fifo(self, sim):
        order = []
        sim.call_soon(lambda: order.append("soon"))
        sim.timer(0.0, lambda: order.append("timer0"))
        sim.run()
        assert order == ["soon", "timer0"]
        assert sim.now == 0.0

    def test_timer_negative_delay_raises(self, sim):
        with pytest.raises(SimError):
            sim.timer(-1.0, lambda: None)

    def test_call_at_tiny_past_tolerated(self, sim):
        sim.call_after(1.0, lambda: None)
        sim.run()
        seen = []
        sim.call_at(sim.now - 1e-13, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0]

    def test_clock_only_advances_when_ready_queue_drained(self, sim):
        order = []

        def at_start():
            order.append(("soon", sim.now))
            sim.call_soon(lambda: order.append(("soon2", sim.now)))

        sim.call_soon(at_start)
        sim.call_after(1.0, lambda: order.append(("timer", sim.now)))
        sim.run()
        assert order == [("soon", 0.0), ("soon2", 0.0), ("timer", 1.0)]


class TestAllOfLateCompletions:
    def test_late_success_after_failure_is_ignored(self, sim):
        futs = [sim.event() for _ in range(2)]
        gathered = all_of(sim, futs)
        sim.call_after(1.0, futs[0].fail, RuntimeError("early"))
        sim.call_after(2.0, futs[1].resolve, "late")
        with pytest.raises(RuntimeError):
            sim.run_until(gathered)
        sim.run()  # the late resolve must not double-resolve the gather
        assert isinstance(gathered.exception, RuntimeError)

    def test_late_failure_after_failure_is_ignored(self, sim):
        futs = [sim.event() for _ in range(2)]
        gathered = all_of(sim, futs)
        sim.call_after(1.0, futs[0].fail, RuntimeError("first"))
        sim.call_after(2.0, futs[1].fail, ValueError("second"))
        with pytest.raises(RuntimeError):
            sim.run_until(gathered)
        sim.run()
        assert isinstance(gathered.exception, RuntimeError)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            sim = Simulator(seed=seed)
            trace = []

            def proc():
                for _ in range(20):
                    yield Timeout(sim.rng.random())
                    trace.append(round(sim.now, 9))

            sim.spawn(proc())
            sim.run()
            return trace

        assert run(7) == run(7)
        assert run(7) != run(8)
