"""Tests for the YCSB workload generator."""

import random

import pytest

from repro.engine.granule import GranuleMap
from repro.workload.ycsb import YcsbConfig, YcsbWorkload


@pytest.fixture
def gmap():
    return GranuleMap(num_keys=4096, keys_per_granule=64)


class TestGeneration:
    def test_txn_shape(self, gmap):
        wl = YcsbWorkload(gmap)
        spec = wl.next_txn(random.Random(0))
        assert len(spec.ops) == 16
        assert all(op.table == "usertable" for op in spec.ops)

    def test_single_site(self, gmap):
        """All 16 requests fall in the home granule (§6.1.3)."""
        wl = YcsbWorkload(gmap)
        rng = random.Random(1)
        for _ in range(100):
            spec = wl.next_txn(rng)
            granules = {gmap.granule_of(op.key) for op in spec.ops}
            assert len(granules) == 1

    def test_read_write_mix(self, gmap):
        wl = YcsbWorkload(gmap)
        rng = random.Random(2)
        writes = reads = 0
        for _ in range(500):
            for op in wl.next_txn(rng).ops:
                if op.write:
                    writes += 1
                else:
                    reads += 1
        ratio = writes / (writes + reads)
        assert 0.45 < ratio < 0.55  # 50/50 per the paper

    def test_custom_request_count(self, gmap):
        wl = YcsbWorkload(gmap, YcsbConfig(requests_per_txn=4))
        assert len(wl.next_txn(random.Random(0)).ops) == 4

    def test_home_key_is_first_op(self, gmap):
        wl = YcsbWorkload(gmap)
        spec = wl.next_txn(random.Random(3))
        assert spec.home_key == spec.ops[0].key

    def test_key_range_restriction(self, gmap):
        wl = YcsbWorkload(gmap, key_lo=1024, key_hi=2048)
        rng = random.Random(4)
        for _ in range(200):
            home = wl.next_txn(rng).home_key
            assert 1024 <= home < 2048

    def test_bad_key_range(self, gmap):
        with pytest.raises(ValueError):
            YcsbWorkload(gmap, key_lo=100, key_hi=50)

    def test_zipfian_distribution(self, gmap):
        wl = YcsbWorkload(gmap, YcsbConfig(distribution="zipfian"))
        rng = random.Random(5)
        homes = [wl.next_txn(rng).home_key for _ in range(2000)]
        low = sum(1 for h in homes if h < 409)  # hottest 10% of keys
        assert low > len(homes) * 0.3

    def test_unknown_distribution(self, gmap):
        with pytest.raises(ValueError):
            YcsbWorkload(gmap, YcsbConfig(distribution="pareto"))

    def test_uniform_spreads_over_granules(self, gmap):
        wl = YcsbWorkload(gmap)
        rng = random.Random(6)
        granules = {
            gmap.granule_of(wl.next_txn(rng).home_key) for _ in range(2000)
        }
        assert len(granules) > gmap.num_granules * 0.8
