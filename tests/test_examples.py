"""Every example script must run to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert "chaos_partition" in names
    assert len(names) >= 3


def test_chaos_partition_prints_recovery_timeline():
    script = next(p for p in EXAMPLES if p.stem == "chaos_partition")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "-- fault timeline --" in proc.stdout
    assert "-- recovery timeline --" in proc.stdout
    assert "invariants hold" in proc.stdout
