"""Shared test fixtures: small clusters, generator runners."""

import itertools

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine.txn import TxnContext

# Belt and braces with pytest.ini's norecursedirs: the detlint fixture
# snippets (including a decoy test_*.py that raises on import) must never be
# collected, even when a path under tests/ is passed explicitly.
collect_ignore = ["analysis_fixtures"]

#: Test-side txn seq allocator.  TxnContext has no process-global fallback
#: counter (detlint DET101 — PR 7's trace-identity leak), so bare unit-test
#: construction allocates seqs here, mirroring ComputeNode.next_txn_seq().
_txn_seqs = itertools.count(1)


def make_txn_ctx(node_id, **kwargs):
    """A bare TxnContext with a unique test-allocated seq."""
    return TxnContext(node_id, seq=next(_txn_seqs), **kwargs)


def make_cluster(
    coordination="marlin",
    num_nodes=2,
    num_keys=2048,
    keys_per_granule=64,
    seed=7,
    **kwargs,
):
    """A small, fast cluster for protocol tests (32 granules by default)."""
    config = ClusterConfig(
        coordination=coordination,
        num_nodes=num_nodes,
        num_keys=num_keys,
        keys_per_granule=keys_per_granule,
        seed=seed,
        **kwargs,
    )
    return Cluster(config)


def run_gen(cluster, gen, limit=60.0):
    """Spawn a protocol generator on the cluster's simulator and run it.

    Spawned as a daemon so the generator's own exception (not a
    ProcessCrashed wrapper) propagates to the caller.
    """
    proc = cluster.sim.spawn(gen, name="test-gen", daemon=True)
    return cluster.sim.run_until(proc.result, limit=limit)


@pytest.fixture
def marlin_pair():
    """Two-node Marlin cluster, settled past bootstrap replay."""
    cluster = make_cluster("marlin", num_nodes=2)
    cluster.run(until=0.05)
    return cluster
