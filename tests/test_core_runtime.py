"""Tests for MarlinRuntime: ownership checks, user commits, cache refresh."""

import pytest

from repro.engine.node import GTABLE, MTABLE, SYSLOG, TxnOp, TxnSpec, glog_name
from repro.engine.txn import AbortReason, TxnAborted, WrongNodeError
from repro.sim.rpc import RemoteError
from repro.storage.log import Put, RecordKind
from tests.conftest import make_cluster, make_txn_ctx, run_gen


@pytest.fixture
def pair():
    cluster = make_cluster("marlin", num_nodes=2)
    cluster.run(until=0.05)
    return cluster


def user_spec(cluster, node_id, write=True, count=4):
    node = cluster.nodes[node_id]
    granule = node.owned_granules()[0]
    keys = list(cluster.gmap.keys_in(granule))[:count]
    return TxnSpec(ops=tuple(TxnOp(write, "usertable", k) for k in keys))


class TestCheckOwnership:
    def test_owned_granule_passes(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0)
        granule = node.owned_granules()[0]
        node.runtime.check_ownership(ctx, granule)
        assert ctx.txn_id in node.locks.holders((GTABLE, granule))

    def test_foreign_granule_raises_with_hint(self, pair):
        node = pair.nodes[0]
        ctx = make_txn_ctx(0)
        foreign = pair.nodes[1].owned_granules()[0]
        with pytest.raises(WrongNodeError) as excinfo:
            node.runtime.check_ownership(ctx, foreign)
        assert excinfo.value.owner == 1

    def test_migration_lock_conflicts(self, pair):
        node = pair.nodes[0]
        granule = node.owned_granules()[0]
        node.locks.acquire("migr", (GTABLE, granule), True)
        ctx = make_txn_ctx(0)
        with pytest.raises(TxnAborted) as excinfo:
            node.runtime.check_ownership(ctx, granule)
        assert excinfo.value.reason is AbortReason.LOCK_CONFLICT


class TestUserTxn:
    def test_commit_via_rpc(self, pair):
        spec = user_spec(pair, 0)
        result = pair.sim.run_until(
            pair.admin.call("node-0", "user_txn", spec, timeout=5.0)
        )
        assert result == {"status": "committed"}
        assert pair.nodes[0].stats["committed"] == 1

    def test_commit_durable_in_glog(self, pair):
        spec = user_spec(pair, 0, write=True, count=3)
        pair.sim.run_until(pair.admin.call("node-0", "user_txn", spec, timeout=5.0))
        node = pair.nodes[0]
        log = pair.storages[node.region].log(node.glog)
        last = log.records[-1]
        assert last.kind is RecordKind.COMMIT_DATA
        assert len(last.entries) == 3

    def test_read_only_commits_without_entries(self, pair):
        spec = user_spec(pair, 0, write=False)
        result = pair.sim.run_until(
            pair.admin.call("node-0", "user_txn", spec, timeout=5.0)
        )
        assert result == {"status": "committed"}

    def test_misrouted_txn_wrong_node(self, pair):
        spec = user_spec(pair, 1)  # keys owned by node 1
        fut = pair.admin.call("node-0", "user_txn", spec, timeout=5.0)
        with pytest.raises(RemoteError) as excinfo:
            pair.sim.run_until(fut)
        assert isinstance(excinfo.value.cause, WrongNodeError)
        assert excinfo.value.cause.owner == 1

    def test_lock_conflict_between_user_txns(self, pair):
        node = pair.nodes[0]
        granule = node.owned_granules()[0]
        key = pair.gmap.granule(granule).lo
        spec = TxnSpec(ops=(TxnOp(True, "usertable", key),))
        f1 = pair.admin.call("node-0", "user_txn", spec, timeout=5.0)
        f2 = pair.admin.call("node-0", "user_txn", spec, timeout=5.0)
        pair.run(until=pair.sim.now + 1.0)
        outcomes = [f1.exception, f2.exception]
        # One commits; the other hits NO_WAIT.
        assert sum(1 for e in outcomes if e is None) == 1
        conflict = next(e for e in outcomes if e is not None)
        assert isinstance(conflict.cause, TxnAborted)
        assert conflict.cause.reason is AbortReason.LOCK_CONFLICT

    def test_cross_node_append_aborts_user_txn(self, pair):
        """Figure 7's race: stale H-LSN => CAS failure => abort + refresh."""
        node = pair.nodes[0]
        log = pair.storages[node.region].log(node.glog)
        # Another node appends to our GLog (what RecoveryMigrTxn does).
        stolen = node.owned_granules()[0]
        log.append("thief", RecordKind.COMMIT_DATA, (Put(GTABLE, stolen, 1),))
        spec = user_spec(pair, 0)
        fut = pair.admin.call("node-0", "user_txn", spec, timeout=5.0)
        with pytest.raises(RemoteError) as excinfo:
            pair.sim.run_until(fut)
        assert isinstance(excinfo.value.cause, TxnAborted)
        assert excinfo.value.cause.reason is AbortReason.CAS_CONFLICT
        pair.settle()
        # ClearMetaCache + refresh taught us the granule is gone.
        assert node.gtable[stolen] == 1
        assert stolen not in node.owned_granules()

    def test_distributed_txn_two_owners(self, pair):
        """Ops spanning both nodes' granules commit via 2PC."""
        g0 = pair.nodes[0].owned_granules()[0]
        g1 = pair.nodes[1].owned_granules()[0]
        ops = (
            TxnOp(True, "usertable", pair.gmap.granule(g0).lo),
            TxnOp(True, "usertable", pair.gmap.granule(g1).lo),
        )
        result = pair.sim.run_until(
            pair.admin.call("node-0", "user_txn", TxnSpec(ops=ops), timeout=5.0),
        )
        assert result == {"status": "committed"}
        pair.settle()
        for nid in (0, 1):
            node = pair.nodes[nid]
            log = pair.storages[node.region].log(node.glog)
            assert any(r.kind is RecordKind.VOTE_YES for r in log.records)
            assert any(r.kind is RecordKind.DECISION_COMMIT for r in log.records)
        # Branch contexts cleaned up on both sides.
        assert not pair.nodes[0].txns and not pair.nodes[1].txns

    def test_distributed_txn_remote_conflict_aborts(self, pair):
        g0 = pair.nodes[0].owned_granules()[0]
        g1 = pair.nodes[1].owned_granules()[0]
        remote_key = pair.gmap.granule(g1).lo
        pair.nodes[1].locks.acquire("blocker", ("usertable", remote_key), True)
        ops = (
            TxnOp(True, "usertable", pair.gmap.granule(g0).lo),
            TxnOp(True, "usertable", remote_key),
        )
        fut = pair.admin.call("node-0", "user_txn", TxnSpec(ops=ops), timeout=5.0)
        with pytest.raises(RemoteError) as excinfo:
            pair.sim.run_until(fut)
        assert isinstance(excinfo.value.cause, TxnAborted)
        # Coordinator-side locks released; granule usable again.
        pair.nodes[1].locks.release_all("blocker")
        assert not pair.nodes[0].locks.holders(("usertable", pair.gmap.granule(g0).lo))


class TestRefresh:
    def test_refresh_applies_missed_membership(self, pair):
        """Node 1 learns about a membership change on CAS failure."""
        home = pair.storages[pair.config.home_region]
        home.log(SYSLOG).append(
            "other-add", RecordKind.COMMIT_DATA, (Put(MTABLE, 9, "node-9"),)
        )
        node = pair.nodes[1]
        assert 9 not in node.mtable
        run_gen(pair, node.runtime.handle_cas_failure(SYSLOG))
        assert node.mtable[9] == "node-9"

    def test_concurrent_refreshes_coalesce(self, pair):
        node = pair.nodes[0]
        home = pair.storages[pair.config.home_region]
        home.log(SYSLOG).append(
            "x", RecordKind.COMMIT_DATA, (Put(MTABLE, 8, "node-8"),)
        )
        before = node.runtime.refreshes
        p1 = pair.sim.spawn(node.runtime.handle_cas_failure(SYSLOG), daemon=True)
        p2 = pair.sim.spawn(node.runtime.handle_cas_failure(SYSLOG), daemon=True)
        pair.run(until=pair.sim.now + 0.5)
        assert p1.result.done and p2.result.done
        assert node.runtime.refreshes - before == 1

    def test_refresh_resolves_in_doubt_votes(self, pair):
        """A committed-but-undecided vote in the log is resolved on refresh."""
        node = pair.nodes[1]
        log = pair.storages[node.region].log(node.glog)
        logs = (glog_name(1),)
        log.append(
            "in-doubt", RecordKind.VOTE_YES, (Put(GTABLE, 63, 0),), participants=logs
        )
        log.append("in-doubt", RecordKind.DECISION_COMMIT, ())
        run_gen(pair, node.runtime.handle_cas_failure(glog_name(1)))
        assert node.gtable[63] == 0

    def test_refresh_skips_aborted_votes(self, pair):
        node = pair.nodes[1]
        granule = node.owned_granules()[0]
        log = pair.storages[node.region].log(node.glog)
        log.append(
            "aborted-one",
            RecordKind.VOTE_YES,
            (Put(GTABLE, granule, 0),),
            participants=(glog_name(1),),
        )
        log.append("aborted-one", RecordKind.DECISION_ABORT, ())
        run_gen(pair, node.runtime.handle_cas_failure(glog_name(1)))
        assert node.gtable[granule] == 1  # unchanged

    def test_ensure_view_bootstraps_unknown_log(self, pair):
        node = pair._make_node(77)
        node.start()
        assert SYSLOG not in node.view_cursor
        run_gen(pair, node.runtime.ensure_view(SYSLOG))
        assert node.mtable.keys() >= {0, 1}


class TestBroadcast:
    def test_sys_update_broadcast(self, pair):
        node0, node1 = pair.nodes[0], pair.nodes[1]
        node0.runtime.broadcast_sys_update([Put(GTABLE, 5, 0)])
        pair.run(until=pair.sim.now + 0.1)
        assert node1.gtable[5] == 0
