"""Kernel determinism: seeded end-to-end runs are bit-identical.

The two-tier scheduler (ready queue + timer heap) must reproduce exactly the
``(time, seq)`` execution order of the classic single-heap kernel.  The
golden numbers below were captured from a small fig9-style scale-out run on
the pre-fast-path kernel (commit c9e412c); any scheduler change that alters
event order, RNG draw order, or metrics accounting shows up here as a hard
failure, not a statistical drift.

Re-captured for PR 2 after fixing the ``run(until)`` deadline overshoot
(``_next_event_time`` now prunes cancelled heap/ready entries instead of
reporting their times): the re-captured values are identical to the
pre-fast-path goldens — this run never hits the overshoot window — so the
constants below are unchanged and now also pin the fixed-deadline kernel.

The golden values now live in :mod:`repro.experiments.goldens`, where they
(together with the spec-parity goldens) derive the sweep result cache's
``CACHE_EPOCH`` — re-capturing them after a behaviour change automatically
invalidates stale cached sweep cells.
"""

import pytest

from repro.experiments.goldens import DETERMINISM_GOLDEN as GOLDEN
from repro.experiments.harness import run_scale_out_scenario


def _small_fig9_run():
    """A miniature §6.2 scale-out (2 -> 4 nodes, 8 clients, YCSB)."""
    result = run_scale_out_scenario(
        "marlin",
        initial_nodes=2,
        added_nodes=2,
        clients=8,
        granules=64,
        scale_at=1.0,
        tail=2.0,
        seed=3,
    )
    sim = result.cluster.sim
    metrics = result.metrics
    return {
        "events_executed": sim.events_executed,
        "total_committed": metrics.total_committed,
        "total_aborted": metrics.total_aborted,
        "total_migrations": metrics.total_migrations,
        "final_now": sim.now,
    }


@pytest.fixture(scope="module")
def first_run():
    return _small_fig9_run()


def test_matches_pre_fastpath_golden_values(first_run):
    # Exact equality on purpose — final_now included: the sim clock is a sum
    # of deterministic latency samples, so bit-identity is the contract.
    assert first_run == GOLDEN


def test_identical_across_two_runs(first_run):
    assert _small_fig9_run() == first_run
