"""Integration chaos tests: load + concurrent reconfigurations + failures.

These exercise the whole stack at once and assert the paper's invariants at
quiescence — the closest thing to the TLA+ model running on the real
implementation instead of the abstract state machine.
"""

import pytest

from repro.chaos import (
    FaultSchedule,
    Partition,
    SlowNode,
    StorageStall,
)
from repro.core.invariants import check_invariants, check_view_consistency
from repro.engine.node import GTABLE, SYSLOG
from repro.storage.log import RecordKind
from tests.conftest import make_cluster, run_gen
from tests.test_workload_client import start_clients


def quiesce_and_check(cluster):
    cluster.settle(0.5)
    live = [cluster.nodes[n] for n in cluster.live_node_ids()]
    check_view_consistency(live, cluster.gmap.num_granules)
    check_invariants(
        cluster.ground_truth_gtable(),
        cluster.gmap.num_granules,
        cluster.ground_truth_mtable(),
    )


class TestConcurrentReconfigUnderLoad:
    def test_scale_out_during_load(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=8192, seed=21)
        cluster.run(until=0.05)
        _router, clients = start_clients(cluster, count=6)
        cluster.run(until=1.0)
        run_gen(cluster, cluster.scale_out(2))
        cluster.run(until=cluster.sim.now + 1.0)
        for c in clients:
            c.stop()
        quiesce_and_check(cluster)
        assert cluster.metrics.total_committed > 100

    def test_interleaved_out_and_in_cycles(self):
        cluster = make_cluster("marlin", num_nodes=2, num_keys=4096, seed=22)
        cluster.run(until=0.05)
        _router, clients = start_clients(cluster, count=4)
        for _cycle in range(2):
            run_gen(cluster, cluster.scale_out(2))
            cluster.run(until=cluster.sim.now + 0.5)
            victims = cluster.live_node_ids()[-2:]
            run_gen(cluster, cluster.scale_in(victims))
            cluster.run(until=cluster.sim.now + 0.5)
        for c in clients:
            c.stop()
        quiesce_and_check(cluster)
        assert cluster.live_node_ids() == [0, 1]

    def test_opposed_migration_storms(self):
        """Two nodes migrate granules at each other concurrently."""
        cluster = make_cluster("marlin", num_nodes=2, num_keys=4096, seed=23)
        cluster.run(until=0.05)
        g0 = cluster.nodes[0].owned_granules()[:8]
        g1 = cluster.nodes[1].owned_granules()[:8]
        f0 = cluster.admin.call(
            "node-1", "run_migrations", tuple((g, 0) for g in g0)
        )
        f1 = cluster.admin.call(
            "node-0", "run_migrations", tuple((g, 1) for g in g1)
        )
        cluster.run(until=10.0)
        assert f0.done and f1.done
        quiesce_and_check(cluster)

    def test_failover_during_scale_out(self):
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=6144, seed=24,
            failure_detection=True,
        )
        cluster.run(until=0.5)
        proc = cluster.sim.spawn(cluster.scale_out(1), daemon=True)
        cluster.run(until=1.0)
        cluster.fail_node(1)
        cluster.sim.run_until(proc.result, limit=60.0)
        cluster.run(until=15.0)
        assert cluster.metrics.failovers
        quiesce_and_check(cluster)
        assert 1 not in cluster.ground_truth_mtable()


class TestCrashWindows:
    def test_source_freeze_mid_migration_storm(self):
        """Source dies while a batch of migrations is in flight."""
        cluster = make_cluster(
            "marlin", num_nodes=2, num_keys=4096, seed=25,
            failure_detection=True,
        )
        cluster.run(until=0.5)
        granules = cluster.nodes[1].owned_granules()
        fut = cluster.admin.call(
            "node-0", "run_migrations", tuple((g, 1) for g in granules)
        )
        cluster.call_later = cluster.sim.call_after(0.05, cluster.fail_node, 1)
        cluster.run(until=20.0)
        quiesce_and_check(cluster)
        # All granules ended up on the survivor one way or another.
        assert set(cluster.nodes[0].owned_granules()) == set(
            range(cluster.gmap.num_granules)
        )

    def test_repeated_freeze_resume_cycles(self):
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, seed=26,
            failure_detection=True,
        )
        cluster.run(until=0.5)
        _router, clients = start_clients(cluster, count=3, request_timeout=0.3)
        cluster.fail_node(2)
        cluster.run(until=8.0)   # failover completes
        cluster.resume_node(2)
        cluster.run(until=9.0)
        # Re-join the revived node as a fresh member: it must first refresh
        # the state it slept through (its GLog and the SysLog membership).
        from repro.engine.node import SYSLOG

        node = cluster.nodes[2]
        run_gen(cluster, node.runtime.handle_cas_failure(node.glog))
        run_gen(cluster, node.runtime.handle_cas_failure(SYSLOG))
        ok = run_gen(cluster, node.runtime.add_node())
        assert ok
        cluster.run(until=10.0)
        for c in clients:
            c.stop()
        cluster.settle(0.5)
        assert 2 in cluster.ground_truth_mtable()
        check_invariants(
            cluster.ground_truth_gtable(),
            cluster.gmap.num_granules,
            cluster.ground_truth_mtable(),
        )

    def test_client_load_survives_everything(self):
        cluster = make_cluster(
            "marlin", num_nodes=4, num_keys=8192, seed=27,
            failure_detection=True,
        )
        cluster.run(until=0.5)
        _router, clients = start_clients(cluster, count=8, request_timeout=0.3)
        cluster.run(until=1.0)
        run_gen(cluster, cluster.scale_out(2))
        cluster.run(until=3.0)
        cluster.fail_node(1)
        cluster.run(until=12.0)
        committed_mid = cluster.metrics.total_committed
        cluster.run(until=16.0)
        for c in clients:
            c.stop()
        quiesce_and_check(cluster)
        # Commits continued after the failover.
        assert cluster.metrics.total_committed > committed_mid


class TestScheduleDriven:
    """Declarative FaultSchedules driving whole-cluster scenarios (ISSUE 2).

    Each scenario ends with the full quiescence invariant suite after every
    scheduled fault has cleared and recovery has settled.
    """

    def test_partition_during_scale_out(self):
        """Node 1 loses its monitor mid-scale-out; it must be fenced through
        its GLog (RecoveryMigrTxn CAS) while the scale-out still completes."""
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, seed=31,
            failure_detection=True,
        )
        cluster.run(until=0.2)
        _router, clients = start_clients(cluster, count=4, request_timeout=0.3)
        # Sever node 1 from its ring monitor (node 0) for long enough that
        # three heartbeats miss; clients and storage stay reachable, so the
        # "dead" node keeps committing until the recovery fences its WAL.
        schedule = FaultSchedule().at(
            1.0, Partition(groups=((1,), (0,)), duration=4.0)
        )
        sched = cluster.chaos.run_schedule(schedule)
        proc = cluster.sim.spawn(cluster.scale_out(1), daemon=True)
        cluster.sim.run_until(proc.result, limit=120.0)
        cluster.sim.run_until(sched.result, limit=120.0)
        cluster.run(until=max(12.0, cluster.sim.now + 4.0))
        for c in clients:
            c.stop()
        assert cluster.metrics.failovers
        assert cluster.metrics.failovers[0][1] == 1
        assert 1 not in cluster.ground_truth_mtable()
        # The fenced node refreshed through its CAS failure and now claims
        # nothing, so live views cannot overlap.
        assert cluster.nodes[1].owned_granules() == []
        quiesce_and_check(cluster)
        assert cluster.metrics.total_committed > 50

    def test_gray_failure_during_failover(self):
        """A slow-but-alive node (heartbeat replies starved past the detector
        timeout) is failed over and fenced — not double-owned."""
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, seed=32,
            failure_detection=True,
        )
        cluster.run(until=0.2)
        _router, clients = start_clients(cluster, count=4, request_timeout=0.3)
        schedule = FaultSchedule().at(
            1.0,
            SlowNode(node=2, cpu_factor=16.0, rpc_lag=0.4, duration=6.0),
        )
        sched = cluster.chaos.run_schedule(schedule)
        cluster.sim.run_until(sched.result, limit=120.0)
        cluster.run(until=max(12.0, cluster.sim.now + 4.0))
        assert cluster.metrics.failovers
        assert cluster.metrics.failovers[0][1] == 2
        assert 2 not in cluster.ground_truth_mtable()
        # The gray node never crashed; once healthy again it must discover it
        # owns nothing (ClearMetaCache after its fenced CAS).
        victim = cluster.nodes[2]
        assert not victim.frozen
        run_gen(cluster, victim.runtime.handle_cas_failure(victim.glog))
        run_gen(cluster, victim.runtime.handle_cas_failure(SYSLOG))
        assert victim.owned_granules() == []
        for c in clients:
            c.stop()
        quiesce_and_check(cluster)

    def test_storage_stall_during_migration(self):
        """A storage brownout mid-migration-storm delays but never corrupts:
        every move lands exactly once and the invariants hold."""
        cluster = make_cluster("marlin", num_nodes=2, num_keys=4096, seed=33)
        cluster.run(until=0.1)
        schedule = (
            FaultSchedule()
            .at(0.3, StorageStall(region="us-west", duration=0.5))
            .at(1.1, StorageStall(region="us-west", duration=0.3))
        )
        sched = cluster.chaos.run_schedule(schedule)
        moves = tuple((g, 1) for g in cluster.nodes[1].owned_granules())
        fut = cluster.admin.call("node-0", "run_migrations", moves)
        cluster.sim.run_until(fut, limit=120.0)
        cluster.sim.run_until(sched.result, limit=120.0)
        assert fut.result()["count"] == len(moves)
        assert fut.result()["failed"] == 0
        quiesce_and_check(cluster)
        assert set(cluster.nodes[0].owned_granules()) == set(
            range(cluster.gmap.num_granules)
        )

    def test_verify_quiescent_runs_inside_schedule(self):
        """run_schedule(verify_after=...) folds the invariant check into the
        schedule process itself: its result only resolves on a clean run."""
        cluster = make_cluster("marlin", num_nodes=2, num_keys=2048, seed=34)
        cluster.run(until=0.1)
        schedule = FaultSchedule().at(
            0.5, StorageStall(region="us-west", duration=0.4)
        )
        proc = cluster.chaos.run_schedule(schedule, verify_after=1.0)
        log = cluster.sim.run_until(proc.result, limit=30.0)
        assert [phase for _t, phase, _e in log] == ["inject", "clear"]
        assert cluster.sim.now >= 1.9  # 0.5 + 0.4 + verify_after


class TestBaselineParity:
    @pytest.mark.parametrize("kind", ["zk-small", "fdb"])
    def test_baseline_scale_cycle_under_load(self, kind):
        cluster = make_cluster(kind, num_nodes=2, num_keys=4096, seed=28)
        cluster.run(until=0.05)
        _router, clients = start_clients(cluster, count=4)
        run_gen(cluster, cluster.scale_out(2))
        cluster.run(until=cluster.sim.now + 1.0)
        run_gen(cluster, cluster.scale_in([2, 3]))
        for c in clients:
            c.stop()
        cluster.settle(0.5)
        live = [cluster.nodes[n] for n in cluster.live_node_ids()]
        check_view_consistency(live, cluster.gmap.num_granules)
        # The external service's map agrees with the nodes' views.
        service_map = {
            int(path.split("/")[-1]): owner
            for path, owner in cluster.service.data.items()
            if path.startswith("/granules/")
        }
        merged = {}
        for node in live:
            for g in node.owned_granules():
                merged[g] = node.node_id
        assert service_map == merged


class TestCoordinationServiceOutage:
    """Chaos for the external coordination service endpoint itself (ISSUE 3).

    ``Cluster.service`` ("zk" / "fdb") is an addressable actor like any
    node, so ``coordination_outage`` can partition it away from the compute
    plane.  The paper's availability argument in schedule form: the
    baselines' *data* path never touches the service, so user transactions
    ride the outage out — but every control-plane operation stalls until the
    partition heals.
    """

    def test_zk_outage_stalls_control_plane_not_data_plane(self):
        from repro.chaos import coordination_outage
        from repro.sim.rpc import RpcTimeout

        cluster = make_cluster("zk-small", num_nodes=2, num_keys=2048, seed=41)
        schedule = coordination_outage(
            [0, 1], at=1.0, duration=1.5, service="zk",
            extra_endpoints=("admin",),
        )
        cluster.chaos.run_schedule(schedule)
        cluster.run(until=0.05)
        _router, clients = start_clients(cluster, count=4)
        cluster.run(until=1.2)
        committed_before = cluster.metrics.total_committed
        # Control plane: a service read from inside the partition times out.
        fut = cluster.admin.call("zk", "zk_scan", "/members/", timeout=0.5)
        with pytest.raises(RpcTimeout):
            cluster.sim.run_until(fut, limit=5.0)
        cluster.run(until=2.4)
        # Data plane: user transactions kept committing through the outage.
        assert cluster.metrics.total_committed > committed_before + 100
        cluster.run(until=3.0)  # past the heal at t=2.5
        fut = cluster.admin.call("zk", "zk_scan", "/members/", timeout=0.5)
        members = cluster.sim.run_until(fut, limit=5.0)
        assert set(members) == {"/members/0", "/members/1"}
        # Reconfiguration works again end to end.
        summary = run_gen(cluster, cluster.scale_out(1))
        assert summary["migrated"] > 0
        for c in clients:
            c.stop()
        cluster.settle(0.5)
        # Post-heal consistency: live views are exclusive and the service's
        # authoritative map agrees with them (membership lives in the
        # service for the baselines, not in the SysLog ground truth).
        live = [cluster.nodes[n] for n in cluster.live_node_ids()]
        check_view_consistency(live, cluster.gmap.num_granules)
        service_members = {
            int(path.split("/")[-1])
            for path in cluster.service.data
            if path.startswith("/members/")
        }
        assert service_members == {0, 1, 2}
        assert [phase for _t, phase, _e in cluster.chaos.fault_log] == [
            "inject", "clear",
        ]

    def test_fdb_outage_schedule_round_trips(self):
        """The outage scenario serializes like any other schedule."""
        from repro.chaos import FaultSchedule, coordination_outage

        schedule = coordination_outage([0, 1, 2], at=2.0, duration=1.0,
                                       service="fdb")
        rebuilt = FaultSchedule.from_spec(schedule.to_spec())
        assert rebuilt.to_spec() == schedule.to_spec()
        assert schedule.horizon == 3.0
