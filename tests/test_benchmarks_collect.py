"""Guard rails for the benchmarks/ directory.

The bench files are not part of the tier-1 run (``testpaths = tests``), so
without these checks a kernel API change could break every bench silently.
Collection imports each bench module, which is exactly the rot we care about;
the run_all smoke additionally exercises the kernel suite end-to-end in
``--quick`` mode and validates the JSON report shape.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_bench_files_collect_cleanly():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest", "benchmarks", "-q",
            "--collect-only", "--benchmark-disable",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"bench collection failed:\n{proc.stdout}\n{proc.stderr}"
    match = re.search(r"(\d+) tests? collected", proc.stdout)
    assert match and int(match.group(1)) > 0, (
        f"no benchmarks collected — python_files misconfigured?\n{proc.stdout}"
    )


def test_run_all_quick_emits_report(tmp_path):
    from benchmarks import run_all

    out = tmp_path / "bench.json"
    baseline = tmp_path / "baseline.json"
    # A bare results dump is accepted as a baseline (speedup computed on the
    # throughput metric of each bench).
    baseline.write_text(json.dumps(
        {name: {metric: 1.0} for name, metric in run_all.RATE_METRIC.items()}
    ))
    report = run_all.main(
        ["--quick", "--out", str(out), "--baseline", str(baseline)]
    )
    on_disk = json.loads(out.read_text())
    assert set(on_disk["results"]) == set(run_all.RATE_METRIC)
    assert on_disk["meta"]["quick"] is True
    for name, metric in run_all.RATE_METRIC.items():
        assert report["results"][name][metric] > 0
        assert report["speedup"][name] > 0
    # The allocation/op counter rides along in the metrics bench: the
    # streaming collector must stay lean (a per-bucket list of boxed floats
    # costs ~33 B/op; the packed array layout stays around ~17).
    assert report["results"]["metrics_record"]["bytes_per_op"] < 24.0
