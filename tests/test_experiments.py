"""Shape tests for the per-figure experiment harness (tiny scales).

Each test asserts the *direction* of the paper's finding at a scale small
enough for CI; the benchmarks regenerate the full tables.
"""

import pytest

from repro.experiments import (
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
)
from repro.experiments.family import run_family
from repro.experiments.harness import run_scale_out_scenario

SCALE = 0.08
SEED = 11


@pytest.fixture(scope="module")
def family():
    return run_family(
        scale=SCALE, systems=("marlin", "zk-small"), seed=SEED, clients=10
    )


class TestScenarioRunner:
    def test_scenario_completes_and_checks_invariants(self):
        result = run_scale_out_scenario(
            "marlin",
            initial_nodes=2,
            added_nodes=2,
            clients=6,
            granules=128,
            scale_at=1.0,
            tail=2.0,
            seed=SEED,
        )
        assert result.metrics.total_migrations > 0
        assert result.metrics.total_committed > 0
        assert result.scale_summaries and result.scale_summaries[0]["migrated"] > 0

    def test_scenario_runs_under_fault_schedule(self):
        """Any figure scenario can run under any FaultSchedule (ISSUE 2)."""
        from repro.chaos import storage_brownout

        result = run_scale_out_scenario(
            "marlin",
            initial_nodes=2,
            added_nodes=2,
            clients=6,
            granules=128,
            scale_at=1.0,
            tail=2.0,
            seed=SEED,
            fault_schedule=storage_brownout("us-west", at=1.2, stall=0.3),
        )
        assert result.scale_summaries and result.scale_summaries[0]["migrated"] > 0
        chaos = result.cluster.chaos
        assert [phase for _t, phase, _e in chaos.fault_log] == ["inject", "clear"]
        chaos.verify_quiescent()

    def test_cost_report_nonzero(self):
        result = run_scale_out_scenario(
            "zk-small",
            initial_nodes=2,
            added_nodes=2,
            clients=4,
            granules=64,
            scale_at=1.0,
            tail=1.0,
            seed=SEED,
        )
        report = result.cost
        assert report.db_cost > 0
        assert report.meta_cost > 0


class TestFig8(object):
    def test_marlin_beats_zk_on_migration(self, family):
        fig = fig8.summarize(family)
        assert fig.findings["migration_tps_vs_S-ZK"] > 1.2
        assert fig.findings["scaleout_speedup_vs_S-ZK"] > 1.2

    def test_all_migrations_complete(self, family):
        for result in family.values():
            expected = result.scale_summaries[0]["moves"]
            assert result.metrics.total_migrations == expected


class TestFig9:
    def test_abort_ratio_lower_for_marlin(self, family):
        fig = fig9.summarize(family)
        assert fig.findings["abort_ratio_S-ZK_minus_marlin"] > -0.02

    def test_rows_have_series(self, family):
        fig = fig9.summarize(family)
        for row in fig.rows:
            assert len(row["tput_series"]) > 5


class TestFig10:
    def test_marlin_cheaper_and_faster(self, family):
        fig = fig10.summarize(family)
        assert fig.findings["latency_reduction_vs_S-ZK"] > 1.2
        assert fig.findings["cost_reduction_vs_S-ZK"] > 1.0

    def test_meta_cost_split(self, family):
        fig = fig10.summarize(family)
        by_system = {row["system"]: row for row in fig.rows}
        assert by_system["Marlin"]["meta_cost_usd"] == 0.0
        assert by_system["S-ZK"]["meta_cost_usd"] > 0.0


class TestFig11:
    def test_tpcc_shape(self):
        fig = fig11.run(scale=0.4, systems=("marlin", "zk-small"), seed=SEED)
        assert fig.findings["migration_speedup_vs_S-ZK"] > 1.0


class TestFig12:
    def test_sweep_findings(self):
        fig = fig12.run(
            scale=0.08,
            systems=("marlin", "zk-small"),
            seed=SEED,
        )
        assert fig.findings["cost_ratio_S-ZK_at_SO1-2"] > 1.3
        # Marlin's migration throughput grows with scale.
        assert fig.findings["tps_scaling_Marlin"] > 2.0

    def test_rows_cover_grid(self):
        fig = fig12.run(scale=0.05, systems=("marlin",), seed=SEED)
        names = {row["scale_out"] for row in fig.rows}
        assert names == {"SO1-2", "SO2-4", "SO4-8", "SO8-16"}


class TestFig13:
    def test_geo_gap_wider_than_single_region(self):
        cell = (("SO4-8", 4, 50, 6250),)  # scaled to ~500 granules / 4 clients
        single = fig12.run_sweep(
            scale=0.08, systems=("marlin", "zk-small"), seed=SEED,
            scale_outs=cell,
        )
        geo = fig13.run_sweep(
            scale=0.08, systems=("marlin", "zk-small"), seed=SEED,
            scale_outs=cell,
        )

        def ratio(results):
            zk = results[("SO4-8", "zk-small")].migration_duration
            marlin = results[("SO4-8", "marlin")].migration_duration
            return zk / marlin

        assert ratio(geo) > ratio(single)


class TestFig14:
    def test_dynamic_scales_out_and_in(self):
        fig = fig14.run(scale=0.12, systems=("marlin",), seed=SEED)
        row = fig.rows[0]
        assert row["scale_out_s"] > 0
        assert row["scale_in_s"] > 0
        assert row["node_release_after_drop_s"] > 0


class TestFig15:
    def test_marlin_degrades_at_scale_zk_does_not(self):
        results = {}
        for system in ("marlin", "zk-small"):
            for nodes in (8, 96):
                results[(system, nodes)] = fig15.run_stress(
                    system, nodes, interval=1.5, duration=8.0, seed=SEED
                )
        fig = fig15.summarize(results)
        marlin_large = results[("marlin", 96)]
        zk_large = results[("zk-small", 96)]
        # Under 10x-compressed intervals the contention knee appears by 96
        # nodes: Marlin's latency inflates well past ZooKeeper's.
        assert marlin_large["mean_latency_s"] > 2 * zk_large["mean_latency_s"]
        assert results[("marlin", 8)]["efficiency"] > 0.9

    def test_retries_counted_for_marlin(self):
        cell = fig15.run_stress("marlin", 32, interval=1.0, duration=6.0, seed=SEED)
        assert cell["retries"] > 0


class TestFormatting:
    def test_format_table_renders(self, family):
        fig = fig8.summarize(family)
        for row in fig.rows:
            row.pop("series", None)
        text = fig.format_table()
        assert "Figure 8" in text and "Marlin" in text

    def test_empty_figure(self):
        from repro.experiments.harness import FigureResult

        assert "(no rows)" in FigureResult("f", "t").format_table()
