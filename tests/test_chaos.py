"""Unit tests for the chaos engine: events, schedules, injection, determinism.

The headline contract (ISSUE 2 acceptance): a chaotic run with a fixed seed
and a fixed :class:`FaultSchedule` is bit-identical across two executions —
every fault draw comes from the controller's dedicated seeded RNG and every
fault lands on the sim clock.
"""

import pytest

from repro.chaos import (
    ChaosController,
    ClockJitter,
    Crash,
    FaultSchedule,
    PacketLoss,
    Partition,
    Restart,
    SlowNode,
    StorageStall,
    crash_restart_cycle,
    gray_failure,
    rolling_partition,
    storage_brownout,
)
from repro.sim.core import Simulator
from repro.sim.network import Network, NetworkFaultPlane
from tests.conftest import make_cluster, run_gen
from tests.test_workload_client import start_clients


class TestEvents:
    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError):
            Partition(groups=((1, 2),))

    def test_packet_loss_validates_rate(self):
        with pytest.raises(ValueError):
            PacketLoss(pair=(0, 1), rate=1.5)

    def test_storage_stall_needs_duration(self):
        with pytest.raises(ValueError):
            StorageStall(region="us-west")

    def test_describe_names_kind_and_fields(self):
        event = SlowNode(node=3, cpu_factor=8.0, duration=2.0)
        text = event.describe()
        assert text.startswith("slow_node(")
        assert "node=3" in text and "duration=2.0" in text


class TestFaultSchedule:
    def test_entries_sorted_by_time_stable(self):
        a, b, c = (
            Crash(node=0),
            StorageStall(region="us-west", duration=1.0),
            Crash(node=1),
        )
        schedule = FaultSchedule().at(5.0, a).at(1.0, b).at(5.0, c)
        assert [e for _t, e in schedule.sorted_entries()] == [b, a, c]

    def test_horizon_covers_longest_window(self):
        schedule = (
            FaultSchedule()
            .at(1.0, StorageStall(region="us-west", duration=4.0))
            .at(3.0, Crash(node=0))
        )
        assert schedule.horizon == 5.0

    def test_rejects_past_and_non_events(self):
        with pytest.raises(ValueError):
            FaultSchedule().at(-1.0, Crash(node=0))
        with pytest.raises(TypeError):
            FaultSchedule().at(1.0, "partition")

    def test_spec_round_trip(self):
        spec = [
            {"at": 2.0, "kind": "partition",
             "groups": [[1], [0, 2]], "duration": 3.0},
            {"at": 4.0, "kind": "packet_loss",
             "pair": [0, 1], "rate": 0.25, "duration": 1.0},
            {"at": 6.0, "kind": "slow_node",
             "node": 1, "cpu_factor": 8.0, "rpc_lag": 0.3, "duration": 2.0},
            {"at": 9.0, "kind": "crash", "node": 2, "rejoin": True},
        ]
        schedule = FaultSchedule.from_spec(spec)
        assert len(schedule) == 4
        round_tripped = FaultSchedule.from_spec(schedule.to_spec())
        assert round_tripped.to_spec() == schedule.to_spec()

    def test_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSchedule.from_spec([{"at": 0.0, "kind": "meteor"}])


class TestNetworkFaultPlane:
    def test_blocked_pair_drops_message(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        plane = net.install_fault_plane(sim.rng)
        seen = []
        plane.block("a", "b")
        net.deliver_addr("us-west", "us-west", "a", "b", seen.append, 1)
        net.deliver_addr("us-west", "us-west", "b", "a", seen.append, 2)
        sim.run()
        assert seen == [2]
        assert net.messages_dropped == 1

    def test_partition_and_heal_are_symmetric(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        plane = net.install_fault_plane(sim.rng)
        plane.partition(["a"], ["b", "c"])
        assert plane.on_message("a", "b") is None
        assert plane.on_message("c", "a") is None
        assert plane.on_message("b", "c") == 0.0
        plane.heal(["a"], ["b", "c"])
        assert plane.on_message("a", "b") == 0.0

    def test_loss_rate_one_drops_everything(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        plane = net.install_fault_plane(sim.rng)
        plane.set_loss("a", "b", 1.0)
        seen = []
        for _ in range(5):
            net.deliver_addr("us-west", "us-west", "a", "b", seen.append, 0)
        sim.run()
        assert seen == [] and net.messages_dropped == 5
        plane.set_loss("a", "b", 0.0)
        net.deliver_addr("us-west", "us-west", "a", "b", seen.append, 1)
        sim.run()
        assert seen == [1]

    def test_unaddressed_deliver_bypasses_faults(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.install_fault_plane(sim.rng).block("a", "b")
        seen = []
        net.deliver("us-west", "us-west", seen.append, 1)
        sim.run()
        assert seen == [1]


class TestInjectionPrimitives:
    def test_slow_node_dilates_cpu_and_restores(self, marlin_pair):
        cluster = marlin_pair
        chaos = cluster.chaos
        event = SlowNode(node=0, cpu_factor=8.0, rpc_lag=0.05)
        chaos.inject(event)
        assert cluster.nodes[0].cpu.slow_factor == 8.0
        assert cluster.nodes[0].endpoint.degrade is not None
        chaos.clear(event)
        assert cluster.nodes[0].cpu.slow_factor == 1.0
        assert cluster.nodes[0].endpoint.degrade is None

    def test_overlapping_degradations_compose_and_unwind(self, marlin_pair):
        """Out-of-order clears of overlapping faults on one node must leave
        the node exactly at its baseline (no resurrected degradation)."""
        cluster = marlin_pair
        chaos = cluster.chaos
        node = cluster.nodes[1]
        slow = SlowNode(node=1, cpu_factor=4.0, rpc_lag=0.2, duration=1.0)
        jitter = ClockJitter(node=1, spread=0.05, duration=2.0)
        chaos.inject(slow)
        chaos.inject(jitter)
        # Both active: effects compose.
        assert node.cpu.slow_factor == 4.0
        assert node.endpoint.degrade.lag == 0.2
        assert node.endpoint.degrade.jitter == 0.05
        # The earlier fault clears first; the later one must stay active.
        chaos.clear(slow)
        assert node.cpu.slow_factor == 1.0
        assert node.endpoint.degrade.lag == 0.0
        assert node.endpoint.degrade.jitter == 0.05
        chaos.clear(jitter)
        assert node.endpoint.degrade is None
        assert node.cpu.slow_factor == 1.0

    def test_degradation_requires_rng_when_random(self):
        from repro.sim.core import SimError
        from repro.sim.rpc import EndpointDegradation

        with pytest.raises(SimError, match="needs an rng"):
            EndpointDegradation(drop_rate=0.3)
        with pytest.raises(SimError, match="needs an rng"):
            EndpointDegradation(jitter=0.01)
        EndpointDegradation(lag=0.2)  # pure lag needs no randomness

    def test_clock_jitter_installs_seeded_degradation(self, marlin_pair):
        cluster = marlin_pair
        event = ClockJitter(node=1, spread=0.02)
        cluster.chaos.inject(event)
        degrade = cluster.nodes[1].endpoint.degrade
        assert degrade.jitter == 0.02
        assert degrade.rng is cluster.chaos.rng
        cluster.chaos.clear(event)
        assert cluster.nodes[1].endpoint.degrade is None

    def test_storage_stall_delays_requests_then_expires(self, marlin_pair):
        cluster = marlin_pair
        storage = cluster.storages["us-west"]
        cluster.chaos.inject(StorageStall(region="us-west", duration=0.5))
        t0 = cluster.sim.now
        fut = cluster.nodes[0].storage_call("log_end_lsn", "syslog", log="syslog")
        value = cluster.sim.run_until(fut)
        assert isinstance(value, int)
        assert cluster.sim.now - t0 >= 0.5  # stalled through the window
        assert storage.stalled_until <= cluster.sim.now

    def test_crash_event_freezes_node(self, marlin_pair):
        cluster = marlin_pair
        cluster.chaos.inject(Crash(node=1))
        assert cluster.nodes[1].frozen
        assert cluster.live_node_ids() == [0]

    def test_restart_event_rejoins_member(self):
        cluster = make_cluster("marlin", num_nodes=3, num_keys=3072, seed=41,
                               failure_detection=True)
        cluster.run(until=0.5)
        cluster.fail_node(1)
        cluster.run(until=8.0)  # ring detection + failover complete
        assert 1 not in cluster.ground_truth_mtable()
        cluster.chaos.inject(Restart(node=1))
        cluster.run(until=cluster.sim.now + 2.0)
        assert not cluster.nodes[1].frozen
        assert 1 in cluster.ground_truth_mtable()
        assert 1 in cluster.detectors  # monitoring resumed on rejoin
        cluster.chaos.verify_quiescent()

    def test_crash_window_restarts_when_cleared(self):
        """A Crash with a duration 'clears' by restarting the node: it comes
        back after the failover fenced it and rejoins as a fresh member."""
        cluster = make_cluster(
            "marlin", num_nodes=3, num_keys=3072, seed=42,
            failure_detection=True,
        )
        cluster.run(until=0.5)
        proc = cluster.chaos.run_schedule(
            crash_restart_cycle(node=1, at=1.0, down_for=6.0)
        )
        cluster.sim.run_until(proc.result, limit=60.0)
        cluster.run(until=cluster.sim.now + 2.0)
        assert not cluster.nodes[1].frozen
        assert 1 in cluster.ground_truth_mtable()
        phases = [(phase, e.kind) for _t, phase, e in cluster.chaos.fault_log]
        assert phases == [("inject", "crash"), ("clear", "crash")]
        cluster.chaos.verify_quiescent()

    def test_fault_log_records_inject_and_clear(self, marlin_pair):
        cluster = marlin_pair
        schedule = (
            FaultSchedule()
            .at(0.1, StorageStall(region="us-west", duration=0.2))
            .at(0.2, PacketLoss(pair=(0, 1), rate=0.5, duration=0.3))
        )
        proc = cluster.chaos.run_schedule(schedule)
        log = cluster.sim.run_until(proc.result, limit=10.0)
        phases = [(round(t, 6), phase, event.kind) for t, phase, event in log]
        assert phases == [
            (0.1, "inject", "storage_stall"),
            (0.2, "inject", "packet_loss"),
            (0.3, "clear", "storage_stall"),
            (0.5, "clear", "packet_loss"),
        ]
        assert cluster.chaos.active_faults() == []


def _chaotic_fingerprint(seed: int):
    """One small chaotic run; returns every bit-sensitive counter we track."""
    cluster = make_cluster(
        "marlin", num_nodes=3, num_keys=3072, seed=seed,
        failure_detection=True,
    )
    schedule = (
        FaultSchedule()
        .at(0.6, Partition(groups=((1,), (0, 2)), duration=2.0))
        .at(0.8, PacketLoss(pair=(0, 2), rate=0.2, duration=1.5))
        .at(1.2, StorageStall(region="us-west", duration=0.4))
        .at(3.5, SlowNode(node=2, cpu_factor=4.0, rpc_lag=0.05, duration=1.0))
    )
    proc = cluster.chaos.run_schedule(schedule)
    cluster.run(until=0.2)
    _router, clients = start_clients(cluster, count=4, request_timeout=0.3)
    cluster.sim.run_until(proc.result, limit=120.0)
    cluster.run(until=10.0)
    for c in clients:
        c.stop()
    cluster.settle(0.5)
    return {
        "events_executed": cluster.sim.events_executed,
        "now": cluster.sim.now,
        "messages_sent": cluster.network.messages_sent,
        "messages_dropped": cluster.network.messages_dropped,
        "committed": cluster.metrics.total_committed,
        "aborted": cluster.metrics.total_aborted,
        "failovers": list(cluster.metrics.failovers),
        "fault_log": [
            (t, phase, event.kind)
            for t, phase, event in cluster.chaos.fault_log
        ],
        "ground_truth": sorted(cluster.ground_truth_gtable().items()),
    }


class TestChaoticDeterminism:
    def test_chaotic_run_bit_identical_across_two_executions(self):
        first = _chaotic_fingerprint(seed=51)
        second = _chaotic_fingerprint(seed=51)
        assert first == second

    def test_different_seed_diverges(self):
        # Sanity: the fingerprint is actually sensitive to the seed (the
        # equality above is not vacuous).
        first = _chaotic_fingerprint(seed=51)
        other = _chaotic_fingerprint(seed=52)
        assert first != other


class TestScenarioBuilders:
    def test_rolling_partition_shape(self):
        schedule = rolling_partition([0, 1, 2], start=1.0, hold=2.0, gap=0.5)
        entries = schedule.sorted_entries()
        assert [t for t, _e in entries] == [1.0, 3.5, 6.0]
        assert all(e.duration == 2.0 for _t, e in entries)
        assert entries[0][1].groups == ((0,), (1, 2))

    def test_gray_failure_defaults(self):
        schedule = gray_failure(node=2, at=1.5, duration=3.0)
        ((at, event),) = schedule.sorted_entries()
        assert at == 1.5 and event.node == 2
        assert event.rpc_lag > 0.25  # beats the default detector timeout

    def test_storage_brownout_repeats(self):
        schedule = storage_brownout("us-west", at=1.0, stall=0.5, repeat=3, gap=1.0)
        assert [t for t, _e in schedule.sorted_entries()] == [1.0, 2.5, 4.0]

    def test_crash_restart_cycle_window(self):
        schedule = crash_restart_cycle(node=1, at=2.0, down_for=4.0)
        ((at, event),) = schedule.sorted_entries()
        assert (at, event.duration, event.rejoin) == (2.0, 4.0, True)
