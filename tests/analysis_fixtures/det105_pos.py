# detlint: scope=sim,hot-path
"""DET105 positive (advisory): hot-path classes without __slots__."""

from dataclasses import dataclass


class PendingCall:
    def __init__(self, method, args):
        self.method = method
        self.args = args
        self.cancelled = False


@dataclass(frozen=True)
class Op:
    write: bool
    key: int
