# detlint: scope=sim,coord-core
"""DET107 positive: identity-keyed comprehensions in coordination state."""


def index(votes):
    by_id = {id(v): v for v in votes}
    idents = {id(v) for v in votes}
    literal = {id(votes): "root"}
    return by_id, idents, literal
