# detlint: scope=sim
"""DET104 positive: truthiness tests on chaos/trace hooks.

The measured zero-overhead-off idiom (ROADMAP standing constraint) is
``if hook is not None``; plain truthiness re-evaluates __bool__ and silently
skips falsy-but-armed hooks.
"""


class Node:
    def __init__(self):
        self.fault_hook = None
        self.tracer = None

    def transition(self, edge):
        if self.fault_hook:  # wrong: truthiness
            self.fault_hook(edge)

    def record(self, event):
        if not self.tracer:  # wrong: negated truthiness
            return
        self.tracer.instant(event)

    def both(self, chaos, payload):
        return chaos and chaos.deliver(payload)  # wrong: boolean operand
