# detlint: scope=sim,hot-path
"""DET105 negative: slotted classes, exceptions, and class-attr defaults."""

from dataclasses import dataclass


class PendingCall:
    __slots__ = ("method", "args", "cancelled")

    def __init__(self, method, args):
        self.method = method
        self.args = args
        self.cancelled = False


@dataclass(frozen=True, slots=True)
class Op:
    write: bool
    key: int


class KernelError(Exception):
    def __init__(self, detail):
        super().__init__(detail)
        self.detail = detail


class Handle:
    # Class-attr default pattern: __slots__ of the same name would conflict,
    # so the advisory must stay quiet here.
    cancelled = False

    def __init__(self, token):
        self.cancelled = bool(token)
