# detlint: scope=sim
"""DET104 negative: explicit identity tests are the sanctioned idiom."""


class Node:
    def __init__(self):
        self.fault_hook = None
        self.tracer = None

    def transition(self, edge):
        hook = self.fault_hook
        if hook is not None:
            hook(edge)

    def record(self, event):
        if self.tracer is None:
            return
        self.tracer.instant(event)

    def unrelated(self, flag, items):
        # Truthiness on non-hook names stays allowed.
        if flag and items:
            return items[0]
        return None
