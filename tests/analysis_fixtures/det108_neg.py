# detlint: scope=sim
"""DET108 negative: Exception-narrow handlers and re-raising traps."""


def serve_loop(endpoint):
    while True:
        try:
            yield endpoint.next_request()
        except Exception:  # GeneratorExit (BaseException) still propagates
            continue


def dispatcher(gen, record):
    try:
        yield from gen
    except BaseException as exc:
        record(exc)
        raise  # bare re-raise keeps kill semantics intact
