# detlint: scope=sim
"""DET103 positive: wall-clock, environment and unseeded RNG reads.

Minimal reproduction of the hazard class the repo bans outright: sim code
whose behaviour is a function of anything but (spec, seed).
"""

import os
import random
import time
import uuid
from datetime import datetime
from os import environ  # importing environ is itself a finding


def stamp():
    started = time.time()
    mono = time.perf_counter()
    wall = datetime.now()
    return started, mono, wall


def jitter():
    return random.random() * random.randint(1, 10)


def unseeded_instance():
    return random.Random()  # no seed: draws from OS entropy


def ident():
    return uuid.uuid4(), os.getpid()


def config():
    return os.environ["REPRO_MODE"], os.getenv("REPRO_SCALE")
