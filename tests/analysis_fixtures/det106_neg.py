# detlint: scope=pool-crossing
"""DET106 negative: __getstate__ dropping the memo is the sanctioned fix."""


class Collector:
    def __init__(self):
        self.samples = []
        self._cache = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state


class PlainState:
    def __init__(self):
        # Dict-valued attrs without cache/memo names are real state.
        self.latencies = {}
        self.owners = {}
