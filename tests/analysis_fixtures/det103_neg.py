# detlint: scope=sim
"""DET103 negative: seeded RNG instances and sim-time reads are the pattern."""

import random


class Client:
    def __init__(self, sim, seed):
        self.sim = sim
        self.rng = random.Random(seed)  # seeded constructor is fine

    def think_time(self):
        # Draws from the instance RNG, not the module-level shared one.
        return self.rng.random() * 0.01

    def now(self):
        return self.sim.now  # simulated clock, not the wall clock


def pick(rng: random.Random, options):
    return options[rng.randrange(len(options))]
