# detlint: scope=sim
"""DET101 positive: minimal reproduction of PR 7's txn-counter leak.

``engine/txn.py`` carried a module-level ``itertools.count`` whose values
leaked into txn ids, so two same-seed runs in one process produced different
traces.  Both the counter and the global-rebind form must fire.
"""

import itertools
from itertools import count

_txn_counter = itertools.count(1)  # the PR 7 bug, verbatim shape
_aliased = count()

_next_id = 0


def allocate():
    global _next_id
    _next_id += 1
    return _next_id


class Registry:
    # class-level count is process-global too: shared by every instance
    _ids = itertools.count(1)
