# detlint: scope=sim,coord-core
"""DET107 negative: value-keyed comprehensions are fine."""


def index(votes):
    by_node = {v.node_id for v in votes}
    by_key = {v.node_id: v for v in votes}
    return by_node, by_key
