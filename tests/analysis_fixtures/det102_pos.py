# detlint: scope=sim
"""DET102 positive: minimal reproduction of PR 6's kill-order bug.

``RpcEndpoint._live_processes`` was a ``set`` of Process objects; killing
them by iterating the set executed kills in id()-hash order, which varies
with allocation addresses across runs.
"""


class Endpoint:
    def __init__(self):
        self._live_processes = set()  # elements are Process objects

    def kill_all(self):
        for proc in self._live_processes:  # PR 6 bug: id()-hash order
            proc.kill()

    def drain_one(self):
        return self._live_processes.pop()  # removal in id()-hash order

    def snapshot(self):
        return list(self._live_processes)  # freezes id()-hash order


def index_by_identity(store, obj, value):
    store[id(obj)] = value  # identity keys order by memory address


def sort_by_identity(objs):
    return sorted(objs, key=id)


def sort_by_identity_lambda(objs):
    return sorted(objs, key=lambda o: (id(o), o))
