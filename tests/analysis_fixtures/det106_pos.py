# detlint: scope=pool-crossing
"""DET106 positive: minimal reproduction of PR 4's pickled-memo regression.

``MetricsCollector`` grew a percentile memo cache; shipped inside
``PortableRunResult`` across the process pool it bloated payloads and risked
stale summaries until ``__getstate__`` dropped it.
"""

from collections import defaultdict


class Collector:
    def __init__(self):
        self.samples = []
        self._cache = {}  # PR 4 bug shape: memo pickled with the object

    def percentile(self, q):
        hit = self._cache.get(q)
        if hit is None:
            hit = self._cache[q] = sorted(self.samples)[0]
        return hit


class Summarizer:
    def __init__(self):
        self.memo_by_key = defaultdict(dict)
