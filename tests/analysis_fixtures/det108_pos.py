# detlint: scope=sim
"""DET108 positive: bare except in sim coroutines.

PR 6's spawned-registry bug was masked for a while by exactly this shape: a
bare ``except:`` in a coroutine swallowed the ``GeneratorExit`` raised at
cyclic-GC time, so the kill-order divergence surfaced far from its cause.
"""


def serve_loop(endpoint):
    while True:
        try:
            yield endpoint.next_request()
        except:  # swallows GeneratorExit/ProcessKilled
            continue


def harvest(proc):
    try:
        yield proc.result
    except BaseException:  # no re-raise: same mask
        return None
