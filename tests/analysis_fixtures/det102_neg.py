# detlint: scope=sim
"""DET102 negative: primitive sets, membership tests, and sorted() are fine."""

from typing import Set, Tuple


class Detector:
    def __init__(self):
        self._voted: Set[int] = set()
        self.blocked: Set[Tuple[str, str]] = set()

    def tally(self):
        # Iterating a set of ints after sorting is deterministic; the
        # annotation proves primitiveness for the raw loop too.
        total = 0
        for node_id in self._voted:
            total += node_id
        return total

    def ordered(self):
        return sorted(self._voted)

    def is_blocked(self, pair):
        return pair in self.blocked  # membership test: order-free


def dedupe(keys):
    # sorted() imposes value order — it is the *fix* for set iteration.
    seen = set()
    return sorted(k for k in keys if not (k in seen or seen.add(k)))
