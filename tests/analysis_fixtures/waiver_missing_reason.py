# detlint: scope=sim
"""Waiver-hygiene fixture: reasonless / malformed waivers must raise DET100."""

import itertools

_counter = itertools.count(1)  # detlint: ok(DET101)

# detlint: ok(DET999) — waiver naming a rule that does not exist
_other = itertools.count(1)  # detlint: ok(DET101) — real reason so only the unknown-rule waiver above gates
