# detlint: scope=sim
"""DET101 negative: per-instance allocation is the sanctioned pattern."""

import itertools


class Simulator:
    def __init__(self, seed):
        self._seq = itertools.count(1)  # per-instance, reset per run
        self.seed = seed

    def next_seq(self):
        return next(self._seq)


def read_only():
    # `global` without rebinding (read access needs no declaration, but a
    # declaration alone is not mutation) must not fire.
    global _CONSTANT
    return _CONSTANT


_CONSTANT = 7
