# detlint: scope=sim,coord-core
"""Waiver fixture: every violation carries a reasoned waiver -> zero gating."""

import itertools
import time

_counter = itertools.count(1)  # detlint: ok(DET101) — fixture exercising waiver parsing, never imported

# detlint: ok(DET103) — wall clock used only in this never-imported fixture
_t0 = time.time()


def index(votes):
    # detlint: ok(DET107) — identity keys are fine here: fixture never runs
    return {id(v): v for v in votes}
