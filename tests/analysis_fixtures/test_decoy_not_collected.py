# detlint: scope=tooling
"""Decoy named like a test module.

If pytest ever collects this directory, this file fails the run loudly,
proving the norecursedirs/collect_ignore guards regressed.
"""

raise RuntimeError(
    "tests/analysis_fixtures must never be collected by pytest; "
    "check norecursedirs in pytest.ini and collect_ignore in tests/conftest.py"
)


def test_decoy():  # pragma: no cover - never reached
    assert False
