"""Unit tests for compute-node lifecycle and plumbing."""

import pytest

from repro.engine.node import GTABLE, MTABLE, NodeParams, TxnOp, TxnSpec
from repro.storage.log import Delete, Put, RecordKind
from tests.conftest import make_cluster, run_gen


@pytest.fixture
def pair():
    cluster = make_cluster("marlin", num_nodes=2)
    cluster.run(until=0.05)
    return cluster


class TestViews:
    def test_apply_system_entries(self, pair):
        node = pair.nodes[0]
        node.apply_system_entries([Put(GTABLE, 99, 1), Put(MTABLE, 9, "node-9")])
        assert node.gtable[99] == 1
        assert node.mtable[9] == "node-9"
        node.apply_system_entries([Delete(GTABLE, 99), Delete(MTABLE, 9)])
        assert 99 not in node.gtable and 9 not in node.mtable

    def test_user_entries_do_not_touch_views(self, pair):
        node = pair.nodes[0]
        before = dict(node.gtable)
        node.apply_system_entries([Put("usertable", 1, "v")])
        assert node.gtable == before

    def test_member_ids_sorted_ints_only(self, pair):
        node = pair.nodes[0]
        node.mtable["suspect:1:0"] = 3.0
        assert node.member_ids() == [0, 1]

    def test_page_of(self, pair):
        node = pair.nodes[0]
        kpp = node.params.keys_per_page
        assert node.page_of("t", 0) == ("t", 0)
        assert node.page_of("t", kpp) == ("t", 1)


class TestTryLog:
    def test_try_log_advances_tracker(self, pair):
        node = pair.nodes[0]
        result = run_gen(
            pair, node.try_log(node.glog, "t1", RecordKind.COMMIT_DATA, ())
        )
        assert result.ok
        assert node.lsn_tracker[node.glog] == result.lsn

    def test_try_log_unknown_log_fetches_lsn(self, pair):
        node = pair.nodes[0]
        other = pair.nodes[1].glog
        assert other not in node.lsn_tracker
        result = run_gen(
            pair, node.try_log(other, "t1", RecordKind.COMMIT_DATA, ())
        )
        assert result.ok  # fetched the current end LSN first

    def test_try_log_serialized_by_gate(self, pair):
        node = pair.nodes[0]
        p1 = pair.sim.spawn(
            node.try_log(node.glog, "a", RecordKind.COMMIT_DATA, ()), daemon=True
        )
        p2 = pair.sim.spawn(
            node.try_log(node.glog, "b", RecordKind.COMMIT_DATA, ()), daemon=True
        )
        pair.run(until=pair.sim.now + 0.5)
        assert p1.result.result().ok and p2.result.result().ok

    def test_storage_call_routes_by_log_directory(self):
        cluster = make_cluster(
            "marlin", num_nodes=2,
            regions=("us-west", "asia-east"), home_region="us-west",
        )
        cluster.run(until=0.05)
        node0 = cluster.nodes[0]
        remote_glog = cluster.nodes[1].glog
        t0 = cluster.sim.now
        run_gen(cluster, node0.try_log(remote_glog, "x", RecordKind.COMMIT_DATA, ()))
        # Cross-region storage access paid at least one cross-region RTT.
        assert cluster.sim.now - t0 > 0.1


class TestFreezeResume:
    def test_freeze_keeps_stale_state(self, pair):
        node = pair.nodes[0]
        owned = node.owned_granules()
        tracker = dict(node.lsn_tracker)
        node.freeze()
        assert node.frozen and node.endpoint.crashed
        assert node.owned_granules() == owned
        assert node.lsn_tracker == tracker

    def test_freeze_clears_locks_and_txns(self, pair):
        node = pair.nodes[0]
        node.locks.acquire("t1", ("usertable", 5), True)
        node.freeze()
        assert node.locks.holders(("usertable", 5)) == set()
        assert node.txns == {}

    def test_unfreeze_restores_service(self, pair):
        node = pair.nodes[0]
        node.freeze()
        node.unfreeze()
        assert not node.frozen and not node.endpoint.crashed
        fut = pair.admin.call(node.address, "heartbeat", 99, timeout=1.0)
        assert pair.sim.run_until(fut) == node.node_id

    def test_unfreeze_restarts_group_commit(self, pair):
        node = pair.nodes[0]
        node.freeze()
        node.unfreeze()
        fut = node.committer.submit("after", RecordKind.COMMIT_DATA, ())
        ok, _ = pair.sim.run_until(fut)
        assert ok

    def test_unfreeze_preserves_wal_conditionality(self):
        cluster = make_cluster("zk-small", num_nodes=1)
        cluster.run(until=0.05)
        node = cluster.nodes[0]
        assert node.committer.conditional is False
        node.freeze()
        node.unfreeze()
        assert node.committer.conditional is False

    def test_double_freeze_is_safe(self, pair):
        node = pair.nodes[0]
        node.freeze()
        node.freeze()
        node.unfreeze()
        assert not node.frozen


class TestScanHandlers:
    def test_scan_gtable_returns_own_partition(self, pair):
        fut = pair.admin.call("node-1", "scan_gtable", timeout=1.0)
        partition = pair.sim.run_until(fut)
        assert partition
        assert set(partition.values()) == {1}

    def test_owned_granules_handler(self, pair):
        fut = pair.admin.call("node-0", "owned_granules", timeout=1.0)
        owned = pair.sim.run_until(fut)
        assert owned == pair.nodes[0].owned_granules()


class TestRunMigrationsHandler:
    def test_empty_moves(self, pair):
        fut = pair.admin.call("node-0", "run_migrations", (), timeout=5.0)
        result = pair.sim.run_until(fut)
        assert result == {"count": 0, "failed": 0}

    def test_moot_move_counts_as_failed(self, pair):
        """Migrating a granule the source no longer owns is dropped."""
        own = pair.nodes[0].owned_granules()[0]
        fut = pair.admin.call(
            "node-1", "run_migrations", ((own, 0),), timeout=10.0
        )
        # Make node 0 lose the granule first via a real migration to node 1.
        run_gen(pair, pair.nodes[1].runtime.migrate(own, 0, 1))
        result = pair.sim.run_until(fut)
        assert result["count"] + result["failed"] == 1
