#!/usr/bin/env python3
"""Quickstart: build a Marlin cluster, run YCSB, scale out, watch it rebalance.

This is the minimal end-to-end tour of the public API:

1. build a 2-node storage-disaggregated cluster coordinated by Marlin,
2. attach closed-loop YCSB clients,
3. double the cluster mid-run (AddNodeTxn + MigrationTxns under the hood),
4. print throughput before/after and verify the ownership invariants.
"""

from repro import Client, Cluster, ClusterConfig, Router, YcsbWorkload
from repro.core.invariants import check_view_consistency


def main():
    config = ClusterConfig(
        coordination="marlin",
        num_nodes=2,
        num_keys=8192,          # 128 granules of 64 keys
        keys_per_granule=64,
        seed=42,
    )
    cluster = Cluster(config)
    cluster.run(until=0.1)  # let bootstrap replay settle

    router = Router(cluster.assignment_from_views())
    workload = YcsbWorkload(cluster.gmap)
    clients = [
        Client(
            cluster.sim, cluster.network, "us-west", router, workload,
            cluster.metrics, cluster.gmap, seed=i,
        )
        for i in range(8)
    ]
    for client in clients:
        client.start()

    print("phase 1: 2 nodes serving 8 clients ...")
    cluster.run(until=3.0)
    before = cluster.metrics.total_committed

    print("phase 2: scale out to 4 nodes (live migration) ...")
    proc = cluster.sim.spawn(cluster.scale_out(2), name="scale-out", daemon=True)
    summary = cluster.sim.run_until(proc.result)
    router.sync(cluster.assignment_from_views())
    print(
        f"  moved {summary['migrated']} granules to nodes "
        f"{summary['new_nodes']} in {summary['duration']:.3f}s (sim time)"
    )

    cluster.run(until=6.0)
    for client in clients:
        client.stop()
    cluster.settle()

    after = cluster.metrics.total_committed - before
    print(f"committed: {before} txns on 2 nodes, then {after} on 4 nodes")
    print(f"abort ratio: {cluster.metrics.abort_ratio():.3f}")
    lat = cluster.metrics.latency_stats()
    print(f"latency p50={lat['p50'] * 1000:.2f}ms p99={lat['p99'] * 1000:.2f}ms")
    for nid in cluster.live_node_ids():
        node = cluster.nodes[nid]
        print(f"  node {nid}: owns {len(node.owned_granules())} granules")

    check_view_consistency(
        [cluster.nodes[n] for n in cluster.live_node_ids()],
        cluster.gmap.num_granules,
    )
    print("exclusive-ownership invariants hold (I0-I5). done.")


if __name__ == "__main__":
    main()
