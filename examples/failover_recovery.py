#!/usr/bin/env python3
"""Failover without an external coordination service (the paper's Figure 7).

A node freezes mid-run.  Ring heartbeating detects it, a survivor runs
RecoveryMigrTxn (committing directly into the dead node's GLog) and
DeleteNodeTxn, and the cluster keeps serving.  When the "dead" node comes
back with stale memory, its first commit fails the conditional append, it
invalidates its metadata caches, and it discovers it owns nothing — the
exact MarlinCommit race the paper resolves.
"""

from repro import Client, Cluster, ClusterConfig, Router, TxnOp, TxnSpec, YcsbWorkload
from repro.core.invariants import check_invariants
from repro.sim.rpc import RemoteError


def main():
    config = ClusterConfig(
        coordination="marlin",
        num_nodes=3,
        num_keys=6144,
        keys_per_granule=64,
        failure_detection=True,   # ring heartbeats (§4.4.2)
        detector_interval=0.5,
        detector_misses=3,
        seed=7,
    )
    cluster = Cluster(config)
    cluster.run(until=0.1)

    router = Router(cluster.assignment_from_views())
    workload = YcsbWorkload(cluster.gmap)
    clients = [
        Client(
            cluster.sim, cluster.network, "us-west", router, workload,
            cluster.metrics, cluster.gmap, seed=i, request_timeout=0.5,
        )
        for i in range(6)
    ]
    for client in clients:
        client.start()

    cluster.run(until=2.0)
    victim = cluster.nodes[1]
    stolen = victim.owned_granules()
    print(f"t=2.0s node 1 freezes (owns {len(stolen)} granules)")
    cluster.fail_node(1)

    cluster.run(until=10.0)
    for t, dead, granules in cluster.metrics.failovers:
        print(f"t={t:.2f}s failover: node {dead} lost {granules} granules")
    print(f"membership now: {sorted(cluster.ground_truth_mtable())}")
    check_invariants(
        cluster.ground_truth_gtable(),
        cluster.gmap.num_granules,
        cluster.ground_truth_mtable(),
    )
    print("invariants hold after failover")

    print("t=10.0s node 1 resumes with stale state ...")
    cluster.resume_node(1)
    cluster.run(until=10.1)
    print(f"  node 1 still believes it owns {len(victim.owned_granules())} granules")

    # Route one transaction straight at the stale node.
    granule = stolen[0]
    key = cluster.gmap.granule(granule).lo
    spec = TxnSpec(ops=(TxnOp(True, "usertable", key),))
    fut = cluster.admin.call("node-1", "user_txn", spec, timeout=5.0)
    try:
        cluster.sim.run_until(fut)
        raise AssertionError("stale node must not commit")
    except RemoteError as err:
        print(f"  its commit aborted: {err.cause}")
    cluster.run(until=11.0)
    print(
        f"  after ClearMetaCache + refresh it owns "
        f"{len(victim.owned_granules())} granules and maps granule "
        f"{granule} -> node {victim.gtable[granule]}"
    )

    for client in clients:
        client.stop()
    cluster.settle()
    print(f"total committed through it all: {cluster.metrics.total_committed}")


if __name__ == "__main__":
    main()
