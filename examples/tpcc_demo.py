#!/usr/bin/env python3
"""TPC-C on the Marlin-coordinated database (§6.3 in miniature).

Warehouses are the unit of migration (one granule each); 10% of NEW-ORDER
and 15% of PAYMENT transactions cross warehouses and commit via MarlinCommit
2PC across the owning nodes.  The script runs the standard mix, scales out
mid-run and reports per-transaction-type counts plus reconfiguration impact.
"""

from repro import Cluster, ClusterConfig
from repro.experiments.harness import EXP_NODE_PARAMS, start_clients


def main():
    warehouses = 256
    config = ClusterConfig(
        coordination="marlin",
        num_nodes=4,
        num_keys=warehouses * 64,
        keys_per_granule=64,
        node_params=EXP_NODE_PARAMS,
        seed=5,
    )
    cluster = Cluster(config)
    cluster.run(until=0.1)
    router, clients = start_clients(cluster, 16, "tpcc", seed=300)

    print(f"{warehouses} warehouses on 4 nodes, 16 terminals, standard mix")
    cluster.run(until=4.0)
    mid = cluster.metrics.total_committed

    print("scaling out to 8 nodes (warehouse migration) ...")
    proc = cluster.sim.spawn(cluster.scale_out(4), name="so", daemon=True)
    summary = cluster.sim.run_until(proc.result)
    router.sync(cluster.assignment_from_views())
    print(
        f"  {summary['migrated']} warehouses moved in {summary['duration']:.2f}s"
    )

    cluster.run(until=10.0)
    for client in clients:
        client.stop()
    cluster.settle()

    mix = {}
    for client in clients:
        for name, count in client.workload.generated.items():
            mix[name] = mix.get(name, 0) + count
    total = sum(mix.values()) or 1
    print("\ntransaction mix generated:")
    for name, count in sorted(mix.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<14} {count:6d}  ({count / total:5.1%})")
    print(f"\ncommitted {cluster.metrics.total_committed} "
          f"({mid} before scale-out), abort ratio "
          f"{cluster.metrics.abort_ratio():.3f}")
    reasons = dict(cluster.metrics.abort_reasons)
    print(f"abort reasons: {reasons}")


if __name__ == "__main__":
    main()
