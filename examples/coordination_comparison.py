#!/usr/bin/env python3
"""Compare coordination mechanisms on the same scale-out (§6.2 in miniature).

Runs the identical YCSB scale-out (4 -> 8 nodes under load) with all four
coordination mechanisms and prints the paper's key metrics side by side:
migration duration and throughput, user abort ratio, and the cost split
(Marlin's Meta Cost is zero; the baselines pay for a coordination cluster).

Each run is a declarative :class:`ScenarioSpec` — the same ~10 lines of data
serialized to JSON would reproduce it via
``python -m repro.experiments run <spec.json>``.
"""

from repro.experiments import run_spec, scale_out_spec
from repro.experiments.harness import SYSTEM_LABELS


def main():
    print(f"{'system':8} {'migr_dur(s)':>12} {'migr/s':>8} {'aborts':>8} "
          f"{'db_cost($)':>11} {'meta($)':>9} {'$/Mtxn':>9}")
    for system in ("marlin", "zk-small", "zk-large", "fdb"):
        spec = scale_out_spec(
            system,
            initial_nodes=4,
            added_nodes=4,
            clients=32,
            granules=3200,
            scale_at=2.0,
            tail=4.0,
            seed=11,
        )
        result = run_spec(spec)
        report = result.cost
        duration = result.migration_duration
        migrations = result.metrics.total_migrations
        rate = migrations / duration if duration else 0.0
        print(
            f"{SYSTEM_LABELS[system]:8} {duration:12.3f} {rate:8.0f} "
            f"{result.metrics.abort_ratio():8.3f} {report.db_cost:11.5f} "
            f"{report.meta_cost:9.5f} {report.cost_per_million_txns:9.3f}"
        )
    print("\nMarlin: fastest migration, zero Meta Cost, lowest $/Mtxn.")
    print("(absolute $/Mtxn is inflated by the simulator's throughput scale —")
    print(" compare systems, not magnitudes; see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
