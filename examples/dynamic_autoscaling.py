#!/usr/bin/env python3
"""Bursty workload with an autoscaler (§6.6 in miniature).

Client load doubles, holds, then drops; the autoscaler scales the Marlin
cluster out and back in.  Fast reconfiguration is what makes autoscaling pay:
nodes are released soon after the burst ends, so the realtime cost tracks the
load curve.

The whole timeline is one declarative :class:`ScenarioSpec` — base clients
from warmup, an ``autoscaler`` phase, a burst ``clients_start`` /
``clients_stop`` pair — executed by ``run_spec``; serialized to JSON it
reproduces byte-identically via ``python -m repro.experiments run``.
"""

from repro.experiments import (
    PhaseSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    run_spec,
)

BURST_AT, DROP_AT, END_AT = 5.0, 20.0, 35.0


def main():
    spec = ScenarioSpec(
        name="dynamic-autoscaling-demo",
        topology=TopologySpec(nodes=4, coordination="marlin", node_params="default"),
        workload=WorkloadSpec(kind="ycsb", clients=16, granules=4 * 400,
                              client_seed_factor=100),
        phases=[
            PhaseSpec(at=0.1, action="autoscaler", params={
                "interval": 1.0, "clients_per_node": 4,
                "min_nodes": 4, "max_nodes": 8, "cooldown": 2.0,
            }),
            PhaseSpec(at=BURST_AT, action="clients_start", params={
                "pool": "burst", "count": 16, "seed_factor": 200,
                "bind_to_nodes": [0, 1, 2, 3],
            }),
            PhaseSpec(at=DROP_AT, action="clients_stop", params={"pool": "burst"}),
        ],
        seed=1,
        duration=END_AT,
        check_invariants=False,
    )
    print(f"t=0s   : 16 clients on 4 nodes")
    print(f"t={BURST_AT:.0f}s   : burst to 32 clients")
    print(f"t={DROP_AT:.0f}s  : burst ends")
    result = run_spec(spec)
    cluster = result.cluster

    print("\nscaling actions:")
    for event in result.scale_summaries:
        what = event.get("new_nodes") or event.get("removed")
        print(
            f"  t={event['start']:6.2f}s {event['kind']:<9} nodes={what} "
            f"took {event['duration']:.2f}s ({event['moves']} granule moves)"
        )

    print("\nrealtime cost ($/s, sampled every 5s):")
    series = cluster.cost_model.realtime_cost_series(
        cluster.metrics, until=END_AT, bucket=5.0
    )
    for t, dollars in series:
        bar = "#" * int(dollars * 3600 / 0.192 * 2)
        print(f"  t={t:5.1f}s {dollars * 3600:7.3f} $/hr {bar}")

    report = cluster.price(END_AT)
    print(f"\ntotal cost ${report.total:.4f} for {report.committed} txns")


if __name__ == "__main__":
    main()
