#!/usr/bin/env python3
"""Bursty workload with an autoscaler (§6.6 in miniature).

Client load doubles, holds, then drops; the autoscaler scales the Marlin
cluster out and back in.  Fast reconfiguration is what makes autoscaling pay:
nodes are released soon after the burst ends, so the realtime cost tracks the
load curve.
"""

from repro import Autoscaler, Cluster, ClusterConfig
from repro.experiments.harness import start_clients


def main():
    config = ClusterConfig(
        coordination="marlin",
        num_nodes=4,
        num_keys=4 * 400 * 64,
        keys_per_granule=64,
        seed=21,
    )
    cluster = Cluster(config)
    cluster.run(until=0.1)

    router, base_clients = start_clients(cluster, 16, "ycsb", seed=100)
    scaler = Autoscaler(
        cluster, router=router, interval=1.0,
        clients_per_node=4, min_nodes=4, max_nodes=8, cooldown=2.0,
    )
    scaler.start()

    print("t=0s   : 16 clients on 4 nodes")
    cluster.run(until=5.0)

    print("t=5s   : burst to 32 clients")
    _router2, burst = start_clients(
        cluster, 16, "ycsb", seed=200, bind_to_nodes=list(range(4))
    )
    cluster.client_count = 32
    cluster.run(until=20.0)

    print("t=20s  : burst ends")
    for client in burst:
        client.stop()
    cluster.client_count = 16
    cluster.run(until=35.0)

    for client in base_clients:
        client.stop()
    scaler.stop()
    cluster.settle()

    print("\nscaling actions:")
    for event in cluster.scale_events:
        what = event.get("new_nodes") or event.get("removed")
        print(
            f"  t={event['start']:6.2f}s {event['kind']:<9} nodes={what} "
            f"took {event['duration']:.2f}s ({event['moves']} granule moves)"
        )

    print("\nrealtime cost ($/s, sampled every 5s):")
    series = cluster.cost_model.realtime_cost_series(
        cluster.metrics, until=35.0, bucket=5.0
    )
    for t, dollars in series:
        bar = "#" * int(dollars * 3600 / 0.192 * 2)
        print(f"  t={t:5.1f}s {dollars * 3600:7.3f} $/hr {bar}")

    report = cluster.price(35.0)
    print(f"\ntotal cost ${report.total:.4f} for {report.committed} txns")


if __name__ == "__main__":
    main()
