#!/usr/bin/env python3
"""Scale-out under a rolling network partition (the chaos engine, ISSUE 2/3).

A three-node Marlin cluster doubles down on the paper's coordination claim
under messier faults than a crash: while a scale-out (with a 1 s VM
provisioning delay) is still in flight, each node in turn loses peer
connectivity — storage and clients stay reachable, the classic
control-plane partition.

* Short partitions (shorter than ``detector_interval * detector_misses``)
  are *tolerated*: heartbeats miss once or twice, nobody is fenced, and the
  in-flight migrations just retry through their timeouts.
* The long partition on node 1 crosses the threshold — and cuts *both*
  ways: node 1's monitor suspects node 1, while the isolated node 1, whose
  own probes also time out, symmetrically suspects its ring successor
  through still-reachable storage.  The suspicion-vote gate (§4.4.2's
  deferred optimization, ``core/suspicion.py``) resolves the race through
  the totally ordered SysLog: both sides commit a suspicion vote, wait one
  probe interval, and re-read MTable — node 1 sees the vote against
  *itself* and stands down, so only the genuinely unreachable node is
  fenced.  (Before the gate, node 1 would wastefully fence its healthy
  successor too — the mutual-fencing cascade.)
* When the partition heals, the fenced-but-alive node's next conditional
  append fails, it clears its metadata caches, sees what it really owns,
  and rejoins as a fresh member.

The whole run is driven by one declarative FaultSchedule on a fixed seed, so
this timeline is bit-identical on every execution.
"""

from repro import Client, Cluster, ClusterConfig, Router, YcsbWorkload
from repro.chaos import FaultSchedule, Partition
from repro.engine.node import SYSLOG


def members_of(mtable):
    """Integer member ids (MTable also carries suspicion-vote rows)."""
    return sorted(k for k in mtable if isinstance(k, int))


def main():
    config = ClusterConfig(
        coordination="marlin",
        num_nodes=3,
        num_keys=3072,
        keys_per_granule=64,
        failure_detection=True,
        detector_interval=0.5,
        detector_misses=3,
        provision_delay=1.0,
        seed=11,
    )
    cluster = Cluster(config)

    # Rolling transient partitions overlapping the scale-out window, then
    # one long isolation of node 1 that crosses the detection threshold.
    schedule = (
        FaultSchedule()
        .at(1.5, Partition(groups=((0,), (1, 2, 3)), duration=1.0))
        .at(3.0, Partition(groups=((2,), (0, 1, 3)), duration=1.0))
        .at(5.0, Partition(groups=((1,), (0, 2, 3)), duration=3.5))
    )
    chaos = cluster.chaos
    sched_proc = chaos.run_schedule(schedule)

    cluster.run(until=0.1)
    router = Router(cluster.assignment_from_views())
    workload = YcsbWorkload(cluster.gmap)
    clients = [
        Client(
            cluster.sim, cluster.network, "us-west", router, workload,
            cluster.metrics, cluster.gmap, seed=100 + i, request_timeout=0.4,
        )
        for i in range(6)
    ]
    for client in clients:
        client.start()

    print("t=1.0s scale-out begins (3 -> 4 nodes, 1s provisioning) "
          "under rolling partitions")
    cluster.run(until=1.0)
    proc = cluster.sim.spawn(cluster.scale_out(1), daemon=True)
    summary = cluster.sim.run_until(proc.result, limit=120.0)
    print(
        f"t={cluster.sim.now:.2f}s scale-out done despite the partitions: "
        f"{summary['moves']} moves, {summary['migrated']} migrated"
    )

    cluster.sim.run_until(sched_proc.result, limit=120.0)
    cluster.run(until=14.0)

    print("\n-- fault timeline --")
    for t, phase, event in chaos.fault_log:
        print(f"  t={t:5.2f}s {phase:6s} {event.describe()}")

    print("\n-- recovery timeline --")
    if not cluster.metrics.failovers:
        print("  (no failovers)")
    for t, dead, granules in cluster.metrics.failovers:
        print(f"  t={t:5.2f}s failover: node {dead} fenced, lost {granules} granules")
    stand_downs = sum(d.stand_downs for d in cluster.detectors.values())
    print(f"  suspicion-vote stand-downs (cascades averted): {stand_downs}")
    fenced = sorted(
        nid for nid in cluster.nodes
        if nid not in members_of(cluster.ground_truth_mtable())
    )
    print(f"  membership after chaos: {members_of(cluster.ground_truth_mtable())} "
          f"(fenced but alive: {fenced})")

    for nid in fenced:
        node = cluster.nodes[nid]
        claimed = len(node.owned_granules())

        def rejoin(node=node):
            yield from node.runtime.handle_cas_failure(node.glog)
            yield from node.runtime.handle_cas_failure(SYSLOG)
            ok = yield from node.runtime.add_node()
            return ok

        rejoined = cluster.sim.run_until(
            cluster.sim.spawn(rejoin(), daemon=True).result, limit=60.0
        )
        print(f"  node {nid}: claimed {claimed} granules while stale -> "
              f"refreshed, now claims {len(node.owned_granules())}; "
              f"rejoined: {rejoined}")

    for client in clients:
        client.stop()
    cluster.settle(0.5)
    chaos.verify_quiescent()
    print(f"\ninvariants hold; membership {members_of(cluster.ground_truth_mtable())}; "
          f"total committed through the chaos: {cluster.metrics.total_committed}")


if __name__ == "__main__":
    main()
