#!/usr/bin/env python3
"""Geo-distributed deployment across four Azure regions (§6.5 in miniature).

Compute and storage span US West, Asia East, UK South and Australia East;
ZooKeeper (when used) sits in US West only.  Marlin's coordination state
lives with the data, so migrations never leave their region — the baselines
pay a cross-region round trip per ownership update.
"""

from repro.experiments import run_spec, scale_out_spec
from repro.experiments.harness import SYSTEM_LABELS
from repro.sim.network import AZURE_REGIONS


def main():
    print(f"regions: {', '.join(AZURE_REGIONS)} (coordination pinned in us-west)\n")
    durations = {}
    for system in ("marlin", "zk-small", "fdb"):
        spec = scale_out_spec(
            system,
            initial_nodes=4,            # one per region
            added_nodes=4,              # doubles each region
            clients=16,
            granules=3200,
            scale_at=2.0,
            tail=4.0,
            regions=tuple(AZURE_REGIONS),
            seed=17,
        )
        result = run_spec(spec)
        durations[system] = result.migration_duration
        cross_region = result.cluster.network.messages_sent
        print(
            f"{SYSTEM_LABELS[system]:8} migration window "
            f"{result.migration_duration:7.2f}s   "
            f"committed {result.metrics.total_committed:6d}   "
            f"$/Mtxn {result.cost.cost_per_million_txns:7.3f}"
        )
    print()
    for base in ("zk-small", "fdb"):
        ratio = durations[base] / durations["marlin"]
        print(
            f"Marlin migrates {ratio:.1f}x faster than {SYSTEM_LABELS[base]} "
            f"in the geo setting"
        )
    print("(paper: up to 4.9x vs ZooKeeper, up to 9.5x vs FDB)")


if __name__ == "__main__":
    main()
