"""MarlinRuntime: the integrated coordination mechanism, per node (§4).

Binds the system tables (MTable / GTable views), MarlinCommit, the
reconfiguration transactions and the ClearMetaCache/refresh path to a compute
node.  The external-service baselines implement the same interface in
``repro.coord.external`` — swapping the runtime is the only difference
between a Marlin cluster and a ZooKeeper/FDB cluster in this repo, exactly
the experimental control the paper's evaluation needs.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional

from repro.coord.base import CoordinationRuntime
from repro.core import reconfig, recovery
from repro.core.commit import NodeParticipant, marlin_commit, terminate_in_doubt
from repro.engine.locks import LockConflict
from repro.engine.node import GTABLE, MTABLE, SYSLOG, glog_name
from repro.engine.txn import AbortReason, TxnAborted, TxnContext, WrongNodeError
from repro.storage.log import RecordKind

__all__ = ["MarlinRuntime"]


class MarlinRuntime(CoordinationRuntime):
    """Coordination state lives in the database itself; Meta cost is zero."""

    kind = "marlin"

    def __init__(self):
        super().__init__()
        self._refreshing: Dict[str, object] = {}
        self.cas_failures = 0
        self.refreshes = 0
        self.reconfig_commits = 0

    def attach(self, node) -> None:
        super().attach(node)
        node.endpoint.register("migr_prepare", self._h_migr_prepare)
        node.endpoint.register("run_recovery", self._h_run_recovery)
        node.endpoint.register("sys_update", self._h_sys_update)

    # -- user transaction path --------------------------------------------------

    def check_ownership(self, ctx, granule: int) -> None:
        """Algorithm 1 lines 2-6 plus the GTable read lock held to commit."""
        node = self.node
        try:
            node.locks.acquire(ctx.txn_id, (GTABLE, granule), False)
        except LockConflict as conflict:
            raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
        owner = node.gtable.get(granule)
        if owner != node.node_id:
            raise WrongNodeError(granule, owner)

    def commit_user(self, ctx) -> Generator:
        node = self.node
        remotes = getattr(ctx, "remote_participants", None)
        if not remotes:
            # One-phase commit through group commit (TryLog on our own GLog).
            result = yield node.committer.submit(
                ctx.txn_id, RecordKind.COMMIT_DATA, ctx.entries_for(node.glog)
            )
            if not result.ok:
                self.cas_failures += 1
                yield from self.handle_cas_failure(node.glog)
                raise TxnAborted(
                    AbortReason.CAS_CONFLICT, f"cross-node append on {node.glog}"
                )
            return
        participants = [NodeParticipant(node.node_id)] + [
            NodeParticipant(r) for r in remotes
        ]
        committed = yield from marlin_commit(node, ctx, participants)
        if not committed:
            raise TxnAborted(AbortReason.CAS_CONFLICT, "distributed commit aborted")
        node.stats["two_pc_commits"] += 1

    def recover(self) -> Generator:
        """Crash recovery: WAL scan + in-doubt resolution (core/recovery.py)."""
        return (yield from recovery.recover_node(self.node))

    # -- ClearMetaCache + refresh (§4.3.2) ----------------------------------------

    def handle_cas_failure(self, log_name: str) -> Generator:
        """A conditional append failed: another node modified ``log_name``.

        ClearMetaCache semantics: the stale cached system-table state derived
        from that log (MTable for SysLog, a GTable partition for a GLog) is
        discarded and rebuilt by reading the records this node missed.
        Concurrent failures on the same log coalesce into one refresh.
        """
        node = self.node
        pending = self._refreshing.get(log_name)
        if pending is not None:
            yield pending
            return
        fut = node.sim.event(name=f"refresh:{log_name}")
        self._refreshing[log_name] = fut
        try:
            self.refreshes += 1
            cursor = node.view_cursor.get(log_name, 0)
            records = yield node.storage_call("read_log", log_name, cursor, log=log_name)
            yield from self._apply_records(log_name, records)
            if records:
                node.view_cursor[log_name] = max(
                    node.view_cursor.get(log_name, 0), records[-1].lsn
                )
        finally:
            self._refreshing.pop(log_name, None)
            fut.resolve()

    def ensure_view(self, log_name: str) -> Generator:
        """Load the view from a log this node has never observed (bootstrap)."""
        if log_name in self.node.view_cursor:
            return
        yield from self.handle_cas_failure(log_name)
        self.node.view_cursor.setdefault(log_name, 0)

    def _apply_records(self, log_name: str, records) -> Generator:
        """Fold missed log records into the local views.

        Two-phase records are applied only once their outcome is known: from
        a decision record in the same slice when available, otherwise through
        the Cornus-style termination protocol.
        """
        node = self.node
        decided: Dict[str, bool] = {}
        for record in records:
            if record.kind is RecordKind.DECISION_COMMIT:
                decided[record.txn_id] = True
            elif record.kind is RecordKind.DECISION_ABORT:
                decided[record.txn_id] = False
        for record in records:
            if record.kind is RecordKind.COMMIT_DATA:
                node.apply_system_entries(record.entries)
            elif record.kind is RecordKind.VOTE_YES:
                outcome = decided.get(record.txn_id)
                if outcome is None:
                    if record.txn_id in node.txns:
                        continue  # our own in-flight transaction
                    outcome = yield from terminate_in_doubt(
                        node,
                        record.txn_id,
                        record.participants or (log_name,),
                    )
                if outcome:
                    node.apply_system_entries(record.entries)

    # -- reconfiguration entry points ----------------------------------------------

    def migrate(self, granule: int, src_id: int, dst_id: int) -> Generator:
        if dst_id != self.node.node_id:
            raise ValueError("MigrationTxn must run on the destination node")
        return (yield from reconfig.migration_txn(self, granule, src_id))

    def add_node(self) -> Generator:
        return (
            yield from reconfig.run_with_retries(
                self.node, lambda: reconfig.add_node_txn(self)
            )
        )

    def remove_node(self, node_id: int) -> Generator:
        return (
            yield from reconfig.run_with_retries(
                self.node, lambda: reconfig.delete_node_txn(self, node_id)
            )
        )

    def recover_granules(self, dead_id: int, granules: Iterable[int]) -> Generator:
        granules = list(granules)
        started = self.node.sim.now

        def attempt():
            def inner():
                committed, taken = yield from reconfig.recovery_migr_txn(
                    self, granules, dead_id
                )
                return (committed, taken) if committed else False

            return inner()

        result = yield from reconfig.run_with_retries(self.node, attempt)
        if result is False:
            raise TxnAborted(AbortReason.CAS_CONFLICT, "recovery kept conflicting")
        taken = result[1]
        node = self.node
        if taken and node.metrics is not None:
            # RecoveryMigrTxn is a (batched) migration: each taken granule
            # counts as one migration whose latency is the whole batch's
            # suspicion-to-commit time — the window the granule was dark.
            latency = node.sim.now - started
            for _granule in taken:
                node.metrics.record_migration(node.sim.now, latency=latency)
        return taken

    def scan_ownership(self) -> Generator:
        return (yield from reconfig.scan_gtable_txn(self))

    def members(self) -> Dict[int, str]:
        return {m: self.node.mtable[m] for m in self.node.member_ids()}

    # -- Marlin-specific RPC handlers -------------------------------------------------

    def _h_migr_prepare(self, txn_id: str, granule: int, dst_id: int):
        """Source side of MigrationTxn (lines 20-22): validate, lock, stage.

        The write lock waits (bounded) behind in-flight user transactions on
        the granule, per §4.4.1's 2PL narration.
        """
        node = self.node
        owner = node.gtable.get(granule)
        if owner != node.node_id:
            return owner  # destination sees the mismatch and aborts (line 26)
        try:
            yield node.locks.acquire_async(
                txn_id, (GTABLE, granule), True,
                timeout=node.params.lock_wait_timeout,
            )
        except LockConflict as conflict:
            raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
        owner = node.gtable.get(granule)
        if owner != node.node_id:  # lost ownership while waiting
            node.locks.release_all(txn_id)
            return owner
        ctx = TxnContext(
            node.node_id, is_reconfig=True, name="MigrationTxn-src",
            seq=node.next_txn_seq(),
        )
        ctx.txn_id = txn_id
        ctx.write(node.glog, GTABLE, granule, dst_id)
        node.txns[txn_id] = ctx
        return node.node_id

    def _h_run_recovery(self, granules, src_id: int):
        """Run RecoveryMigrTxn here (lets a detector spread recovery work)."""
        taken = yield from self.recover_granules(src_id, granules)
        return taken

    def _h_sys_update(self, entries):
        """Optional broadcast of committed system-table changes (§4.4)."""
        self.node.apply_system_entries(entries)

    def broadcast_sys_update(self, entries) -> None:
        """Best-effort push to all members (the paper's optional broadcast)."""
        node = self.node
        for nid in node.member_ids():
            if nid != node.node_id:
                node.endpoint.cast(f"node-{nid}", "sys_update", tuple(entries))
