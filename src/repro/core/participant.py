"""Explicit 2PC participant state machine with journaled transitions.

Every branch of a distributed transaction walks the classic participant FSM

    INITIALIZE -> ACTIVE -> PREPARED -> { COMMITTED | ABORTED }

and a restarted node rebuilds in-doubt branches in the ``RECOVERY`` state
(``core/recovery.py``), from which only a terminal outcome is reachable.
Each journaled edge corresponds to exactly one WAL record on the
participant's GLog:

====================  ====================  =======================
transition            edge name             WAL record
====================  ====================  =======================
INITIALIZE -> ACTIVE  ``begin``             ``TXN_BEGIN``
ACTIVE -> PREPARED    ``vote``              ``VOTE_YES``
PREPARED -> COMMITTED ``decide``            ``DECISION_COMMIT``
* -> ABORTED          ``decide``            ``DECISION_ABORT``
====================  ====================  =======================

The coordinator additionally journals ``PREPARE`` (edge ``prepare``) before
gathering votes and ``TXN_END`` (edge ``end``) after dispatching decisions,
both to its own GLog.

``fault_point`` is the chaos hook: nodes expose a ``fault_hook`` attribute
that — when set by a fault-point sweep — is invoked with
``(txn_id, edge, phase)`` immediately *before* and *after* each journaled
transition, letting a test kill the coordinator or a participant at every
FSM edge (see ``tests/test_recovery_faultpoints.py``).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, List, Mapping

__all__ = [
    "EDGE_NAMES",
    "InvalidTransition",
    "ParticipantFSM",
    "TRANSITIONS",
    "TxnState",
    "fault_point",
]


class TxnState(enum.Enum):
    INITIALIZE = "initialize"
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"
    RECOVERY = "recovery"


#: Legal FSM edges.  ACTIVE -> COMMITTED is deliberately absent: a commit
#: decision requires every vote, including this participant's, so a branch
#: can only commit out of PREPARED (or RECOVERY, once the WAL proves the
#: vote landed before the crash).
TRANSITIONS: Mapping[TxnState, FrozenSet[TxnState]] = {
    TxnState.INITIALIZE: frozenset({TxnState.ACTIVE, TxnState.ABORTED}),
    TxnState.ACTIVE: frozenset({TxnState.PREPARED, TxnState.ABORTED}),
    TxnState.PREPARED: frozenset({TxnState.COMMITTED, TxnState.ABORTED}),
    TxnState.COMMITTED: frozenset(),
    TxnState.ABORTED: frozenset(),
    TxnState.RECOVERY: frozenset({TxnState.COMMITTED, TxnState.ABORTED}),
}

#: Every (role, edge) pair the fault-point sweep must cover.
EDGE_NAMES = {
    "participant": ("begin", "vote", "decide"),
    "coordinator": ("prepare", "decide", "end"),
}


class InvalidTransition(RuntimeError):
    """An FSM edge outside :data:`TRANSITIONS` was attempted."""


class ParticipantFSM:
    """One branch's position in the participant state machine."""

    __slots__ = ("txn_id", "state", "history")

    def __init__(self, txn_id: str, state: TxnState = TxnState.INITIALIZE):
        self.txn_id = txn_id
        self.state = state
        self.history: List[TxnState] = [state]

    @classmethod
    def recovered(cls, txn_id: str) -> "ParticipantFSM":
        """An in-doubt branch rebuilt from the WAL after a restart."""
        return cls(txn_id, state=TxnState.RECOVERY)

    def to(self, new_state: TxnState) -> None:
        if new_state not in TRANSITIONS[self.state]:
            raise InvalidTransition(
                f"{self.txn_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        self.history.append(new_state)

    @property
    def terminal(self) -> bool:
        return not TRANSITIONS[self.state]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ParticipantFSM({self.txn_id}, {self.state.value})"


def fault_point(node, txn_id: str, edge: str, phase: str) -> None:
    """Invoke the node's chaos hook (if armed) at a journaled FSM edge.

    ``phase`` is ``"before"`` (the WAL record is not yet durable) or
    ``"after"`` (it is).  A hook typically calls ``cluster.fail_node`` —
    the killing throw is delivered at the current process's next yield, so
    the crash lands exactly in the intended protocol window.

    When tracing is on, every edge is also recorded as an instant event on
    the node's track *before* the hook runs, so a kill at this exact point
    still leaves the killing edge in the flight recorder.
    """
    tracer = node.tracer
    if tracer is not None:
        tracer.instant(
            node.address, "edge:" + edge, args={"txn": txn_id, "phase": phase}
        )
    hook = getattr(node, "fault_hook", None)
    if hook is not None:
        hook(txn_id, edge, phase)
