"""The five reconfiguration transactions (Table 1, Algorithm 1).

Each follows the paper's three-step shape: (1) check data effectiveness
against the system tables, (2) modify coordination state, (3) commit through
MarlinCommit.  Validation failures (node already exists, wrong owner) are
definitive and raise; CAS conflicts return False so callers can refresh and
retry — the paper's "retries the transaction by fetching the newest data".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Iterable, List, Sequence, Tuple

from repro.core.commit import LogParticipant, NodeParticipant, marlin_commit
from repro.engine.locks import LockConflict
from repro.engine.node import GTABLE, MTABLE, SYSLOG, glog_name
from repro.engine.txn import AbortReason, TxnAborted, TxnContext, WrongNodeError
from repro.sim.core import Timeout, all_of
from repro.sim.rpc import RemoteError, RpcTimeout
from repro.storage.log import Put

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import MarlinRuntime

__all__ = [
    "NodeAlreadyExistsError",
    "NodeNotExistError",
    "add_node_txn",
    "delete_node_txn",
    "migration_txn",
    "recovery_migr_txn",
    "run_with_retries",
    "scan_gtable_txn",
    "warmup_granule",
]


class NodeAlreadyExistsError(Exception):
    """AddNodeTxn validation: the node is already a member (line 9)."""


class NodeNotExistError(Exception):
    """DeleteNodeTxn validation: the node is not a member (line 18)."""


def add_node_txn(runtime: "MarlinRuntime") -> Generator:
    """AddNodeTxn (lines 7-12): executed on the node being added.

    Returns True on commit, False on a CAS conflict (caller refreshes and
    retries); raises :class:`NodeAlreadyExistsError` if already a member.
    """
    node = runtime.node
    yield from runtime.ensure_view(SYSLOG)
    if node.node_id in node.mtable:
        raise NodeAlreadyExistsError(node.node_id)
    ctx = TxnContext(
        node.node_id, is_reconfig=True, name="AddNodeTxn",
        seq=node.next_txn_seq(),
    )
    ctx.write(SYSLOG, MTABLE, node.node_id, node.address)
    committed = yield from marlin_commit(
        node, ctx, [LogParticipant(SYSLOG, ctx.entries_for(SYSLOG))]
    )
    if committed:
        node.apply_system_entries(ctx.entries_for(SYSLOG))
        node.view_cursor[SYSLOG] = node.lsn_tracker[SYSLOG]
        runtime.reconfig_commits += 1
    return committed


def delete_node_txn(runtime: "MarlinRuntime", node_id: int) -> Generator:
    """DeleteNodeTxn (lines 13-18): executed on the deleter (or self)."""
    node = runtime.node
    yield from runtime.ensure_view(SYSLOG)
    if node_id not in node.mtable:
        raise NodeNotExistError(node_id)
    ctx = TxnContext(
        node.node_id, is_reconfig=True, name="DeleteNodeTxn",
        seq=node.next_txn_seq(),
    )
    ctx.delete(SYSLOG, MTABLE, node_id)
    committed = yield from marlin_commit(
        node, ctx, [LogParticipant(SYSLOG, ctx.entries_for(SYSLOG))]
    )
    if committed:
        node.apply_system_entries(ctx.entries_for(SYSLOG))
        node.view_cursor[SYSLOG] = node.lsn_tracker[SYSLOG]
        runtime.reconfig_commits += 1
    return committed


def migration_txn(
    runtime: "MarlinRuntime", granule: int, src_id: int
) -> Generator:
    """MigrationTxn (lines 19-26): cross-node, run on the destination.

    Validates ownership at the source over a sync RPC, stages the GTable swap
    on both sides, and commits across both GLogs with MarlinCommit 2PC.
    Returns True on commit; raises :class:`TxnAborted` on any conflict.
    """
    node = runtime.node
    dst_id = node.node_id
    ctx = TxnContext(
        dst_id, is_reconfig=True, name="MigrationTxn",
        seq=node.next_txn_seq(),
    )
    node.txns[ctx.txn_id] = ctx
    try:
        # Reconfiguration transactions wait for locks (bounded), §4.4.1.
        yield node.locks.acquire_async(
            ctx.txn_id, (GTABLE, granule), True,
            timeout=node.params.lock_wait_timeout,
        )
    except LockConflict as conflict:
        node.txns.pop(ctx.txn_id, None)
        raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
    try:
        yield from node.cpu.run(node.params.reconfig_cpu)
        # Line 20: sync RPC reads (and write-locks) the source's GTable entry.
        try:
            owner = yield node.peer_call(
                src_id,
                "migr_prepare",
                ctx.txn_id,
                granule,
                dst_id,
                timeout=node.params.vote_timeout,
            )
        except RemoteError as err:
            if isinstance(err.cause, TxnAborted):
                raise TxnAborted(err.cause.reason, err.cause.detail) from err
            raise TxnAborted(AbortReason.VALIDATION, str(err)) from err
        except RpcTimeout as err:
            raise TxnAborted(AbortReason.NODE_FAILED, str(err)) from err
        if owner != src_id:
            raise WrongNodeError(granule, owner)
        # Line 23: the destination's own GTable partition gains the granule.
        ctx.write(node.glog, GTABLE, granule, dst_id)
        committed = yield from marlin_commit(
            node, ctx, [NodeParticipant(src_id), NodeParticipant(dst_id)]
        )
        if not committed:
            raise TxnAborted(AbortReason.CAS_CONFLICT, f"migration of {granule}")
        node.apply_committed(ctx)
        runtime.reconfig_commits += 1
    finally:
        node.locks.release_all(ctx.txn_id)
        node.txns.pop(ctx.txn_id, None)
    # Warm-up runs after the locks drop: the granule is already owned by the
    # destination and serves (cold) user transactions during the scan.
    if node.params.warmup_enabled:
        yield from warmup_granule(node, granule, src_id)
    return True


def recovery_migr_txn(
    runtime: "MarlinRuntime",
    granules: Sequence[int],
    src_id: int,
) -> Generator:
    """RecoveryMigrTxn (lines 27-31): single-node, run on the destination.

    Commits on *both* the destination node and the unresponsive source's GLog
    (a log participant) — the key to failover without external coordination.
    Returns ``(committed, taken_granules)``.
    """
    node = runtime.node
    src_log = glog_name(src_id)
    # Line 28: read the authoritative ownership of the granules.  We use the
    # replayed page store keyed at the source log's current end; the CAS at
    # commit time serializes against any concurrent source-side activity.
    end = yield node.storage_call("log_end_lsn", src_log, log=src_log)
    snapshot = yield node.storage_call("scan_table", GTABLE, src_log, end, log=src_log)
    take: List[int] = [g for g in granules if snapshot.get(g) == src_id]
    if not take:
        return (True, [])
    ctx = TxnContext(
        node.node_id, is_reconfig=True, name="RecoveryMigrTxn",
        seq=node.next_txn_seq(),
    )
    node.txns[ctx.txn_id] = ctx
    try:
        for granule in take:
            yield node.locks.acquire_async(
                ctx.txn_id, (GTABLE, granule), True,
                timeout=node.params.lock_wait_timeout,
            )
    except LockConflict as conflict:
        node.locks.release_all(ctx.txn_id)
        node.txns.pop(ctx.txn_id, None)
        raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
    try:
        for granule in take:
            # Line 30: the destination's partition gains each granule ...
            ctx.write(node.glog, GTABLE, granule, node.node_id)
        # ... and the source's partition records the same swap in its GLog.
        src_entries = tuple(Put(GTABLE, g, node.node_id) for g in take)
        node.lsn_tracker[src_log] = end
        committed = yield from marlin_commit(
            node,
            ctx,
            [LogParticipant(src_log, src_entries), NodeParticipant(node.node_id)],
        )
        if committed:
            node.apply_committed(ctx)
            runtime.reconfig_commits += 1
        return (committed, take if committed else [])
    finally:
        node.locks.release_all(ctx.txn_id)
        node.txns.pop(ctx.txn_id, None)


def scan_gtable_txn(runtime: "MarlinRuntime", max_attempts: int = 10) -> Generator:
    """ScanGTableTxn (lines 32-38): read-only full ownership scan.

    Distributed read across all members, validated against SysLog: if the
    membership changed while scanning, the scan retries.  Read-only
    validation uses an LSN probe rather than an appended record, so routers
    polling the cluster do not advance SysLog (and therefore do not
    invalidate every node's MTable cache).
    """
    node = runtime.node
    for _attempt in range(max_attempts):
        yield from runtime.ensure_view(SYSLOG)
        start_lsn = node.view_cursor.get(SYSLOG, 0)
        merged = {g: node.node_id for g in node.owned_granules()}
        peers = [nid for nid in node.member_ids() if nid != node.node_id]
        futs = [
            node.peer_call(nid, "scan_gtable", timeout=node.params.vote_timeout)
            for nid in sorted(peers)
        ]
        try:
            results = yield all_of(node.sim, futs)
        except (RemoteError, RpcTimeout) as err:
            raise TxnAborted(AbortReason.NODE_FAILED, str(err)) from err
        for partition in results:
            merged.update(partition)
        ok, _current = yield node.storage_call("check_lsn", SYSLOG, start_lsn, log=SYSLOG)
        if ok:
            return merged
        yield from runtime.handle_cas_failure(SYSLOG)
    raise TxnAborted(AbortReason.VALIDATION, "membership kept changing during scan")


def warmup_granule(node, granule: int, src_id: int) -> Generator:
    """Squall-style cache warm-up (§4.4.1): scan the source, populate ours."""
    try:
        pages = yield node.peer_call(
            src_id, "warmup_pull", granule, timeout=node.params.vote_timeout
        )
    except (RemoteError, RpcTimeout):
        return  # source gone: start cold, misses will fetch from storage
    for page in pages:
        node.cache.put(page, {"warm": True})


def run_with_retries(
    node,
    attempt_factory,
    max_attempts: int = 64,
    base_backoff: float = 0.002,
    max_backoff: float = 0.1,
) -> Generator:
    """Retry a reconfiguration transaction through CAS conflicts.

    ``attempt_factory()`` must return a fresh transaction generator whose
    value is truthy once committed.  Validation errors propagate immediately.
    """
    backoff = base_backoff
    for _attempt in range(max_attempts):
        result = yield from attempt_factory()
        if result:
            return result
        yield Timeout(backoff * (0.5 + node.sim.rng.random()))
        backoff = min(backoff * 2, max_backoff)
    return False
