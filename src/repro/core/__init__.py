"""Marlin: the paper's contribution (§4).

Coordination state lives in the database's own system tables — MTable
(membership, logged in the shared SysLog) and GTable (granule ownership,
partitioned by owner and logged in each node's GLog).  All coordination runs
through transactions committed by MarlinCommit, a 1PC/2PC protocol built on
conditional appends that detects cross-node modifications.  Failover needs no
external service: any node may commit to an unresponsive peer's GLog.
"""

from repro.core.commit import (
    LogParticipant,
    NodeParticipant,
    gather_votes,
    marlin_commit,
    terminate_in_doubt,
)
from repro.core.runtime import MarlinRuntime
from repro.core.reconfig import (
    NodeAlreadyExistsError,
    NodeNotExistError,
    add_node_txn,
    delete_node_txn,
    migration_txn,
    recovery_migr_txn,
    scan_gtable_txn,
)
from repro.core.archetypes import SingleWriterCoordinator
from repro.core.failure import RingFailureDetector
from repro.core.invariants import InvariantViolation, check_invariants
from repro.core.suspicion import SuspicionFailureDetector

__all__ = [
    "InvariantViolation",
    "LogParticipant",
    "MarlinRuntime",
    "NodeAlreadyExistsError",
    "NodeNotExistError",
    "NodeParticipant",
    "RingFailureDetector",
    "SingleWriterCoordinator",
    "SuspicionFailureDetector",
    "add_node_txn",
    "check_invariants",
    "delete_node_txn",
    "gather_votes",
    "marlin_commit",
    "migration_txn",
    "recovery_migr_txn",
    "scan_gtable_txn",
    "terminate_in_doubt",
]
