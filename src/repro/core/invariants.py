"""Runtime checker for Marlin's correctness invariants (§4.5).

* **I0 / I4 — Exclusive Granule Ownership**: every granule has exactly one
  owner at any (quiescent) time.
* **I2 — Nodes and GTables are one-one mapped**: membership is well-formed
  and each member has exactly one GLog.
* **I3 — Owner exists**: GTable updates swap entries, never delete, so no
  granule is orphaned.
* **I5 — Exclusive UserTxn service**: only the owner's view admits a commit
  path, i.e. live nodes' authoritative views never overlap.

The checker runs against the ground truth (the replayed page store) and,
optionally, against live nodes' views.  Integration tests attach it at
quiescent points of scale-out / failover runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional

__all__ = ["InvariantViolation", "check_invariants", "check_view_consistency"]


class InvariantViolation(AssertionError):
    """One of Marlin's invariants does not hold."""


def check_invariants(
    gtable_snapshot: Dict[int, int],
    num_granules: int,
    membership: Optional[Dict[int, str]] = None,
) -> None:
    """Validate the ground-truth GTable (replayed page store).

    ``gtable_snapshot`` maps granule -> owner node id; ``membership`` (when
    given) is the MTable snapshot owners must belong to.
    """
    for granule in range(num_granules):
        if granule not in gtable_snapshot:
            raise InvariantViolation(f"I3 violated: granule {granule} has no owner")
    extra = set(gtable_snapshot) - set(range(num_granules))
    if extra:
        raise InvariantViolation(f"unknown granules in GTable: {sorted(extra)}")
    if membership is not None:
        for granule, owner in sorted(gtable_snapshot.items()):
            if owner not in membership:
                raise InvariantViolation(
                    f"I2 violated: granule {granule} owned by non-member {owner}"
                )


def check_view_consistency(nodes: Iterable, num_granules: int) -> None:
    """Validate I4/I5 across live nodes' *authoritative* views.

    Each live node is authoritative for the granules it believes it owns; no
    two live nodes may claim the same granule, and every granule must be
    claimed by some live node (quiescent cluster).
    """
    claims = defaultdict(list)
    for node in nodes:
        if getattr(node, "frozen", False):
            continue
        for granule in node.owned_granules():
            claims[granule].append(node.node_id)
    for granule, owners in sorted(claims.items()):
        if len(owners) > 1:
            raise InvariantViolation(
                f"I4 violated: granule {granule} claimed by {owners}"
            )
    for granule in range(num_granules):
        if not claims.get(granule):
            raise InvariantViolation(
                f"I5 violated: granule {granule} claimed by no live node"
            )
