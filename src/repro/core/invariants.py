"""Runtime checker for Marlin's correctness invariants (§4.5).

* **I0 / I4 — Exclusive Granule Ownership**: every granule has exactly one
  owner at any (quiescent) time.
* **I2 — Nodes and GTables are one-one mapped**: membership is well-formed
  and each member has exactly one GLog.
* **I3 — Owner exists**: GTable updates swap entries, never delete, so no
  granule is orphaned.
* **I5 — Exclusive UserTxn service**: only the owner's view admits a commit
  path, i.e. live nodes' authoritative views never overlap.

The checker runs against the ground truth (the replayed page store) and,
optionally, against live nodes' views.  Integration tests attach it at
quiescent points of scale-out / failover runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional

from repro.storage.log import RecordKind

__all__ = [
    "InvariantViolation",
    "check_atomicity",
    "check_durability",
    "check_invariants",
    "check_no_leaked_locks",
    "check_view_consistency",
]


class InvariantViolation(AssertionError):
    """One of Marlin's invariants does not hold."""


def check_invariants(
    gtable_snapshot: Dict[int, int],
    num_granules: int,
    membership: Optional[Dict[int, str]] = None,
) -> None:
    """Validate the ground-truth GTable (replayed page store).

    ``gtable_snapshot`` maps granule -> owner node id; ``membership`` (when
    given) is the MTable snapshot owners must belong to.
    """
    for granule in range(num_granules):
        if granule not in gtable_snapshot:
            raise InvariantViolation(f"I3 violated: granule {granule} has no owner")
    extra = set(gtable_snapshot) - set(range(num_granules))
    if extra:
        raise InvariantViolation(f"unknown granules in GTable: {sorted(extra)}")
    if membership is not None:
        for granule, owner in sorted(gtable_snapshot.items()):
            if owner not in membership:
                raise InvariantViolation(
                    f"I2 violated: granule {granule} owned by non-member {owner}"
                )


def check_view_consistency(nodes: Iterable, num_granules: int) -> None:
    """Validate I4/I5 across live nodes' *authoritative* views.

    Each live node is authoritative for the granules it believes it owns; no
    two live nodes may claim the same granule, and every granule must be
    claimed by some live node (quiescent cluster).
    """
    claims = defaultdict(list)
    for node in nodes:
        if getattr(node, "frozen", False):
            continue
        for granule in node.owned_granules():
            claims[granule].append(node.node_id)
    for granule, owners in sorted(claims.items()):
        if len(owners) > 1:
            raise InvariantViolation(
                f"I4 violated: granule {granule} claimed by {owners}"
            )
    for granule in range(num_granules):
        if not claims.get(granule):
            raise InvariantViolation(
                f"I5 violated: granule {granule} claimed by no live node"
            )


def _first_decisions(log) -> Dict[str, bool]:
    """First decision record per transaction in one log (log-once rule)."""
    decisions: Dict[str, bool] = {}
    for record in log.records:
        if record.txn_id in decisions:
            continue
        if record.kind is RecordKind.DECISION_COMMIT:
            decisions[record.txn_id] = True
        elif record.kind is RecordKind.DECISION_ABORT:
            decisions[record.txn_id] = False
    return decisions


def check_atomicity(logs: Dict[str, object]) -> None:
    """**Atomicity across granules**: no transaction may commit on one
    participant log and abort on another.

    Under the log-once rule the *first* decision record in each log is that
    log's authoritative outcome; a cross-log disagreement would mean a
    granule holds a committed write whose sibling granule aborted.
    """
    outcome_by_txn: Dict[str, Dict[str, bool]] = defaultdict(dict)
    for log_name, log in logs.items():
        for txn_id, committed in _first_decisions(log).items():
            outcome_by_txn[txn_id][log_name] = committed
    for txn_id, per_log in sorted(outcome_by_txn.items()):
        if len(set(per_log.values())) > 1:
            raise InvariantViolation(
                f"atomicity violated: {txn_id} decided "
                + ", ".join(
                    f"{log}={'commit' if c else 'abort'}"
                    for log, c in sorted(per_log.items())
                )
            )


def check_durability(logs: Dict[str, object], live_log_names: Iterable[str]) -> None:
    """**Durability / no stranded prepares**: at quiescence, no *live* log
    may hold a VOTE_YES without a decision record.

    An undecided vote in a live log is a branch whose redo updates sit
    buffered in the page store forever — a prepared transaction neither
    recovery nor termination resolved.  Logs of dead nodes are exempt: their
    votes are settled lazily by whoever next reads them (Cornus).
    """
    live = set(live_log_names)
    for log_name in sorted(live):
        log = logs.get(log_name)
        if log is None:
            continue
        decisions = _first_decisions(log)
        voted = set()
        for record in log.records:
            if record.kind is RecordKind.VOTE_YES:
                voted.add(record.txn_id)
        stranded = sorted(voted - set(decisions))
        if stranded:
            raise InvariantViolation(
                f"durability violated: {log_name} holds undecided votes "
                f"for {stranded}"
            )


def check_no_leaked_locks(nodes: Iterable) -> None:
    """**No leaked prepared locks**: on every live node, each lock-holding
    transaction must still have an in-flight context.

    A holder with no context is a branch whose locks outlived its
    resolution — past a crash/recovery cycle they would block the granule's
    keys forever.
    """
    for node in nodes:
        if getattr(node, "frozen", False):
            continue
        leaked = sorted(node.locks.holding_txns() - set(node.txns))
        if leaked:
            raise InvariantViolation(
                f"lock leak on node {node.node_id}: {leaked} hold locks "
                "with no in-flight transaction context"
            )
