"""Executable port of the appendix TLA+ / PlusCal migration model.

The paper model-checks Marlin's migration protocol on symbolic inputs of
3 nodes, 6 granules and 6 migrations with two invariants: *NoDualOwnership*
and *HasOneOwnership*.  This module reimplements the same state machine —
per-node GLogs of ownership updates, per-node materialised GTables, and the
two actions ``DoMigrate`` / ``DoRefresh`` — so hypothesis/pytest can explore
random interleavings far larger than the TLC configuration.

The model is deliberately storage-level (no RPC, no latency): it captures
exactly what the TLA+ spec captures, the commutativity of migration pushes
and refresh gossip.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["MigrationModel", "ModelViolation", "Update"]


class ModelViolation(AssertionError):
    """A model invariant (NoDualOwnership / HasOneOwnership) failed."""


@dataclass(frozen=True)
class Update:
    """One GTable update action: granule ``gran`` moved ``old`` -> ``new``."""

    uid: int
    gran: int
    old: int
    new: int


class MigrationModel:
    """State machine mirroring the PlusCal algorithm ``Marlin``."""

    def __init__(self, nodes: Sequence[int], granules: Sequence[int], num_migrations: int):
        if len(granules) < len(nodes):
            raise ValueError("spec assumption: |granules| >= |nodes|")
        self.nodes = list(nodes)
        self.granules = list(granules)
        self.num_migrations = num_migrations
        #: storage.glogs — per node, the log of updates it has appended.
        self.glogs: Dict[int, List[Update]] = {n: [] for n in self.nodes}
        #: storage.gtabs — per node, its materialised view granule -> owner.
        init = {
            g: self.nodes[i % len(self.nodes)] for i, g in enumerate(self.granules)
        }
        self.gtabs: Dict[int, Dict[int, int]] = {n: dict(init) for n in self.nodes}
        self.next_update_id = 0
        self.num_done = 0

    # -- actions -----------------------------------------------------------------

    def enabled_migrations(self) -> List[Tuple[int, int, int]]:
        """All ``(src, granule, dst)`` with both views agreeing src owns granule."""
        if self.num_done >= self.num_migrations:
            return []
        moves = []
        for n in self.nodes:
            for g in self.granules:
                if self.gtabs[n][g] != n:
                    continue
                for p in self.nodes:
                    if p != n and self.gtabs[p][g] == n:
                        moves.append((n, g, p))
        return moves

    def do_migrate(self, src: int, gran: int, dst: int) -> None:
        """DoMigrate: append the swap to both logs, materialise both views."""
        if self.gtabs[src][gran] != src or self.gtabs[dst][gran] != src:
            raise ValueError("migration precondition violated")
        update = Update(self.next_update_id, gran, src, dst)
        self.next_update_id += 1
        self.glogs[src].append(update)
        self.glogs[dst].append(update)
        self.gtabs[src][gran] = dst
        self.gtabs[dst][gran] = dst
        self.num_done += 1

    def enabled_refreshes(self) -> List[Tuple[int, Update]]:
        """All ``(node, update)`` pairs where gossip of ``update`` applies."""
        refreshes = []
        for n in self.nodes:
            seen = {u.uid for u in self.glogs[n]}
            for p in self.nodes:
                if p == n:
                    continue
                for u in self.glogs[p]:
                    if u.uid not in seen and self.gtabs[n][u.gran] == u.old:
                        refreshes.append((n, u))
        return refreshes

    def do_refresh(self, node: int, update: Update) -> None:
        """DoRefresh: adopt a peer's update this node has not seen yet."""
        if self.gtabs[node][update.gran] != update.old:
            raise ValueError("refresh precondition violated")
        self.glogs[node].append(update)
        self.gtabs[node][update.gran] = update.new

    # -- exploration ----------------------------------------------------------------

    def step(self, rng: random.Random) -> bool:
        """Take one random enabled action; False when none is enabled."""
        migrations = self.enabled_migrations()
        refreshes = self.enabled_refreshes()
        total = len(migrations) + len(refreshes)
        if total == 0:
            return False
        pick = rng.randrange(total)
        if pick < len(migrations):
            self.do_migrate(*migrations[pick])
        else:
            node, update = refreshes[pick - len(migrations)]
            self.do_refresh(node, update)
        return True

    def run(self, seed: int = 0, check_each_step: bool = True) -> int:
        """Explore one random trace to quiescence; returns steps taken."""
        rng = random.Random(seed)
        steps = 0
        while self.step(rng):
            steps += 1
            if check_each_step:
                self.check_invariants()
        self.check_invariants()
        return steps

    # -- invariants (from Marlin_MC) ---------------------------------------------------

    def check_no_dual_ownership(self) -> None:
        for g in self.granules:
            owners = [n for n in self.nodes if self.gtabs[n][g] == n]
            if len(owners) > 1:
                raise ModelViolation(f"NoDualOwnership: granule {g} owned by {owners}")

    def check_has_one_ownership(self) -> None:
        for g in self.granules:
            if not any(self.gtabs[n][g] == n for n in self.nodes):
                raise ModelViolation(f"HasOneOwnership: granule {g} has no owner")

    def check_invariants(self) -> None:
        self.check_no_dual_ownership()
        self.check_has_one_ownership()

    @property
    def terminated(self) -> bool:
        """All migrations done and every node's view converged (spec's goal)."""
        if self.num_done < self.num_migrations:
            return False
        views = [tuple(sorted(self.gtabs[n].items())) for n in self.nodes]
        return len(set(views)) == 1
