"""Decentralized failure detection and failover (§4.4.2).

Ring-based heartbeating in the style of Orleans/Chord: compute nodes in
MTable form a ring sorted by node id and each node probes its ``k``
successors.  After ``miss_threshold`` consecutive missed heartbeats the
monitor initiates failover:

1. read the dead node's GTable partition from storage (its GLog, replayed),
2. take over its granules with (batched) RecoveryMigrTxn — committing into
   the dead node's GLog directly, which simultaneously fences the node if it
   was merely slow,
3. remove it from MTable with DeleteNodeTxn,
4. optionally broadcast the changes for faster cache sync (not required for
   correctness — the paper's "Watch Notification" analogue).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Set

from repro.core.reconfig import NodeNotExistError
from repro.engine.node import GTABLE, MTABLE, glog_name
from repro.engine.txn import TxnAborted
from repro.sim.core import Timeout
from repro.sim.rpc import RpcError, RpcTimeout
from repro.storage.log import Delete, Put

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import MarlinRuntime

__all__ = ["RingFailureDetector", "run_failover"]


def run_failover(runtime: "MarlinRuntime", dead_id: int) -> Generator:
    """Full failover of ``dead_id`` driven by the detecting node.

    Idempotent and safe under concurrent detectors: RecoveryMigrTxn
    re-validates ownership against the replayed GTable and serializes through
    the dead node's GLog CAS; DeleteNodeTxn validates membership.
    Returns the list of granules this node took over.
    """
    node = runtime.node
    if dead_id not in node.mtable:
        return []
    dead_glog = glog_name(dead_id)
    end = yield node.storage_call("log_end_lsn", dead_glog, log=dead_glog)
    snapshot = yield node.storage_call(
        "scan_table", GTABLE, dead_glog, end, log=dead_glog
    )
    granules = sorted(g for g, owner in snapshot.items() if owner == dead_id)
    taken: List[int] = []
    if granules:
        taken = yield from runtime.recover_granules(dead_id, granules)
    try:
        yield from runtime.remove_node(dead_id)
    except NodeNotExistError:
        pass  # a concurrent detector already removed it
    updates = [Put(GTABLE, g, node.node_id) for g in taken]
    updates.append(Delete(MTABLE, dead_id))
    runtime.broadcast_sys_update(updates)
    if node.metrics is not None:
        node.metrics.record_failover(node.sim.now, dead_id, len(taken))
    return taken


class RingFailureDetector:
    """Per-node heartbeat monitor over the MTable ring."""

    def __init__(
        self,
        runtime: "MarlinRuntime",
        interval: float = 0.5,
        timeout: float = 0.25,
        miss_threshold: int = 3,
        successors: int = 1,
    ):
        self.runtime = runtime
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.successors = successors
        self._misses: Dict[int, int] = {}
        self._handling: Set[int] = set()
        self.failovers_started = 0
        self._proc = None

    def start(self) -> None:
        node = self.runtime.node
        self._proc = node.spawn(self._loop(), name=f"ring-detector-{node.node_id}")

    def stop(self) -> None:
        """Halt the probe loop (in-flight failovers are left to finish)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def ring_targets(self) -> List[int]:
        """The ``k`` successors of this node in the id-sorted MTable ring."""
        node = self.runtime.node
        members = node.member_ids()
        if node.node_id not in members or len(members) < 2:
            return []
        index = members.index(node.node_id)
        targets = []
        for step in range(1, self.successors + 1):
            succ = members[(index + step) % len(members)]
            if succ != node.node_id and succ not in targets:
                targets.append(succ)
        return targets

    def _loop(self):
        node = self.runtime.node
        while True:
            yield Timeout(self.interval)
            for target in self.ring_targets():
                if target in self._handling:
                    continue
                try:
                    yield node.peer_call(
                        target, "heartbeat", node.node_id, timeout=self.timeout
                    )
                    self._misses[target] = 0
                except (RpcTimeout, RpcError):
                    misses = self._misses.get(target, 0) + 1
                    self._misses[target] = misses
                    if misses >= self.miss_threshold:
                        self._handling.add(target)
                        self.failovers_started += 1
                        node.spawn(
                            self._run_failover(target),
                            name=f"failover-{node.node_id}-of-{target}",
                        )

    def _run_failover(self, dead_id: int):
        try:
            yield from run_failover(self.runtime, dead_id)
        except TxnAborted:
            pass  # lost the race to another recovering node; harmless
        finally:
            self._handling.discard(dead_id)
            self._misses.pop(dead_id, None)
