"""Decentralized failure detection and failover (§4.4.2).

Ring-based heartbeating in the style of Orleans/Chord: compute nodes in
MTable form a ring sorted by node id and each node probes its ``k``
successors.  After ``miss_threshold`` consecutive missed heartbeats the
monitor initiates failover:

1. read the dead node's GTable partition from storage (its GLog, replayed),
2. take over its granules with (batched) RecoveryMigrTxn — committing into
   the dead node's GLog directly, which simultaneously fences the node if it
   was merely slow,
3. remove it from MTable with DeleteNodeTxn,
4. optionally broadcast the changes for faster cache sync (not required for
   correctness — the paper's "Watch Notification" analogue).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Set

from repro.core.reconfig import NodeNotExistError
from repro.engine.node import GTABLE, MTABLE, SYSLOG, glog_name
from repro.engine.txn import TxnAborted
from repro.sim.core import Timeout
from repro.sim.rpc import RpcError, RpcTimeout
from repro.storage.log import Delete, Put

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import MarlinRuntime

__all__ = ["RingFailureDetector", "run_failover"]


def run_failover(runtime: "MarlinRuntime", dead_id: int) -> Generator:
    """Full failover of ``dead_id`` driven by the detecting node.

    Idempotent and safe under concurrent detectors: RecoveryMigrTxn
    re-validates ownership against the replayed GTable and serializes through
    the dead node's GLog CAS; DeleteNodeTxn validates membership.
    Returns the list of granules this node took over.
    """
    node = runtime.node
    if dead_id not in node.mtable:
        return []
    dead_glog = glog_name(dead_id)
    end = yield node.storage_call("log_end_lsn", dead_glog, log=dead_glog)
    snapshot = yield node.storage_call(
        "scan_table", GTABLE, dead_glog, end, log=dead_glog
    )
    granules = sorted(g for g, owner in snapshot.items() if owner == dead_id)
    taken: List[int] = []
    if granules:
        taken = yield from runtime.recover_granules(dead_id, granules)
    try:
        yield from runtime.remove_node(dead_id)
    except NodeNotExistError:
        pass  # a concurrent detector already removed it
    updates = [Put(GTABLE, g, node.node_id) for g in taken]
    updates.append(Delete(MTABLE, dead_id))
    runtime.broadcast_sys_update(updates)
    if node.metrics is not None:
        node.metrics.record_failover(node.sim.now, dead_id, len(taken))
    return taken


class RingFailureDetector:
    """Per-node heartbeat monitor over the MTable ring.

    With ``vote_gate`` on, a monitor records a suspicion vote in MTable (a
    regular SysLog MarlinCommit, see :mod:`repro.core.suspicion`) *before*
    running RecoveryMigrTxn, and stands down when the refreshed MTable shows
    the cluster suspects the monitor itself (or has already fenced it).
    That breaks the mutual-fencing cascade: a symmetrically-partitioned node
    — whose own probes all time out while storage stays reachable — sees the
    vote its healthy peers committed against *it* land first in the totally
    ordered SysLog, retracts, and leaves its (healthy) ring successor alone.
    """

    def __init__(
        self,
        runtime: "MarlinRuntime",
        interval: float = 0.5,
        timeout: float = 0.25,
        miss_threshold: int = 3,
        successors: int = 1,
        vote_gate: bool = False,
        # Only votes this recent count at the gate: long enough to cover the
        # vote -> confirmation-window -> re-check race (~interval + commit),
        # short enough that a stale row cannot stall a live failover for long.
        vote_window: float = 3.0,
    ):
        self.runtime = runtime
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.successors = successors
        self.vote_gate = vote_gate
        self.vote_window = vote_window
        self._misses: Dict[int, int] = {}
        self._handling: Set[int] = set()
        self.failovers_started = 0
        self.stand_downs = 0
        #: Always-on pipeline counters (aggregated per coordination mode by
        #: the experiment runner): suspicions = miss-threshold crossings,
        #: fencings = failovers that actually removed the target from MTable.
        self.suspicions_raised = 0
        self.fencings_committed = 0
        self._proc = None

    def start(self) -> None:
        node = self.runtime.node
        self._proc = node.spawn(self._loop(), name=f"ring-detector-{node.node_id}")

    def stop(self) -> None:
        """Halt the probe loop (in-flight failovers are left to finish)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def ring_targets(self) -> List[int]:
        """The ``k`` successors of this node in the id-sorted MTable ring."""
        node = self.runtime.node
        members = node.member_ids()
        if node.node_id not in members or len(members) < 2:
            return []
        index = members.index(node.node_id)
        targets = []
        for step in range(1, self.successors + 1):
            succ = members[(index + step) % len(members)]
            if succ != node.node_id and succ not in targets:
                targets.append(succ)
        return targets

    def _loop(self):
        node = self.runtime.node
        while True:
            yield Timeout(self.interval)
            for target in self.ring_targets():
                if target in self._handling:
                    continue
                try:
                    yield node.peer_call(
                        target, "heartbeat", node.node_id, timeout=self.timeout
                    )
                    self._misses[target] = 0
                except (RpcTimeout, RpcError):
                    misses = self._misses.get(target, 0) + 1
                    self._misses[target] = misses
                    if misses >= self.miss_threshold:
                        self._handling.add(target)
                        self.failovers_started += 1
                        self.suspicions_raised += 1
                        tracer = node.tracer
                        if tracer is not None:
                            tracer.count("detector.suspicions")
                            tracer.instant(
                                node.address, "detector:suspect",
                                args={"target": target, "misses": misses},
                            )
                        node.spawn(
                            self._run_failover(target),
                            name=f"failover-{node.node_id}-of-{target}",
                        )

    def _run_failover(self, dead_id: int, max_attempts: int = 8):
        node = self.runtime.node
        tracer = node.tracer
        sid = 0
        if tracer is not None:
            sid = tracer.begin(
                node.address, "failover", args={"target": dead_id}
            )
        try:
            if self.vote_gate:
                proceed = yield from self._vote_gate_check(dead_id)
                if not proceed:
                    self.stand_downs += 1
                    if tracer is not None:
                        tracer.count("detector.stand_downs")
                        tracer.end(sid, {"outcome": "stand_down"})
                        sid = 0
                    return
            # RecoveryMigrTxn can lose lock races against in-flight
            # migrations that involve the dead node; retry with jittered
            # backoff inside this detection cycle rather than waiting for
            # the miss counter to refill (which can phase-lock with the
            # migration retry cadence and starve recovery indefinitely).
            for attempt in range(max_attempts):
                try:
                    yield from run_failover(self.runtime, dead_id)
                    self.fencings_committed += 1
                    if tracer is not None:
                        tracer.count("detector.fencings")
                        tracer.instant(
                            node.address, "detector:fence",
                            args={"target": dead_id},
                        )
                    break
                except TxnAborted:
                    # Either another recoverer won outright (harmless), or a
                    # transient lock conflict: back off and re-check.
                    if (
                        attempt + 1 >= max_attempts
                        or dead_id not in node.member_ids()
                    ):
                        if sid:
                            tracer.end(sid, {"outcome": "lost_race"})
                            sid = 0
                        return
                    yield Timeout((0.25 + node.sim.rng.random()) * self.interval)
            if self.vote_gate:
                from repro.core.suspicion import clear_votes

                yield from clear_votes(self.runtime, dead_id)
            if sid:
                tracer.end(sid, {"outcome": "fenced"})
                sid = 0
        finally:
            self._handling.discard(dead_id)
            self._misses.pop(dead_id, None)
            if sid:
                tracer.end(sid, {"outcome": "interrupted"})

    def _vote_gate_check(self, dead_id: int):
        """Commit a suspicion vote; stand down if the cluster suspects *us*.

        The vote's CAS append forces this node's MTable view up to the
        SysLog tail, so a symmetrically-partitioned monitor voting through
        still-reachable storage observes (a) any earlier vote against itself
        and (b) its own eviction, in total order — whichever side's vote
        lands second is the one that backs off, so exactly one direction of
        a mutual suspicion proceeds to RecoveryMigrTxn.
        """
        from repro.core import suspicion
        from repro.core.reconfig import run_with_retries

        node = self.runtime.node
        if dead_id not in node.member_ids():
            return False  # already fenced by someone else
        committed = yield from run_with_retries(
            node, lambda: suspicion.cast_vote(self.runtime, dead_id, True)
        )
        if not committed:
            return False  # could not even vote; do not fence on no evidence
        # Confirmation window: under a *symmetric* partition both sides cross
        # the miss threshold in the same probe round, so the first voter must
        # not fence before the other side's vote can land.  One probe
        # interval later, re-read SysLog from (still-reachable) storage — the
        # isolated monitor now sees the vote against itself and backs off.
        yield Timeout(self.interval)
        yield from self.runtime.handle_cas_failure(SYSLOG)
        if node.node_id not in node.member_ids():
            # The refreshed view says we were evicted while suspecting:
            # retract and leave recovery to the surviving side.
            yield from run_with_retries(
                node, lambda: suspicion.cast_vote(self.runtime, dead_id, False)
            )
            return False
        if suspicion.count_votes(
            node, node.node_id, self.vote_window, voters=node.member_ids()
        ):
            yield from run_with_retries(
                node, lambda: suspicion.cast_vote(self.runtime, dead_id, False)
            )
            return False
        return True
