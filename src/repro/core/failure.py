"""Decentralized failure detection and failover (§4.4.2).

Ring-based heartbeating in the style of Orleans/Chord: compute nodes in
MTable form a ring sorted by node id and each node probes its ``k``
successors.  After ``miss_threshold`` consecutive missed heartbeats the
monitor initiates failover:

1. read the dead node's GTable partition from storage (its GLog, replayed),
2. take over its granules with (batched) RecoveryMigrTxn — committing into
   the dead node's GLog directly, which simultaneously fences the node if it
   was merely slow,
3. remove it from MTable with DeleteNodeTxn,
4. optionally broadcast the changes for faster cache sync (not required for
   correctness — the paper's "Watch Notification" analogue).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set

from repro.core.reconfig import NodeNotExistError
from repro.engine.node import GTABLE, MTABLE, SYSLOG, glog_name, node_address
from repro.engine.txn import AbortReason, TxnAborted
from repro.sim.core import Timeout
from repro.sim.rpc import RemoteError, RpcError, RpcTimeout
from repro.storage.log import Delete, Put

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.coord.external import ExternalRuntime
    from repro.core.runtime import MarlinRuntime

__all__ = [
    "LeaseFailureDetector",
    "RingFailureDetector",
    "run_external_failover",
    "run_failover",
]


def run_failover(
    runtime: "MarlinRuntime", dead_id: int,
    suspected_at: Optional[float] = None,
) -> Generator:
    """Full failover of ``dead_id`` driven by the detecting node.

    Idempotent and safe under concurrent detectors: RecoveryMigrTxn
    re-validates ownership against the replayed GTable and serializes through
    the dead node's GLog CAS; DeleteNodeTxn validates membership.
    Returns the list of granules this node took over.

    With replication on, the failover *promotes* the most-caught-up
    surviving follower of ``dead_id``: the granule list comes from that
    follower's shipped tail (no storage replay on the critical path) and
    RecoveryMigrTxn runs *on the follower*, which already holds the warm
    replica.  The dead-GLog CAS inside the txn still fences a merely-slow
    owner exactly as before.  ``suspected_at`` (the detector's suspicion
    time) feeds the ``rto_s`` probe; the acked-minus-received byte gap on
    the promoted tail feeds ``rpo_bytes``.
    """
    node = runtime.node
    if dead_id not in node.mtable:
        return []
    if node.replicator is not None:
        plan = node.replicator.plan_promotion(dead_id)
        if plan is not None:
            return (
                yield from _promote_follower(
                    runtime, dead_id, plan, suspected_at
                )
            )
        # No surviving follower: fall through to the storage-replay path.
    dead_glog = glog_name(dead_id)
    end = yield node.storage_call("log_end_lsn", dead_glog, log=dead_glog)
    snapshot = yield node.storage_call(
        "scan_table", GTABLE, dead_glog, end, log=dead_glog
    )
    granules = sorted(g for g, owner in snapshot.items() if owner == dead_id)
    taken: List[int] = []
    if granules:
        taken = yield from runtime.recover_granules(dead_id, granules)
    try:
        yield from runtime.remove_node(dead_id)
    except NodeNotExistError:
        pass  # a concurrent detector already removed it
    updates = [Put(GTABLE, g, node.node_id) for g in taken]
    updates.append(Delete(MTABLE, dead_id))
    runtime.broadcast_sys_update(updates)
    if node.metrics is not None:
        node.metrics.record_failover(node.sim.now, dead_id, len(taken))
    return taken


def _promote_follower(
    runtime: "MarlinRuntime", dead_id: int, plan, suspected_at
) -> Generator:
    """Replicated failover: hand recovery to the most-caught-up follower.

    The follower runs RecoveryMigrTxn itself (the existing ``run_recovery``
    RPC — same fencing CAS through the dead node's GLog), so the granules
    come up on the node that already holds their shipped WAL tail.  RPC
    failures surface as :class:`TxnAborted` so the detector's retry loop —
    which re-plans, possibly onto a different follower — handles them.
    """
    node = runtime.node
    replicator = node.replicator
    granules, best_id, lost_bytes = plan
    taken: List[int] = []
    if granules:
        if best_id == node.node_id:
            taken = yield from runtime.recover_granules(dead_id, granules)
        else:
            try:
                taken = list(
                    (
                        yield node.peer_call(
                            best_id, "run_recovery", tuple(granules), dead_id,
                            timeout=node.params.rpc_timeout,
                        )
                    )
                )
            except RemoteError as err:
                if isinstance(err.cause, TxnAborted):
                    raise TxnAborted(
                        err.cause.reason, err.cause.detail
                    ) from err
                raise TxnAborted(AbortReason.NODE_FAILED, str(err)) from err
            except (RpcTimeout, RpcError) as err:
                raise TxnAborted(AbortReason.NODE_FAILED, str(err)) from err
    try:
        yield from runtime.remove_node(dead_id)
    except NodeNotExistError:
        pass  # a concurrent detector already removed it
    updates = [Put(GTABLE, g, best_id) for g in taken]
    updates.append(Delete(MTABLE, dead_id))
    runtime.broadcast_sys_update(updates)
    replicator.note_promoted(dead_id, best_id, taken)
    if node.metrics is not None:
        now = node.sim.now
        node.metrics.record_failover(now, dead_id, len(taken))
        if taken:
            node.metrics.record_rpo(now, float(lost_bytes))
            if suspected_at is not None:
                node.metrics.record_rto(now, now - suspected_at)
    return taken


def run_external_failover(
    runtime: "ExternalRuntime", dead_id: int,
    suspected_at: Optional[float] = None,
) -> Generator:
    """Failover of ``dead_id`` arbitrated through the external service.

    The baselines' counterpart of :func:`run_failover`: the authoritative
    granule map lives in the coordination service, so the recoverer scans it
    there, flips each of the dead node's entries with
    ``ExternalRuntime.recover_granules`` (service CAS per granule — which is
    also what fences a merely-slow owner), and unregisters the dead member.
    The closing one-way ``view_update`` casts are the watch-notification
    analogue: cache sync for the survivors, not required for correctness.
    Returns the list of granules this node took over.
    """
    node = runtime.node
    members = yield from runtime.client.scan_members(node)
    if dead_id not in members:
        return []  # a concurrent recoverer already removed it
    snapshot = yield from runtime.client.scan_ownership(node)
    granules = sorted(g for g, owner in snapshot.items() if owner == dead_id)
    taken: List[int] = []
    if granules:
        taken = yield from runtime.recover_granules(dead_id, granules)
    yield from runtime.remove_node(dead_id)
    updates = [Put(GTABLE, g, node.node_id) for g in taken]
    updates.append(Delete(MTABLE, dead_id))
    for peer in node.member_ids():
        if peer != node.node_id:
            node.endpoint.cast(node_address(peer), "view_update", tuple(updates))
    if node.metrics is not None:
        node.metrics.record_failover(node.sim.now, dead_id, len(taken))
    return taken


class RingFailureDetector:
    """Per-node heartbeat monitor over the MTable ring.

    With ``vote_gate`` on, a monitor records a suspicion vote in MTable (a
    regular SysLog MarlinCommit, see :mod:`repro.core.suspicion`) *before*
    running RecoveryMigrTxn, and stands down when the refreshed MTable shows
    the cluster suspects the monitor itself (or has already fenced it).
    That breaks the mutual-fencing cascade: a symmetrically-partitioned node
    — whose own probes all time out while storage stays reachable — sees the
    vote its healthy peers committed against *it* land first in the totally
    ordered SysLog, retracts, and leaves its (healthy) ring successor alone.

    With ``session_gate`` set (an external-service RPC address), the same
    monitor runs against an :class:`ExternalRuntime`: each probe round also
    pings the monitor's own service session, and a suspicion is confirmed
    against the *service's* view of the target's session age instead of a
    SysLog vote — the real-ZooKeeper ephemeral-session pattern.  A target
    partitioned from its peers but not from the service keeps a fresh
    session, so its monitors stand down and there is no mutual fencing.
    """

    def __init__(
        self,
        runtime,
        interval: float = 0.5,
        timeout: float = 0.25,
        miss_threshold: int = 3,
        successors: int = 1,
        vote_gate: bool = False,
        # Only votes this recent count at the gate: long enough to cover the
        # vote -> confirmation-window -> re-check race (~interval + commit),
        # short enough that a stale row cannot stall a live failover for long.
        vote_window: float = 3.0,
        session_gate: Optional[str] = None,
        session_timeout: Optional[float] = None,
    ):
        self.runtime = runtime
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.successors = successors
        self.vote_gate = vote_gate
        self.vote_window = vote_window
        self.session_gate = session_gate
        #: A session older than this is considered expired at the gate;
        #: defaults to the same patience as the ring miss threshold.
        self.session_timeout = (
            session_timeout if session_timeout is not None
            else miss_threshold * interval
        )
        self._misses: Dict[int, int] = {}
        self._handling: Set[int] = set()
        self.failovers_started = 0
        self.stand_downs = 0
        #: Always-on pipeline counters (aggregated per coordination mode by
        #: the experiment runner): suspicions = miss-threshold crossings,
        #: fencings = failovers that actually removed the target from MTable.
        self.suspicions_raised = 0
        self.fencings_committed = 0
        #: Liveness-maintenance RPCs this detector issued (ring heartbeat
        #: probes + service session pings) — the detection-traffic side of
        #: the detection-latency/renewal-traffic trade-off fig7 reports.
        self.renewal_rpcs = 0
        #: Sim time the first confirmed failover began, or None.
        self.first_failover_at: Optional[float] = None
        self._proc = None

    def start(self) -> None:
        node = self.runtime.node
        self._proc = node.spawn(self._loop(), name=f"ring-detector-{node.node_id}")

    def stop(self) -> None:
        """Halt the probe loop (in-flight failovers are left to finish)."""
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def ring_targets(self) -> List[int]:
        """The ``k`` successors of this node in the id-sorted MTable ring."""
        node = self.runtime.node
        members = node.member_ids()
        if node.node_id not in members or len(members) < 2:
            return []
        index = members.index(node.node_id)
        targets = []
        for step in range(1, self.successors + 1):
            succ = members[(index + step) % len(members)]
            if succ != node.node_id and succ not in targets:
                targets.append(succ)
        return targets

    def _loop(self):
        node = self.runtime.node
        while True:
            yield Timeout(self.interval)
            if self.session_gate is not None:
                # Keep our own service session fresh (one-way keepalive).
                node.endpoint.cast(self.session_gate, "sess_ping", node.node_id)
                self.renewal_rpcs += 1
            for target in self.ring_targets():
                if target in self._handling:
                    continue
                try:
                    self.renewal_rpcs += 1
                    yield node.peer_call(
                        target, "heartbeat", node.node_id, timeout=self.timeout
                    )
                    self._misses[target] = 0
                except (RpcTimeout, RpcError):
                    misses = self._misses.get(target, 0) + 1
                    self._misses[target] = misses
                    if misses >= self.miss_threshold:
                        self._handling.add(target)
                        self.failovers_started += 1
                        self.suspicions_raised += 1
                        tracer = node.tracer
                        if tracer is not None:
                            tracer.count("detector.suspicions")
                            tracer.instant(
                                node.address, "detector:suspect",
                                args={"target": target, "misses": misses},
                            )
                        node.spawn(
                            self._run_failover(target),
                            name=f"failover-{node.node_id}-of-{target}",
                        )

    def _run_failover(self, dead_id: int, max_attempts: int = 8):
        node = self.runtime.node
        #: When the miss threshold crossed — the RTO clock starts here, not
        #: at fencing time (probes measure suspicion-to-first-serving).
        suspected_at = node.sim.now
        tracer = node.tracer
        sid = 0
        if tracer is not None:
            sid = tracer.begin(
                node.address, "failover", args={"target": dead_id}
            )
        try:
            proceed = True
            if self.vote_gate:
                proceed = yield from self._vote_gate_check(dead_id)
            elif self.session_gate is not None:
                proceed = yield from self._session_gate_check(dead_id)
            if not proceed:
                self.stand_downs += 1
                if tracer is not None:
                    tracer.count("detector.stand_downs")
                    tracer.end(sid, {"outcome": "stand_down"})
                    sid = 0
                return
            if self.first_failover_at is None:
                self.first_failover_at = node.sim.now
            # Marlin fences through the shared log; external runtimes fence
            # through the coordination service.
            fence = (
                run_failover
                if hasattr(self.runtime, "broadcast_sys_update")
                else run_external_failover
            )
            # RecoveryMigrTxn can lose lock races against in-flight
            # migrations that involve the dead node; retry with jittered
            # backoff inside this detection cycle rather than waiting for
            # the miss counter to refill (which can phase-lock with the
            # migration retry cadence and starve recovery indefinitely).
            for attempt in range(max_attempts):
                try:
                    yield from fence(
                        self.runtime, dead_id, suspected_at=suspected_at
                    )
                    self.fencings_committed += 1
                    if tracer is not None:
                        tracer.count("detector.fencings")
                        tracer.instant(
                            node.address, "detector:fence",
                            args={"target": dead_id},
                        )
                    break
                except TxnAborted:
                    # Either another recoverer won outright (harmless), or a
                    # transient lock conflict: back off and re-check.
                    if (
                        attempt + 1 >= max_attempts
                        or dead_id not in node.member_ids()
                    ):
                        if sid:
                            tracer.end(sid, {"outcome": "lost_race"})
                            sid = 0
                        return
                    yield Timeout((0.25 + node.sim.rng.random()) * self.interval)
            if self.vote_gate:
                from repro.core.suspicion import clear_votes

                yield from clear_votes(self.runtime, dead_id)
            if sid:
                tracer.end(sid, {"outcome": "fenced"})
                sid = 0
        finally:
            self._handling.discard(dead_id)
            self._misses.pop(dead_id, None)
            if sid:
                tracer.end(sid, {"outcome": "interrupted"})

    def _vote_gate_check(self, dead_id: int):
        """Commit a suspicion vote; stand down if the cluster suspects *us*.

        The vote's CAS append forces this node's MTable view up to the
        SysLog tail, so a symmetrically-partitioned monitor voting through
        still-reachable storage observes (a) any earlier vote against itself
        and (b) its own eviction, in total order — whichever side's vote
        lands second is the one that backs off, so exactly one direction of
        a mutual suspicion proceeds to RecoveryMigrTxn.
        """
        from repro.core import suspicion
        from repro.core.reconfig import run_with_retries

        node = self.runtime.node
        if dead_id not in node.member_ids():
            return False  # already fenced by someone else
        committed = yield from run_with_retries(
            node, lambda: suspicion.cast_vote(self.runtime, dead_id, True)
        )
        if not committed:
            return False  # could not even vote; do not fence on no evidence
        # Confirmation window: under a *symmetric* partition both sides cross
        # the miss threshold in the same probe round, so the first voter must
        # not fence before the other side's vote can land.  One probe
        # interval later, re-read SysLog from (still-reachable) storage — the
        # isolated monitor now sees the vote against itself and backs off.
        yield Timeout(self.interval)
        yield from self.runtime.handle_cas_failure(SYSLOG)
        if node.node_id not in node.member_ids():
            # The refreshed view says we were evicted while suspecting:
            # retract and leave recovery to the surviving side.
            yield from run_with_retries(
                node, lambda: suspicion.cast_vote(self.runtime, dead_id, False)
            )
            return False
        if suspicion.count_votes(
            node, node.node_id, self.vote_window, voters=node.member_ids()
        ):
            yield from run_with_retries(
                node, lambda: suspicion.cast_vote(self.runtime, dead_id, False)
            )
            return False
        return True

    def _session_gate_check(self, dead_id: int):
        """Confirm a suspicion against the service's session view.

        Fence only if the *service* also stopped hearing from the target
        (session older than ``session_timeout``, or no session at all).  A
        target that is partitioned from its peers but still pings the
        service keeps a fresh session, so every monitor suspecting it backs
        off — no mutual fencing, matching real ZK ephemeral sessions.  An
        unreachable service is no evidence either way: stand down.
        """
        node = self.runtime.node
        if dead_id not in node.member_ids():
            return False  # already fenced by someone else
        try:
            age = yield node.endpoint.call(
                self.session_gate, "sess_check", dead_id,
                timeout=4 * self.timeout,
            )
        except (RpcTimeout, RpcError):
            return False
        return age is None or age >= self.session_timeout


class LeaseFailureDetector:
    """Lease-expiry failure detection for the lease coordination backend.

    No peer-to-peer probes at all: each node *renews its own granule-group
    lease* in the service on a seeded interval, and *watches the lease
    table* for expired entries.  A node that dies stops renewing; after
    ``ttl`` its lease expires; the first watcher to CAS-acquire the expired
    lease (the service's leader pipeline serializes claimants, so exactly
    one wins) self-promotes and drives the external failover path.  A
    fenced-but-alive holder learns it lost when its next renewal is
    rejected.  Detection latency is bounded by ``ttl + check_interval``;
    the price is continuous renewal traffic — the trade-off fig7 sweeps.
    """

    def __init__(
        self,
        runtime: "ExternalRuntime",
        ttl: float = 1.5,
        renew_interval: float = 0.5,
        check_interval: float = 0.5,
    ):
        self.runtime = runtime
        self.ttl = ttl
        self.renew_interval = renew_interval
        self.check_interval = check_interval
        self._handling: Set[str] = set()
        self.failovers_started = 0
        self.stand_downs = 0
        self.suspicions_raised = 0
        self.fencings_committed = 0
        #: Lease-maintenance RPCs issued: renews, acquires, table scans.
        self.renewal_rpcs = 0
        self.first_failover_at: Optional[float] = None
        #: True once a renewal was rejected (a successor fenced us).
        self.fenced = False
        self._procs: List = []

    def start(self) -> None:
        node = self.runtime.node
        # Spawned on the node so freeze() kills both loops — a crashed
        # node's renewals stopping IS the failure signal.
        self._procs = [
            node.spawn(
                self._renew_loop(), name=f"lease-renew-{node.node_id}"
            ),
            node.spawn(
                self._check_loop(), name=f"lease-check-{node.node_id}"
            ),
        ]

    def stop(self) -> None:
        """Halt both loops (in-flight promotions are left to finish)."""
        for proc in self._procs:
            proc.kill()
        self._procs = []

    def _lease_name(self) -> str:
        from repro.coord.lease import lease_path

        return lease_path(self.runtime.node.node_id)

    # NOTE: every lease verb below goes *directly* to the service, NOT
    # through ExternalRuntime._through_session.  Real lease clients renew on
    # a dedicated keepalive channel (a K8s client's lease goroutine, ZK's
    # session ping thread) precisely so bulk control-plane work cannot
    # starve liveness: routed through the shared session pool, a successor's
    # ~N recovery writes would queue its own renewals past the TTL and the
    # successor would be fenced mid-failover — a self-inflicted cascade.

    def _renew_loop(self):
        node = self.runtime.node
        client = self.runtime.client
        name = self._lease_name()
        # Candidate phase: (re-)acquire our own lease.  At bootstrap the
        # cluster seeds it to us so this refreshes; after a restart it
        # retries until a successor that took it over releases it.
        while True:
            self.renewal_rpcs += 1
            granted, _holder, _expires = yield from client.acquire_lease(
                node, name, node.node_id, self.ttl
            )
            if granted:
                break
            yield Timeout(self.renew_interval)
        while True:
            yield Timeout(self.renew_interval)
            self.renewal_rpcs += 1
            ok, _holder = yield from client.renew_lease(
                node, name, node.node_id, self.ttl
            )
            if not ok:
                # A successor CAS-acquired our expired lease while we were
                # unresponsive: we are fenced.  Stand down; granules now
                # belong to the successor.
                self.fenced = True
                self.stand_downs += 1
                return

    def _check_loop(self):
        from repro.coord.lease import lease_path

        node = self.runtime.node
        client = self.runtime.client
        while True:
            yield Timeout(self.check_interval)
            self.renewal_rpcs += 1
            table = yield from client.lease_table(node)
            now = node.sim.now
            members = node.member_ids()
            # Liveness is per *holder*, not per lease: a node's own lease is
            # its session, and renewing it proves the node alive.  A
            # successor mid-failover holds the dead node's lease too but
            # only renews its own — that second lease re-expiring must not
            # read as the successor's death, or healthy recoverers get
            # "recovered" in a cascade.  (If the successor really dies, its
            # own lease expires and both its leases become claimable.)
            alive = {
                holder
                for name, (holder, expires) in table.items()
                if name == lease_path(holder) and expires > now
            }
            for name in sorted(table):
                holder, expires = table[name]
                if (
                    holder == node.node_id
                    or name in self._handling
                    or holder not in members
                    or holder in alive
                    or expires > now
                ):
                    continue
                self._handling.add(name)
                self.suspicions_raised += 1
                tracer = node.tracer
                if tracer is not None:
                    tracer.count("detector.suspicions")
                    tracer.instant(
                        node.address, "detector:suspect",
                        args={"target": holder, "lease": name},
                    )
                node.spawn(
                    self._promote(name, holder),
                    name=f"lease-promote-{node.node_id}-of-{holder}",
                )

    def _promote(self, name: str, dead_id: int):
        node = self.runtime.node
        client = self.runtime.client
        tracer = node.tracer
        sid = 0
        if tracer is not None:
            sid = tracer.begin(
                node.address, "failover", args={"target": dead_id}
            )
        try:
            # CAS on the expired lease: the service grants exactly one
            # claimant, so concurrent watchers elect a single successor.
            self.renewal_rpcs += 1
            granted, _holder, _expires = yield from client.acquire_lease(
                node, name, node.node_id, self.ttl
            )
            if not granted:
                self.stand_downs += 1
                if tracer is not None:
                    tracer.count("detector.stand_downs")
                    tracer.end(sid, {"outcome": "stand_down"})
                    sid = 0
                return
            self.failovers_started += 1
            if self.first_failover_at is None:
                self.first_failover_at = node.sim.now
            yield from run_external_failover(self.runtime, dead_id)
            # Retire the dead node's lease (we hold it): a restarting owner
            # re-acquires a fresh one through its own renew loop.
            self.renewal_rpcs += 1
            yield from client.release_lease(node, name, node.node_id)
            self.fencings_committed += 1
            if tracer is not None:
                tracer.count("detector.fencings")
                tracer.instant(
                    node.address, "detector:fence", args={"target": dead_id}
                )
                tracer.end(sid, {"outcome": "fenced"})
                sid = 0
        finally:
            self._handling.discard(name)
            if sid:
                tracer.end(sid, {"outcome": "interrupted"})
