"""Crash recovery: WAL scan + in-doubt resolution for a restarted node.

Redo is already handled by the architecture: the page store replays every
log in LSN order, so a restarted node's durable state needs no repair.
What a crash *does* leave behind is unresolved transaction protocol state —
branches that journaled progress but never reached a terminal outcome, and
prepared locks held on surviving peers.  ``recover_node`` closes those out
by scanning the node's own GLog and classifying every transaction it
touched:

``TXN_BEGIN`` with no vote and no decision (*begun-unvoted*)
    The branch died before voting.  The coordinator cannot have committed
    without our vote, so claiming an abort (undo) is always safe; we run
    the Cornus termination protocol over just our own log, which claims the
    abort slot before any late vote could land.

``VOTE_YES`` with no decision (*in-doubt*)
    The classic 2PC uncertainty window.  The vote record carries the full
    participant-log list, so termination re-runs Cornus over all of them:
    any decision wins, all-voted-yes commits, otherwise the abort is
    claimed into the silent logs.

``PREPARE`` with no ``TXN_END`` and no local decision (*coordinator-open*)
    This node was the coordinator and crashed mid-protocol.  The PREPARE
    record names every participant log; recovery re-resolves the outcome
    through the same termination protocol (idempotent — racing resolvers
    agree via log-once decisions) and then journals the missing TXN_END.

Each in-doubt transaction is rebuilt in the FSM's ``RECOVERY`` state and
driven to its terminal outcome, mirroring the live-path participant FSM
(``core/participant.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Sequence, Tuple

from repro.core.commit import terminate_in_doubt
from repro.core.participant import ParticipantFSM, TxnState
from repro.storage.log import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.node import ComputeNode

__all__ = ["RecoveryPlan", "RecoveryReport", "analyze", "recover_node"]


@dataclass
class RecoveryPlan:
    """What a WAL scan says must be resolved, before any RPC is made."""

    #: txn id -> participant logs, for branches with an undecided VOTE_YES.
    in_doubt: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Branches with TXN_BEGIN but no vote and no decision.
    begun_unvoted: List[str] = field(default_factory=list)
    #: txn id -> participant logs, for PREPAREs missing TXN_END and a
    #: local decision (this node coordinated them).
    coordinator_open: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    records_scanned: int = 0


@dataclass
class RecoveryReport:
    """Outcome of one node's recovery pass (collected by the cluster)."""

    node_id: int
    log_name: str
    records_scanned: int = 0
    in_doubt: int = 0
    begun_unvoted: int = 0
    coordinator_open: int = 0
    committed: int = 0
    aborted: int = 0
    unresolved: int = 0

    @property
    def resolved(self) -> int:
        return self.committed + self.aborted


def analyze(records: Sequence[LogRecord], own_log: str) -> RecoveryPlan:
    """Pure classification of a GLog's records into a recovery plan."""
    began: Dict[str, bool] = {}
    voted: Dict[str, Tuple[str, ...]] = {}
    prepared: Dict[str, Tuple[str, ...]] = {}
    ended: Dict[str, bool] = {}
    decided: Dict[str, bool] = {}
    for record in records:
        txn = record.txn_id
        if record.kind is RecordKind.TXN_BEGIN:
            began[txn] = True
        elif record.kind is RecordKind.VOTE_YES:
            voted[txn] = tuple(record.participants) or (own_log,)
        elif record.kind is RecordKind.PREPARE:
            prepared[txn] = tuple(record.participants) or (own_log,)
        elif record.kind is RecordKind.TXN_END:
            ended[txn] = True
        elif record.kind in (
            RecordKind.DECISION_COMMIT,
            RecordKind.DECISION_ABORT,
        ):
            decided.setdefault(
                txn, record.kind is RecordKind.DECISION_COMMIT
            )
    plan = RecoveryPlan(records_scanned=len(records))
    for txn, participants in voted.items():
        if txn not in decided:
            plan.in_doubt[txn] = participants
    for txn in began:
        if txn not in voted and txn not in decided:
            plan.begun_unvoted.append(txn)
    for txn, participants in prepared.items():
        if txn in ended or txn in decided or txn in plan.in_doubt:
            # Already terminal locally, or the in-doubt resolution (over the
            # same participant list) will settle it.
            continue
        plan.coordinator_open[txn] = participants
    return plan


def recover_node(node: "ComputeNode") -> Generator:
    """Run the recovery pass on a restarted node; returns a RecoveryReport.

    Scans the node's own GLog from LSN 0 (refreshing the H-LSN tracker from
    the authoritative tail), then resolves every open transaction in
    parallel through the Cornus termination protocol.  Idempotent: decisions
    are log-once, so racing with other resolvers is harmless.
    """
    tracer = node.tracer
    sid = 0
    if tracer is not None:
        sid = tracer.begin(node.address, "recovery", args={"log": node.glog})
    records = yield node.storage_call("read_log", node.glog, 0, log=node.glog)
    node.lsn_tracker[node.glog] = records[-1].lsn if records else 0
    plan = analyze(records, node.glog)
    if tracer is not None:
        tracer.count("recovery.in_doubt", len(plan.in_doubt))
        tracer.count("recovery.begun_unvoted", len(plan.begun_unvoted))
        tracer.count("recovery.coordinator_open", len(plan.coordinator_open))
    report = RecoveryReport(
        node_id=node.node_id,
        log_name=node.glog,
        records_scanned=plan.records_scanned,
        in_doubt=len(plan.in_doubt),
        begun_unvoted=len(plan.begun_unvoted),
        coordinator_open=len(plan.coordinator_open),
    )

    resolutions = []
    for txn in plan.begun_unvoted:
        resolutions.append(
            (txn, node.spawn(
                terminate_in_doubt(node, txn, (node.glog,)),
                name=f"recover-begun:{txn}",
            ))
        )
    for txn, participants in plan.in_doubt.items():
        resolutions.append(
            (txn, node.spawn(
                terminate_in_doubt(node, txn, participants),
                name=f"recover-indoubt:{txn}",
            ))
        )
    for txn, participants in plan.coordinator_open.items():
        resolutions.append(
            (txn, node.spawn(
                _reresolve_as_coordinator(node, txn, participants),
                name=f"recover-coord:{txn}",
            ))
        )

    for txn, proc in resolutions:
        fsm = ParticipantFSM.recovered(txn)
        try:
            outcome = yield proc.result
        except Exception:  # re-crashed / storage unreachable: leave in doubt
            report.unresolved += 1
            continue
        fsm.to(TxnState.COMMITTED if outcome else TxnState.ABORTED)
        if tracer is not None:
            tracer.instant(
                node.address, "recovery.resolve",
                args={"txn": txn, "outcome": "commit" if outcome else "abort"},
            )
        if outcome:
            report.committed += 1
        else:
            report.aborted += 1
    if sid:
        tracer.end(sid, {
            "resolved": report.resolved, "unresolved": report.unresolved,
        })
    # With replication on, a restarted follower's shipped tails diverged
    # while it slept (gapped async ships, missed decisions): re-sync them
    # from the live primaries and respawn the ship loop ``freeze`` killed.
    if node.replicator is not None:
        yield from node.replicator.reconcile(node)
    return report


def _reresolve_as_coordinator(
    node: "ComputeNode", txn_id: str, participants: Tuple[str, ...]
) -> Generator:
    """Settle a coordinator-open transaction, then close its journal entry."""
    outcome = yield from terminate_in_doubt(node, txn_id, participants)
    yield node.committer.submit(txn_id, RecordKind.TXN_END, ())
    return outcome
