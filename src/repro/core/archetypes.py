"""Marlin for non-partitioned archetypes (§5, last paragraph).

"For both Single-Writer and Shared-Writer archetypes, the GTable is not
needed since the data is not partitioned across multiple nodes ...
membership management can still follow Marlin's design via MTable and its
associated reconfiguration transactions.  Since most of the design
complexity of Marlin is in the GTables, Marlin can be substantially
simplified for these other two archetypes."

This module implements that simplification: a membership-only Marlin where
the *writer role* itself is the coordination state.  The current primary is
an MTable row committed through SysLog; promotion is a conditional append,
so a partitioned old primary cannot reclaim the role (its CAS loses), and
read-only nodes discover the new primary through the usual
ClearMetaCache/refresh path.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.commit import LogParticipant, marlin_commit
from repro.engine.node import MTABLE, SYSLOG
from repro.engine.txn import TxnAborted, TxnContext

__all__ = ["PRIMARY_KEY", "SingleWriterCoordinator"]

#: MTable row naming the current read-write node of a Single-Writer cluster.
PRIMARY_KEY = "primary"


class SingleWriterCoordinator:
    """Membership + primary election for the Single-Writer archetype.

    Wraps a node's MarlinRuntime; there is no GTable — the only contested
    state is the ``primary`` row, and MarlinCommit's conditional append is
    exactly a lease-free compare-and-swap election.
    """

    def __init__(self, runtime):
        self.runtime = runtime
        self.promotions = 0

    @property
    def node(self):
        return self.runtime.node

    def current_primary(self) -> Optional[int]:
        return self.node.mtable.get(PRIMARY_KEY)

    def is_primary(self) -> bool:
        return self.current_primary() == self.node.node_id

    #: Bound on CAS-refresh-revalidate rounds (each failure refreshes the
    #: view, so livelock would need a sustained storm of SysLog writers).
    MAX_ATTEMPTS = 16

    def _refresh(self) -> Generator:
        """Authoritative read of SysLog before a failover-critical decision.

        Mirrors RecoveryMigrTxn's storage read (Algorithm 1 line 28): the
        promoter detected the failure externally, so its cached view cannot
        be trusted for the validation step.
        """
        yield from self.runtime.handle_cas_failure(SYSLOG)

    def bootstrap_primary(self) -> Generator:
        """Claim the primary role on an empty cluster (first writer wins)."""
        yield from self._refresh()
        for _attempt in range(self.MAX_ATTEMPTS):
            if self.current_primary() is not None:
                return False
            if (yield from self._swap_primary()):
                return True
        return False

    def promote(self, failed_primary: Optional[int] = None) -> Generator:
        """PromoteTxn: take over the writer role from ``failed_primary``.

        Validates that the primary being replaced is still the one recorded
        (the data-effectiveness check), then swaps the row.  A CAS failure
        refreshes the view (ClearMetaCache) and re-validates; the loop ends
        when the validation itself fails — i.e. someone else is primary now.
        """
        yield from self._refresh()
        for _attempt in range(self.MAX_ATTEMPTS):
            current = self.current_primary()
            if current == self.node.node_id:
                return True
            if failed_primary is not None and current != failed_primary:
                return False
            if (yield from self._swap_primary()):
                return True
        return False

    def demote(self) -> Generator:
        """Voluntarily give up the primary role (scale-in of the writer)."""
        node = self.node
        for _attempt in range(self.MAX_ATTEMPTS):
            if not self.is_primary():
                return False
            ctx = TxnContext(
                node.node_id, is_reconfig=True, name="DemoteTxn",
                seq=node.next_txn_seq(),
            )
            ctx.delete(SYSLOG, MTABLE, PRIMARY_KEY)
            if (yield from self._commit(ctx)):
                return True
        return False

    def _swap_primary(self) -> Generator:
        node = self.node
        ctx = TxnContext(
            node.node_id, is_reconfig=True, name="PromoteTxn",
            seq=node.next_txn_seq(),
        )
        ctx.write(SYSLOG, MTABLE, PRIMARY_KEY, node.node_id)
        committed = yield from self._commit(ctx)
        if committed:
            self.promotions += 1
        # On CAS loss the view was already refreshed by handle_cas_failure;
        # the caller re-validates against the fresh view.
        return committed

    def _commit(self, ctx) -> Generator:
        node = self.node
        try:
            committed = yield from marlin_commit(
                node, ctx, [LogParticipant(SYSLOG, ctx.entries_for(SYSLOG))]
            )
        except TxnAborted:
            return False
        if committed:
            node.apply_system_entries(ctx.entries_for(SYSLOG))
            node.view_cursor[SYSLOG] = node.lsn_tracker[SYSLOG]
        return committed
