"""Autoscaling controller for dynamic workloads (§6.6).

Watches offered load (active client count) on a monitoring interval and
drives the cluster toward ``ceil(load / clients_per_node)`` nodes.  The
paper's point is not the policy — it is that reconfiguration *speed* decides
how quickly the policy's decisions take effect (fast scale-out restores
latency; fast scale-in stops paying for idle nodes).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.core import Timeout

__all__ = ["Autoscaler"]


class Autoscaler:
    """Periodic scale-out/scale-in driver over a :class:`Cluster`."""

    def __init__(
        self,
        cluster,
        router=None,
        interval: float = 2.0,
        clients_per_node: float = 25.0,
        min_nodes: int = 1,
        max_nodes: int = 64,
        cooldown: float = 3.0,
    ):
        self.cluster = cluster
        self.router = router
        self.interval = interval
        self.clients_per_node = clients_per_node
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.cooldown = cooldown
        self._proc = None
        self._busy = False
        self._last_action = -math.inf
        self.actions = []

    def desired_nodes(self) -> int:
        load = self.cluster.client_count
        desired = math.ceil(load / self.clients_per_node) if load > 0 else self.min_nodes
        return max(self.min_nodes, min(self.max_nodes, desired))

    def start(self) -> None:
        self._proc = self.cluster.sim.spawn(self._loop(), name="autoscaler", daemon=True)

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.kill()
            self._proc = None

    def _loop(self):
        while True:
            yield Timeout(self.interval)
            if self._busy:
                continue
            if self.cluster.sim.now - self._last_action < self.cooldown:
                continue
            desired = self.desired_nodes()
            current = len(self.cluster.live_node_ids())
            if desired == current:
                continue
            self._busy = True
            try:
                if desired > current:
                    summary = yield from self.cluster.scale_out(desired - current)
                else:
                    victims = self.cluster.live_node_ids()[-(current - desired):]
                    summary = yield from self.cluster.scale_in(victims)
                self.actions.append(summary)
                if self.router is not None:
                    self.router.sync(self.cluster.assignment_from_views())
            finally:
                self._busy = False
                self._last_action = self.cluster.sim.now
