"""MarlinCommit: atomic commit with cross-node conflict detection (§4.3).

MarlinCommit extends conventional 1PC/2PC in two ways (Algorithm 2):

1. ``Log()`` becomes ``TryLog()`` — a conditional append that succeeds only
   if no other node has appended to the log since this node's last observed
   commit (its H-LSN).  A CAS failure means a *cross-node modification*; the
   transaction aborts and the node invalidates its metadata caches
   (``ClearMetaCache``).
2. Participants are not limited to compute nodes: a participant may be a
   **log instance** in disaggregated storage.  Voting through a node is
   semantically identical to appending the vote directly to its log, which is
   what lets RecoveryMigrTxn commit to an unresponsive node's GLog.

With ``conditional=False`` the same code is a standard group-commit 1PC /
2PC — the protocol the external-coordination baselines run.

The module also implements the Cornus-style termination protocol the paper
cites for non-blocking 2PC: an in-doubt transaction's outcome is read from
the participant logs themselves, and a recovering observer may claim an
abort slot in a silent participant's log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Sequence, Tuple, Union

from repro.core.participant import fault_point
from repro.engine.node import glog_name
from repro.sim.core import Future, Simulator, Timeout
from repro.storage.log import RecordKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.node import ComputeNode
    from repro.engine.txn import TxnContext

__all__ = [
    "LogParticipant",
    "NodeParticipant",
    "gather_votes",
    "marlin_commit",
    "terminate_in_doubt",
]


@dataclass(frozen=True)
class NodeParticipant:
    """A compute node taking part in the commit (votes over RPC)."""

    node_id: int


@dataclass(frozen=True)
class LogParticipant:
    """A log instance taking part directly (the coordinator appends its vote).

    ``entries`` are the redo updates destined for this log — e.g. the GTable
    swap RecoveryMigrTxn writes into the unresponsive source's GLog.
    """

    log_name: str
    entries: Tuple = ()


Participant = Union[NodeParticipant, LogParticipant]


def gather_votes(sim: Simulator, futures: Sequence[Future]) -> Future:
    """Collect all vote futures into a list of bools; failures vote no.

    Unlike ``all_of`` this never fails fast: a timed-out or crashed
    participant is simply a NO vote (2PC presumed abort).
    """
    gathered = sim.event(name="votes")
    total = len(futures)
    if total == 0:
        gathered.resolve([])
        return gathered
    votes: List[bool] = [False] * total
    state = {"left": total}

    def on_done(index: int, fut: Future) -> None:
        votes[index] = bool(fut._value) if fut.exception is None else False
        state["left"] -= 1
        if state["left"] == 0:
            gathered.resolve(votes)

    for i, fut in enumerate(futures):
        fut.add_done_callback(lambda f, i=i: on_done(i, f))
    return gathered


def participant_log(node: "ComputeNode", participant: Participant) -> str:
    if isinstance(participant, LogParticipant):
        return participant.log_name
    return glog_name(participant.node_id)


def marlin_commit(
    node: "ComputeNode",
    ctx: "TxnContext",
    participants: Sequence[Participant],
    conditional: bool = True,
) -> Generator:
    """Run MarlinCommit from coordinator ``node``; returns True iff committed.

    Single participant => one-phase commit (one TryLog).  Multiple =>
    two-phase: every participant TryLogs ``VOTE-YES`` with its updates (nodes
    over RPC, log instances directly from the coordinator), the decision is
    the conjunction of votes, and decision records are broadcast / appended
    asynchronously (Algorithm 2 lines 5-12).
    """
    if not participants:
        raise ValueError("marlin_commit needs at least one participant")

    if len(participants) == 1:
        return (yield from _one_phase(node, ctx, participants[0], conditional))

    log_names = tuple(sorted(participant_log(node, p) for p in participants))

    # Coordinator-side spans: "2pc.prepare" covers intent journaling through
    # vote gathering, "2pc.decision" the decision fan-out — the two phases
    # the fig7/fig16 span-summary columns report time in.
    tracer = node.tracer
    root = prep_sid = 0
    if tracer is not None:
        root = tracer.begin(
            node.address, "2pc", parent=getattr(ctx, "span", 0),
            args={"txn": ctx.txn_id, "participants": len(participants)},
        )
        prep_sid = tracer.begin(
            node.address, "2pc.prepare", parent=root,
            args={"txn": ctx.txn_id},
        )

    # Coordinator intent record: journal PREPARE with the participant-log
    # list to our own GLog *before* gathering votes, so a restarted
    # coordinator knows exactly which transactions to re-resolve.
    fault_point(node, ctx.txn_id, "prepare", "before")
    prep = yield from node.try_log(
        node.glog,
        ctx.txn_id,
        RecordKind.PREPARE,
        (),
        conditional=conditional,
        participants=log_names,
    )
    if not prep.ok:
        if prep_sid:
            tracer.end(prep_sid, {"ok": 0})
        if root:
            tracer.end(root, {"committed": 0})
        yield from node.runtime.handle_cas_failure(node.glog)
        return False
    fault_point(node, ctx.txn_id, "prepare", "after")

    vote_futs: List[Future] = []
    for p in participants:
        if isinstance(p, NodeParticipant) and p.node_id == node.node_id:
            proc = node.sim.spawn(
                _local_vote(node, ctx, conditional, log_names),
                name=f"vote-local:{ctx.txn_id}",
                daemon=True,
            )
            vote_futs.append(proc.result)
        elif isinstance(p, NodeParticipant):
            vote_futs.append(
                node.peer_call(
                    p.node_id,
                    "vote_req",
                    ctx.txn_id,
                    conditional,
                    log_names,
                    timeout=node.params.vote_timeout,
                )
            )
        else:
            proc = node.sim.spawn(
                _log_vote(node, ctx.txn_id, p, conditional, log_names),
                name=f"vote-log:{ctx.txn_id}",
                daemon=True,
            )
            vote_futs.append(proc.result)

    votes = yield gather_votes(node.sim, vote_futs)
    committed = all(votes)

    dec_sid = 0
    if prep_sid:
        tracer.end(prep_sid, {"yes_votes": sum(votes), "of": len(votes)})
    if root:
        dec_sid = tracer.begin(
            node.address, "2pc.decision", parent=root,
            args={"txn": ctx.txn_id, "commit": int(committed)},
        )

    fault_point(node, ctx.txn_id, "decide", "before")
    for p, voted_yes in zip(participants, votes):
        if isinstance(p, NodeParticipant) and p.node_id == node.node_id:
            if voted_yes:
                node.spawn(
                    node.append_decision(node.glog, ctx.txn_id, committed, conditional),
                    name=f"decision-local:{ctx.txn_id}",
                )
        elif isinstance(p, NodeParticipant):
            # Cast even to participants whose vote we never heard: they may be
            # slow rather than dead, and the handler is idempotent.
            node.endpoint.cast(
                f"node-{p.node_id}", "decision", ctx.txn_id, committed, conditional
            )
        else:
            if voted_yes:
                node.spawn(
                    node.append_decision(p.log_name, ctx.txn_id, committed, conditional),
                    name=f"decision-log:{ctx.txn_id}",
                )
    fault_point(node, ctx.txn_id, "decide", "after")

    # Close the coordinator's journal entry.  Best effort and asynchronous:
    # a missing TXN_END only costs the restarted coordinator an idempotent
    # re-resolution of this (already decided) transaction.
    fault_point(node, ctx.txn_id, "end", "before")
    node.spawn(
        _journal_txn_end(node, ctx.txn_id), name=f"txn-end:{ctx.txn_id}"
    )
    fault_point(node, ctx.txn_id, "end", "after")
    if dec_sid:
        tracer.end(dec_sid)
    if root:
        tracer.end(root, {"committed": int(committed)})
    return committed


def _journal_txn_end(node: "ComputeNode", txn_id: str):
    """Advisory TXN_END record; a CAS failure is simply dropped."""
    yield node.committer.submit(txn_id, RecordKind.TXN_END, ())


def _one_phase(
    node: "ComputeNode",
    ctx: "TxnContext",
    participant: Participant,
    conditional: bool,
) -> Generator:
    if isinstance(participant, NodeParticipant):
        if participant.node_id != node.node_id:
            raise ValueError("1PC with a remote node participant is meaningless")
        log_name, entries = node.glog, ctx.entries_for(node.glog)
    else:
        log_name, entries = participant.log_name, participant.entries
    result = yield from node.try_log(
        log_name, ctx.txn_id, RecordKind.COMMIT_DATA, entries, conditional
    )
    if not result.ok:
        yield from node.runtime.handle_cas_failure(log_name)
        return False
    return True


def _local_vote(node, ctx, conditional: bool, log_names: tuple):
    result = yield from node.try_log(
        node.glog,
        ctx.txn_id,
        RecordKind.VOTE_YES,
        ctx.entries_for(node.glog),
        conditional,
        participants=log_names,
    )
    if not result.ok:
        yield from node.runtime.handle_cas_failure(node.glog)
        return False
    ctx.voted = True
    return True


def _log_vote(node, txn_id: str, p: LogParticipant, conditional: bool, log_names):
    result = yield from node.try_log(
        p.log_name,
        txn_id,
        RecordKind.VOTE_YES,
        p.entries,
        conditional,
        participants=log_names,
    )
    if not result.ok:
        yield from node.runtime.handle_cas_failure(p.log_name)
        return False
    return True


def terminate_in_doubt(
    node: "ComputeNode",
    txn_id: str,
    participant_logs: Sequence[str],
    grace: float = None,
    poll: float = None,
    max_polls: int = None,
) -> Generator:
    """Resolve an in-doubt 2PC transaction from its participant logs (Cornus).

    Rules, in order:
    1. any participant log holds a decision record  => that outcome;
    2. every participant log holds VOTE-YES         => committed;
    3. otherwise try to *claim* an abort by appending DECISION_ABORT into
       each silent log — if the claim lands before that participant's vote,
       the vote's CAS fails and the transaction aborts everywhere.

    ``grace``/``poll``/``max_polls`` default to the node's calibration
    (``NodeParams.term_grace`` / ``term_poll`` / ``term_max_polls``) so a
    scenario can tune termination aggressiveness per node.

    Returns True (committed) or False (aborted).
    """
    if grace is None:
        grace = node.params.term_grace
    if poll is None:
        poll = node.params.term_poll
    if max_polls is None:
        max_polls = node.params.term_max_polls
    tracer = node.tracer
    sid = 0
    if tracer is not None:
        sid = tracer.begin(
            node.address, "terminate_in_doubt",
            args={"txn": txn_id, "logs": len(participant_logs)},
        )
    yield Timeout(grace)
    polls = 0
    while True:
        outcomes = []
        for log_name in participant_logs:
            outcome = yield node.storage_call(
                "txn_outcome", log_name, txn_id, log=log_name
            )
            outcomes.append(outcome)
        if any(o[0] is False for o in outcomes):
            _finalize(node, txn_id, participant_logs, outcomes, False)
            if sid:
                tracer.end(sid, {"outcome": "aborted"})
            return False
        if any(o[0] is True for o in outcomes):
            _finalize(node, txn_id, participant_logs, outcomes, True)
            if sid:
                tracer.end(sid, {"outcome": "committed"})
            return True
        if all(voted for _outcome, voted in outcomes):
            # All voted yes: committed by the Cornus rule; make it durable.
            _finalize(node, txn_id, participant_logs, outcomes, True)
            if sid:
                tracer.end(sid, {"outcome": "committed"})
            return True
        polls += 1
        if polls < max_polls:
            yield Timeout(poll)
            continue
        # Claim aborts in the silent logs.  A single CAS loses to unrelated
        # traffic on a busy log, so retry at the refreshed tail (try_log
        # updates the tracker on failure) until the claim lands or the log
        # stops being silent — bail to the outer re-read if this txn's vote
        # or a decision appears, since the claim must not overrule either.
        claimed_all = True
        for log_name, (_outcome, voted) in zip(participant_logs, outcomes):
            if voted:
                continue
            claimed = False
            for _attempt in range(8):
                result = yield from node.try_log(
                    log_name,
                    txn_id,
                    RecordKind.DECISION_ABORT,
                    (),
                    conditional=True,
                )
                if result.ok:
                    claimed = True
                    break
                decided_now, voted_now = yield node.storage_call(
                    "txn_outcome", log_name, txn_id, log=log_name
                )
                if decided_now is not None or voted_now:
                    break
            if not claimed:
                claimed_all = False
        if claimed_all:
            _finalize(node, txn_id, participant_logs, outcomes, False)
            if sid:
                tracer.end(sid, {"outcome": "claimed_abort"})
            return False
        # Raced with another resolver (or the vote itself); back off with
        # seeded jitter so lockstep resolvers don't re-collide every round,
        # then re-read the logs.
        yield Timeout(poll * (0.5 + node.sim.rng.random()))


def _finalize(node, txn_id, participant_logs, outcomes, committed: bool) -> None:
    """Append the resolved decision to participant logs that lack one.

    Only logs holding a vote need a decision record (replay buffers nothing
    otherwise).  Duplicate decisions from racing resolvers are harmless.
    """
    for log_name, (outcome, voted) in zip(participant_logs, outcomes):
        if voted and outcome is None:
            node.spawn(
                node.append_decision(log_name, txn_id, committed, True),
                name=f"finalize:{txn_id}",
            )
