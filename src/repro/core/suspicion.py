"""Suspicion-vote failure detection (§4.4.2's deferred optimization).

The paper: "This protocol can be further optimized to reduce false positives
by letting compute nodes record 'suspicious' votes for unresponsive nodes in
MTable.  A node is considered dead only when such votes exceed a threshold
over a defined interval."  The paper leaves this to future work; this module
implements it on top of the same machinery:

* each monitor that misses heartbeats appends a ``suspect`` row to the
  **MTable** (SysLog) — a regular 1PC MarlinCommit, so votes are totally
  ordered and survive the voter;
* votes carry the vote time; only votes within ``vote_window`` count;
* the monitor whose vote pushes the count past ``vote_threshold`` runs the
  failover (ties are safe: failover is idempotent);
* a successful heartbeat from a suspected node leads to a retraction vote.

With ``vote_threshold=1`` this degrades to the basic ring detector; with
``k`` successors and a threshold of 2+, one slow link no longer evicts a
healthy node.

The module-level helpers (:func:`cast_vote` / :func:`count_votes` /
:func:`clear_votes`) also back the basic ring detector's *vote gate*
(``RingFailureDetector(vote_gate=True)``, the default in cluster runs):
before RecoveryMigrTxn, the monitor commits a suspicion vote, waits one
probe interval, re-reads MTable from storage, and stands down if the
cluster suspects (or has evicted) the monitor itself — which breaks the
mutual-fencing cascade of a symmetrically-partitioned node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set, Tuple

from repro.core.commit import LogParticipant, marlin_commit
from repro.core.failure import run_failover
from repro.engine.node import MTABLE, SYSLOG
from repro.engine.txn import TxnAborted, TxnContext
from repro.sim.core import Timeout
from repro.sim.rpc import RpcError, RpcTimeout

__all__ = [
    "SuspicionFailureDetector",
    "cast_vote",
    "clear_votes",
    "count_votes",
    "suspect_key",
]


def suspect_key(target: int, voter: int) -> str:
    """MTable row key recording ``voter`` suspects ``target``."""
    return f"suspect:{target}:{voter}"


def _is_suspect_row(key) -> Optional[Tuple[int, int]]:
    if isinstance(key, str) and key.startswith("suspect:"):
        _tag, target, voter = key.split(":")
        return int(target), int(voter)
    return None


def cast_vote(runtime, target: int, suspicious: bool) -> Generator:
    """Record (or retract) a suspicion row in MTable via MarlinCommit.

    Votes serialize through the SysLog CAS, so they are totally ordered
    against every other membership change — a voter whose commit lands has,
    as a side effect, observed every earlier vote and membership update
    (its MTable view is refreshed on the way).  Returns whether the vote
    committed.
    """
    node = runtime.node
    ctx = TxnContext(
        node.node_id, is_reconfig=True, name="SuspectVoteTxn",
        seq=node.next_txn_seq(),
    )
    key = suspect_key(target, node.node_id)
    if suspicious:
        ctx.write(SYSLOG, MTABLE, key, node.sim.now)
    else:
        ctx.delete(SYSLOG, MTABLE, key)
    try:
        committed = yield from marlin_commit(
            node, ctx, [LogParticipant(SYSLOG, ctx.entries_for(SYSLOG))]
        )
    except TxnAborted:
        return False
    if committed:
        node.apply_system_entries(ctx.entries_for(SYSLOG))
        node.view_cursor[SYSLOG] = node.lsn_tracker[SYSLOG]
    return committed


def count_votes(
    node, target: int, window: float, voters=None
) -> int:
    """Distinct in-window suspicion votes against ``target`` (local view).

    ``voters``, when given, restricts the count to votes cast by those node
    ids — the ring detector's gate passes the current membership so a row
    left behind by an already-fenced voter cannot stall a live failover.
    """
    now = node.sim.now
    if voters is not None:
        voters = set(voters)
    votes = 0
    for key, voted_at in node.mtable.items():
        parsed = _is_suspect_row(key)
        if parsed is None:
            continue
        voted_target, voter = parsed
        if voted_target != target:
            continue
        if voters is not None and voter not in voters:
            continue
        if now - voted_at <= window:
            votes += 1
    return votes


def clear_votes(runtime, target: int) -> Generator:
    """Delete every suspicion row involving ``target`` (post-failover hygiene).

    Rows *against* the fenced node are obsolete, and rows *cast by* it are
    orphaned opinions of a non-member — both are removed so MTable carries
    no stale suspicion state forward.
    """
    node = runtime.node
    stale = [
        key for key in node.mtable
        if (parsed := _is_suspect_row(key)) and target in parsed
    ]
    if not stale:
        return
    ctx = TxnContext(
        node.node_id, is_reconfig=True, name="ClearVotesTxn",
        seq=node.next_txn_seq(),
    )
    for key in stale:
        ctx.delete(SYSLOG, MTABLE, key)
    try:
        committed = yield from marlin_commit(
            node, ctx, [LogParticipant(SYSLOG, ctx.entries_for(SYSLOG))]
        )
    except TxnAborted:
        return
    if committed:
        node.apply_system_entries(ctx.entries_for(SYSLOG))
        node.view_cursor[SYSLOG] = node.lsn_tracker[SYSLOG]


class SuspicionFailureDetector:
    """Ring heartbeats + voted eviction through MTable."""

    def __init__(
        self,
        runtime,
        interval: float = 0.5,
        timeout: float = 0.25,
        miss_threshold: int = 2,
        successors: int = 2,
        vote_threshold: int = 2,
        vote_window: float = 10.0,
    ):
        self.runtime = runtime
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.successors = successors
        self.vote_threshold = vote_threshold
        self.vote_window = vote_window
        self._misses: Dict[int, int] = {}
        self._voted: Set[int] = set()
        self._handling: Set[int] = set()
        self.votes_cast = 0
        self.retractions = 0
        self.failovers_started = 0
        self._proc = None

    # -- ring plumbing (same shape as the basic detector) ----------------------

    def start(self) -> None:
        node = self.runtime.node
        self._proc = node.spawn(self._loop(), name=f"suspicion-{node.node_id}")

    def ring_targets(self) -> List[int]:
        node = self.runtime.node
        members = node.member_ids()
        if node.node_id not in members or len(members) < 2:
            return []
        index = members.index(node.node_id)
        targets = []
        for step in range(1, self.successors + 1):
            succ = members[(index + step) % len(members)]
            if succ != node.node_id and succ not in targets:
                targets.append(succ)
        return targets

    def _loop(self):
        node = self.runtime.node
        while True:
            yield Timeout(self.interval)
            for target in self.ring_targets():
                if target in self._handling:
                    continue
                try:
                    yield node.peer_call(
                        target, "heartbeat", node.node_id, timeout=self.timeout
                    )
                    yield from self._on_alive(target)
                except (RpcTimeout, RpcError):
                    yield from self._on_miss(target)

    # -- voting ------------------------------------------------------------------

    def _on_miss(self, target: int):
        self._misses[target] = self._misses.get(target, 0) + 1
        if self._misses[target] < self.miss_threshold:
            return
        if target in self._voted:
            return
        committed = yield from self._cast_vote(target, suspicious=True)
        if not committed:
            return
        self._voted.add(target)
        self.votes_cast += 1
        votes = self.count_votes(target)
        if votes >= self.vote_threshold and target not in self._handling:
            self._handling.add(target)
            self.failovers_started += 1
            self.runtime.node.spawn(
                self._run_failover(target),
                name=f"voted-failover-of-{target}",
            )

    def _on_alive(self, target: int):
        self._misses[target] = 0
        if target in self._voted:
            committed = yield from self._cast_vote(target, suspicious=False)
            if committed:
                self._voted.discard(target)
                self.retractions += 1

    def _cast_vote(self, target: int, suspicious: bool) -> Generator:
        """Record (or retract) a suspicion row in MTable via MarlinCommit."""
        return (yield from cast_vote(self.runtime, target, suspicious))

    def count_votes(self, target: int) -> int:
        """Distinct in-window suspicion votes against ``target`` (local view)."""
        return count_votes(self.runtime.node, target, self.vote_window)

    def _run_failover(self, target: int):
        try:
            taken = yield from run_failover(self.runtime, target)
            # Clean the target's suspicion rows out of MTable.
            yield from self._clear_votes(target)
            return taken
        except TxnAborted:
            return []
        finally:
            self._handling.discard(target)
            self._misses.pop(target, None)
            self._voted.discard(target)

    def _clear_votes(self, target: int) -> Generator:
        return (yield from clear_votes(self.runtime, target))
