"""Deterministic discrete-event simulation substrate.

The paper's testbed ran on Azure VMs; this package provides the equivalent
substrate for the reproduction: a seeded, single-threaded event simulator with
generator-based processes (``repro.sim.core``), bounded CPU resources
(``repro.sim.resources``), a region-aware latency model (``repro.sim.network``)
and an RPC layer with timeouts and crash semantics (``repro.sim.rpc``).
"""

from repro.sim.core import (
    Future,
    Process,
    SimError,
    Simulator,
    Timeout,
    all_of,
    any_of,
)
from repro.sim.network import AZURE_REGIONS, LatencyModel, Network, NetworkFaultPlane
from repro.sim.resources import CpuResource, Queue
from repro.sim.rpc import (
    EndpointDegradation,
    RemoteError,
    RpcEndpoint,
    RpcError,
    RpcTimeout,
)

__all__ = [
    "AZURE_REGIONS",
    "CpuResource",
    "EndpointDegradation",
    "Future",
    "LatencyModel",
    "Network",
    "NetworkFaultPlane",
    "Process",
    "Queue",
    "RemoteError",
    "RpcEndpoint",
    "RpcError",
    "RpcTimeout",
    "SimError",
    "Simulator",
    "Timeout",
    "all_of",
    "any_of",
]
