"""Region-aware network latency model.

The paper's geo-distributed experiment (§6.5) spans four Azure regions:
US West, Asia East, UK South and Australia East.  ``AZURE_REGIONS`` carries
approximate one-way latencies between those regions (derived from public
inter-region RTT measurements); intra-region delivery uses a small datacenter
latency.  Latencies are jittered multiplicatively with the simulator's seeded
RNG, so runs remain deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.sim.core import Simulator

__all__ = ["AZURE_REGIONS", "LatencyModel", "Network"]

US_WEST = "us-west"
ASIA_EAST = "asia-east"
UK_SOUTH = "uk-south"
AUSTRALIA_EAST = "australia-east"

AZURE_REGIONS = (US_WEST, ASIA_EAST, UK_SOUTH, AUSTRALIA_EAST)

# Approximate one-way latencies (seconds) between Azure regions.
_AZURE_ONE_WAY: Dict[FrozenSet[str], float] = {
    frozenset((US_WEST, ASIA_EAST)): 0.075,
    frozenset((US_WEST, UK_SOUTH)): 0.070,
    frozenset((US_WEST, AUSTRALIA_EAST)): 0.080,
    frozenset((ASIA_EAST, UK_SOUTH)): 0.100,
    frozenset((ASIA_EAST, AUSTRALIA_EAST)): 0.060,
    frozenset((UK_SOUTH, AUSTRALIA_EAST)): 0.125,
}

#: One-way latency between two endpoints inside the same datacenter region.
INTRA_REGION_ONE_WAY = 0.00025


class LatencyModel:
    """Samples one-way latencies between regions.

    Parameters
    ----------
    intra:
        One-way latency between endpoints in the same region.
    cross:
        Mapping of ``frozenset({region_a, region_b})`` to one-way latency.
        Unknown pairs fall back to ``default_cross``.
    jitter_frac:
        Uniform multiplicative jitter in ``[1, 1 + jitter_frac]``.
    """

    def __init__(
        self,
        intra: float = INTRA_REGION_ONE_WAY,
        cross: Optional[Dict[FrozenSet[str], float]] = None,
        default_cross: float = 0.075,
        jitter_frac: float = 0.10,
    ):
        self.intra = intra
        self.cross = dict(_AZURE_ONE_WAY if cross is None else cross)
        self.default_cross = default_cross
        self.jitter_frac = jitter_frac

    def base_one_way(self, region_a: str, region_b: str) -> float:
        if region_a == region_b:
            return self.intra
        return self.cross.get(frozenset((region_a, region_b)), self.default_cross)

    def one_way(self, rng, region_a: str, region_b: str) -> float:
        base = self.base_one_way(region_a, region_b)
        if self.jitter_frac <= 0:
            return base
        return base * (1.0 + self.jitter_frac * rng.random())


class Network:
    """Delivers messages between registered endpoints with modeled latency."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        #: address -> endpoint; populated by :class:`repro.sim.rpc.RpcEndpoint`.
        self.endpoints: Dict[str, object] = {}
        self.messages_sent = 0
        # Base one-way latencies memoised per (src, dst); avoids the frozenset
        # allocation of ``base_one_way`` on every message.  The latency model
        # is treated as immutable once attached (swap the whole model to
        # change it mid-run).
        self._base: Dict[str, Dict[str, float]] = {}

    def deliver(
        self, src_region: str, dst_region: str, fn: Callable, *args
    ) -> None:
        """Schedule ``fn(*args)`` after one sampled one-way latency.

        Hot path: messages become direct (handle-free) timer entries, and
        jitter sampling is skipped entirely when ``jitter_frac == 0`` so
        jitterless runs never touch the RNG here.
        """
        try:
            delay = self._base[src_region][dst_region]
        except KeyError:
            delay = self.latency.base_one_way(src_region, dst_region)
            self._base.setdefault(src_region, {})[dst_region] = delay
        jitter = self.latency.jitter_frac
        if jitter > 0.0:
            delay *= 1.0 + jitter * self.sim.rng.random()
        self.messages_sent += 1
        self.sim.timer(delay, fn, *args)
