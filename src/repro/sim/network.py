"""Region-aware network latency model.

The paper's geo-distributed experiment (§6.5) spans four Azure regions:
US West, Asia East, UK South and Australia East.  ``AZURE_REGIONS`` carries
approximate one-way latencies between those regions (derived from public
inter-region RTT measurements); intra-region delivery uses a small datacenter
latency.  Latencies are jittered multiplicatively with the simulator's seeded
RNG, so runs remain deterministic.

Fault injection
---------------

``Network.fault_plane`` is an optional :class:`NetworkFaultPlane` consulted on
every addressed delivery: a directed reachability matrix (partitions), a
per-link drop rate (packet loss) and per-link extra delay (degraded links).
It is ``None`` by default, so fault-free runs pay one attribute check and
never touch the RNG — existing seeded runs stay bit-identical.  The plane is
installed and driven by :class:`repro.chaos.ChaosController`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.sim.core import Simulator

__all__ = ["AZURE_REGIONS", "LatencyModel", "Network", "NetworkFaultPlane"]

US_WEST = "us-west"
ASIA_EAST = "asia-east"
UK_SOUTH = "uk-south"
AUSTRALIA_EAST = "australia-east"

AZURE_REGIONS = (US_WEST, ASIA_EAST, UK_SOUTH, AUSTRALIA_EAST)

# Approximate one-way latencies (seconds) between Azure regions.
_AZURE_ONE_WAY: Dict[FrozenSet[str], float] = {
    frozenset((US_WEST, ASIA_EAST)): 0.075,
    frozenset((US_WEST, UK_SOUTH)): 0.070,
    frozenset((US_WEST, AUSTRALIA_EAST)): 0.080,
    frozenset((ASIA_EAST, UK_SOUTH)): 0.100,
    frozenset((ASIA_EAST, AUSTRALIA_EAST)): 0.060,
    frozenset((UK_SOUTH, AUSTRALIA_EAST)): 0.125,
}

#: One-way latency between two endpoints inside the same datacenter region.
INTRA_REGION_ONE_WAY = 0.00025


class LatencyModel:
    """Samples one-way latencies between regions.

    Parameters
    ----------
    intra:
        One-way latency between endpoints in the same region.
    cross:
        Mapping of ``frozenset({region_a, region_b})`` to one-way latency.
        Unknown pairs fall back to ``default_cross``.
    jitter_frac:
        Uniform multiplicative jitter in ``[1, 1 + jitter_frac]``.
    """

    __slots__ = ("intra", "cross", "default_cross", "jitter_frac")

    def __init__(
        self,
        intra: float = INTRA_REGION_ONE_WAY,
        cross: Optional[Dict[FrozenSet[str], float]] = None,
        default_cross: float = 0.075,
        jitter_frac: float = 0.10,
    ):
        self.intra = intra
        self.cross = dict(_AZURE_ONE_WAY if cross is None else cross)
        self.default_cross = default_cross
        self.jitter_frac = jitter_frac

    def base_one_way(self, region_a: str, region_b: str) -> float:
        if region_a == region_b:
            return self.intra
        return self.cross.get(frozenset((region_a, region_b)), self.default_cross)

    def one_way(self, rng, region_a: str, region_b: str) -> float:
        base = self.base_one_way(region_a, region_b)
        if self.jitter_frac <= 0:
            return base
        return base * (1.0 + self.jitter_frac * rng.random())


class NetworkFaultPlane:
    """Mutable directed fault state consulted by :meth:`Network.deliver_addr`.

    All state is keyed by directed ``(src_addr, dst_addr)`` pairs, so
    asymmetric pathologies (a node unreachable from its monitors but able to
    send, a lossy one-way link) are expressible directly.  Drop decisions are
    drawn from ``rng`` — the chaos controller's dedicated seeded RNG — so a
    chaotic run replays bit-identically.
    """

    __slots__ = ("rng", "blocked", "loss", "link_delay")

    def __init__(self, rng):
        self.rng = rng
        #: Directed (src, dst) address pairs with no connectivity at all.
        self.blocked: set = set()
        #: Directed (src, dst) -> drop probability in [0, 1].
        self.loss: Dict[Tuple[str, str], float] = {}
        #: Directed (src, dst) -> extra one-way delay (seconds).
        self.link_delay: Dict[Tuple[str, str], float] = {}

    def on_message(self, src: Optional[str], dst: Optional[str]) -> Optional[float]:
        """Verdict for one message: ``None`` to drop it, else extra delay."""
        pair = (src, dst)
        if pair in self.blocked:
            return None
        rate = self.loss.get(pair)
        if rate and self.rng.random() < rate:
            return None
        return self.link_delay.get(pair, 0.0)

    # -- mutation helpers (used by the chaos controller) ---------------------

    def block(self, src: str, dst: str) -> None:
        self.blocked.add((src, dst))

    def unblock(self, src: str, dst: str) -> None:
        self.blocked.discard((src, dst))

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Sever both directions between every cross pair of the two groups."""
        for a in group_a:
            for b in group_b:
                self.blocked.add((a, b))
                self.blocked.add((b, a))

    def heal(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        for a in group_a:
            for b in group_b:
                self.blocked.discard((a, b))
                self.blocked.discard((b, a))

    def set_loss(self, src: str, dst: str, rate: float) -> None:
        if rate > 0.0:
            self.loss[(src, dst)] = rate
        else:
            self.loss.pop((src, dst), None)

    def set_link_delay(self, src: str, dst: str, extra: float) -> None:
        if extra > 0.0:
            self.link_delay[(src, dst)] = extra
        else:
            self.link_delay.pop((src, dst), None)


class Network:
    """Delivers messages between registered endpoints with modeled latency."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        #: address -> endpoint; populated by :class:`repro.sim.rpc.RpcEndpoint`.
        self.endpoints: Dict[str, object] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Optional :class:`NetworkFaultPlane`; ``None`` on fault-free runs.
        self.fault_plane: Optional[NetworkFaultPlane] = None
        #: Optional :class:`repro.obs.Tracer` consulted by the RPC layer;
        #: ``None`` keeps the call path at one attribute check (chaos-hook
        #: idiom — see OBSERVABILITY.md).
        self.tracer = None
        # Per-network client-id allocator (see Client): ids restart at 0 for
        # every network so endpoint addresses — and the trace tracks derived
        # from them — are identical across same-seed runs in one process.
        self._next_client_id = 0
        # Base one-way latencies memoised per (src, dst); avoids the frozenset
        # allocation of ``base_one_way`` on every message.  The latency model
        # is treated as immutable once attached (swap the whole model to
        # change it mid-run).
        self._base: Dict[str, Dict[str, float]] = {}

    def install_fault_plane(self, rng) -> NetworkFaultPlane:
        """Attach (or return the already-attached) fault plane."""
        if self.fault_plane is None:
            self.fault_plane = NetworkFaultPlane(rng)
        return self.fault_plane

    def deliver(
        self, src_region: str, dst_region: str, fn: Callable, *args
    ) -> None:
        """Schedule ``fn(*args)`` after one sampled one-way latency (no
        endpoint addressing; not subject to address-level faults)."""
        self.deliver_addr(src_region, dst_region, None, None, fn, *args)

    def deliver_addr(
        self,
        src_region: str,
        dst_region: str,
        src_addr: Optional[str],
        dst_addr: Optional[str],
        fn: Callable,
        *args,
    ) -> None:
        """Schedule ``fn(*args)`` after one sampled one-way latency.

        Hot path: messages become direct (handle-free) timer entries, and
        jitter sampling is skipped entirely when ``jitter_frac == 0`` so
        jitterless runs never touch the RNG here.  Jitterless intra-region
        sends on a fault-free network — the RPC ping-pong shape — take a
        fast lane: the delay is the latency model's ``intra`` constant, with
        no memo-dict double lookup and no RNG.  The fault plane, when
        installed, may drop the message (partition / packet loss) or add
        per-link delay.
        """
        extra = 0.0
        plane = self.fault_plane
        if plane is not None:
            verdict = plane.on_message(src_addr, dst_addr)
            if verdict is None:
                self.messages_dropped += 1
                return
            extra = verdict
        elif src_region == dst_region:
            latency = self.latency
            if latency.jitter_frac == 0.0:
                self.messages_sent += 1
                self.sim.timer(latency.intra, fn, *args)
                return
        try:
            delay = self._base[src_region][dst_region]
        except KeyError:
            delay = self.latency.base_one_way(src_region, dst_region)
            self._base.setdefault(src_region, {})[dst_region] = delay
        jitter = self.latency.jitter_frac
        if jitter > 0.0:
            delay *= 1.0 + jitter * self.sim.rng.random()
        if extra > 0.0:
            delay += extra
        self.messages_sent += 1
        self.sim.timer(delay, fn, *args)
