"""Discrete-event simulation kernel.

The kernel executes *processes* — plain Python generators — against a single
event heap ordered by ``(time, sequence)``.  A process advances by yielding:

* :class:`Timeout` — resume after a simulated delay,
* :class:`Future` — resume when the future resolves (or re-raise its failure),
* another :class:`Process` — resume when that process finishes,
* ``None`` — yield control and resume on the next event cycle.

Sub-protocols compose with ``yield from``; the sub-generator's ``return`` value
becomes the value of the ``yield from`` expression.  All resumptions pass
through the heap, so a run is fully deterministic for a given seed and spawn
order.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Future",
    "Handle",
    "Process",
    "ProcessCrashed",
    "ProcessKilled",
    "SimError",
    "Simulator",
    "Timeout",
    "all_of",
    "any_of",
]


class SimError(Exception):
    """Base class for simulation kernel errors."""


class ProcessKilled(SimError):
    """Raised inside a process that was killed via :meth:`Process.kill`."""


class ProcessCrashed(SimError):
    """Raised out of :meth:`Simulator.run` when a process died unexpectedly."""

    def __init__(self, process: "Process", exc: BaseException):
        super().__init__(f"process {process.name!r} crashed: {exc!r}")
        self.process = process
        self.exc = exc


class Timeout:
    """Yield value that suspends a process for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Handle:
    """Cancellation handle for a scheduled callback."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Future:
    """A one-shot container for a value (or failure) produced later.

    Completion callbacks are never run inline: they are scheduled on the event
    heap, which keeps resumption order deterministic and stack depth bounded.
    """

    __slots__ = ("_sim", "_done", "_value", "_exc", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name

    @property
    def done(self) -> bool:
        return self._done

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    def result(self) -> Any:
        """Return the value, raising the failure if the future failed."""
        if not self._done:
            raise SimError(f"future {self.name!r} is not done")
        if self._exc is not None:
            raise self._exc
        return self._value

    def resolve(self, value: Any = None) -> None:
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        self._flush()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._exc = exc
        self._flush()

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._done:
            self._sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def _flush(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._sim.call_soon(fn, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self._done:
            state = f"failed({self._exc!r})" if self._exc else f"done({self._value!r})"
        return f"Future({self.name!r}, {state})"


class Process:
    """A running generator coroutine.

    ``process.result`` is a :class:`Future` resolved with the generator's
    return value, or failed with the escaping exception.  An exception that
    escapes a process also crashes the whole simulation run (fail-fast), unless
    the process was spawned with ``daemon=True`` or killed deliberately.
    """

    __slots__ = ("sim", "gen", "name", "result", "daemon", "_finished")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator,
        name: str = "",
        daemon: bool = False,
    ):
        if not isinstance(gen, Generator):
            raise SimError(f"spawn() needs a generator, got {type(gen).__name__}")
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.daemon = daemon
        self.result = Future(sim, name=f"{self.name}.result")
        self._finished = False
        sim.call_soon(self._step, None, None)

    @property
    def finished(self) -> bool:
        return self._finished

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the process at the current time."""
        if not self._finished:
            self.sim.call_soon(self._step, None, ProcessKilled(self.name))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._finished:
            return
        try:
            if exc is not None:
                yielded = self.gen.throw(exc)
            else:
                yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish_value(stop.value)
            return
        except ProcessKilled as killed:
            self._finished = True
            self.result.fail(killed)
            return
        except BaseException as err:  # noqa: BLE001 - deliberate fail-fast
            self._finished = True
            self.result.fail(err)
            if not self.daemon:
                self.sim._report_crash(self, err)
            return
        self._dispatch(yielded)

    def _finish_value(self, value: Any) -> None:
        self._finished = True
        self.result.resolve(value)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.sim.call_after(yielded.delay, self._step, None, None)
        elif isinstance(yielded, Future):
            yielded.add_done_callback(self._resume_from_future)
        elif isinstance(yielded, Process):
            yielded.result.add_done_callback(self._resume_from_future)
        elif yielded is None:
            self.sim.call_soon(self._step, None, None)
        else:
            self._step(None, SimError(f"process yielded unsupported value {yielded!r}"))

    def _resume_from_future(self, fut: Future) -> None:
        if fut._exc is not None:
            self._step(None, fut._exc)
        else:
            self._step(fut._value, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process({self.name!r}, finished={self._finished})"


class Simulator:
    """The event loop: a heap of ``(time, seq, handle, fn, args)`` entries."""

    def __init__(self, seed: int = 0):
        self._heap: list[tuple[float, int, Handle, Callable, tuple]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self.rng = random.Random(seed)
        self._crash: Optional[ProcessCrashed] = None
        self.events_executed = 0

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling ---------------------------------------------------------

    def call_at(self, when: float, fn: Callable, *args: Any) -> Handle:
        if when < self._now - 1e-12:
            raise SimError(f"cannot schedule in the past: {when} < {self._now}")
        handle = Handle()
        heapq.heappush(self._heap, (when, next(self._seq), handle, fn, args))
        return handle

    def call_after(self, delay: float, fn: Callable, *args: Any) -> Handle:
        return self.call_at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable, *args: Any) -> Handle:
        return self.call_at(self._now, fn, *args)

    def spawn(self, gen: Generator, name: str = "", daemon: bool = False) -> Process:
        return Process(self, gen, name=name, daemon=daemon)

    def event(self, name: str = "") -> Future:
        return Future(self, name=name)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run one event; return False if the heap is empty."""
        while self._heap:
            when, _seq, handle, fn, args = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = when
            self.events_executed += 1
            fn(*args)
            if self._crash is not None:
                crash, self._crash = self._crash, None
                raise crash
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or sim time passes ``until``."""
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until(self, fut: Future, limit: Optional[float] = None) -> Any:
        """Run until ``fut`` resolves; return its value (or raise its failure)."""
        while not fut.done:
            if limit is not None and self._heap and self._heap[0][0] > limit:
                raise SimError(f"future {fut.name!r} not done by t={limit}")
            if not self.step():
                raise SimError(f"event heap drained before {fut.name!r} resolved")
        return fut.result()

    def _report_crash(self, process: Process, exc: BaseException) -> None:
        if self._crash is None:
            self._crash = ProcessCrashed(process, exc)


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future resolving with the list of all values (fails on first failure)."""
    futures = list(futures)
    gathered = Future(sim, name="all_of")
    remaining = len(futures)
    if remaining == 0:
        gathered.resolve([])
        return gathered
    values: list[Any] = [None] * remaining
    state = {"left": remaining, "failed": False}

    def on_done(index: int, fut: Future) -> None:
        if gathered.done:
            return
        if fut.exception is not None:
            state["failed"] = True
            gathered.fail(fut.exception)
            return
        values[index] = fut._value
        state["left"] -= 1
        if state["left"] == 0:
            gathered.resolve(values)

    for i, fut in enumerate(futures):
        fut.add_done_callback(lambda f, i=i: on_done(i, f))
    return gathered


def any_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future resolving with ``(index, value)`` of the first completion."""
    futures = list(futures)
    if not futures:
        raise SimError("any_of() needs at least one future")
    first = Future(sim, name="any_of")

    def on_done(index: int, fut: Future) -> None:
        if first.done:
            return
        if fut.exception is not None:
            first.fail(fut.exception)
        else:
            first.resolve((index, fut._value))

    for i, fut in enumerate(futures):
        fut.add_done_callback(lambda f, i=i: on_done(i, f))
    return first
