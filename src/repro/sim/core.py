"""Discrete-event simulation kernel.

The kernel executes *processes* — plain Python generators — against a
three-queue scheduler.  A process advances by yielding:

* :class:`Timeout` — resume after a simulated delay,
* :class:`Future` — resume when the future resolves (or re-raise its failure),
* another :class:`Process` — resume when that process finishes,
* ``None`` — yield control and resume on the next event cycle.

Sub-protocols compose with ``yield from``; the sub-generator's ``return`` value
becomes the value of the ``yield from`` expression.

Three-queue scheduler design
----------------------------

The dominant event class in every workload is the *same-time* callback:
``call_soon`` is used for every future resolution (``Future._flush``),
process spawn, process kill, and bare ``yield None``.  Pushing those through
a binary heap pays an O(log n) comparison chain per event for entries that
by construction always sort at the front.  True future timers split further
by whether they can be cancelled: the overwhelming majority — every network
delivery, storage latency, process ``Timeout`` — are fire-and-forget, so
carrying (and checking) a cancellation slot for them is pure overhead.  The
scheduler therefore keeps three structures:

* **ready queue** — a FIFO ``deque`` of ``(handle, fn, args)`` entries for
  callbacks at the *current* simulated time.  ``call_soon`` (and any
  ``call_at``/``call_after`` that lands at or before ``now``) appends here in
  O(1); kernel-internal schedulings skip the :class:`Handle` allocation
  entirely by appending ``(None, fn, args)``.
* **fire-and-forget timer heap** — 4-tuples ``(when, seq, fn, args)`` with
  *no* handle slot, fed by :meth:`Simulator.timer` (the network/storage/
  ``Timeout`` path).  Entries are never cancelled, so the pop needs no flag
  check and each entry is one word smaller.
* **cancellable timer heap** — 5-tuples ``(when, seq, token, fn, args)``
  fed by ``call_at``/``call_after`` (fresh :class:`Handle`) and
  :meth:`Simulator.timer_token` (caller-provided token, e.g. the RPC layer's
  pending-call record).  Cancellation flips ``token.cancelled``; the entry
  is lazily discarded when popped.

Both heaps share one ``seq`` counter, so merging their heads by ``(when,
seq)`` reproduces exactly the global order of a single combined heap.

Ordering guarantees (identical to the classic single-heap kernel):

1. Events execute in nondecreasing time order; ties execute in scheduling
   (sequence) order.
2. Every timer-heap entry for time ``T`` was scheduled *before* the clock
   reached ``T`` (anything scheduled at ``T`` for ``T`` goes to the ready
   queue), so at time ``T`` the heaps' remaining ``T``-entries all precede
   every ready-queue entry in sequence order.  The pop rule — drain heap
   entries with ``when == now`` (earlier ``(when, seq)`` head of the two
   heaps first) before the ready queue, otherwise run the ready queue before
   advancing the clock — therefore reproduces exactly the global ``(time,
   seq)`` order of the old kernel, and a seeded run produces a bit-identical
   event trace either way.
3. The clock only advances when the ready queue is empty.

All resumptions pass through the scheduler, so a run is fully deterministic
for a given seed and spawn order.  ``run()``/``run(until)`` inline the event
loop (no per-event ``step()`` call); ``step()`` remains the single-event
entry point with identical pop order.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Future",
    "Handle",
    "Process",
    "ProcessCrashed",
    "ProcessKilled",
    "SimError",
    "Simulator",
    "Timeout",
    "all_of",
    "any_of",
]

#: Scheduling in the past is tolerated up to this much floating-point slop.
_PAST_SLOP = 1e-12


class SimError(Exception):
    """Base class for simulation kernel errors."""


class ProcessKilled(SimError):
    """Raised inside a process that was killed via :meth:`Process.kill`."""


class ProcessCrashed(SimError):
    """Raised out of :meth:`Simulator.run` when a process died unexpectedly."""

    def __init__(self, process: "Process", exc: BaseException):
        super().__init__(f"process {process.name!r} crashed: {exc!r}")
        self.process = process
        self.exc = exc


class Timeout:
    """Yield value that suspends a process for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Handle:
    """Cancellation handle for a scheduled callback (lazily honoured).

    ``cancelled`` defaults through the class attribute so creating a handle
    runs no ``__init__`` — the scheduling paths allocate one per cancellable
    entry, and virtually all of them are never cancelled.
    """

    cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Future:
    """A one-shot container for a value (or failure) produced later.

    Completion callbacks are never run inline: they are pushed onto the
    simulator's ready queue, which keeps resumption order deterministic and
    stack depth bounded.
    """

    __slots__ = ("_sim", "_done", "_value", "_exc", "_callbacks", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name

    @property
    def done(self) -> bool:
        return self._done

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    def result(self) -> Any:
        """Return the value, raising the failure if the future failed."""
        if not self._done:
            raise SimError(f"future {self.name!r} is not done")
        if self._exc is not None:
            raise self._exc
        return self._value

    def resolve(self, value: Any = None) -> None:
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        if self._callbacks:
            self._flush()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimError(f"future {self.name!r} resolved twice")
        self._done = True
        self._exc = exc
        if self._callbacks:
            self._flush()

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        if self._done:
            self._sim._ready.append((None, fn, (self,)))
        else:
            self._callbacks.append(fn)

    def _flush(self) -> None:
        ready = self._sim._ready
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            ready.append((None, fn, (self,)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self._done:
            state = f"failed({self._exc!r})" if self._exc else f"done({self._value!r})"
        return f"Future({self.name!r}, {state})"


class Process:
    """A running generator coroutine.

    ``process.result`` is a :class:`Future` resolved with the generator's
    return value, or failed with the escaping exception.  An exception that
    escapes a process also crashes the whole simulation run (fail-fast), unless
    the process was spawned with ``daemon=True`` or killed deliberately.
    """

    __slots__ = ("sim", "gen", "name", "result", "daemon", "_finished")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator,
        name: str = "",
        daemon: bool = False,
    ):
        if not isinstance(gen, Generator):
            raise SimError(f"spawn() needs a generator, got {type(gen).__name__}")
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.daemon = daemon
        self.result = Future(sim, name=f"{self.name}.result")
        self._finished = False
        sim._ready.append((None, self._step, (None, None)))

    @property
    def finished(self) -> bool:
        return self._finished

    def kill(self) -> None:
        """Throw :class:`ProcessKilled` into the process at the current time."""
        if not self._finished:
            self.sim._ready.append(
                (None, self._step, (None, ProcessKilled(self.name)))
            )

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._finished:
            return
        try:
            if exc is not None:
                yielded = self.gen.throw(exc)
            else:
                yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish_value(stop.value)
            return
        except ProcessKilled as killed:
            self._finished = True
            self.result.fail(killed)
            return
        except BaseException as err:  # detlint: ok(DET108) — the kernel's own crash trap: records the failure on result and reports non-daemon crashes; this is the dispatcher below the coroutines, not a coroutine
            self._finished = True
            self.result.fail(err)
            if not self.daemon:
                self.sim._report_crash(self, err)
            return
        # Exact-type dispatch table first (the common cases); fall back to the
        # isinstance chain only for subclasses of the yieldable types.
        handler = _DISPATCH.get(yielded.__class__)
        if handler is not None:
            handler(self, yielded)
        else:
            self._dispatch_slow(yielded)

    def _finish_value(self, value: Any) -> None:
        self._finished = True
        self.result.resolve(value)

    # -- yield dispatch ------------------------------------------------------

    def _on_timeout(self, yielded: "Timeout") -> None:
        self.sim.timer(yielded.delay, self._step, None, None)

    def _on_future(self, yielded: "Future") -> None:
        if yielded._done:
            self.sim._ready.append((None, self._resume_from_future, (yielded,)))
        else:
            yielded._callbacks.append(self._resume_from_future)

    def _on_process(self, yielded: "Process") -> None:
        self._on_future(yielded.result)

    def _on_none(self, yielded: None) -> None:
        self.sim._ready.append((None, self._step, (None, None)))

    def _dispatch_slow(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._on_timeout(yielded)
        elif isinstance(yielded, Future):
            self._on_future(yielded)
        elif isinstance(yielded, Process):
            self._on_process(yielded)
        else:
            self._step(None, SimError(f"process yielded unsupported value {yielded!r}"))

    def _resume_from_future(self, fut: Future) -> None:
        if fut._exc is not None:
            self._step(None, fut._exc)
        else:
            self._step(fut._value, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process({self.name!r}, finished={self._finished})"


#: Exact-type yield dispatch; subclasses fall through to ``_dispatch_slow``.
_DISPATCH: dict = {
    Timeout: Process._on_timeout,
    Future: Process._on_future,
    Process: Process._on_process,
    type(None): Process._on_none,
}


class Simulator:
    """The event loop: a FIFO ready queue plus two lazily-merged timer heaps.

    See the module docstring for the scheduler design and its ordering
    guarantees.  ``now`` only advances when the ready queue is empty.
    """

    def __init__(self, seed: int = 0):
        #: FIFO of (handle_or_None, fn, args) at the current simulated time.
        self._ready: deque = deque()
        #: Fire-and-forget heap of (when, seq, fn, args); never cancelled.
        self._timers: list = []
        #: Cancellable heap of (when, seq, token, fn, args); token has a
        #: ``cancelled`` flag (a :class:`Handle` or a caller-provided object).
        self._cancellable: list = []
        #: One counter for both heaps, so their heads merge by (when, seq).
        self._seq = itertools.count(1)
        self._now = 0.0
        self.rng = random.Random(seed)
        self._crash: Optional[ProcessCrashed] = None
        self.events_executed = 0
        #: Strong refs to every spawned process, for the simulator's entire
        #: lifetime.  A suspended generator that became unreachable mid-run
        #: (e.g. its resume future died with a crashed endpoint) would
        #: otherwise be reclaimed by the *cyclic* GC, whose collection points
        #: depend on process-global allocation counters — and the
        #: ``GeneratorExit`` cleanup it throws runs ``finally:`` side effects
        #: at those nondeterministic times.  Keeping processes reachable
        #: defers all such cleanup to simulator teardown.
        self._spawned: list = []

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling ---------------------------------------------------------

    def call_at(self, when: float, fn: Callable, *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at absolute time ``when``; cancellable."""
        handle = Handle()
        if when > self._now:
            _heappush(self._cancellable, (when, next(self._seq), handle, fn, args))
        else:
            if when < self._now - _PAST_SLOP:
                raise SimError(f"cannot schedule in the past: {when} < {self._now}")
            self._ready.append((handle, fn, args))
        return handle

    def call_after(self, delay: float, fn: Callable, *args: Any) -> Handle:
        # call_at, inlined: one fewer call on the cancellable-timer hot path.
        now = self._now
        when = now + delay
        handle = Handle()
        if when > now:
            _heappush(self._cancellable, (when, next(self._seq), handle, fn, args))
        else:
            if when < now - _PAST_SLOP:
                raise SimError(f"cannot schedule in the past: {when} < {now}")
            self._ready.append((handle, fn, args))
        return handle

    def call_soon(self, fn: Callable, *args: Any) -> Handle:
        handle = Handle()
        self._ready.append((handle, fn, args))
        return handle

    def defer(self, fn: Callable, *args: Any) -> None:
        """Allocation-lean ``call_soon``: no :class:`Handle`, not cancellable."""
        self._ready.append((None, fn, args))

    def timer(self, delay: float, fn: Callable, *args: Any) -> None:
        """Allocation-lean ``call_after``: no :class:`Handle`, not cancellable.

        A non-positive ``delay`` lands on the ready queue, preserving the
        invariant that the heaps only hold strictly-future entries.
        """
        if delay > 0.0:
            _heappush(self._timers, (self._now + delay, next(self._seq), fn, args))
        else:
            if delay < -_PAST_SLOP:
                raise SimError(f"cannot schedule in the past: delay {delay}")
            self._ready.append((None, fn, args))

    def timer_token(self, delay: float, token: Any, fn: Callable, *args: Any) -> None:
        """Cancellable timer with a caller-provided ``token``.

        ``token`` is any object with a mutable ``cancelled`` attribute; the
        caller flips it to cancel.  This lets a layer that already keeps
        per-operation state (e.g. the RPC pending-call record) double as its
        own cancellation handle instead of allocating a :class:`Handle`.
        """
        if delay > 0.0:
            _heappush(
                self._cancellable,
                (self._now + delay, next(self._seq), token, fn, args),
            )
        else:
            if delay < -_PAST_SLOP:
                raise SimError(f"cannot schedule in the past: delay {delay}")
            self._ready.append((token, fn, args))

    def spawn(self, gen: Generator, name: str = "", daemon: bool = False) -> Process:
        proc = Process(self, gen, name=name, daemon=daemon)
        self._spawned.append(proc)
        return proc

    def event(self, name: str = "") -> Future:
        return Future(self, name=name)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Run one event; return False if all three queues are empty."""
        ready = self._ready
        fnf = self._timers
        canc = self._cancellable
        while True:
            # Heap entries at the current time were scheduled before the
            # clock reached it, so they precede every ready entry (see the
            # module docstring's ordering argument).  The two heaps share one
            # seq counter, so the earlier (when, seq) head is the global one.
            if fnf:
                heap = canc if (canc and canc[0] < fnf[0]) else fnf
            elif canc:
                heap = canc
            else:
                heap = None
            if heap is not None and (not ready or heap[0][0] <= self._now):
                entry = _heappop(heap)
                if heap is fnf:
                    when, _seq, fn, args = entry
                else:
                    when, _seq, token, fn, args = entry
                    if token.cancelled:
                        continue
                self._now = when
            elif ready:
                token, fn, args = ready.popleft()
                if token is not None and token.cancelled:
                    continue
            else:
                return False
            self.events_executed += 1
            fn(*args)
            if self._crash is not None:
                crash, self._crash = self._crash, None
                raise crash
            return True

    def _next_event_time(self) -> Optional[float]:
        """Time of the next *live* entry in pop order.

        Cancelled entries are pruned here (cancellable-heap top popped, ready
        front dropped) — they would be discarded by ``step`` anyway, and
        counting them made ``run(until)`` overshoot its deadline: a cancelled
        timer at the heap top reported a time within the deadline, ``step``
        skipped it and ran the next live event regardless of its time.
        Pruning keeps the deadline exact without touching the ``step`` hot
        path (``run`` never calls this).
        """
        canc = self._cancellable
        while canc and canc[0][2].cancelled:
            _heappop(canc)
        ready = self._ready
        while ready and ready[0][0] is not None and ready[0][0].cancelled:
            ready.popleft()
        fnf = self._timers
        if fnf:
            t = fnf[0][0]
            if canc and canc[0][0] < t:
                t = canc[0][0]
        elif canc:
            t = canc[0][0]
        else:
            t = None
        if t is not None and t <= self._now:
            return t
        if ready:
            return self._now
        return t

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queues drain or sim time passes ``until``.

        The event loop is inlined here (same pop order as :meth:`step`, which
        stays the one-event entry point): no per-event method call, and the
        executed-event count is batched into one update per ``run``.
        """
        ready = self._ready
        fnf = self._timers
        canc = self._cancellable
        executed = 0
        bound = float("inf") if until is None else until
        try:
            if self._now <= bound:
                while True:
                    if fnf:
                        heap = canc if (canc and canc[0] < fnf[0]) else fnf
                    elif canc:
                        heap = canc
                    else:
                        heap = None
                    if heap is not None and (not ready or heap[0][0] <= self._now):
                        if heap[0][0] > bound:
                            break
                        entry = _heappop(heap)
                        if heap is fnf:
                            when, _seq, fn, args = entry
                        else:
                            when, _seq, token, fn, args = entry
                            if token.cancelled:
                                continue
                        self._now = when
                    elif ready:
                        token, fn, args = ready.popleft()
                        if token is not None and token.cancelled:
                            continue
                    else:
                        break
                    executed += 1
                    fn(*args)
                    if self._crash is not None:
                        crash, self._crash = self._crash, None
                        raise crash
        finally:
            self.events_executed += executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until(self, fut: Future, limit: Optional[float] = None) -> Any:
        """Run until ``fut`` resolves; return its value (or raise its failure)."""
        while not fut.done:
            if limit is not None:
                t_next = self._next_event_time()
                if t_next is not None and t_next > limit:
                    raise SimError(f"future {fut.name!r} not done by t={limit}")
            if not self.step():
                raise SimError(f"event heap drained before {fut.name!r} resolved")
        return fut.result()

    def _report_crash(self, process: Process, exc: BaseException) -> None:
        if self._crash is None:
            self._crash = ProcessCrashed(process, exc)


def all_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future resolving with the list of all values (fails on first failure)."""
    futures = list(futures)
    gathered = Future(sim, name="all_of")
    if not futures:
        gathered.resolve([])
        return gathered
    values: list[Any] = [None] * len(futures)
    left = [len(futures)]

    def on_done(index: int, fut: Future) -> None:
        if gathered._done:
            return  # already failed; ignore completions arriving late
        if fut._exc is not None:
            gathered.fail(fut._exc)
            return
        values[index] = fut._value
        left[0] -= 1
        if left[0] == 0:
            gathered.resolve(values)

    for i, fut in enumerate(futures):
        fut.add_done_callback(lambda f, i=i: on_done(i, f))
    return gathered


def any_of(sim: Simulator, futures: Iterable[Future]) -> Future:
    """A future resolving with ``(index, value)`` of the first completion."""
    futures = list(futures)
    if not futures:
        raise SimError("any_of() needs at least one future")
    first = Future(sim, name="any_of")

    def on_done(index: int, fut: Future) -> None:
        if first._done:
            return
        if fut._exc is not None:
            first.fail(fut._exc)
        else:
            first.resolve((index, fut._value))

    for i, fut in enumerate(futures):
        fut.add_done_callback(lambda f, i=i: on_done(i, f))
    return first
