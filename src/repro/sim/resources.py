"""Contended resources: bounded CPU pools and async FIFO queues.

``CpuResource`` models a VM's vCPUs: at most ``workers`` jobs execute
simultaneously; excess jobs queue FIFO.  This is what makes throughput
saturate — the mechanism behind every knee in the paper's figures (a ZooKeeper
leader runs out of CPU, a compute node runs out of CPU, ...).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.sim.core import Future, SimError, Simulator, Timeout

__all__ = ["CpuResource", "Mutex", "Queue"]


class CpuResource:
    """A pool of ``workers`` identical execution slots with a FIFO queue."""

    __slots__ = (
        "sim", "workers", "name", "_free", "_waiters", "busy_time",
        "jobs_completed", "slow_factor",
    )

    def __init__(self, sim: Simulator, workers: int, name: str = "cpu"):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.sim = sim
        self.workers = workers
        self.name = name
        self._free = workers
        self._waiters: deque[Future] = deque()
        self.busy_time = 0.0
        self.jobs_completed = 0
        #: Gray-failure dilation: every job's service time is multiplied by
        #: this factor (1.0 = healthy; set by the chaos controller).
        self.slow_factor = 1.0

    @property
    def in_use(self) -> int:
        return self.workers - self._free

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Future:
        """A future that resolves when a slot is granted to the caller."""
        fut = self.sim.event(name=f"{self.name}.acquire")
        if self._free > 0:
            self._free -= 1
            fut.resolve()
        else:
            self._waiters.append(fut)
        return fut

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().resolve()
        else:
            if self._free >= self.workers:
                raise SimError(f"{self.name}: release without acquire")
            self._free += 1

    def run(self, service_time: float) -> Generator:
        """Process fragment: occupy one slot for ``service_time`` seconds."""
        if self.slow_factor != 1.0:
            service_time *= self.slow_factor
        yield self.acquire()
        try:
            yield Timeout(service_time)
            self.busy_time += service_time
            self.jobs_completed += 1
        finally:
            self.release()

    def utilization(self, elapsed: float) -> float:
        """Average fraction of slots busy over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (self.workers * elapsed)


class Mutex:
    """An async mutual-exclusion lock (FIFO hand-off).

    Compute nodes use one mutex per WAL to serialize their own conditional
    appends: without it, a group-commit flush and a reconfiguration
    transaction could race on the same expected LSN and produce a spurious
    local CAS failure that looks like a cross-node modification.
    """

    __slots__ = ("sim", "name", "_locked", "_waiters")

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: deque[Future] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Future:
        fut = self.sim.event(name=f"{self.name}.acquire")
        if not self._locked:
            self._locked = True
            fut.resolve()
        else:
            self._waiters.append(fut)
        return fut

    def release(self) -> None:
        if not self._locked:
            raise SimError(f"{self.name}: release without acquire")
        if self._waiters:
            self._waiters.popleft().resolve()
        else:
            self._locked = False


class Queue:
    """Unbounded async FIFO queue (mailbox pattern)."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Future] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().resolve(item)
        else:
            self._items.append(item)

    def get(self) -> Future:
        """A future resolving with the next item (FIFO among waiters)."""
        fut = self.sim.event(name=f"{self.name}.get")
        if self._items:
            fut.resolve(self._items.popleft())
        else:
            self._getters.append(fut)
        return fut

    def drain(self) -> list:
        """Remove and return all currently queued items synchronously."""
        items = list(self._items)
        self._items.clear()
        return items
