"""RPC layer on top of the simulated network.

Mirrors the paper's gRPC usage (§5): endpoints expose named methods; callers
issue synchronous calls (``result = yield ep.call(...)``) or asynchronous ones
(collect the future, yield later), exactly the ``RPC_sync/async`` notation of
Algorithm 1.  Crashed endpoints silently drop requests, so callers observe
timeouts — the failure signal that drives the paper's failover path.

Gray-failure injection: ``RpcEndpoint.degrade`` is an optional
:class:`EndpointDegradation` applied server-side to every inbound request —
a fixed processing lag, a seeded jitter component (clock slew), and a request
drop probability.  ``None`` by default; the fault-free request path pays one
attribute check.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Dict, Optional

from repro.sim.core import Future, SimError, Simulator
from repro.sim.network import Network

__all__ = [
    "EndpointDegradation",
    "RemoteError",
    "RpcEndpoint",
    "RpcError",
    "RpcTimeout",
]


class RpcError(SimError):
    """Base class for RPC failures."""


class RpcTimeout(RpcError):
    """The call did not complete within its timeout."""


class RemoteError(RpcError):
    """The remote handler raised; carries the original exception."""

    def __init__(self, address: str, method: str, cause: BaseException):
        super().__init__(f"{address}.{method} raised {cause!r}")
        self.address = address
        self.method = method
        self.cause = cause


class EndpointDegradation:
    """Server-side gray-failure knobs for one endpoint.

    ``lag`` delays every inbound request by a fixed amount; ``jitter`` adds a
    uniform ``[0, jitter)`` component drawn from ``rng`` (the chaos
    controller's seeded RNG — clock-slew semantics); ``drop_rate`` loses the
    request entirely (the caller's timeout fires).
    """

    __slots__ = ("lag", "jitter", "drop_rate", "rng")

    def __init__(
        self,
        lag: float = 0.0,
        jitter: float = 0.0,
        drop_rate: float = 0.0,
        rng=None,
    ):
        if (jitter > 0.0 or drop_rate > 0.0) and rng is None:
            raise SimError(
                "EndpointDegradation with jitter or drop_rate needs an rng "
                "(pass a seeded random.Random so runs stay deterministic)"
            )
        self.lag = lag
        self.jitter = jitter
        self.drop_rate = drop_rate
        self.rng = rng

    def sample_lag(self) -> float:
        if self.jitter > 0.0:
            return self.lag + self.jitter * self.rng.random()
        return self.lag


class _PendingCall:
    """Slotted per-call state: one allocation instead of two closures.

    Holds everything the response path needs — the caller's future, the
    network, the pre-resolved region pair and addresses — and exposes
    ``reply`` (server side: send the response back over the network) and
    ``respond`` (client side: settle the future) as bound methods.  The
    record also doubles as its own timeout-cancellation token
    (:meth:`Simulator.timer_token`): ``respond`` flips ``cancelled`` so the
    armed timeout entry is lazily discarded, with no :class:`Handle`
    allocated and no separate cancel call.
    """

    __slots__ = (
        "fut", "network", "caller_region", "callee_region",
        "caller_addr", "callee_addr", "cancelled", "span",
    )

    def __init__(
        self,
        fut: Future,
        network: Network,
        caller_region: str,
        callee_region: str,
        caller_addr: str,
        callee_addr: str,
    ):
        self.fut = fut
        self.network = network
        self.caller_region = caller_region
        self.callee_region = callee_region
        self.caller_addr = caller_addr
        self.callee_addr = callee_addr
        self.cancelled = False
        #: Trace context piggybacked on the call: ``(tracer, span_id)`` when
        #: tracing is on (set by :meth:`RpcEndpoint.call`), else ``None``.
        #: The server side reads it back via ``reply.__self__`` to parent its
        #: handler span under the client's call span.
        self.span = None

    def reply(self, value: Any, exc: Optional[BaseException]) -> None:
        # Response travels back over the network to the caller.
        self.network.deliver_addr(
            self.callee_region, self.caller_region,
            self.callee_addr, self.caller_addr,
            self.respond, value, exc,
        )

    def respond(self, value: Any, exc: Optional[BaseException]) -> None:
        fut = self.fut
        if fut._done:  # timed out already; late response discarded
            return
        self.cancelled = True  # lazily discards the armed timeout entry
        sp = self.span
        if sp is not None:
            sp[0].end(
                sp[1],
                None if exc is None else {"error": type(exc).__name__},
            )
        if exc is not None:
            fut.fail(exc)
        else:
            fut.resolve(value)


class RpcEndpoint:
    """A network-addressable actor with registered method handlers.

    Handlers may be plain callables (returning a value) or generator functions
    (spawned as simulation processes); either way the caller's future resolves
    with the handler's result after a full round trip.
    """

    def __init__(self, sim: Simulator, network: Network, address: str, region: str):
        if address in network.endpoints:
            raise SimError(f"duplicate RPC address {address!r}")
        self.sim = sim
        self.network = network
        self.address = address
        self.region = region
        self.crashed = False
        #: Optional :class:`EndpointDegradation`; ``None`` on healthy nodes.
        self.degrade: Optional[EndpointDegradation] = None
        self._handlers: Dict[str, Callable] = {}
        # Insertion-ordered on purpose: killing in arrival order keeps crash
        # delivery deterministic (a set would iterate in id()-hash order,
        # which varies with heap state across runs in one process).
        self._live_processes: Dict[Any, None] = {}
        self.requests_served = 0
        network.endpoints[address] = self

    def register(self, method: str, handler: Callable) -> None:
        self._handlers[method] = handler

    def unregister_all(self) -> None:
        self._handlers.clear()

    def kill_processes(self) -> None:
        """Kill in-flight handler processes (node freeze/crash semantics)."""
        for proc in list(self._live_processes):
            proc.kill()
        self._live_processes.clear()

    # -- client side ---------------------------------------------------------

    def call(
        self,
        address: str,
        method: str,
        *args: Any,
        timeout: Optional[float] = None,
    ) -> Future:
        """Invoke ``method(*args)`` on the endpoint at ``address``.

        Returns a future that resolves with the handler's return value, or
        fails with :class:`RemoteError` (handler raised), :class:`RpcTimeout`
        (no response in ``timeout`` seconds) or :class:`RpcError` (unknown
        address).  A crashed callee never responds: with no timeout set the
        future simply never resolves, as in a real partitioned network.
        """
        sim = self.sim
        network = self.network
        # Constant-ish future name on purpose: the old f"rpc:{addr}.{method}"
        # built a fresh string per call on the hottest path in the tree.
        fut = Future(sim, name=method)
        target = network.endpoints.get(address)
        if target is None:
            fut.fail(RpcError(f"unknown RPC address {address!r}"))
            return fut
        if self.crashed:
            # A crashed caller sends nothing; mirror the callee-crash behaviour.
            if timeout is not None:
                sim.timer(timeout, _timeout_expired, fut, address, method)
            return fut

        pending = _PendingCall(
            fut, network, self.region, target.region, self.address, address
        )
        tracer = network.tracer
        if tracer is not None:
            pending.span = (
                tracer,
                tracer.begin(self.address, "rpc:" + method,
                             args={"to": address}),
            )
        if timeout is not None:
            # The pending call is its own cancellation token; the RpcTimeout
            # itself is only materialised if the timer actually fires (the
            # common case is a reply in time, where building the exception +
            # message string would be waste).
            sim.timer_token(timeout, pending, _timeout_expired, fut, address, method)

        network.deliver_addr(
            self.region, target.region, self.address, address,
            target._on_request, method, args, pending.reply,
        )
        return fut

    def cast(self, address: str, method: str, *args: Any) -> None:
        """One-way message: deliver and forget (no response, no failure)."""
        target = self.network.endpoints.get(address)
        if target is None or self.crashed:
            return
        self.network.deliver_addr(
            self.region, target.region, self.address, address,
            target._on_request, method, args, None,
        )

    # -- server side ---------------------------------------------------------

    def _on_request(
        self,
        method: str,
        args: tuple,
        reply: Optional[Callable[[Any, Optional[BaseException]], None]],
    ) -> None:
        degrade = self.degrade
        if degrade is not None:
            if degrade.drop_rate and degrade.rng.random() < degrade.drop_rate:
                return  # gray failure: request lost inside the node
            lag = degrade.sample_lag()
            if lag > 0.0:
                self.sim.timer(lag, self._serve, method, args, reply)
                return
        self._serve(method, args, reply)

    def _serve(
        self,
        method: str,
        args: tuple,
        reply: Optional[Callable[[Any, Optional[BaseException]], None]],
    ) -> None:
        if self.crashed:
            return  # dropped on the floor; the caller's timeout fires
        handler = self._handlers.get(method)
        if handler is None:
            if reply is not None:
                reply(None, RpcError(f"{self.address}: unknown method {method!r}"))
            return
        self.requests_served += 1
        sid = 0
        tracer = self.network.tracer
        if tracer is not None:
            tracer.count("rpc." + method)
            parent = 0
            if reply is not None:
                # The trace context rides the _PendingCall the bound reply
                # method belongs to (casts arrive with reply=None: no parent).
                sp = getattr(getattr(reply, "__self__", None), "span", None)
                if sp is not None:
                    parent = sp[1]
            sid = tracer.begin(self.address, "serve:" + method, parent=parent)
        try:
            result = handler(*args)
        except BaseException as exc:  # detlint: ok(DET108) — RPC serve trap: every handler failure is surfaced to the caller as RemoteError (and closes the trace span), never swallowed
            if sid:
                tracer.end(sid, {"error": type(exc).__name__})
            if reply is not None:
                reply(None, RemoteError(self.address, method, exc))
            return
        # Exact-type check (generators cannot be subclassed): cheaper than
        # inspect.isgenerator on the per-request path, and the non-generator
        # branch stays allocation-free — no Future, no Process spawn.
        if type(result) is not GeneratorType:
            if sid:
                tracer.end(sid)
            if reply is not None:
                reply(result, None)
            return
        proc = self.sim.spawn(
            result, name=f"{self.address}.{method}", daemon=True
        )
        self._live_processes[proc] = None

        def on_done(fut: Future) -> None:
            self._live_processes.pop(proc, None)
            if sid:
                exc = fut.exception
                tracer.end(
                    sid,
                    None if exc is None else {"error": type(exc).__name__},
                )
            if self.crashed:
                return  # crashed while handling; no response escapes
            if reply is None:
                if fut.exception is not None:
                    raise fut.exception  # one-way handler crashed: surface it
                return
            if fut.exception is not None:
                reply(None, RemoteError(self.address, method, fut.exception))
            else:
                reply(fut._value, None)

        proc.result.add_done_callback(on_done)


def _timeout_expired(fut: Future, address: str, method: str) -> None:
    if not fut._done:
        fut.fail(RpcTimeout(f"{address}.{method}"))
