"""Cluster orchestration: build, scale, fail, measure and price a database.

``Cluster`` wires the substrates together (storage per region, compute
nodes, a coordination runtime, clients) for any of the four mechanisms the
paper evaluates (marlin, zk-small, zk-large, fdb); ``MetricsCollector`` and
``CostModel`` implement the measurement methodology of §6.1.4-§6.1.5.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import (
    COORDINATION_KINDS,
    ClusterConfig,
    D4S_V3,
    D8S_V3,
    VmSpec,
)
from repro.cluster.cost import CostModel
from repro.cluster.metrics import MetricsCollector

__all__ = [
    "COORDINATION_KINDS",
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "D4S_V3",
    "D8S_V3",
    "MetricsCollector",
    "VmSpec",
]
