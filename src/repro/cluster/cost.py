"""Cost model (§6.1.5).

"The total system cost includes data-plane and control-plane costs.  DB Cost
accounts for computing servers ...; Meta Cost reflects coordination expenses.
Since Marlin eliminates the external coordination service, its Meta Cost is
zero."  Compute cost is the VM hourly rate integrated over node-seconds;
storage cost is excluded, as in the paper ("384x" cheaper than one VM-hour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["CostModel", "CostReport"]

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class CostReport:
    """Cost of one run, decomposed as in Figures 10b / 12b."""

    db_cost: float
    meta_cost: float
    committed: int
    duration: float

    @property
    def total(self) -> float:
        return self.db_cost + self.meta_cost

    @property
    def cost_per_million_txns(self) -> float:
        if self.committed == 0:
            return float("inf")
        return self.total / self.committed * 1e6

    @property
    def meta_fraction(self) -> float:
        return self.meta_cost / self.total if self.total else 0.0


class CostModel:
    """Prices a run from metrics plus the deployment's rate card."""

    def __init__(
        self,
        compute_hourly: float,
        coordination_hourly: float = 0.0,
        coordination_clusters: int = 1,
    ):
        self.compute_hourly = compute_hourly
        self.coordination_hourly = coordination_hourly
        self.coordination_clusters = coordination_clusters

    def price(self, metrics, duration: float) -> CostReport:
        db = metrics.node_seconds(duration) / SECONDS_PER_HOUR * self.compute_hourly
        meta = (
            duration
            / SECONDS_PER_HOUR
            * self.coordination_hourly
            * self.coordination_clusters
        )
        return CostReport(
            db_cost=db,
            meta_cost=meta,
            committed=metrics.total_committed,
            duration=duration,
        )

    def realtime_cost_series(self, metrics, until: float, bucket: float = 1.0):
        """Dollars per second over time (Figure 14b's realtime cost)."""
        # Appended in time order (MetricsCollector.record_node_count enforces
        # monotonicity), so no sort is needed.
        events = metrics.node_count_events or [(0.0, 0)]
        series = []
        t = 0.0
        index = 0
        count = events[0][1]
        while t <= until:
            while index + 1 < len(events) and events[index + 1][0] <= t:
                index += 1
                count = events[index][1]
            per_second = (
                count * self.compute_hourly
                + self.coordination_hourly * self.coordination_clusters
            ) / SECONDS_PER_HOUR
            series.append((t, per_second))
            t += bucket
        return series
