"""Deployment configuration: VM rate card, coordination kinds, presets.

Matches §6.1.1: compute nodes are Standard D4s v3 ($0.192/hour) in US West;
the ZooKeeper baselines run 3x D4s v3 (S-ZK, $0.597/hour for the cluster) or
3x D8s v3 (L-ZK, $1.173/hour); FDB runs on hardware comparable to S-ZK.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.coord.fdb import FDB_DEFAULT, FdbConfig
from repro.coord.lease import LEASE_DEFAULT, LeaseConfig
from repro.coord.zookeeper import ZK_LARGE, ZK_SMALL, ZkConfig
from repro.engine.node import NodeParams
from repro.engine.replication import ReplicationSpec

__all__ = [
    "COORDINATION_KINDS",
    "ClusterConfig",
    "D4S_V3",
    "D8S_V3",
    "VmSpec",
]


@dataclass(frozen=True)
class VmSpec:
    """An Azure VM flavor with its hourly rate."""

    name: str
    vcpus: int
    memory_gb: int
    network_gbps: int
    hourly_cost: float


D4S_V3 = VmSpec("Standard_D4s_v3", 4, 16, 2, 0.192)
D8S_V3 = VmSpec("Standard_D8s_v3", 8, 32, 4, 0.384)

#: The coordination mechanisms: the paper's §6 comparison (marlin, the two
#: ZooKeeper flavors, FDB) plus the lease/TTL backend (K8s Lease API style).
COORDINATION_KINDS = ("marlin", "zk-small", "zk-large", "fdb", "lease")


@dataclass
class ClusterConfig:
    """Everything needed to build one cluster for one experiment run."""

    coordination: str = "marlin"
    num_nodes: int = 4
    regions: Tuple[str, ...] = ("us-west",)
    #: Region hosting SysLog and any external coordination service (§6.5
    #: pins ZooKeeper and FDB in US West).
    home_region: str = "us-west"
    num_keys: int = 64_000
    keys_per_granule: int = 64
    node_vm: VmSpec = D4S_V3
    node_params: NodeParams = field(default_factory=NodeParams)
    zk_config: Optional[ZkConfig] = None
    fdb_config: FdbConfig = FDB_DEFAULT
    lease_config: LeaseConfig = LEASE_DEFAULT
    #: Failure detection, in every coordination mode: Marlin's ring detector
    #: with the SysLog vote gate (§4.4.2); zk/fdb the same ring detector
    #: confirmed against the service session; lease mode TTL expiry +
    #: CAS self-promotion (no peer probes).
    failure_detection: bool = False
    detector_interval: float = 0.5
    detector_timeout: float = 0.25
    detector_misses: int = 3
    #: Gate RecoveryMigrTxn on a suspicion vote (core/suspicion.py): a
    #: monitor that the refreshed MTable shows is itself suspected (or
    #: already fenced) stands down instead of fencing its ring successor
    #: through still-reachable storage.
    detector_vote_gate: bool = True
    #: Per-granule replica sets (``engine/replication.py``): None (default)
    #: builds a replication-free cluster whose seeded runs are byte-identical
    #: to the pre-replication goldens.  Marlin-only: the external baselines'
    #: exclusively-owned WALs have no TryLog seam to ship from.
    replication: Optional[ReplicationSpec] = None
    #: Simulated VM provisioning delay when scaling out.
    provision_delay: float = 0.0
    #: Storage-side latencies (Azure Append Blob / Table Storage class).
    storage_append_latency: float = 0.0012
    storage_read_latency: float = 0.0008
    metrics_bucket: float = 1.0
    seed: int = 1

    def __post_init__(self):
        if self.coordination not in COORDINATION_KINDS:
            raise ValueError(
                f"unknown coordination {self.coordination!r}; "
                f"expected one of {COORDINATION_KINDS}"
            )
        if self.zk_config is None:
            self.zk_config = ZK_LARGE if self.coordination == "zk-large" else ZK_SMALL
        if self.home_region not in self.regions:
            raise ValueError(
                f"home region {self.home_region!r} not in regions {self.regions}"
            )
        if self.replication is not None and self.coordination != "marlin":
            raise ValueError(
                "replication requires the marlin coordination mode "
                f"(got {self.coordination!r})"
            )

    @property
    def num_granules(self) -> int:
        return (self.num_keys + self.keys_per_granule - 1) // self.keys_per_granule

    @property
    def coordination_hourly(self) -> float:
        if self.coordination == "marlin":
            return 0.0
        if self.coordination == "fdb":
            return self.fdb_config.hourly_cost
        if self.coordination == "lease":
            return self.lease_config.hourly_cost
        return self.zk_config.hourly_cost

    def with_(self, **kwargs) -> "ClusterConfig":
        """A modified copy (keeps presets immutable in experiment sweeps)."""
        return replace(self, **kwargs)
