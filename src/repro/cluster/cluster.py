"""Cluster builder and reconfiguration driver.

Builds the full system for one experiment run — per-region storage services,
compute nodes with the chosen coordination runtime (marlin / zk-small /
zk-large / fdb), an admin endpoint for dispatching reconfigurations — and
exposes the operations the paper's scenarios need: ``scale_out``,
``scale_in``, ``fail_node`` and ground-truth introspection for invariant
checks.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.cost import CostModel
from repro.cluster.metrics import MetricsCollector
from repro.coord.external import ExternalRuntime, FdbClient, ZkClient
from repro.coord.fdb import FdbService
from repro.coord.lease import LeaseClient, LeaseService, lease_path
from repro.coord.zookeeper import ZooKeeperService
from repro.core.failure import LeaseFailureDetector, RingFailureDetector
from repro.core.runtime import MarlinRuntime
from repro.engine.granule import GranuleMap, contiguous_assignment, rebalance_plan
from repro.engine.node import (
    GTABLE,
    MTABLE,
    SYSLOG,
    ComputeNode,
    glog_name,
    node_address,
)
from repro.sim.core import Simulator, Timeout, all_of
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RpcEndpoint
from repro.storage.log import Put, RecordKind
from repro.storage.service import StorageService

__all__ = ["Cluster"]


def storage_address(region: str) -> str:
    return f"storage-{region}"


class Cluster:
    """One simulated deployment of the reference database."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.network = Network(self.sim, LatencyModel())
        self.metrics = MetricsCollector(bucket=config.metrics_bucket)
        self.gmap = GranuleMap(config.num_keys, config.keys_per_granule)
        self.cost_model = CostModel(
            compute_hourly=config.node_vm.hourly_cost,
            coordination_hourly=config.coordination_hourly,
        )

        self.storages: Dict[str, StorageService] = {}
        for region in config.regions:
            self.storages[region] = StorageService(
                self.sim,
                self.network,
                address=storage_address(region),
                region=region,
                append_latency=config.storage_append_latency,
                read_latency=config.storage_read_latency,
            )
        #: log name -> storage address; shared by every node (a log lives in
        #: the region of the node that created it; SysLog in the home region).
        self.log_directory: Dict[str, str] = {
            SYSLOG: storage_address(config.home_region)
        }

        self.service = None
        if config.coordination in ("zk-small", "zk-large"):
            self.service = ZooKeeperService(
                self.sim, self.network, config.zk_config,
                address="zk", region=config.home_region,
            )
        elif config.coordination == "fdb":
            self.service = FdbService(
                self.sim, self.network, config.fdb_config,
                address="fdb", region=config.home_region,
            )
        elif config.coordination == "lease":
            self.service = LeaseService(
                self.sim, self.network, config.lease_config,
                address="lease", region=config.home_region,
            )

        self.admin = RpcEndpoint(self.sim, self.network, "admin", config.home_region)
        self.nodes: Dict[int, ComputeNode] = {}
        #: node id -> its failure detector (RingFailureDetector or
        #: LeaseFailureDetector, by coordination mode).
        self.detectors: Dict[int, object] = {}
        #: Every detector ever started (fail_node pops ``detectors``; the
        #: always-on pipeline counters must survive that for aggregation).
        self._all_detectors: List[object] = []
        #: Optional :class:`repro.obs.Tracer`; install via ``attach_tracer``.
        self.tracer = None
        self._chaos = None
        self._next_node_id = 0
        self._last_assignment: Dict[int, int] = {}
        #: Set by workload drivers; read by the autoscaler.
        self.client_count = 0
        self.scale_events: List[dict] = []
        #: RecoveryReports from every ``restart_node(rejoin=True)`` pass.
        self.recovery_reports: List = []
        #: :class:`repro.engine.replication.ReplicaManager` when
        #: ``config.replication`` is set; None keeps every WAL path
        #: replication-free (byte-identical to pre-replication runs).
        self.replicas = None

        self._bootstrap()

    # -- construction -----------------------------------------------------------------

    def node_region(self, node_id: int) -> str:
        return self.config.regions[node_id % len(self.config.regions)]

    def _make_runtime(self):
        kind = self.config.coordination
        if kind == "marlin":
            return MarlinRuntime()
        if kind == "fdb":
            fdb = self.config.fdb_config
            return ExternalRuntime(
                FdbClient("fdb", fdb.client_overhead, fdb.session_pool)
            )
        if kind == "lease":
            lease = self.config.lease_config
            return ExternalRuntime(
                LeaseClient("lease", lease.client_overhead, lease.session_pool)
            )
        zk = self.config.zk_config
        return ExternalRuntime(ZkClient("zk", zk.client_overhead, zk.session_pool))

    def _make_node(self, node_id: int) -> ComputeNode:
        region = self.node_region(node_id)
        node = ComputeNode(
            self.sim,
            self.network,
            node_id,
            region,
            storage_address(region),
            self.gmap,
            params=self.config.node_params,
        )
        node.log_directory = self.log_directory
        self.log_directory[node.glog] = storage_address(region)
        self.storages[region].create_log(node.glog)
        node.lsn_tracker[node.glog] = 0
        node.view_cursor[node.glog] = 0
        runtime = self._make_runtime()
        runtime.attach(node)
        node.runtime = runtime
        node.metrics = self.metrics
        if self.tracer is not None:
            self._trace_node(node)
        self.nodes[node_id] = node
        if self.replicas is not None:
            # Scale-out nodes join the replica fabric as they are made;
            # bootstrap nodes are attached in one pass once all exist (so
            # seeded placement can draw followers from the full set).
            self.replicas.attach(node)
        return node

    def _bootstrap(self) -> None:
        config = self.config
        home = self.storages[config.home_region]
        home.create_log(SYSLOG)

        node_ids = []
        for _ in range(config.num_nodes):
            node_id = self._next_node_id
            self._next_node_id += 1
            self._make_node(node_id)
            node_ids.append(node_id)

        membership = tuple(
            Put(MTABLE, nid, node_address(nid)) for nid in node_ids
        )
        home.log(SYSLOG).append("bootstrap-membership", RecordKind.COMMIT_DATA, membership)
        syslog_lsn = home.log(SYSLOG).end_lsn

        assignment = contiguous_assignment(self.gmap.num_granules, node_ids)
        by_node: Dict[int, List[int]] = {nid: [] for nid in node_ids}
        for granule, owner in assignment.items():
            by_node[owner].append(granule)

        for nid in node_ids:
            node = self.nodes[nid]
            entries = tuple(Put(GTABLE, g, nid) for g in by_node[nid])
            log = self.storages[node.region].log(node.glog)
            log.append("bootstrap-gtable", RecordKind.COMMIT_DATA, entries)
            node.lsn_tracker[node.glog] = log.end_lsn
            node.view_cursor[node.glog] = log.end_lsn

        for nid in node_ids:
            node = self.nodes[nid]
            node.mtable = {m: node_address(m) for m in node_ids}
            node.gtable = dict(assignment)
            node.lsn_tracker[SYSLOG] = syslog_lsn
            node.view_cursor[SYSLOG] = syslog_lsn
            node.start()

        if config.replication is not None:
            from repro.engine.replication import ReplicaManager

            self.replicas = ReplicaManager(config.replication, self)
            for nid in node_ids:
                self.replicas.attach(self.nodes[nid])

        if self.service is not None:
            for nid in node_ids:
                self.service.data[f"/members/{nid}"] = node_address(nid)
            for granule, owner in assignment.items():
                self.service.data[f"/granules/{granule}"] = owner
        if config.coordination == "lease":
            # Seed every node's granule-group lease as held at t=0 (one TTL
            # of grace before the renew loops take over).
            for nid in node_ids:
                self.service.table.leases[lease_path(nid)] = (
                    nid, config.lease_config.ttl
                )

        if config.failure_detection:
            for nid in node_ids:
                self._start_detector(nid)

        self._last_assignment = dict(assignment)
        self.metrics.record_node_count(0.0, len(node_ids))

    def _start_detector(self, node_id: int) -> None:
        """Per-mode failure detection: Marlin's vote-gated ring; zk/fdb the
        same ring confirmed against the service session; lease mode TTL
        expiry + CAS self-promotion (no peer probes at all)."""
        config = self.config
        runtime = self.nodes[node_id].runtime
        if config.coordination == "marlin":
            detector = RingFailureDetector(
                runtime,
                interval=config.detector_interval,
                timeout=config.detector_timeout,
                miss_threshold=config.detector_misses,
                vote_gate=config.detector_vote_gate,
            )
        elif config.coordination == "lease":
            detector = LeaseFailureDetector(
                runtime,
                ttl=config.lease_config.ttl,
                renew_interval=config.lease_config.renew_interval,
                check_interval=config.detector_interval,
            )
        else:
            detector = RingFailureDetector(
                runtime,
                interval=config.detector_interval,
                timeout=config.detector_timeout,
                miss_threshold=config.detector_misses,
                vote_gate=False,
                session_gate=self.service.address,
                session_timeout=config.detector_misses * config.detector_interval,
            )
        detector.start()
        self.detectors[node_id] = detector
        self._all_detectors.append(detector)

    # -- observability ---------------------------------------------------------------

    def _trace_node(self, node: ComputeNode) -> None:
        node.tracer = self.tracer
        node.locks.tracer = self.tracer
        node.locks.track = node.address

    def attach_tracer(self, tracer) -> None:
        """Install a :class:`repro.obs.Tracer` on every injection point.

        Covers the network (RPC spans), every current node (txn / WAL /
        lock / migration spans); nodes added later by ``scale_out`` pick
        the tracer up in ``_make_node``.
        """
        self.tracer = tracer
        self.network.tracer = tracer
        for node in self.nodes.values():
            self._trace_node(node)

    def failure_detection_stats(self) -> Dict[str, object]:
        """Aggregate the always-on detector pipeline counters.

        Sums over every detector ever started (including ones since popped
        by ``fail_node`` / ``scale_in``): suspicions raised, gate
        stand-downs (rejections), failovers started, fencings committed,
        and the liveness-maintenance traffic (``renewal_rpcs``: ring
        heartbeats + session pings, or lease renews/acquires/scans).
        ``first_failover_s`` is the sim time the earliest confirmed
        failover began, or None if none did — detection latency is
        ``first_failover_s`` minus the fault's injection time.
        """
        stats = {
            "suspicions_raised": 0,
            "stand_downs": 0,
            "failovers_started": 0,
            "fencings_committed": 0,
            "renewal_rpcs": 0,
        }
        first: Optional[float] = None
        for detector in self._all_detectors:
            stats["suspicions_raised"] += detector.suspicions_raised
            stats["stand_downs"] += detector.stand_downs
            stats["failovers_started"] += detector.failovers_started
            stats["fencings_committed"] += detector.fencings_committed
            stats["renewal_rpcs"] += detector.renewal_rpcs
            started = detector.first_failover_at
            if started is not None and (first is None or started < first):
                first = started
        stats["first_failover_s"] = first
        return stats

    # -- introspection ---------------------------------------------------------------

    def live_node_ids(self) -> List[int]:
        return sorted(nid for nid, n in self.nodes.items() if not n.frozen)

    def assignment_from_views(self) -> Dict[int, int]:
        """Current granule->owner map from live nodes' authoritative views."""
        merged = dict(self._last_assignment)
        for nid in self.live_node_ids():
            for granule in self.nodes[nid].owned_granules():
                merged[granule] = nid
        self._last_assignment = merged
        return dict(merged)

    def ground_truth_gtable(self) -> Dict[int, int]:
        """Replayed GTable merged across all regions' page stores."""
        merged: Dict[int, int] = {}
        for storage in self.storages.values():
            merged.update(storage.pagestore.snapshot(GTABLE))
        return merged

    def ground_truth_mtable(self) -> Dict[int, str]:
        home = self.storages[self.config.home_region]
        return home.pagestore.snapshot(MTABLE)

    def all_logs(self) -> Dict[str, "object"]:
        """Every shared log across all regions, by name (invariant checks)."""
        merged: Dict[str, object] = {}
        for storage in self.storages.values():
            merged.update(storage.logs)
        return merged

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    def settle(self, delay: float = 0.05) -> None:
        """Run a little longer so replay and async decisions quiesce."""
        self.sim.run(until=self.sim.now + delay)

    # -- reconfiguration operations ------------------------------------------------------

    def scale_out(self, count: int) -> Generator:
        """Add ``count`` nodes and rebalance; returns a summary dict."""
        start = self.sim.now
        if self.config.provision_delay:
            yield Timeout(self.config.provision_delay)
        new_ids: List[int] = []
        for _ in range(count):
            node_id = self._next_node_id
            self._next_node_id += 1
            node = self._make_node(node_id)
            node.start()
            new_ids.append(node_id)

        snapshot = self.assignment_from_views()
        for node_id in new_ids:
            node = self.nodes[node_id]
            node.gtable.update(snapshot)
            ok = yield from node.runtime.add_node()
            if not ok:
                raise RuntimeError(f"AddNodeTxn failed for node {node_id}")
            if hasattr(node.runtime, "broadcast_sys_update"):
                node.runtime.broadcast_sys_update(
                    [Put(MTABLE, node_id, node.address)]
                )
            if self.config.failure_detection:
                self._start_detector(node_id)
        self.metrics.record_node_count(self.sim.now, len(self.live_node_ids()))

        moves = self._rebalance_moves(snapshot, self.live_node_ids())
        migrated = yield from self.dispatch_migrations(moves)
        summary = {
            "kind": "scale-out",
            "start": start,
            "duration": self.sim.now - start,
            "new_nodes": new_ids,
            "moves": len(moves),
            "migrated": migrated,
        }
        self.scale_events.append(summary)
        return summary

    def scale_in(self, victims: Sequence[int]) -> Generator:
        """Drain and remove ``victims``; returns a summary dict."""
        start = self.sim.now
        victims = list(victims)
        survivors = [n for n in self.live_node_ids() if n not in victims]
        if not survivors:
            raise ValueError("scale_in would remove every node")
        snapshot = self.assignment_from_views()
        moves = self._rebalance_moves(snapshot, survivors)
        moves = [m for m in moves if m[1] in victims]
        migrated = yield from self.dispatch_migrations(moves)
        for victim in victims:
            node = self.nodes[victim]
            yield from node.runtime.remove_node(victim)
            if hasattr(node.runtime, "broadcast_sys_update"):
                from repro.storage.log import Delete

                node.runtime.broadcast_sys_update([Delete(MTABLE, victim)])
            detector = self.detectors.pop(victim, None)
            node.stop()
        self.metrics.record_node_count(self.sim.now, len(self.live_node_ids()))
        summary = {
            "kind": "scale-in",
            "start": start,
            "duration": self.sim.now - start,
            "removed": victims,
            "moves": len(moves),
            "migrated": migrated,
        }
        self.scale_events.append(summary)
        return summary

    def _rebalance_moves(self, snapshot, targets) -> List[Tuple[int, int, int]]:
        """Plan rebalancing moves, kept region-local in geo deployments.

        §6.5: Marlin's distributed metadata management "inherently co-locates
        coordination with compute"; data stays in its region, so migrations
        never cross regions (the same constraint applies to the baselines'
        data path — only their coordination updates travel).
        """
        if len(self.config.regions) == 1:
            return rebalance_plan(snapshot, targets)
        moves: List[Tuple[int, int, int]] = []
        for region in self.config.regions:
            region_targets = [t for t in targets if self.node_region(t) == region]
            region_granules = {
                g: owner
                for g, owner in snapshot.items()
                if self.node_region(owner) == region
            }
            if region_targets and region_granules:
                moves.extend(rebalance_plan(region_granules, region_targets))
        return moves

    def dispatch_migrations(
        self, moves: Sequence[Tuple[int, int, int]]
    ) -> Generator:
        """Send ``(granule, src, dst)`` moves to their destinations in parallel."""
        by_dst: Dict[int, List[Tuple[int, int]]] = {}
        for granule, src, dst in moves:
            by_dst.setdefault(dst, []).append((granule, src))
        futs = [
            self.admin.call(node_address(dst), "run_migrations", tuple(batch))
            for dst, batch in sorted(by_dst.items())
        ]
        if not futs:
            return 0
        results = yield all_of(self.sim, futs)
        return sum(r["count"] for r in results)

    # -- failures -------------------------------------------------------------------------

    @property
    def chaos(self):
        """Lazily-built :class:`repro.chaos.ChaosController` for this cluster."""
        if self._chaos is None:
            from repro.chaos.controller import ChaosController

            self._chaos = ChaosController(self)
        return self._chaos

    def fail_node(self, node_id: int) -> None:
        """Freeze a node (the paper's unhealthy-node state, Figure 7)."""
        node = self.nodes[node_id]
        node.freeze()
        detector = self.detectors.pop(node_id, None)
        # Readers blocked on GetPage@LSN for appends this writer will now
        # never make must fail rather than wait forever (the appends that
        # did land keep replaying normally).
        storage = self.storages[node.region]
        log = storage.logs.get(node.glog)
        if log is not None:
            storage.replay.fail_waiters(node.glog, log.end_lsn)

    def resume_node(self, node_id: int) -> None:
        self.nodes[node_id].unfreeze()

    def restart_node(self, node_id: int, rejoin: bool = True) -> Generator:
        """Unfreeze ``node_id`` and (optionally) re-register it as a member.

        The node slept through an unknown amount of history, so before
        rejoining it refreshes the state it derives views from (its GLog and
        the SysLog) and re-runs AddNodeTxn — the sequence a recovered VM
        performs on boot.  A node that was never removed from MTable (no
        failover ran) just refreshes its caches.  Returns True once the node
        is a member again; ``rejoin=False`` only unfreezes (and returns
        False: the node serves stale state until it refreshes itself).
        """
        node = self.nodes[node_id]
        node.unfreeze()
        if not rejoin:
            self.metrics.record_node_count(self.sim.now, len(self.live_node_ids()))
            return False
        # Crash recovery first: scan our WAL, resolve every in-doubt branch
        # and re-resolve transactions we coordinated (core/recovery.py) —
        # this must precede the view refresh so prepared-but-undecided
        # records we wrote are settled before we act on them.
        report = yield from node.runtime.recover()
        if report is not None:
            self.recovery_reports.append(report)
        yield from node.runtime.handle_cas_failure(node.glog)
        yield from node.runtime.handle_cas_failure(SYSLOG)
        # External runtimes re-scan the service's authoritative views here
        # (a no-op for Marlin, whose CAS replay above already caught up):
        # a failover that completed while we were down moved our granules,
        # and both the stale ownership map and the membership test below
        # must reflect that.
        yield from node.runtime.refresh_views()
        if node_id in node.mtable:
            ok = True  # still a member: nobody fenced us while we were down
        else:
            ok = yield from node.runtime.add_node()
            if ok and hasattr(node.runtime, "broadcast_sys_update"):
                node.runtime.broadcast_sys_update(
                    [Put(MTABLE, node_id, node.address)]
                )
        if (
            ok
            and self.config.failure_detection
            and node_id not in self.detectors
        ):
            self._start_detector(node_id)
        self.metrics.record_node_count(self.sim.now, len(self.live_node_ids()))
        return ok

    def price(self, duration: Optional[float] = None):
        d = self.sim.now if duration is None else duration
        return self.cost_model.price(self.metrics, d)
