"""Time-bucketed measurement of throughput, latency, aborts, reconfigurations.

Implements the paper's methodology (§6.1.4): throughput and latency are
reported for committed transactions; abort ratio is aborts over attempts per
time bucket; migration progress is tracked so "migration duration" (first to
last MigrationTxn commit) can be reported per run.

Hot-path design: the ``record_*`` hooks run once per simulated transaction,
so they are O(1) with no numpy and no per-sample Python object retention —
latency samples stream into packed ``array.array`` buffers (value + bucket
index) and bucket counters are plain int dicts.  The derived ``*_series``
/ ``*_stats`` views do the numpy work once and memoise the result until the
next record invalidates it.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Shared collector; clients and nodes call the ``record_*`` hooks."""

    def __init__(self, bucket: float = 1.0):
        self.bucket = bucket
        self.committed: Dict[int, int] = defaultdict(int)
        self.aborted: Dict[int, int] = defaultdict(int)
        self.abort_reasons: Dict[str, int] = defaultdict(int)
        self.migrations: Dict[int, int] = defaultdict(int)
        #: Streaming latency store: packed doubles plus parallel bucket ids.
        self._lat_values = array("d")
        self._lat_buckets = array("q")
        self._max_lat_bucket = -1
        self.migration_latencies = array("d")
        self._migration_lat_buckets = array("q")
        #: Replication probes, one sample per completed failover promotion:
        #: acked-but-lost WAL bytes (RPO) and suspicion-to-serving seconds
        #: (RTO).  Empty in replication-off runs — the probes then report
        #: value=None, never a vacuous 0.0.
        self.rpo_samples = array("d")
        self._rpo_buckets = array("q")
        self.rto_samples = array("d")
        self._rto_buckets = array("q")
        self.failovers: List[Tuple[float, int, int]] = []
        #: (time, node_count) step function for realtime cost integration;
        #: appended in nondecreasing time order (enforced by record_node_count).
        self.node_count_events: List[Tuple[float, int]] = []
        self.first_migration: Optional[float] = None
        self.last_migration: Optional[float] = None
        self.total_committed = 0
        self.total_aborted = 0
        self.total_migrations = 0
        self._version = 0
        self._cache_version = 0
        self._cache: Dict[tuple, object] = {}

    def _bucket(self, t: float) -> int:
        return int(t // self.bucket)

    # -- recording hooks ---------------------------------------------------------

    def record_commit(self, t: float, latency: float) -> None:
        b = int(t // self.bucket)
        self.committed[b] += 1
        self._lat_values.append(latency)
        self._lat_buckets.append(b)
        if b > self._max_lat_bucket:
            self._max_lat_bucket = b
        self.total_committed += 1
        self._version += 1

    def record_abort(self, t: float, reason: str = "unknown") -> None:
        self.aborted[int(t // self.bucket)] += 1
        self.abort_reasons[reason] += 1
        self.total_aborted += 1
        self._version += 1

    def record_migration(self, t: float, latency: Optional[float] = None) -> None:
        self.migrations[self._bucket(t)] += 1
        self.total_migrations += 1
        if self.first_migration is None or t < self.first_migration:
            self.first_migration = t
        if self.last_migration is None or t > self.last_migration:
            self.last_migration = t
        if latency is not None:
            self.migration_latencies.append(latency)
            self._migration_lat_buckets.append(self._bucket(t))
        self._version += 1

    def record_failover(self, t: float, dead_id: int, granules: int) -> None:
        self.failovers.append((t, dead_id, granules))

    def record_rpo(self, t: float, nbytes: float) -> None:
        """Acked-but-lost WAL bytes measured at one failover promotion."""
        self.rpo_samples.append(nbytes)
        self._rpo_buckets.append(self._bucket(t))
        self._version += 1

    def record_rto(self, t: float, seconds: float) -> None:
        """Suspicion-to-first-serving latency of one failover promotion."""
        self.rto_samples.append(seconds)
        self._rto_buckets.append(self._bucket(t))
        self._version += 1

    def record_node_count(self, t: float, count: int) -> None:
        events = self.node_count_events
        if events and t < events[-1][0]:
            raise ValueError(
                f"node-count event at t={t} arrived after t={events[-1][0]}; "
                "record_node_count requires nondecreasing times"
            )
        events.append((t, count))

    def __getstate__(self):
        # Collectors cross process boundaries in parallel sweeps; the memo
        # cache holds numpy views over the packed buffers, so drop it rather
        # than ship (or deep-copy) derived data.
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    # -- back-compat view --------------------------------------------------------

    @property
    def latencies(self) -> Dict[int, List[float]]:
        """Per-bucket latency samples, materialised from the streaming store.

        Cold-path convenience only; the collector no longer keeps per-bucket
        Python lists internally.  Memoised — per-window SLO probes read it
        once per sub-window; treat the returned dict as read-only.
        """

        def build():
            out: Dict[int, List[float]] = defaultdict(list)
            for b, value in zip(self._lat_buckets, self._lat_values):
                out[b].append(value)
            return out

        return self._cached(("lat-buckets",), build)

    # -- derived series ------------------------------------------------------------

    def _cached(self, key: tuple, builder):
        # The whole cache is dropped on the first lookup after any record,
        # so stale entries (e.g. for superseded ``until`` values) never pile
        # up across a long run.
        if self._cache_version != self._version:
            self._cache.clear()
            self._cache_version = self._version
        hit = self._cache.get(key)
        if hit is None:
            hit = self._cache[key] = builder()
        return hit

    def _series(self, counters: Dict[int, int], until: float) -> List[Tuple[float, float]]:
        last = max(int(until // self.bucket), max(counters, default=0))
        return [
            (b * self.bucket, counters.get(b, 0) / self.bucket)
            for b in range(0, last + 1)
        ]

    def throughput_series(self, until: float) -> List[Tuple[float, float]]:
        """Committed transactions per second, per bucket."""
        return self._cached(
            ("tput", until), lambda: self._series(self.committed, until)
        )

    def migration_series(self, until: float) -> List[Tuple[float, float]]:
        return self._cached(
            ("migr", until), lambda: self._series(self.migrations, until)
        )

    def abort_ratio_series(self, until: float) -> List[Tuple[float, float]]:
        """Aborts / attempts per bucket (the paper's Abort Ratio axis)."""
        return self._cached(
            ("abort", until), lambda: self._abort_ratio_series(until)
        )

    def _abort_ratio_series(self, until: float) -> List[Tuple[float, float]]:
        last = max(
            int(until // self.bucket),
            max(self.committed, default=0),
            max(self.aborted, default=0),
        )
        out = []
        for b in range(0, last + 1):
            commits = self.committed.get(b, 0)
            aborts = self.aborted.get(b, 0)
            total = commits + aborts
            out.append((b * self.bucket, aborts / total if total else 0.0))
        return out

    def _bucketed_latencies(self) -> Tuple[np.ndarray, np.ndarray]:
        """Latency samples sorted by bucket id: (sorted buckets, values)."""

        def build():
            buckets = np.frombuffer(self._lat_buckets, dtype=np.int64)
            values = np.frombuffer(self._lat_values, dtype=np.float64)
            order = np.argsort(buckets, kind="stable")
            return buckets[order], values[order]

        return self._cached(("lat-grouped",), build)

    def latency_series(self, until: float, pct: float = 50.0) -> List[Tuple[float, float]]:
        return self._cached(
            ("lat", until, pct), lambda: self._latency_series(until, pct)
        )

    def _latency_series(self, until: float, pct: float) -> List[Tuple[float, float]]:
        last = max(int(until // self.bucket), self._max_lat_bucket)
        if not self._lat_values:
            return [(b * self.bucket, 0.0) for b in range(0, last + 1)]
        buckets, values = self._bucketed_latencies()
        starts = np.searchsorted(buckets, np.arange(0, last + 2))
        out = []
        for b in range(0, last + 1):
            lo, hi = starts[b], starts[b + 1]
            point = float(np.percentile(values[lo:hi], pct)) if hi > lo else 0.0
            out.append((b * self.bucket, point))
        return out

    # -- summary statistics ----------------------------------------------------------

    @property
    def migration_duration(self) -> float:
        """First-to-last migration commit (the paper's migration duration)."""
        if self.first_migration is None or self.last_migration is None:
            return 0.0
        return self.last_migration - self.first_migration

    def migration_latency_buckets(self) -> Dict[int, List[float]]:
        """Per-bucket migration latencies (windowed SLO probes read this).

        Memoised — series probes call it once per sub-window.  Treat the
        returned dict as read-only.
        """

        def build():
            out: Dict[int, List[float]] = defaultdict(list)
            pairs = zip(self._migration_lat_buckets, self.migration_latencies)
            for b, value in pairs:
                out[b].append(value)
            return out

        return self._cached(("migr-lat-buckets",), build)

    def rpo_buckets(self) -> Dict[int, List[float]]:
        """Per-bucket RPO samples (windowed probes read this; memoised)."""

        def build():
            out: Dict[int, List[float]] = defaultdict(list)
            for b, value in zip(self._rpo_buckets, self.rpo_samples):
                out[b].append(value)
            return out

        return self._cached(("rpo-buckets",), build)

    def rto_buckets(self) -> Dict[int, List[float]]:
        """Per-bucket RTO samples (windowed probes read this; memoised)."""

        def build():
            out: Dict[int, List[float]] = defaultdict(list)
            for b, value in zip(self._rto_buckets, self.rto_samples):
                out[b].append(value)
            return out

        return self._cached(("rto-buckets",), build)

    def migration_latency_stats(self) -> Dict[str, float]:
        if not self.migration_latencies:
            return {"mean": 0.0, "p50": 0.0, "p99": 0.0}
        arr = np.frombuffer(self.migration_latencies, dtype=np.float64)
        return {
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
        }

    def latency_stats(self) -> Dict[str, float]:
        if not self._lat_values:
            return {"mean": 0.0, "p50": 0.0, "p99": 0.0}
        arr = np.frombuffer(self._lat_values, dtype=np.float64)
        return {
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
        }

    def abort_ratio(self) -> float:
        total = self.total_committed + self.total_aborted
        return self.total_aborted / total if total else 0.0

    def node_seconds(self, until: float) -> float:
        """Integral of the node-count step function over [0, until].

        ``node_count_events`` is append-only in time order (see
        :meth:`record_node_count`), so no sort is needed here.
        """
        events = self.node_count_events
        if not events:
            return 0.0
        area = 0.0
        for (t0, n0), (t1, _n1) in zip(events, events[1:]):
            area += n0 * (min(t1, until) - min(t0, until))
        last_t, last_n = events[-1]
        if until > last_t:
            area += last_n * (until - last_t)
        return area
