"""Time-bucketed measurement of throughput, latency, aborts, reconfigurations.

Implements the paper's methodology (§6.1.4): throughput and latency are
reported for committed transactions; abort ratio is aborts over attempts per
time bucket; migration progress is tracked so "migration duration" (first to
last MigrationTxn commit) can be reported per run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Shared collector; clients and nodes call the ``record_*`` hooks."""

    def __init__(self, bucket: float = 1.0):
        self.bucket = bucket
        self.committed: Dict[int, int] = defaultdict(int)
        self.aborted: Dict[int, int] = defaultdict(int)
        self.abort_reasons: Dict[str, int] = defaultdict(int)
        self.migrations: Dict[int, int] = defaultdict(int)
        self.latencies: Dict[int, List[float]] = defaultdict(list)
        self.migration_latencies: List[float] = []
        self.failovers: List[Tuple[float, int, int]] = []
        #: (time, node_count) step function for realtime cost integration.
        self.node_count_events: List[Tuple[float, int]] = []
        self.first_migration: Optional[float] = None
        self.last_migration: Optional[float] = None
        self.total_committed = 0
        self.total_aborted = 0
        self.total_migrations = 0

    def _bucket(self, t: float) -> int:
        return int(t // self.bucket)

    # -- recording hooks ---------------------------------------------------------

    def record_commit(self, t: float, latency: float) -> None:
        self.committed[self._bucket(t)] += 1
        self.latencies[self._bucket(t)].append(latency)
        self.total_committed += 1

    def record_abort(self, t: float, reason: str = "unknown") -> None:
        self.aborted[self._bucket(t)] += 1
        self.abort_reasons[reason] += 1
        self.total_aborted += 1

    def record_migration(self, t: float, latency: Optional[float] = None) -> None:
        self.migrations[self._bucket(t)] += 1
        self.total_migrations += 1
        if self.first_migration is None or t < self.first_migration:
            self.first_migration = t
        if self.last_migration is None or t > self.last_migration:
            self.last_migration = t
        if latency is not None:
            self.migration_latencies.append(latency)

    def record_failover(self, t: float, dead_id: int, granules: int) -> None:
        self.failovers.append((t, dead_id, granules))

    def record_node_count(self, t: float, count: int) -> None:
        self.node_count_events.append((t, count))

    # -- derived series ------------------------------------------------------------

    def _series(self, counters: Dict[int, int], until: float) -> List[Tuple[float, float]]:
        last = max(int(until // self.bucket), max(counters, default=0))
        return [
            (b * self.bucket, counters.get(b, 0) / self.bucket)
            for b in range(0, last + 1)
        ]

    def throughput_series(self, until: float) -> List[Tuple[float, float]]:
        """Committed transactions per second, per bucket."""
        return self._series(self.committed, until)

    def migration_series(self, until: float) -> List[Tuple[float, float]]:
        return self._series(self.migrations, until)

    def abort_ratio_series(self, until: float) -> List[Tuple[float, float]]:
        """Aborts / attempts per bucket (the paper's Abort Ratio axis)."""
        last = max(
            int(until // self.bucket),
            max(self.committed, default=0),
            max(self.aborted, default=0),
        )
        out = []
        for b in range(0, last + 1):
            commits = self.committed.get(b, 0)
            aborts = self.aborted.get(b, 0)
            total = commits + aborts
            out.append((b * self.bucket, aborts / total if total else 0.0))
        return out

    def latency_series(self, until: float, pct: float = 50.0) -> List[Tuple[float, float]]:
        last = max(int(until // self.bucket), max(self.latencies, default=0))
        out = []
        for b in range(0, last + 1):
            samples = self.latencies.get(b, [])
            out.append(
                (b * self.bucket, float(np.percentile(samples, pct)) if samples else 0.0)
            )
        return out

    # -- summary statistics ----------------------------------------------------------

    @property
    def migration_duration(self) -> float:
        """First-to-last migration commit (the paper's migration duration)."""
        if self.first_migration is None or self.last_migration is None:
            return 0.0
        return self.last_migration - self.first_migration

    def migration_latency_stats(self) -> Dict[str, float]:
        if not self.migration_latencies:
            return {"mean": 0.0, "p50": 0.0, "p99": 0.0}
        arr = np.asarray(self.migration_latencies)
        return {
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
        }

    def latency_stats(self) -> Dict[str, float]:
        samples = [x for chunk in self.latencies.values() for x in chunk]
        if not samples:
            return {"mean": 0.0, "p50": 0.0, "p99": 0.0}
        arr = np.asarray(samples)
        return {
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
        }

    def abort_ratio(self) -> float:
        total = self.total_committed + self.total_aborted
        return self.total_aborted / total if total else 0.0

    def node_seconds(self, until: float) -> float:
        """Integral of the node-count step function over [0, until]."""
        if not self.node_count_events:
            return 0.0
        events = sorted(self.node_count_events)
        area = 0.0
        for (t0, n0), (t1, _n1) in zip(events, events[1:]):
            area += n0 * (min(t1, until) - min(t0, until))
        last_t, last_n = events[-1]
        if until > last_t:
            area += last_n * (until - last_t)
        return area
