"""Validate a Chrome trace-event JSON file: ``python -m repro.obs TRACE.json``.

Exit codes: 0 valid, 1 unreadable, 2 schema violations (printed).
Prints a one-line digest (event/track/span counts) on success — the CI
trace-smoke job greps this.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import validate_chrome_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate a Chrome trace-event JSON file.",
    )
    parser.add_argument("trace", help="path to a --trace output file")
    args = parser.parse_args(argv)
    try:
        with open(args.trace, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"unreadable trace {args.trace}: {exc}", file=sys.stderr)
        return 1
    errors = validate_chrome_trace(data)
    if errors:
        for err in errors:
            print(f"schema: {err}", file=sys.stderr)
        return 2
    events = data["traceEvents"]
    spans = sum(1 for ev in events if ev.get("ph") == "X")
    tracks = sum(
        1 for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "thread_name"
    )
    print(f"trace ok: {len(events)} events, {spans} spans, {tracks} tracks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
