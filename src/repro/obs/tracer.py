"""Deterministic span tracer + per-track flight recorder.

Design constraints (see OBSERVABILITY.md):

* **Keyed by sim time only.**  Every event carries ``sim.now`` — no wall
  clock, no RNG, no ``id()``-derived identifiers.  Two identically-seeded
  runs with tracing ON produce byte-identical traces.
* **Purely observational.**  Recording is a synchronous list append: the
  tracer never spawns processes, arms timers or touches the simulator's
  RNG, so enabling tracing does not perturb the event stream — a traced
  seeded run executes the exact same schedule as an untraced one.
* **Zero overhead when off.**  Call sites hold a ``tracer`` attribute that
  defaults to ``None`` and guard with a single ``if tracer is not None``,
  the same idiom as the chaos hooks (``fault_point``) and
  ``node.metrics``.

Span model
----------

A *span* is an interval on a *track* (one track per node / storage /
detector / chaos controller, keyed by RPC address).  ``begin`` returns an
integer span id (0 = "not recorded", accepted everywhere as a no-op
handle, so filtered-out spans cost nothing downstream); ``end`` closes
it.  ``instant`` records a point event (FSM edges, chaos inject/clear,
fault-point fires).  Parent links are explicit — propagated through the
RPC ``_PendingCall`` path and transaction contexts — because sim
processes interleave on one interpreter thread, so an ambient
"current span" stack would attribute children to the wrong parent.

The *flight recorder* is a bounded per-track ring (``ring_size`` most
recent events) consulted by :mod:`repro.obs.forensics` when an invariant
check fails: the tail of each ring is a causal timeline of what the node
did last.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TraceData", "Tracer", "span_summary"]


@dataclass
class TraceData:
    """Picklable snapshot of a finished trace.

    This is what crosses the process-pool boundary inside
    ``PortableRunResult`` and what the exporters consume.  Event tuples:

    * ``("B", sid, parent, track, name, t, args)`` — span begin
    * ``("E", sid, t, args)`` — span end
    * ``("I", track, name, t, args)`` — instant event
    """

    events: List[tuple] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    #: track -> most recent ring entries ``(t, kind, name, detail)``.
    rings: Dict[str, List[tuple]] = field(default_factory=dict)
    #: spans never closed (timeouts, crashes): sid -> (track, name, t0).
    open_spans: Dict[int, tuple] = field(default_factory=dict)
    #: sim time at detach — exporters close dangling spans here.
    end_time: float = 0.0


class Tracer:
    """Records spans/instants/counters synchronously, keyed by sim time."""

    __slots__ = (
        "sim", "events", "counters", "prefixes", "ring_size", "rings",
        "_open", "_next_id",
    )

    def __init__(self, sim, ring_size: int = 256,
                 prefixes: Optional[Sequence[str]] = None):
        self.sim = sim
        self.events: List[tuple] = []
        self.counters: Dict[str, float] = {}
        #: Optional name-prefix filter: spans/instants whose name does not
        #: start with one of these are dropped (counters are unaffected).
        self.prefixes: Optional[Tuple[str, ...]] = (
            tuple(prefixes) if prefixes else None
        )
        self.ring_size = ring_size
        self.rings: Dict[str, deque] = {}
        self._open: Dict[int, tuple] = {}
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    def begin(self, track: str, name: str, parent: int = 0,
              args: Optional[dict] = None) -> int:
        """Open a span; returns its id (0 if filtered out — a no-op handle)."""
        p = self.prefixes
        if p is not None and not name.startswith(p):
            return 0
        sid = self._next_id
        self._next_id = sid + 1
        t = self.sim.now
        self.events.append(("B", sid, parent, track, name, t, args))
        self._open[sid] = (track, name, t)
        self._ring(track).append((t, "begin", name, args))
        return sid

    def end(self, sid: int, args: Optional[dict] = None) -> None:
        """Close a span opened by :meth:`begin`. ``end(0)`` is a no-op."""
        if not sid:
            return
        t = self.sim.now
        self.events.append(("E", sid, t, args))
        opened = self._open.pop(sid, None)
        if opened is not None:
            self._ring(opened[0]).append((t, "end", opened[1], args))

    def instant(self, track: str, name: str,
                args: Optional[dict] = None) -> None:
        """Record a point event on ``track``."""
        p = self.prefixes
        if p is not None and not name.startswith(p):
            return
        t = self.sim.now
        self.events.append(("I", track, name, t, args))
        self._ring(track).append((t, "instant", name, args))

    def count(self, key: str, delta: float = 1) -> None:
        """Bump a counter in the structured counters registry."""
        c = self.counters
        c[key] = c.get(key, 0) + delta

    def _ring(self, track: str) -> deque:
        ring = self.rings.get(track)
        if ring is None:
            ring = self.rings[track] = deque(maxlen=self.ring_size)
        return ring

    # -- snapshot ----------------------------------------------------------

    def detach(self) -> TraceData:
        """Freeze the trace into a picklable :class:`TraceData`.

        The tracer drops its simulator reference implicitly (the snapshot
        carries plain data only), so the result crosses process-pool and
        cache boundaries.
        """
        return TraceData(
            events=self.events,
            counters=dict(self.counters),
            rings={track: list(ring) for track, ring in self.rings.items()},
            open_spans=dict(self._open),
            end_time=self.sim.now,
        )


def span_summary(trace: TraceData) -> Dict[str, dict]:
    """Aggregate total duration + count per span name.

    Dangling spans (never closed — timeouts, crashed nodes) are counted
    with ``end_time`` as their close, so time lost in a crash window is
    visible rather than silently dropped.
    """
    ends: Dict[int, float] = {}
    for ev in trace.events:
        if ev[0] == "E":
            ends[ev[1]] = ev[2]
    agg: Dict[str, List[float]] = {}
    for ev in trace.events:
        if ev[0] != "B":
            continue
        _, sid, _parent, _track, name, t0, _args = ev
        t1 = ends.get(sid, trace.end_time)
        cell = agg.get(name)
        if cell is None:
            cell = agg[name] = [0, 0.0]
        cell[0] += 1
        cell[1] += t1 - t0
    return {
        name: {"count": cell[0], "total_s": cell[1]}
        for name, cell in sorted(agg.items())
    }
