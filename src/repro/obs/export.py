"""Trace exporters: Chrome trace-event JSON (Perfetto-loadable) + validation.

The exporter emits the JSON *object* flavour of the trace-event format —
``{"traceEvents": [...]}`` — which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  One thread track per sim track
(node / storage / detector / chaos), named via ``"M"`` metadata events.
Sim seconds map to trace microseconds, so a 3.5 s simulated run renders
as a 3.5 s timeline.

Everything is deterministic: track ids come from sorted track names,
events keep their recorded order, and serialisation uses sorted keys and
fixed separators — two identically-seeded traced runs produce
byte-identical files (CI asserts this).
"""

from __future__ import annotations

import json
from typing import List

from repro.obs.tracer import TraceData

__all__ = ["chrome_trace", "trace_json", "validate_chrome_trace",
           "write_chrome_trace"]

#: Single sim process: every track is a thread of one synthetic process.
_PID = 1

_ALLOWED_PH = {"B", "E", "X", "i", "I", "M", "C"}


def _us(t: float) -> float:
    """Sim seconds -> trace microseconds (rounded to 1/1000 µs)."""
    return round(t * 1e6, 3)


def chrome_trace(trace: TraceData) -> dict:
    """Build the Chrome trace-event JSON object for ``trace``.

    Spans become ``"X"`` (complete) events at their begin time; spans
    still open at detach (timeouts, crash windows) are closed at
    ``trace.end_time`` and flagged ``"open": 1`` so dangling work is
    visible in the timeline rather than dropped.
    """
    tracks = set(trace.rings)
    for ev in trace.events:
        tracks.add(ev[3] if ev[0] == "B" else ev[1] if ev[0] == "I" else None)
    tracks.discard(None)
    tids = {track: i + 1 for i, track in enumerate(sorted(tracks))}

    out: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro-sim"},
    }]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": track},
        })

    ends = {}
    for ev in trace.events:
        if ev[0] == "E":
            ends[ev[1]] = ev
    for ev in trace.events:
        kind = ev[0]
        if kind == "B":
            _, sid, parent, track, name, t0, args = ev
            end_ev = ends.get(sid)
            merged = {"span": sid, "parent": parent}
            if args:
                merged.update(args)
            if end_ev is not None:
                t1 = end_ev[2]
                if end_ev[3]:
                    merged.update(end_ev[3])
            else:
                t1 = trace.end_time
                merged["open"] = 1
            out.append({
                "name": name, "cat": name.partition(":")[0].partition(".")[0],
                "ph": "X", "pid": _PID, "tid": tids[track],
                "ts": _us(t0), "dur": _us(t1 - t0), "args": merged,
            })
        elif kind == "I":
            _, track, name, t, args = ev
            out.append({
                "name": name, "cat": name.partition(":")[0].partition(".")[0],
                "ph": "i", "s": "t", "pid": _PID, "tid": tids[track],
                "ts": _us(t), "args": dict(args) if args else {},
            })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"counters": dict(sorted(trace.counters.items()))},
    }


def trace_json(trace: TraceData) -> str:
    """Canonical (byte-stable) JSON serialisation of the Chrome trace."""
    return json.dumps(
        chrome_trace(trace), sort_keys=True, separators=(",", ":")
    ) + "\n"


def write_chrome_trace(trace: TraceData, path) -> str:
    """Write the canonical Chrome trace JSON to ``path``; returns the blob."""
    blob = trace_json(trace)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(blob)
    return blob


def validate_chrome_trace(data) -> List[str]:
    """Schema-check a loaded trace JSON object; returns error strings.

    Checks the subset of the trace-event format Perfetto relies on:
    top-level shape, per-event required fields by phase, and that every
    thread track referenced by a span/instant carries a ``thread_name``
    metadata event (the "one track per node" contract).
    """
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]
    named_tids = set()
    used_tids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _ALLOWED_PH:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing/non-string name")
        if not isinstance(ev.get("pid"), int) or not isinstance(
                ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            args = ev.get("args")
            if ev.get("name") == "thread_name":
                if not (isinstance(args, dict)
                        and isinstance(args.get("name"), str)):
                    errors.append(f"{where}: thread_name needs args.name")
                else:
                    named_tids.add(ev["tid"])
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs non-negative dur")
        used_tids.add(ev["tid"])
    for tid in sorted(used_tids - named_tids):
        errors.append(f"tid {tid} has events but no thread_name metadata")
    return errors
