"""Deterministic observability: tracing, flight recorder, exporters.

See OBSERVABILITY.md for the span model and how the pieces connect:

* :class:`Tracer` / :class:`TraceData` — sim-time span recorder with a
  structured counters registry and bounded per-track flight-recorder
  rings (:mod:`repro.obs.tracer`);
* Chrome trace-event export + schema validation
  (:mod:`repro.obs.export`), also runnable as
  ``python -m repro.obs TRACE.json``;
* assertion forensics (:mod:`repro.obs.forensics`).
"""

from repro.obs.export import (
    chrome_trace,
    trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.forensics import (
    fault_log_lines,
    flight_recorder_lines,
    forensic_report,
    forensics,
)
from repro.obs.tracer import TraceData, Tracer, span_summary

__all__ = [
    "TraceData",
    "Tracer",
    "chrome_trace",
    "fault_log_lines",
    "flight_recorder_lines",
    "forensic_report",
    "forensics",
    "span_summary",
    "trace_json",
    "validate_chrome_trace",
    "write_chrome_trace",
]
