"""Failure forensics: flight-recorder + fault-log timelines on assert.

Turns a bare "invariant violated at quiescence" into a causal timeline.
Wrap invariant checks in :func:`forensics`; when an
:class:`~repro.core.invariants.InvariantViolation` (or any assertion)
escapes, the re-raised error carries:

* the chaos controller's ``fault_log`` (every inject/clear with sim time),
* the tail of every per-track flight-recorder ring (the last N span
  events each node recorded before the check ran — FSM edges, fault-point
  fires, WAL appends, RPC serves).

Both sources are optional: with no chaos controller and no tracer the
report says so instead of silently attaching nothing, so a test author
knows to enable tracing to get the timeline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.core.invariants import InvariantViolation

__all__ = [
    "fault_log_lines",
    "flight_recorder_lines",
    "forensic_report",
    "forensics",
]


def _fmt_args(args) -> str:
    if not args:
        return ""
    return " " + " ".join(f"{k}={args[k]}" for k in sorted(args))


def flight_recorder_lines(tracer, tail: Optional[int] = None) -> List[str]:
    """Render every flight-recorder ring as ``time kind name`` lines.

    ``tracer`` may be a live :class:`~repro.obs.tracer.Tracer` or a
    detached :class:`~repro.obs.tracer.TraceData` — both expose ``rings``.
    """
    lines: List[str] = []
    for track in sorted(tracer.rings):
        entries = list(tracer.rings[track])
        if tail is not None:
            entries = entries[-tail:]
        lines.append(f"-- flight recorder [{track}] "
                     f"(last {len(entries)} events) --")
        for t, kind, name, args in entries:
            lines.append(f"  {t:>12.6f}  {kind:<7} {name}{_fmt_args(args)}")
    return lines


def fault_log_lines(chaos) -> List[str]:
    """Render a :class:`ChaosController` ``fault_log`` as timeline lines."""
    lines = [f"-- chaos fault log ({len(chaos.fault_log)} entries) --"]
    for t, phase, event in chaos.fault_log:
        lines.append(f"  {t:>12.6f}  {phase:<7} {event!r}")
    return lines


def forensic_report(cluster, tail: Optional[int] = 40) -> str:
    """Build the combined timeline for ``cluster`` (may be multi-line '')."""
    lines: List[str] = ["=== forensics ==="]
    chaos = getattr(cluster, "_chaos", None)
    if chaos is not None and chaos.fault_log:
        lines.extend(fault_log_lines(chaos))
    tracer = getattr(cluster, "tracer", None)
    if tracer is not None:
        lines.extend(flight_recorder_lines(tracer, tail=tail))
    else:
        lines.append("(tracing off — attach a Tracer / set TraceSpec for a "
                     "flight-recorder timeline)")
    return "\n".join(lines)


@contextmanager
def forensics(cluster, tail: Optional[int] = 40):
    """Context manager: annotate escaping assertions with the timeline.

    Re-raises the same exception class (``InvariantViolation`` stays an
    ``InvariantViolation``) with the forensic report appended to the
    message, chaining the original for the traceback.
    """
    try:
        yield
    except AssertionError as exc:
        cls = InvariantViolation if isinstance(exc, InvariantViolation) \
            else AssertionError
        raise cls(f"{exc}\n{forensic_report(cluster, tail=tail)}") from exc
