"""Write-ahead logs with conditional append (*Append@LSN*, §4.3.1).

``SharedLog`` is the ground truth of the database.  Its LSN is the number of
records appended so far; ``append(..., expected_lsn)`` succeeds only when the
log end equals the expectation — the compare-and-swap primitive that all of
MarlinCommit's cross-node conflict detection reduces to.

Record kinds implement the commit protocol's log vocabulary:

* ``COMMIT_DATA`` — a one-phase-commit record: its updates are final the
  moment the append succeeds.
* ``VOTE_YES`` — a two-phase-commit participant vote carrying that
  participant's redo updates; provisional until a decision record lands.
* ``DECISION_COMMIT`` / ``DECISION_ABORT`` — terminal outcome for a 2PC
  transaction id; replay applies or discards the buffered ``VOTE_YES``
  updates accordingly.
* ``TXN_BEGIN`` — a participant durably joined a distributed transaction
  (its branch is staged).  A ``TXN_BEGIN`` with no later vote or decision
  marks a branch that died before voting; recovery may safely claim an
  abort for it (the coordinator cannot have committed without the vote).
* ``PREPARE`` — the coordinator's intent record, written to its own GLog
  before it gathers votes; carries the full participant-log list so a
  restarted coordinator knows which transactions to re-resolve.
* ``TXN_END`` — the coordinator finished dispatching decisions.  Purely
  advisory: it bounds the set of transactions recovery re-examines; a
  missing ``TXN_END`` only costs an idempotent re-resolution.

``TXN_BEGIN``/``PREPARE``/``TXN_END`` carry no redo updates, so replay
treats them as LSN-advancing no-ops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Tuple, Union

__all__ = [
    "AppendResult",
    "Delete",
    "Increment",
    "LogRecord",
    "Put",
    "RecordKind",
    "SharedLog",
]


@dataclass(frozen=True)
class Put:
    """Set ``table[key] = value``."""

    table: str
    key: object
    value: object


@dataclass(frozen=True)
class Delete:
    """Remove ``table[key]``."""

    table: str
    key: object


@dataclass(frozen=True)
class Increment:
    """Add ``delta`` to the numeric counter at ``table[key]``.

    A blind commutative update: increments merge regardless of order, which
    is what makes transactions composed solely of them invariant-confluent
    (Bailis et al.) and eligible for the coordination-free fast path.  A
    non-numeric existing value is treated as 0 (counter-column semantics).
    """

    table: str
    key: object
    delta: int = 1


Entry = Union[Put, Delete, Increment]


class RecordKind(enum.Enum):
    COMMIT_DATA = "commit-data"
    VOTE_YES = "vote-yes"
    DECISION_COMMIT = "decision-commit"
    DECISION_ABORT = "decision-abort"
    TXN_BEGIN = "txn-begin"
    PREPARE = "prepare"
    TXN_END = "txn-end"


@dataclass(frozen=True)
class LogRecord:
    """One appended record.  ``lsn`` is the log's end LSN *after* this record.

    ``participants`` (present on VOTE_YES records) names every log taking part
    in the 2PC transaction, enabling the Cornus-style termination protocol:
    an in-doubt transaction's outcome is decided by the participant logs
    themselves (all voted yes => committed), never by a blocked coordinator.
    """

    lsn: int
    txn_id: str
    kind: RecordKind
    entries: Tuple[Entry, ...]
    participants: Tuple[str, ...] = ()


class AppendResult(NamedTuple):
    """Outcome of a conditional append: matches the paper's
    ``(status, new_lsn) <- Append(updates, target_lsn)`` signature."""

    ok: bool
    lsn: int


class SharedLog:
    """An append-only log with an atomic conditional-append primitive."""

    def __init__(self, name: str):
        self.name = name
        self.records: List[LogRecord] = []
        self.failed_appends = 0
        #: Observers called with each newly appended record (replay hooks).
        self._listeners: List[Callable[[LogRecord], None]] = []

    @property
    def end_lsn(self) -> int:
        return len(self.records)

    def subscribe(self, listener: Callable[[LogRecord], None]) -> None:
        self._listeners.append(listener)

    def append(
        self,
        txn_id: str,
        kind: RecordKind,
        entries: Tuple[Entry, ...] = (),
        expected_lsn: Optional[int] = None,
        participants: Tuple[str, ...] = (),
    ) -> AppendResult:
        """Append one record; with ``expected_lsn`` set, this is Append@LSN.

        Returns ``(True, new_end_lsn)`` on success.  On a version mismatch
        returns ``(False, current_end_lsn)`` so the caller can refresh its
        tracker and retry — exactly the ETag/If-Match contract of §5.
        """
        if expected_lsn is not None and expected_lsn != self.end_lsn:
            self.failed_appends += 1
            return AppendResult(False, self.end_lsn)
        record = LogRecord(
            lsn=self.end_lsn + 1,
            txn_id=txn_id,
            kind=kind,
            entries=tuple(entries),
            participants=tuple(participants),
        )
        self.records.append(record)
        for listener in self._listeners:
            listener(record)
        return AppendResult(True, self.end_lsn)

    def append_batch(
        self,
        bodies: List[Tuple[str, RecordKind, Tuple[Entry, ...]]],
        expected_lsn: Optional[int] = None,
    ) -> AppendResult:
        """Atomically append several records (group commit, §5).

        All-or-nothing under the same CAS condition as :meth:`append`; records
        receive consecutive LSNs.
        """
        if expected_lsn is not None and expected_lsn != self.end_lsn:
            self.failed_appends += 1
            return AppendResult(False, self.end_lsn)
        for txn_id, kind, entries in bodies:
            self.append(txn_id, kind, entries, expected_lsn=None)
        return AppendResult(True, self.end_lsn)

    def read_from(self, lsn: int) -> List[LogRecord]:
        """All records with LSN strictly greater than ``lsn``."""
        if lsn < 0:
            lsn = 0
        return self.records[lsn:]

    def record_at(self, lsn: int) -> LogRecord:
        """The record whose LSN is ``lsn`` (1-based)."""
        return self.records[lsn - 1]

    def txn_outcome(self, txn_id: str) -> Optional[bool]:
        """Scan for a decision record: True committed, False aborted, None open.

        Used by the Cornus-style termination protocol for in-doubt 2PC
        transactions: the logs, not the coordinator, are the source of truth.
        The *first* decision record wins (log-once semantics): racing
        resolvers may append conflicting decisions, but every reader agrees
        on the earliest one.
        """
        for record in self.records:
            if record.txn_id != txn_id:
                continue
            if record.kind is RecordKind.DECISION_COMMIT:
                return True
            if record.kind is RecordKind.DECISION_ABORT:
                return False
        return None

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SharedLog({self.name!r}, end_lsn={self.end_lsn})"
