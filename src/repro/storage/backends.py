"""Cloud-storage conditional-write dialects (§5 "Implementation").

The paper shows Append@LSN can be realised on any storage offering
compare-and-swap, and spells out three dialects:

* **Azure Append Blobs** — ``AppendBlock`` with ``If-Match`` (ETag) or
  ``x-ms-blob-condition-appendpos-equal`` preconditions,
* **Amazon S3 Express One Zone** — single ``PUT`` with ``If-Match`` /
  ``x-amz-write-offset-bytes``,
* **Google Cloud Storage** — per-object generation numbers with
  ``ifGenerationMatch`` on a compose operation.

Each emulation maps its dialect onto a :class:`repro.storage.log.SharedLog`
and exposes the common ``conditional_append`` so the equivalence of all three
with Append@LSN is testable.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.storage.log import AppendResult, RecordKind, SharedLog

__all__ = [
    "AzureAppendBlob",
    "GcsGenerationLog",
    "HTTP_CREATED",
    "HTTP_PRECONDITION_FAILED",
    "S3ExpressLog",
]

HTTP_CREATED = 201
HTTP_PRECONDITION_FAILED = 412


class AzureAppendBlob:
    """Azure append blob: ETag == stringified end LSN; append position == LSN."""

    def __init__(self, log: SharedLog):
        self.log = log

    @property
    def etag(self) -> str:
        return f'"{self.log.end_lsn}"'

    @property
    def append_position(self) -> int:
        return self.log.end_lsn

    def append_block(
        self,
        txn_id: str,
        kind: RecordKind,
        entries: tuple = (),
        if_match: Optional[str] = None,
        if_appendpos_equal: Optional[int] = None,
    ) -> Tuple[int, str]:
        """Returns ``(http_status, current_etag)``."""
        if if_match is not None and if_match != self.etag:
            return (HTTP_PRECONDITION_FAILED, self.etag)
        if if_appendpos_equal is not None and if_appendpos_equal != self.append_position:
            return (HTTP_PRECONDITION_FAILED, self.etag)
        self.log.append(txn_id, kind, entries, expected_lsn=None)
        return (HTTP_CREATED, self.etag)

    def conditional_append(
        self, txn_id: str, kind: RecordKind, entries: tuple, expected_lsn: int
    ) -> AppendResult:
        status, _etag = self.append_block(
            txn_id, kind, entries, if_appendpos_equal=expected_lsn
        )
        return AppendResult(status == HTTP_CREATED, self.log.end_lsn)


class S3ExpressLog:
    """S3 Express One Zone: conditional PUT with write-offset semantics."""

    def __init__(self, log: SharedLog):
        self.log = log

    @property
    def etag(self) -> str:
        return f"s3-{self.log.end_lsn}"

    @property
    def object_size(self) -> int:
        # One record == one "byte" of object length for offset arithmetic.
        return self.log.end_lsn

    def put(
        self,
        txn_id: str,
        kind: RecordKind,
        entries: tuple = (),
        if_match: Optional[str] = None,
        write_offset_bytes: Optional[int] = None,
    ) -> Tuple[int, str]:
        if if_match is not None and if_match != self.etag:
            return (HTTP_PRECONDITION_FAILED, self.etag)
        if write_offset_bytes is not None and write_offset_bytes != self.object_size:
            return (HTTP_PRECONDITION_FAILED, self.etag)
        self.log.append(txn_id, kind, entries, expected_lsn=None)
        return (HTTP_CREATED, self.etag)

    def conditional_append(
        self, txn_id: str, kind: RecordKind, entries: tuple, expected_lsn: int
    ) -> AppendResult:
        status, _etag = self.put(
            txn_id, kind, entries, write_offset_bytes=expected_lsn
        )
        return AppendResult(status == HTTP_CREATED, self.log.end_lsn)


class GcsGenerationLog:
    """GCS: monotonically increasing generation + ``ifGenerationMatch`` compose.

    The client stages updates in a temp object, then composes
    ``log@<generation>`` with the temp object guarded by
    ``ifGenerationMatch: <generation>``.
    """

    def __init__(self, log: SharedLog):
        self.log = log
        self._staged: dict[str, tuple] = {}

    @property
    def generation(self) -> int:
        return self.log.end_lsn

    def upload_temp(
        self, temp_name: str, txn_id: str, kind: RecordKind, entries: tuple
    ) -> None:
        self._staged[temp_name] = (txn_id, kind, entries)

    def compose(
        self, temp_name: str, if_generation_match: Optional[int] = None
    ) -> Tuple[int, int]:
        """Returns ``(http_status, current_generation)``."""
        if temp_name not in self._staged:
            raise KeyError(f"no staged temp object {temp_name!r}")
        if if_generation_match is not None and if_generation_match != self.generation:
            return (HTTP_PRECONDITION_FAILED, self.generation)
        txn_id, kind, entries = self._staged.pop(temp_name)
        self.log.append(txn_id, kind, entries, expected_lsn=None)
        return (HTTP_CREATED, self.generation)

    def conditional_append(
        self, txn_id: str, kind: RecordKind, entries: tuple, expected_lsn: int
    ) -> AppendResult:
        temp = f"temp-{txn_id}-{self.generation}"
        self.upload_temp(temp, txn_id, kind, entries)
        status, generation = self.compose(temp, if_generation_match=expected_lsn)
        return AppendResult(status == HTTP_CREATED, generation)
