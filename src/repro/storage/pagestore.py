"""Versioned page store materialised from WALs (§3.1).

The page store holds the authoritative, replayed image of every table.  It
tracks, per log, the highest LSN whose effects are visible (``applied_lsn``);
``GetPage@LSN`` readers wait until replay catches up to their requested
version.  Two-phase records are buffered per transaction and applied or
discarded when the decision record arrives.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.storage.log import Delete, Increment, LogRecord, Put, RecordKind

__all__ = ["PageStore"]

_TOMBSTONE = object()


class PageStore:
    """Materialised key-value tables plus per-log replay progress."""

    def __init__(self):
        self._tables: Dict[str, Dict[object, object]] = defaultdict(dict)
        self.applied_lsn: Dict[str, int] = defaultdict(int)
        # txn_id -> list of provisional entries seen in VOTE_YES records,
        # keyed per log so an abort discards only that log's share.
        self._pending: Dict[Tuple[str, str], List] = defaultdict(list)
        self.records_applied = 0

    # -- replay side ---------------------------------------------------------

    def apply(self, log_name: str, record: LogRecord) -> None:
        """Apply one log record in LSN order (called by the replay service)."""
        expected = self.applied_lsn[log_name] + 1
        if record.lsn != expected:
            raise ValueError(
                f"out-of-order replay on {log_name}: got lsn {record.lsn}, "
                f"expected {expected}"
            )
        if record.kind is RecordKind.COMMIT_DATA:
            self._apply_entries(record.entries)
        elif record.kind is RecordKind.VOTE_YES:
            self._pending[(log_name, record.txn_id)].extend(record.entries)
        elif record.kind is RecordKind.DECISION_COMMIT:
            entries = self._pending.pop((log_name, record.txn_id), [])
            self._apply_entries(entries)
        elif record.kind is RecordKind.DECISION_ABORT:
            self._pending.pop((log_name, record.txn_id), None)
        self.applied_lsn[log_name] = record.lsn
        self.records_applied += 1

    def _apply_entries(self, entries) -> None:
        for entry in entries:
            if isinstance(entry, Put):
                self._tables[entry.table][entry.key] = entry.value
            elif isinstance(entry, Delete):
                self._tables[entry.table].pop(entry.key, None)
            elif isinstance(entry, Increment):
                current = self._tables[entry.table].get(entry.key, 0)
                if not isinstance(current, (int, float)):
                    current = 0  # counter-column semantics over stale blobs
                self._tables[entry.table][entry.key] = current + entry.delta
            else:
                raise TypeError(f"unknown log entry {entry!r}")

    # -- read side -----------------------------------------------------------

    def get(self, table: str, key: object, default=None):
        return self._tables[table].get(key, default)

    def contains(self, table: str, key: object) -> bool:
        return key in self._tables[table]

    def snapshot(self, table: str) -> Dict[object, object]:
        """A copy of the table's current materialised contents."""
        return dict(self._tables[table])

    def table_size(self, table: str) -> int:
        return len(self._tables[table])

    def pending_txns(self, log_name: str) -> List[str]:
        """Transaction ids with buffered-but-undecided updates on ``log_name``."""
        return [txn for (log, txn) in self._pending if log == log_name]
