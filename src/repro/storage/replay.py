"""Asynchronous log replay (§3.1, §5).

Committed transactions send only updates to the WAL; the replay service
materialises them into the page store after a configurable lag, "eliminating
the need to write back dirty pages from compute nodes".  ``wait_applied``
implements the blocking read used by GetPage@LSN: "if the requested data has a
stale LSN, the storage node waits for log replay before replying".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.sim.core import Future, Simulator
from repro.storage.log import LogRecord, SharedLog
from repro.storage.pagestore import PageStore

__all__ = ["ReplayService"]


class ReplayService:
    """Applies each log's records to the page store ``lag`` seconds after append."""

    def __init__(self, sim: Simulator, pagestore: PageStore, lag: float = 0.002):
        self.sim = sim
        self.pagestore = pagestore
        self.lag = lag
        # (log_name, lsn) waiters, resolved once applied_lsn >= lsn.
        self._waiters: Dict[str, List[Tuple[int, Future]]] = defaultdict(list)

    def track(self, log: SharedLog) -> None:
        """Subscribe to a log; every new record is replayed after ``lag``."""
        log.subscribe(lambda record: self._schedule(log.name, record))

    def _schedule(self, log_name: str, record: LogRecord) -> None:
        # Handle-free timer: replay entries are never cancelled.
        self.sim.timer(self.lag, self._apply, log_name, record)

    def _apply(self, log_name: str, record: LogRecord) -> None:
        # Appends are scheduled in order and the heap is FIFO at equal times,
        # so records arrive here in LSN order.
        self.pagestore.apply(log_name, record)
        applied = self.pagestore.applied_lsn[log_name]
        waiters = self._waiters[log_name]
        still_waiting = []
        for lsn, fut in waiters:
            if lsn <= applied:
                fut.resolve(applied)
            else:
                still_waiting.append((lsn, fut))
        self._waiters[log_name] = still_waiting

    def wait_applied(self, log_name: str, lsn: int) -> Future:
        """A future resolving once replay of ``log_name`` reaches ``lsn``."""
        fut = self.sim.event(name=f"replay:{log_name}@{lsn}")
        if self.pagestore.applied_lsn[log_name] >= lsn:
            fut.resolve(self.pagestore.applied_lsn[log_name])
        else:
            self._waiters[log_name].append((lsn, fut))
        return fut
