"""Asynchronous log replay (§3.1, §5).

Committed transactions send only updates to the WAL; the replay service
materialises them into the page store after a configurable lag, "eliminating
the need to write back dirty pages from compute nodes".  ``wait_applied``
implements the blocking read used by GetPage@LSN: "if the requested data has a
stale LSN, the storage node waits for log replay before replying".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.sim.core import Future, Simulator
from repro.storage.log import LogRecord, SharedLog
from repro.storage.pagestore import PageStore

__all__ = ["MAX_WAITERS_PER_LOG", "ReplayInterrupted", "ReplayService"]

#: Upper bound on queued ``wait_applied`` futures per log.  A waiter beyond
#: this bound fails immediately instead of accumulating without limit (a
#: crashed writer would otherwise strand every queued reader forever).
MAX_WAITERS_PER_LOG = 4096


class ReplayInterrupted(RuntimeError):
    """A ``wait_applied`` future failed: the awaited LSN can no longer be
    produced (its writer crashed before appending) or the per-log waiter
    bound was exceeded."""


class ReplayService:
    """Applies each log's records to the page store ``lag`` seconds after append."""

    def __init__(self, sim: Simulator, pagestore: PageStore, lag: float = 0.002):
        self.sim = sim
        self.pagestore = pagestore
        self.lag = lag
        # (log_name, lsn) waiters, resolved once applied_lsn >= lsn.
        self._waiters: Dict[str, List[Tuple[int, Future]]] = defaultdict(list)
        self.waiters_failed = 0

    def track(self, log: SharedLog) -> None:
        """Subscribe to a log; every new record is replayed after ``lag``."""
        log.subscribe(lambda record: self._schedule(log.name, record))

    def _schedule(self, log_name: str, record: LogRecord) -> None:
        # Handle-free timer: replay entries are never cancelled.
        self.sim.timer(self.lag, self._apply, log_name, record)

    def _apply(self, log_name: str, record: LogRecord) -> None:
        # Appends are scheduled in order and the heap is FIFO at equal times,
        # so records arrive here in LSN order.
        self.pagestore.apply(log_name, record)
        applied = self.pagestore.applied_lsn[log_name]
        waiters = self._waiters[log_name]
        still_waiting = []
        for lsn, fut in waiters:
            if lsn <= applied:
                fut.resolve(applied)
            else:
                still_waiting.append((lsn, fut))
        self._waiters[log_name] = still_waiting

    def wait_applied(self, log_name: str, lsn: int) -> Future:
        """A future resolving once replay of ``log_name`` reaches ``lsn``."""
        fut = self.sim.event(name=f"replay:{log_name}@{lsn}")
        if self.pagestore.applied_lsn[log_name] >= lsn:
            fut.resolve(self.pagestore.applied_lsn[log_name])
        elif len(self._waiters[log_name]) >= MAX_WAITERS_PER_LOG:
            self.waiters_failed += 1
            fut.fail(ReplayInterrupted(
                f"{log_name}: waiter bound ({MAX_WAITERS_PER_LOG}) exceeded"
            ))
        else:
            self._waiters[log_name].append((lsn, fut))
        return fut

    def fail_waiters(self, log_name: str, beyond_lsn: int) -> int:
        """Fail waiters for LSNs that can no longer be produced.

        Called when ``log_name``'s writer crashes: every record up to the
        log's current end (``beyond_lsn``) will still replay normally, but a
        waiter past it was waiting on an append that died with the writer —
        without this it would leak forever.  Returns the number failed.
        """
        waiters = self._waiters.get(log_name)
        if not waiters:
            return 0
        keep: List[Tuple[int, Future]] = []
        failed = 0
        for lsn, fut in waiters:
            if lsn > beyond_lsn:
                failed += 1
                if not fut.done:
                    fut.fail(ReplayInterrupted(
                        f"{log_name}: writer crashed before lsn {lsn} "
                        f"(end_lsn={beyond_lsn})"
                    ))
            else:
                keep.append((lsn, fut))
        self._waiters[log_name] = keep
        self.waiters_failed += failed
        return failed
