"""The disaggregated storage service actor.

One ``StorageService`` runs per region (the paper co-locates storage with its
region's compute nodes, §6.5).  It owns the WALs (per-node GLogs plus the
global SysLog), the page store and the replay service, and exposes the LogDB
API over RPC:

* ``append(log, txn_id, kind, entries, expected_lsn)`` — Append@LSN,
* ``get_page(table, key, log, lsn)`` — GetPage@LSN (waits for replay),
* ``scan_table`` / ``read_log`` / ``log_end_lsn`` / ``check_lsn`` — metadata
  refresh and recovery reads.

The storage tier is modeled as highly available and horizontally scalable
(requests add latency but never queue), matching the paper's assumption that
only compute nodes fail.  The one fault the chaos engine injects here is a
*stall window* (:meth:`StorageService.stall`): a brownout during which every
request blocks until the window passes — queued IO completing in a burst —
without losing durability.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.core import Simulator, Timeout
from repro.sim.network import Network
from repro.sim.rpc import RpcEndpoint
from repro.storage.log import AppendResult, RecordKind, SharedLog
from repro.storage.pagestore import PageStore
from repro.storage.replay import ReplayService

__all__ = ["StorageService"]

#: Default service-side latencies (seconds); calibrated against Azure Append
#: Blob / Table Storage figures quoted in storage-disaggregation literature.
DEFAULT_APPEND_LATENCY = 0.0012
DEFAULT_READ_LATENCY = 0.0008
DEFAULT_REPLAY_LAG = 0.002


class StorageService:
    """Region-local disaggregated storage with near-storage CAS capability."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str = "storage",
        region: str = "us-west",
        append_latency: float = DEFAULT_APPEND_LATENCY,
        read_latency: float = DEFAULT_READ_LATENCY,
        replay_lag: float = DEFAULT_REPLAY_LAG,
    ):
        self.sim = sim
        self.address = address
        self.region = region
        self.append_latency = append_latency
        self.read_latency = read_latency
        self.logs: Dict[str, SharedLog] = {}
        self.pagestore = PageStore()
        self.replay = ReplayService(sim, self.pagestore, lag=replay_lag)
        self.endpoint = RpcEndpoint(sim, network, address, region)
        self.appends_served = 0
        self.reads_served = 0
        #: Brownout deadline: requests in flight before this time stall.
        self.stalled_until = 0.0
        for method in (
            "append",
            "append_batch",
            "create_log",
            "read_log",
            "log_end_lsn",
            "check_lsn",
            "get_page",
            "scan_table",
            "txn_outcome",
        ):
            self.endpoint.register(method, getattr(self, f"_h_{method}"))

    # -- direct (in-process) API, used by tests and bootstrap ----------------

    def create_log(self, name: str) -> SharedLog:
        """Create (or return) a WAL; replay is attached exactly once."""
        log = self.logs.get(name)
        if log is None:
            log = SharedLog(name)
            self.logs[name] = log
            self.replay.track(log)
        return log

    def log(self, name: str) -> SharedLog:
        return self.logs[name]

    # -- fault injection ------------------------------------------------------

    def stall(self, duration: float) -> None:
        """Open (or extend) a brownout window ``duration`` seconds long."""
        self.stalled_until = max(self.stalled_until, self.sim.now + duration)

    def _service_delay(self, base: float) -> float:
        """Base service latency, stretched to the end of any stall window."""
        stall = self.stalled_until - self.sim.now
        return base + stall if stall > 0.0 else base

    # -- RPC handlers ---------------------------------------------------------

    def _h_append(
        self,
        log_name: str,
        txn_id: str,
        kind: RecordKind,
        entries: tuple,
        expected_lsn: Optional[int],
        participants: tuple = (),
    ):
        yield Timeout(self._service_delay(self.append_latency))
        self.appends_served += 1
        result = self.logs[log_name].append(
            txn_id, kind, entries, expected_lsn, participants
        )
        return result

    def _h_append_batch(
        self,
        log_name: str,
        bodies: list,
        expected_lsn: Optional[int],
    ):
        yield Timeout(self._service_delay(self.append_latency))
        self.appends_served += 1
        return self.logs[log_name].append_batch(bodies, expected_lsn)

    def _h_create_log(self, log_name: str):
        yield Timeout(self._service_delay(self.append_latency))
        self.create_log(log_name)
        return True

    def _h_read_log(self, log_name: str, from_lsn: int):
        yield Timeout(self._service_delay(self.read_latency))
        self.reads_served += 1
        return list(self.logs[log_name].read_from(from_lsn))

    def _h_log_end_lsn(self, log_name: str):
        yield Timeout(self._service_delay(self.read_latency))
        return self.logs[log_name].end_lsn

    def _h_check_lsn(self, log_name: str, expected_lsn: int):
        """Read-only CAS probe: (matches, current_lsn).  Used by read-only
        MarlinCommit validation (ScanGTableTxn) which must not advance LSNs."""
        yield Timeout(self._service_delay(self.read_latency))
        current = self.logs[log_name].end_lsn
        return (current == expected_lsn, current)

    def _h_get_page(self, table: str, key: object, log_name: str, lsn: int):
        yield Timeout(self._service_delay(self.read_latency))
        self.reads_served += 1
        yield self.replay.wait_applied(log_name, lsn)
        return self.pagestore.get(table, key)

    def _h_scan_table(self, table: str, log_name: Optional[str], lsn: int):
        yield Timeout(self._service_delay(self.read_latency))
        self.reads_served += 1
        if log_name is not None:
            yield self.replay.wait_applied(log_name, lsn)
        return self.pagestore.snapshot(table)

    def _h_txn_outcome(self, log_name: str, txn_id: str):
        """Termination-protocol probe: (outcome, voted) for ``txn_id``."""
        yield Timeout(self._service_delay(self.read_latency))
        log = self.logs[log_name]
        outcome = log.txn_outcome(txn_id)
        voted = any(
            r.txn_id == txn_id and r.kind is RecordKind.VOTE_YES for r in log.records
        )
        return (outcome, voted)
