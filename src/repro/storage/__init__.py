"""Disaggregated storage substrate (log-as-the-database, §3.1).

Provides the two standard LogDB APIs the paper relies on — ``Append(updates)``
and ``GetPage(pageId, LSN)`` — plus the enhanced conditional append
``Append(updates, LSN)`` (*Append@LSN*) that MarlinCommit is built on, a page
store materialised by an asynchronous replay service, and emulations of the
Azure / S3 / GCS conditional-write dialects described in §5.
"""

from repro.storage.log import (
    AppendResult,
    Delete,
    LogRecord,
    Put,
    RecordKind,
    SharedLog,
)
from repro.storage.pagestore import PageStore
from repro.storage.replay import ReplayService
from repro.storage.service import StorageService

__all__ = [
    "AppendResult",
    "Delete",
    "LogRecord",
    "PageStore",
    "Put",
    "RecordKind",
    "ReplayService",
    "SharedLog",
    "StorageService",
]
