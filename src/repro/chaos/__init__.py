"""Deterministic chaos engine: declarative fault schedules for the cluster.

The repro's failover machinery (§4.4.2 ring detection, RecoveryMigrTxn
fencing) is exactly the code whose correctness depends on messier faults
than an abrupt crash.  This package supplies them:

* :mod:`repro.chaos.events` — the typed fault vocabulary
  (:class:`Partition`, :class:`PacketLoss`, :class:`SlowNode`,
  :class:`StorageStall`, :class:`Crash`/:class:`Restart`,
  :class:`ClockJitter`) and :class:`FaultSchedule` timelines,
* :mod:`repro.chaos.controller` — :class:`ChaosController`, which executes
  schedules on the sim clock with every random choice drawn from a dedicated
  seeded RNG (bit-identical replays),
* :mod:`repro.chaos.scenarios` — canned schedules (rolling partitions, gray
  failures, storage brownouts) for tests, examples and experiments.

Entry point: ``cluster.chaos.run_schedule(schedule, verify_after=...)``.
See CHAOS.md for the schedule format and the determinism guarantee.
"""

from repro.chaos.controller import ChaosController
from repro.chaos.events import (
    EVENT_KINDS,
    ClockJitter,
    Crash,
    FaultEvent,
    FaultSchedule,
    PacketLoss,
    Partition,
    Restart,
    SlowNode,
    StorageStall,
)
from repro.chaos.scenarios import (
    coordination_outage,
    crash_restart_cycle,
    flaky_link,
    gray_failure,
    rolling_partition,
    storage_brownout,
)

__all__ = [
    "ChaosController",
    "ClockJitter",
    "Crash",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "PacketLoss",
    "Partition",
    "Restart",
    "SlowNode",
    "StorageStall",
    "coordination_outage",
    "crash_restart_cycle",
    "flaky_link",
    "gray_failure",
    "rolling_partition",
    "storage_brownout",
]
