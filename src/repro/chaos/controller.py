"""The chaos controller: executes fault schedules on the sim clock.

``ChaosController`` owns a dedicated seeded RNG (derived from the cluster's
run seed) for every random choice chaos makes — packet-loss draws, clock
jitter — so a chaotic run replays bit-identically for a given
``(ClusterConfig.seed, FaultSchedule)`` pair, and a fault-free run never
touches the chaos RNG at all.

Faults land through the injection points the lower layers expose:

* partitions / packet loss — :class:`repro.sim.network.NetworkFaultPlane`,
* gray failures — :attr:`repro.sim.resources.CpuResource.slow_factor` and
  :class:`repro.sim.rpc.EndpointDegradation`,
* storage stalls — :meth:`repro.storage.service.StorageService.stall`,
* crash / restart — :meth:`repro.cluster.cluster.Cluster.fail_node` /
  ``restart_node``.

``run_schedule`` walks a schedule as a simulation process and records every
action in ``fault_log`` (the recovery timeline printed by the examples).
With ``verify_after`` set, the process ends by asserting the quiescence
invariants (I0-I5) ``verify_after`` seconds after the last fault cleared, so
``Process.result`` only resolves on a run that survived its chaos.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.chaos.events import (
    ClockJitter,
    Crash,
    FaultEvent,
    FaultSchedule,
    PacketLoss,
    Partition,
    Restart,
    SlowNode,
    StorageStall,
)
from repro.core.invariants import check_invariants, check_view_consistency
from repro.engine.node import node_address
from repro.sim.core import Timeout
from repro.sim.rpc import EndpointDegradation

__all__ = ["ChaosController"]

#: Mixed into the run seed so the chaos RNG never shadows the sim RNG.
_CHAOS_SEED_SALT = 0xC8A05


class ChaosController:
    """Deterministic fault injector bound to one :class:`Cluster`."""

    def __init__(self, cluster, seed: Optional[int] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        base = cluster.config.seed if seed is None else seed
        self.rng = random.Random((base << 8) ^ _CHAOS_SEED_SALT)
        #: Timeline of (sim_time, "inject" | "clear", FaultEvent).
        self.fault_log: List[Tuple[float, str, FaultEvent]] = []
        #: Active fault -> undo callable (None for self-clearing windows).
        self._active: Dict[int, Tuple[FaultEvent, Optional[callable]]] = {}
        self.faults_injected = 0
        # Degradation faults stack per node: overlapping SlowNode/ClockJitter
        # windows compose, and clearing one (in any order) recomputes the
        # node's effective state instead of blindly restoring a snapshot.
        self._cpu_faults: Dict[int, List[Tuple[object, float]]] = {}
        self._cpu_base: Dict[int, float] = {}
        #: node -> [(token, lag, jitter, drop_rate)]
        self._endpoint_faults: Dict[int, List[Tuple[object, float, float, float]]] = {}
        self._endpoint_base: Dict[int, Optional[EndpointDegradation]] = {}

    # -- small helpers -------------------------------------------------------

    def _address(self, endpoint) -> str:
        return node_address(endpoint) if isinstance(endpoint, int) else endpoint

    def _addresses(self, group) -> List[str]:
        return [self._address(e) for e in group]

    def _plane(self):
        return self.cluster.network.install_fault_plane(self.rng)

    def active_faults(self) -> List[FaultEvent]:
        return [event for event, _undo in self._active.values()]

    def _record(self, phase: str, event: FaultEvent) -> None:
        self.fault_log.append((self.sim.now, phase, event))
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            tracer.count("chaos." + phase)
            tracer.instant(
                "chaos", "chaos:" + phase,
                args={"event": type(event).__name__},
            )

    # -- injection / clearing ------------------------------------------------

    def inject(self, event: FaultEvent) -> None:
        """Apply ``event`` now.  Durations are handled by ``run_schedule``;
        direct callers pair ``inject`` with ``clear`` themselves."""
        undo = self._apply(event)
        self.faults_injected += 1
        self._record("inject", event)
        if undo is not None or event.duration is not None:
            # detlint: ok(DET102) — id() is an opaque handle into an insertion-ordered dict; entries are only looked up/popped by the same object, never iterated or sorted by key
            self._active[id(event)] = (event, undo)

    def clear(self, event: FaultEvent) -> None:
        """Undo ``event`` (no-op for one-shot events like :class:`Crash`)."""
        entry = self._active.pop(id(event), None)
        if entry is None:
            return
        _event, undo = entry
        if undo is not None:
            undo()
        self._record("clear", event)

    def _apply(self, event: FaultEvent):
        """Dispatch one event; returns an undo callable or ``None``."""
        if isinstance(event, Partition):
            return self._apply_partition(event)
        if isinstance(event, PacketLoss):
            return self._apply_packet_loss(event)
        if isinstance(event, SlowNode):
            return self._apply_slow_node(event)
        if isinstance(event, ClockJitter):
            return self._apply_clock_jitter(event)
        if isinstance(event, StorageStall):
            return self._apply_storage_stall(event)
        if isinstance(event, Crash):
            self.cluster.fail_node(event.node)
            return None
        if isinstance(event, Restart):
            self._spawn_restart(event.node, event.rejoin)
            return None
        raise TypeError(f"unknown fault event {event!r}")

    def _apply_partition(self, event: Partition):
        plane = self._plane()
        groups = [self._addresses(g) for g in event.groups]
        pairs = []
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1:]:
                pairs.append((group_a, group_b))
        if event.symmetric:
            for a, b in pairs:
                plane.partition(a, b)

            def undo():
                for a, b in pairs:
                    plane.heal(a, b)

        else:
            # Asymmetric: only traffic *into* the first group is lost; the
            # gray side can still send (and reach storage, which is not in
            # any group unless listed).
            blocked = [
                (src, dst)
                for dst in groups[0]
                for group in groups[1:]
                for src in group
            ]
            for src, dst in blocked:
                plane.block(src, dst)

            def undo():
                for src, dst in blocked:
                    plane.unblock(src, dst)

        return undo

    def _apply_packet_loss(self, event: PacketLoss):
        plane = self._plane()
        a, b = (self._address(e) for e in event.pair)
        directions = [(a, b), (b, a)] if event.symmetric else [(a, b)]
        for src, dst in directions:
            plane.set_loss(src, dst, event.rate)

        def undo():
            for src, dst in directions:
                plane.set_loss(src, dst, 0.0)

        return undo

    def _push_cpu_fault(self, node_id: int, factor: float):
        """Stack a CPU dilation on the node; returns the pop callable."""
        node = self.cluster.nodes[node_id]
        stack = self._cpu_faults.setdefault(node_id, [])
        if not stack:
            self._cpu_base[node_id] = node.cpu.slow_factor
        entry = (object(), factor)
        stack.append(entry)
        self._recompute_cpu(node_id)

        def pop():
            stack.remove(entry)
            self._recompute_cpu(node_id)

        return pop

    def _recompute_cpu(self, node_id: int) -> None:
        factor = self._cpu_base.get(node_id, 1.0)
        for _token, f in self._cpu_faults.get(node_id, ()):
            factor *= f
        self.cluster.nodes[node_id].cpu.slow_factor = factor

    def _push_endpoint_fault(
        self, node_id: int, lag: float, jitter: float, drop_rate: float
    ):
        """Stack a degradation on the node's endpoint; returns the pop."""
        node = self.cluster.nodes[node_id]
        stack = self._endpoint_faults.setdefault(node_id, [])
        if not stack:
            self._endpoint_base[node_id] = node.endpoint.degrade
        entry = (object(), lag, jitter, drop_rate)
        stack.append(entry)
        self._recompute_endpoint(node_id)

        def pop():
            stack.remove(entry)
            self._recompute_endpoint(node_id)

        return pop

    def _recompute_endpoint(self, node_id: int) -> None:
        """Effective degradation = base composed with every stacked fault:
        lags and jitters add, drop probabilities combine independently."""
        node = self.cluster.nodes[node_id]
        stack = self._endpoint_faults.get(node_id) or ()
        base = self._endpoint_base.get(node_id)
        if not stack:
            node.endpoint.degrade = base
            return
        lag = base.lag if base is not None else 0.0
        jitter = base.jitter if base is not None else 0.0
        drop = base.drop_rate if base is not None else 0.0
        for _token, f_lag, f_jitter, f_drop in stack:
            lag += f_lag
            jitter += f_jitter
            drop = 1.0 - (1.0 - drop) * (1.0 - f_drop)
        node.endpoint.degrade = EndpointDegradation(
            lag=lag, jitter=jitter, drop_rate=drop, rng=self.rng
        )

    def _apply_slow_node(self, event: SlowNode):
        pop_cpu = self._push_cpu_fault(event.node, event.cpu_factor)
        pop_endpoint = None
        if event.rpc_lag > 0.0:
            pop_endpoint = self._push_endpoint_fault(
                event.node, event.rpc_lag, 0.0, 0.0
            )

        def undo():
            pop_cpu()
            if pop_endpoint is not None:
                pop_endpoint()

        return undo

    def _apply_clock_jitter(self, event: ClockJitter):
        return self._push_endpoint_fault(event.node, 0.0, event.spread, 0.0)

    def _apply_storage_stall(self, event: StorageStall):
        storage = self.cluster.storages[event.region]
        storage.stall(event.duration)
        return None  # self-clearing: the window expires on the storage clock

    def _spawn_restart(self, node_id: int, rejoin: bool) -> None:
        self.sim.spawn(
            self.cluster.restart_node(node_id, rejoin=rejoin),
            name=f"chaos-restart-{node_id}",
            daemon=True,
        )

    # -- schedule execution --------------------------------------------------

    def run_schedule(
        self,
        schedule: FaultSchedule,
        verify_after: Optional[float] = None,
        name: str = "chaos-schedule",
    ):
        """Execute ``schedule`` as a simulation process; returns the Process.

        The process resolves with the fault log once every event has been
        injected and every window cleared — and, when ``verify_after`` is
        given, after the quiescence invariants have been checked
        ``verify_after`` seconds past the last action.
        """
        return self.sim.spawn(
            self._runner(schedule, verify_after), name=name, daemon=True
        )

    def _runner(self, schedule: FaultSchedule, verify_after: Optional[float]):
        # Unified action timeline: injections plus window-clear actions.
        actions: List[Tuple[float, int, str, FaultEvent]] = []
        seq = 0
        for at, event in schedule.sorted_entries():
            actions.append((at, seq, "inject", event))
            seq += 1
            if event.duration is not None:
                actions.append((at + event.duration, seq, "clear", event))
                seq += 1
        actions.sort(key=lambda a: (a[0], a[1]))
        for at, _seq, phase, event in actions:
            if at > self.sim.now:
                yield Timeout(at - self.sim.now)
            if phase == "inject":
                self.inject(event)
            elif isinstance(event, Crash):
                # A crash window "clears" by restarting the node.
                self._active.pop(id(event), None)
                self._spawn_restart(event.node, event.rejoin)
                self._record("clear", event)
            else:
                self.clear(event)
        if verify_after is not None:
            yield Timeout(verify_after)
            self.verify_quiescent()
        return list(self.fault_log)

    # -- invariants ----------------------------------------------------------

    def verify_quiescent(self) -> None:
        """Assert Marlin's invariants (I0-I5) at the current quiescent point.

        Raises :class:`repro.core.invariants.InvariantViolation` if any live
        node's view overlaps another's or the replayed ground truth has an
        orphaned / double-owned granule.
        """
        from repro.obs.forensics import forensics

        cluster = self.cluster
        with forensics(cluster):
            live = [cluster.nodes[n] for n in cluster.live_node_ids()]
            check_view_consistency(live, cluster.gmap.num_granules)
            check_invariants(
                cluster.ground_truth_gtable(),
                cluster.gmap.num_granules,
                cluster.ground_truth_mtable(),
            )
