"""Canned fault schedules for the coordination pathologies that matter.

Each builder returns a plain :class:`FaultSchedule`, so scenarios compose
(``rolling_partition(...).at(t, StorageStall(...))``) and any figure
experiment can run under any of them via the harness's ``fault_schedule``
parameter.  Times are absolute sim seconds, matching the harness convention
(``scale_at`` etc.).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.chaos.events import (
    Crash,
    FaultSchedule,
    PacketLoss,
    Partition,
    SlowNode,
    StorageStall,
)

__all__ = [
    "coordination_outage",
    "crash_restart_cycle",
    "flaky_link",
    "gray_failure",
    "replica_link_degradation",
    "rolling_partition",
    "storage_brownout",
]


def coordination_outage(
    node_ids: Sequence[int],
    at: float = 1.0,
    duration: float = 2.0,
    service: str = "zk",
    extra_endpoints: Sequence[str] = (),
) -> FaultSchedule:
    """Partition the external coordination service endpoint itself.

    The ``Cluster.service`` actor (``"zk"`` or ``"fdb"``) is just another
    addressable endpoint, so it can be isolated like any node: every compute
    node in ``node_ids`` (plus any ``extra_endpoints``, e.g. ``"admin"``)
    loses the service for ``duration`` seconds while peers, storage and
    clients stay connected.  The baselines' *data* path survives — user
    transactions never touch the service — but every reconfiguration
    (AddNodeTxn, MigrationTxn ownership updates, failover arbitration)
    stalls until the partition heals.  Marlin has no such endpoint to lose;
    that asymmetry is the paper's availability argument in schedule form.
    """
    members = tuple(node_ids) + tuple(extra_endpoints)
    if not members:
        raise ValueError("coordination_outage needs at least one endpoint to cut off")
    return FaultSchedule().at(
        at, Partition(groups=((service,), members), duration=duration)
    )


def rolling_partition(
    node_ids: Sequence[int],
    start: float = 1.0,
    hold: float = 1.0,
    gap: float = 0.5,
) -> FaultSchedule:
    """Isolate each node in turn from the rest of the compute plane.

    Node ``node_ids[i]`` loses peer connectivity for ``hold`` seconds
    starting at ``start + i * (hold + gap)``; storage and clients stay
    reachable throughout (the paper's network-partition shape — compute
    coordination is the thing being stressed, not durability).
    """
    schedule = FaultSchedule()
    node_ids = list(node_ids)
    at = start
    for victim in node_ids:
        others = tuple(n for n in node_ids if n != victim)
        schedule.at(
            at, Partition(groups=((victim,), others), duration=hold)
        )
        at += hold + gap
    return schedule


def gray_failure(
    node: int,
    at: float = 1.0,
    duration: Optional[float] = None,
    cpu_factor: float = 16.0,
    rpc_lag: float = 0.4,
) -> FaultSchedule:
    """One node turns slow-but-alive: CPU dilated, every RPC response late.

    With ``rpc_lag`` above the detector timeout the node keeps *serving*
    (slowly) while its heartbeats miss — the classic gray failure that must
    end in RecoveryMigrTxn fencing it through its own GLog, not in a
    double-owner split.  ``duration=None`` leaves it degraded until failover
    fences it.
    """
    return FaultSchedule().at(
        at,
        SlowNode(
            node=node, cpu_factor=cpu_factor, rpc_lag=rpc_lag,
            duration=duration,
        ),
    )


def storage_brownout(
    region: str,
    at: float = 1.0,
    stall: float = 0.5,
    repeat: int = 1,
    gap: float = 1.0,
) -> FaultSchedule:
    """``repeat`` storage stall windows of ``stall`` seconds, ``gap`` apart."""
    schedule = FaultSchedule()
    for i in range(repeat):
        schedule.at(at + i * (stall + gap), StorageStall(region=region, duration=stall))
    return schedule


def replica_link_degradation(
    primary: int,
    followers: Sequence[int],
    at: float = 1.0,
    duration: float = 2.0,
    stall_region: Optional[str] = None,
    stall: float = 0.5,
) -> FaultSchedule:
    """Degrade one primary's replica-ship paths without killing anything.

    Asymmetric partition: messages *into* the follower group are blocked, so
    the primary's ``repl_ship`` RPCs (and their retries) die on the wire
    while the followers can still send — heartbeats keep flowing and no
    failover fires.  sync_quorum commits stall against the quorum gate for
    ``duration`` seconds; async silently accrues ship lag (visible later as
    ``rpo_bytes`` if the primary dies before the lag drains).  An optional
    ``stall_region`` adds a storage brownout under the follower side, the
    "slow replica disk" half of the degradation.
    """
    followers = tuple(followers)
    if not followers:
        raise ValueError("replica_link_degradation needs at least one follower")
    if primary in followers:
        raise ValueError(f"primary {primary} cannot be its own follower")
    schedule = FaultSchedule().at(
        at,
        Partition(
            groups=(followers, (primary,)), symmetric=False, duration=duration
        ),
    )
    if stall_region is not None:
        schedule.at(at, StorageStall(region=stall_region, duration=stall))
    return schedule


def crash_restart_cycle(
    node: int,
    at: float = 1.0,
    down_for: float = 5.0,
    rejoin: bool = True,
) -> FaultSchedule:
    """Crash a node and bring it back ``down_for`` seconds later."""
    return FaultSchedule().at(
        at, Crash(node=node, rejoin=rejoin, duration=down_for)
    )


def flaky_link(
    pair: Tuple[int, int],
    at: float = 1.0,
    rate: float = 0.3,
    duration: float = 2.0,
) -> FaultSchedule:
    """Probabilistic loss on one node pair (both directions)."""
    return FaultSchedule().at(
        at, PacketLoss(pair=pair, rate=rate, duration=duration)
    )
