"""Typed fault events and declarative fault schedules.

A fault event is an immutable description of *what* goes wrong; the
:class:`~repro.chaos.controller.ChaosController` decides *how* it lands on
the running cluster.  Events with a ``duration`` are windows — the controller
injects them at their scheduled time and clears them ``duration`` seconds
later; ``duration=None`` means the fault holds until cleared explicitly.

A :class:`FaultSchedule` is a timeline of ``(at, event)`` pairs.  It can be
built fluently (``schedule.at(2.0, Partition(...))``) or parsed from a plain
declarative spec (``FaultSchedule.from_spec([{"at": 2.0, "kind":
"partition", ...}])``), which is the format documented in CHAOS.md.

Nodes are referenced by integer id wherever an address is expected; the
controller resolves ids to RPC addresses (``node-3``) and accepts raw
address strings (``"storage-us-west"``, ``"admin"``) unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "ClockJitter",
    "Crash",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "PacketLoss",
    "Partition",
    "Restart",
    "SlowNode",
    "StorageStall",
]

#: A node id (resolved to ``node-<id>``) or a raw RPC address.
Endpoint = Union[int, str]


@dataclass(frozen=True)
class FaultEvent:
    """Base class; subclasses define the fault vocabulary."""

    #: Window length in seconds; ``None`` holds until cleared explicitly.
    duration: Optional[float] = field(default=None, kw_only=True)

    @property
    def kind(self) -> str:
        return _KIND_BY_CLASS[type(self)]

    def describe(self) -> str:
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if f.name != "duration" and getattr(self, f.name) is not None
        ]
        if self.duration is not None:
            parts.append(f"duration={self.duration}")
        return f"{self.kind}({', '.join(parts)})"


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Sever connectivity between every pair of endpoints in different groups.

    ``groups`` is a sequence of endpoint groups; endpoints not named in any
    group keep full connectivity (so storage and clients stay reachable
    unless explicitly partitioned).  With ``symmetric=False`` only messages
    *into* the first group are blocked — the asymmetric "unreachable from its
    monitors but still able to send" gray-partition shape.
    """

    groups: Tuple[Tuple[Endpoint, ...], ...] = ()
    symmetric: bool = True

    def __post_init__(self):
        object.__setattr__(
            self, "groups", tuple(tuple(g) for g in self.groups)
        )
        if len(self.groups) < 2:
            raise ValueError("Partition needs at least two groups")


@dataclass(frozen=True)
class PacketLoss(FaultEvent):
    """Drop each message between the pair with probability ``rate``."""

    pair: Tuple[Endpoint, Endpoint] = ()
    rate: float = 0.1
    symmetric: bool = True

    def __post_init__(self):
        object.__setattr__(self, "pair", tuple(self.pair))
        if len(self.pair) != 2:
            raise ValueError("PacketLoss pair must name exactly two endpoints")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate out of range: {self.rate}")


@dataclass(frozen=True)
class SlowNode(FaultEvent):
    """Gray failure: the node stays up but everything takes longer.

    ``cpu_factor`` dilates CPU service times; ``rpc_lag`` adds server-side
    processing delay to every inbound request (which is what starves
    heartbeat replies past the detector timeout).
    """

    node: int = 0
    cpu_factor: float = 4.0
    rpc_lag: float = 0.0

    def __post_init__(self):
        if self.cpu_factor <= 0:
            raise ValueError(f"cpu_factor must be positive: {self.cpu_factor}")


@dataclass(frozen=True)
class StorageStall(FaultEvent):
    """Brownout of one region's storage service for ``duration`` seconds."""

    region: str = "us-west"

    def __post_init__(self):
        if self.duration is None or self.duration <= 0:
            raise ValueError("StorageStall requires a positive duration")


@dataclass(frozen=True)
class Crash(FaultEvent):
    """Freeze a node; with a ``duration``, restart it when the window ends."""

    node: int = 0
    #: Re-run AddNodeTxn on restart (only meaningful with a duration).
    rejoin: bool = True


@dataclass(frozen=True)
class Restart(FaultEvent):
    """Unfreeze a crashed node (and, by default, rejoin membership)."""

    node: int = 0
    rejoin: bool = True


@dataclass(frozen=True)
class ClockJitter(FaultEvent):
    """Clock slew on one node: inbound requests see a seeded uniform extra
    delay in ``[0, spread)`` — timers and responses drift unpredictably."""

    node: int = 0
    spread: float = 0.01

    def __post_init__(self):
        if self.spread <= 0:
            raise ValueError(f"spread must be positive: {self.spread}")


#: Declarative-spec kind names (CHAOS.md vocabulary).
EVENT_KINDS: Dict[str, type] = {
    "partition": Partition,
    "packet_loss": PacketLoss,
    "slow_node": SlowNode,
    "storage_stall": StorageStall,
    "crash": Crash,
    "restart": Restart,
    "clock_jitter": ClockJitter,
}
_KIND_BY_CLASS = {cls: name for name, cls in EVENT_KINDS.items()}


class FaultSchedule:
    """An ordered timeline of ``(at, FaultEvent)`` pairs.

    Entries may be added in any order; iteration is by ``(at, insertion)``.
    The schedule itself is pure data — executing it is the controller's job —
    so one schedule can drive many runs (and many seeds).
    """

    def __init__(self, entries: Optional[List[Tuple[float, FaultEvent]]] = None):
        self._entries: List[Tuple[float, FaultEvent]] = []
        for at, event in entries or ():
            self.at(at, event)

    def at(self, time: float, event: FaultEvent) -> "FaultSchedule":
        """Schedule ``event`` for injection at sim time ``time`` (chainable)."""
        if time < 0:
            raise ValueError(f"cannot schedule a fault in the past: {time}")
        if not isinstance(event, FaultEvent):
            raise TypeError(f"not a FaultEvent: {event!r}")
        self._entries.append((float(time), event))
        return self

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[float, FaultEvent]]:
        return iter(self.sorted_entries())

    def sorted_entries(self) -> List[Tuple[float, FaultEvent]]:
        # sorted() is stable: same-time entries keep insertion order.
        return sorted(self._entries, key=lambda entry: entry[0])

    @property
    def horizon(self) -> float:
        """Time at which the last scheduled window has cleared."""
        end = 0.0
        for at, event in self._entries:
            end = max(end, at + (event.duration or 0.0))
        return end

    @classmethod
    def from_spec(cls, spec) -> "FaultSchedule":
        """Build from a declarative list of dicts.

        Each entry needs ``at`` (sim seconds) and ``kind`` (a key of
        :data:`EVENT_KINDS`); remaining keys are the event's fields, e.g.::

            FaultSchedule.from_spec([
                {"at": 2.0, "kind": "partition",
                 "groups": [[1], [0, 2]], "duration": 3.0},
                {"at": 4.0, "kind": "storage_stall",
                 "region": "us-west", "duration": 0.5},
            ])
        """
        schedule = cls()
        for i, entry in enumerate(spec):
            entry = dict(entry)
            try:
                at = entry.pop("at")
                kind = entry.pop("kind")
            except KeyError as missing:
                raise ValueError(f"spec entry {i} missing {missing}") from None
            event_cls = EVENT_KINDS.get(kind)
            if event_cls is None:
                raise ValueError(
                    f"spec entry {i}: unknown fault kind {kind!r}; "
                    f"expected one of {sorted(EVENT_KINDS)}"
                )
            if "groups" in entry:
                entry["groups"] = tuple(tuple(g) for g in entry["groups"])
            if "pair" in entry:
                entry["pair"] = tuple(entry["pair"])
            schedule.at(at, event_cls(**entry))
        return schedule

    def to_spec(self) -> List[dict]:
        """The declarative form (round-trips through :meth:`from_spec`)."""
        spec = []
        for at, event in self.sorted_entries():
            entry = {"at": at, "kind": event.kind}
            for f in fields(event):
                value = getattr(event, f.name)
                if f.name == "duration" and value is None:
                    continue
                entry[f.name] = value
            spec.append(entry)
        return spec

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(
            f"{at}: {event.describe()}" for at, event in self.sorted_entries()
        )
        return f"FaultSchedule([{inner}])"
