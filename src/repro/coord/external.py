"""ExternalRuntime: coordination through an external service (the baselines).

Implements the same :class:`repro.coord.base.CoordinationRuntime` interface
as Marlin, but every coordination-state change goes through the external
service (ZooKeeper-like or FDB-like).  The data path is identical to Marlin's
— same engine, same 2PL, same group commit — except that WAL appends are
*unconditional* (each node owns its WAL exclusively; the external service is
what fences failed nodes), so the only experimental variable is where
coordination state lives.  That mirrors the paper's methodology: "for a fair
comparison, we implement Marlin and all baselines on this testbed".
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional

from repro.coord.base import CoordinationRuntime
from repro.core.commit import NodeParticipant, marlin_commit
from repro.engine.locks import LockConflict
from repro.engine.node import GTABLE, node_address
from repro.engine.txn import AbortReason, TxnAborted, TxnContext, WrongNodeError
from repro.sim.core import Timeout
from repro.sim.rpc import RemoteError, RpcTimeout
from repro.storage.log import RecordKind

__all__ = ["ExternalRuntime", "FdbClient", "ZkClient"]

_OWNER_PREFIX = "/granules/"
_MEMBER_PREFIX = "/members/"


class _ServiceClient:
    """Shared service-session RPC plumbing for the external-service clients.

    Every coordination-state operation goes through :meth:`_request`: a
    *bounded* per-request timeout plus retry with linear backoff.  Real ZK /
    FDB client libraries behave this way (session timeout + reconnect loop),
    and it is a liveness requirement here: without it, a reconfiguration in
    flight when the service endpoint partitions away waits on a reply that
    will never arrive — the request was dropped inside the partition — and
    hangs forever even after the partition heals (the ROADMAP's
    coordination-outage open item).  With it, the operation stalls for the
    outage and completes once connectivity returns.

    ``request_timeout`` bounds each attempt; ``retry_backoff`` spaces
    attempts (linear, capped at 4x); ``max_retries=None`` retries until the
    service responds — the paper's baselines treat the external service as
    durable, so control-plane callers never see a spurious failure, they
    just observe outage-shaped latency.  A bounded ``max_retries`` surfaces
    the final :class:`RpcTimeout` to the caller instead.
    """

    def __init__(
        self,
        service_address: str,
        client_overhead: float = 0.0,
        session_pool: int = 2,
        request_timeout: float = 2.0,
        retry_backoff: float = 0.25,
        max_retries: Optional[int] = None,
    ):
        self.address = service_address
        self.client_overhead = client_overhead
        self.session_pool = session_pool
        self.request_timeout = request_timeout
        self.retry_backoff = retry_backoff
        self.max_retries = max_retries

    def _request(self, node, method: str, *args) -> Generator:
        attempt = 0
        while True:
            try:
                result = yield node.endpoint.call(
                    self.address, method, *args, timeout=self.request_timeout
                )
                return result
            except RpcTimeout:
                attempt += 1
                if self.max_retries is not None and attempt > self.max_retries:
                    raise
                yield Timeout(self.retry_backoff * min(attempt, 4))


class ZkClient(_ServiceClient):
    """Coordination-state operations against a ZooKeeperService."""

    kind = "zookeeper"

    def __init__(
        self,
        service_address: str = "zk",
        client_overhead: float = 0.0,
        session_pool: int = 2,
        **kwargs,
    ):
        super().__init__(
            service_address, client_overhead, session_pool, **kwargs
        )

    def update_ownership(self, node, granule: int, owner: int) -> Generator:
        """One leader write: znode per granule."""
        version = yield from self._request(
            node, "zk_write", f"{_OWNER_PREFIX}{granule}", owner
        )
        return version

    def register_member(self, node, node_id: int, address: str) -> Generator:
        yield from self._request(
            node, "zk_write", f"{_MEMBER_PREFIX}{node_id}", address
        )
        return True

    def unregister_member(self, node, node_id: int) -> Generator:
        yield from self._request(node, "zk_delete", f"{_MEMBER_PREFIX}{node_id}")
        return True

    def scan_ownership(self, node) -> Generator:
        raw = yield from self._request(node, "zk_scan", _OWNER_PREFIX)
        return {
            int(path[len(_OWNER_PREFIX):]): owner for path, owner in raw.items()
        }

    def scan_members(self, node) -> Generator:
        raw = yield from self._request(node, "zk_scan", _MEMBER_PREFIX)
        return {
            int(path[len(_MEMBER_PREFIX):]): addr for path, addr in raw.items()
        }


class FdbClient(_ServiceClient):
    """Coordination-state operations against an FdbService.

    Every mutation needs GetReadVersion + commit — two service round trips,
    the structural reason FDB trails in geo-distributed settings (§6.5).
    """

    kind = "fdb"

    def __init__(
        self,
        service_address: str = "fdb",
        client_overhead: float = 0.0,
        session_pool: int = 2,
        **kwargs,
    ):
        super().__init__(
            service_address, client_overhead, session_pool, **kwargs
        )

    def _mutate(self, node, writes) -> Generator:
        # Each leg retries independently; a timed-out commit re-runs from a
        # fresh read version (the simulated FDB applies last-writer-wins
        # blind writes, so a duplicate commit is idempotent).
        read_version = yield from self._request(node, "fdb_get_read_version")
        yield from self._request(node, "fdb_commit", tuple(writes), read_version)
        return True

    def update_ownership(self, node, granule: int, owner: int) -> Generator:
        return (
            yield from self._mutate(node, [(f"{_OWNER_PREFIX}{granule}", owner)])
        )

    def register_member(self, node, node_id: int, address: str) -> Generator:
        return (
            yield from self._mutate(node, [(f"{_MEMBER_PREFIX}{node_id}", address)])
        )

    def unregister_member(self, node, node_id: int) -> Generator:
        return (yield from self._mutate(node, [(f"{_MEMBER_PREFIX}{node_id}", None)]))

    def scan_ownership(self, node) -> Generator:
        raw = yield from self._request(node, "fdb_scan", _OWNER_PREFIX)
        return {
            int(path[len(_OWNER_PREFIX):]): owner for path, owner in raw.items()
        }

    def scan_members(self, node) -> Generator:
        raw = yield from self._request(node, "fdb_scan", _MEMBER_PREFIX)
        return {
            int(path[len(_MEMBER_PREFIX):]): addr for path, addr in raw.items()
        }


class ExternalRuntime(CoordinationRuntime):
    """Per-node runtime delegating coordination state to an external service."""

    def __init__(self, client):
        super().__init__()
        self.client = client
        self.kind = client.kind
        self.reconfig_commits = 0
        self._session = None

    def attach(self, node) -> None:
        super().attach(node)
        node.endpoint.register("migr_prepare", self._h_migr_prepare)
        node.endpoint.register("view_update", self._h_view_update)
        # Each node owns its WAL exclusively under external coordination:
        # appends are unconditional (the service, not CAS, fences failures).
        node.wal_conditional = False
        node.committer.conditional = False
        # The node's coordination-service session pool: at most
        # ``session_pool`` requests in flight, each paying client overhead.
        from repro.sim.resources import CpuResource

        self._session = CpuResource(
            node.sim, max(1, self.client.session_pool),
            name=f"coord-session-{node.node_id}",
        )

    def _through_session(self, op) -> Generator:
        """Funnel one coordination-service mutation through the session pool."""
        from repro.sim.core import Timeout

        yield self._session.acquire()
        try:
            if self.client.client_overhead:
                yield Timeout(self.client.client_overhead)
            result = yield from op
            return result
        finally:
            self._session.release()

    # -- user path (identical structure to Marlin, unconditional appends) -------

    def check_ownership(self, ctx, granule: int) -> None:
        node = self.node
        try:
            node.locks.acquire(ctx.txn_id, (GTABLE, granule), False)
        except LockConflict as conflict:
            raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
        owner = node.gtable.get(granule)
        if owner != node.node_id:
            raise WrongNodeError(granule, owner)

    def commit_user(self, ctx) -> Generator:
        node = self.node
        remotes = getattr(ctx, "remote_participants", None)
        if not remotes:
            result = yield node.committer.submit(
                ctx.txn_id, RecordKind.COMMIT_DATA, ctx.entries_for(node.glog)
            )
            if not result.ok:  # pragma: no cover - unconditional appends succeed
                raise TxnAborted(AbortReason.CAS_CONFLICT, "unexpected append failure")
            return
        participants = [NodeParticipant(node.node_id)] + [
            NodeParticipant(r) for r in remotes
        ]
        committed = yield from marlin_commit(node, ctx, participants, conditional=False)
        if not committed:
            raise TxnAborted(AbortReason.VALIDATION, "distributed commit aborted")
        node.stats["two_pc_commits"] += 1

    def handle_cas_failure(self, log_name: str) -> Generator:
        return
        yield  # pragma: no cover - generator shape, never reached

    def _h_view_update(self, entries):
        """One-way cache-sync cast from a recovering peer (the external
        analogue of Marlin's sys-update broadcast / ZK watch event)."""
        self.node.apply_system_entries(list(entries))
        return True

    def refresh_views(self) -> Generator:
        """Replace this node's membership/ownership caches with the
        service's authoritative view.  Run on restart, *before* the rejoin
        decision: a failover that completed while this node was down moved
        its granules, and serving the stale map would double-own them."""
        node = self.node
        members = yield from self.client.scan_members(node)
        ownership = yield from self.client.scan_ownership(node)
        node.mtable.clear()
        node.mtable.update(members)
        node.gtable.clear()
        node.gtable.update(ownership)
        return True

    def recover(self) -> Generator:
        """Same WAL-scan recovery pass as Marlin: the journal vocabulary
        (TXN_BEGIN / VOTE_YES / PREPARE / TXN_END) is runtime-agnostic."""
        from repro.core import recovery

        return (yield from recovery.recover_node(self.node))

    # -- reconfiguration through the external service -----------------------------

    def migrate(self, granule: int, src_id: int, dst_id: int) -> Generator:
        """Ownership transfer: the same node-side work as Marlin, plus the
        authoritative update in the external service on the critical path."""
        node = self.node
        ctx = TxnContext(
            node.node_id, is_reconfig=True, name="MigrationTxn",
            seq=node.next_txn_seq(),
        )
        node.txns[ctx.txn_id] = ctx
        try:
            yield node.locks.acquire_async(
                ctx.txn_id, (GTABLE, granule), True,
                timeout=node.params.lock_wait_timeout,
            )
        except LockConflict as conflict:
            node.txns.pop(ctx.txn_id, None)
            raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
        try:
            yield from node.cpu.run(node.params.reconfig_cpu)
            try:
                owner = yield node.peer_call(
                    src_id, "migr_prepare", ctx.txn_id, granule, dst_id,
                    timeout=node.params.vote_timeout,
                )
            except RemoteError as err:
                if isinstance(err.cause, TxnAborted):
                    raise TxnAborted(err.cause.reason, err.cause.detail) from err
                raise TxnAborted(AbortReason.VALIDATION, str(err)) from err
            except RpcTimeout as err:
                raise TxnAborted(AbortReason.NODE_FAILED, str(err)) from err
            if owner != src_id:
                raise WrongNodeError(granule, owner)
            # The external service holds the authoritative mapping: update it
            # before committing the node-side swap.  This round trip through
            # the session pool is the baselines' critical-path cost.
            yield from self._through_session(
                self.client.update_ownership(node, granule, dst_id)
            )
            ctx.write(node.glog, GTABLE, granule, dst_id)
            committed = yield from marlin_commit(
                node,
                ctx,
                [NodeParticipant(src_id), NodeParticipant(dst_id)],
                conditional=False,
            )
            if not committed:
                raise TxnAborted(AbortReason.VALIDATION, f"migration of {granule}")
            node.apply_committed(ctx)
            self.reconfig_commits += 1
        finally:
            node.locks.release_all(ctx.txn_id)
            node.txns.pop(ctx.txn_id, None)
        if node.params.warmup_enabled:
            from repro.core.reconfig import warmup_granule

            yield from warmup_granule(node, granule, src_id)
        return True

    def _h_migr_prepare(self, txn_id: str, granule: int, dst_id: int):
        node = self.node
        owner = node.gtable.get(granule)
        if owner != node.node_id:
            return owner
        try:
            yield node.locks.acquire_async(
                txn_id, (GTABLE, granule), True,
                timeout=node.params.lock_wait_timeout,
            )
        except LockConflict as conflict:
            raise TxnAborted(AbortReason.LOCK_CONFLICT, str(conflict)) from conflict
        owner = node.gtable.get(granule)
        if owner != node.node_id:
            node.locks.release_all(txn_id)
            return owner
        ctx = TxnContext(
            node.node_id, is_reconfig=True, name="MigrationTxn-src",
            seq=node.next_txn_seq(),
        )
        ctx.txn_id = txn_id
        ctx.write(node.glog, GTABLE, granule, dst_id)
        node.txns[txn_id] = ctx
        return node.node_id

    def add_node(self) -> Generator:
        node = self.node
        members = yield from self.client.scan_members(node)
        node.mtable.update(members)
        yield from self._through_session(
            self.client.register_member(node, node.node_id, node.address)
        )
        node.mtable[node.node_id] = node.address
        self.reconfig_commits += 1
        return True

    def remove_node(self, node_id: int) -> Generator:
        yield from self._through_session(
            self.client.unregister_member(self.node, node_id)
        )
        self.node.mtable.pop(node_id, None)
        self.reconfig_commits += 1
        return True

    def recover_granules(self, dead_id: int, granules: Iterable[int]) -> Generator:
        """Service-arbitrated failover: flip each entry in the service."""
        node = self.node
        started = node.sim.now
        taken: List[int] = []
        for granule in granules:
            yield from self._through_session(
                self.client.update_ownership(node, granule, node.node_id)
            )
            node.gtable[granule] = node.node_id
            taken.append(granule)
        if taken and node.metrics is not None:
            # Mirror MarlinRuntime.recover_granules: one migration per taken
            # granule at the batch's suspicion-to-commit latency, so the
            # migration-latency SLO compares systems on equal footing.
            latency = node.sim.now - started
            for _granule in taken:
                node.metrics.record_migration(node.sim.now, latency=latency)
        return taken

    def scan_ownership(self) -> Generator:
        return (yield from self.client.scan_ownership(self.node))

    def members(self) -> Dict[int, str]:
        return dict(self.node.mtable)
