"""ZooKeeper-like external coordination service (§6.1.2 S-ZK / L-ZK).

A single-leader quorum store: every write funnels through the leader, which
orders it (single atomic-broadcast pipeline), replicates to a follower quorum
(one intra-region round trip plus follower fsync) and fsyncs locally.  Reads
are served by any server.  The leader's ordering pipeline is the scalability
bottleneck the paper measures; S-ZK and L-ZK differ only in per-op service
times and cluster cost, mirroring the D4s v3 / D8s v3 hardware split.

The service also offers ZooKeeper-style watches: registered endpoints
receive one-way ``zk_watch_event`` casts on matching path changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coord.session import ServiceSessionMixin
from repro.sim.core import Simulator, Timeout
from repro.sim.network import Network
from repro.sim.resources import CpuResource
from repro.sim.rpc import RpcEndpoint

__all__ = ["ZkConfig", "ZooKeeperService", "ZK_SMALL", "ZK_LARGE"]


@dataclass(frozen=True)
class ZkConfig:
    """Deployment flavor of the ZooKeeper baseline."""

    name: str
    #: Leader ordering-pipeline service time per write (seconds).  The
    #: pipeline is serialized (ZAB orders all writes), so 1/write_service is
    #: the hard throughput ceiling.
    write_service: float
    #: Per-read service time on any server.
    read_service: float
    #: Local fsync latency charged once per write.
    fsync: float
    #: Whole-cluster (3 VM) hourly cost, from §6.2.
    hourly_cost: float
    #: Client-side per-request session cost (serialization, znode encode,
    #: watch bookkeeping) charged while the session slot is held.
    client_overhead: float = 0.040
    #: Concurrent in-flight requests per client node's ZK session pool.
    session_pool: int = 2
    servers: int = 3


#: Calibrated (see EXPERIMENTS.md "Calibration") so the scaled simulator
#: reproduces §6's ratios: migration throughput Marlin ~2.3x S-ZK / ~1.9x
#: L-ZK single-region, and ~4.9x in the geo setting where one client round
#: trip crosses regions.  S-ZK: 3x D4s v3; L-ZK: 3x D8s v3.
ZK_SMALL = ZkConfig(
    name="zk-small", write_service=0.0058, read_service=100e-6,
    fsync=800e-6, hourly_cost=0.597, client_overhead=0.040, session_pool=2,
)
ZK_LARGE = ZkConfig(
    name="zk-large", write_service=0.0046, read_service=80e-6,
    fsync=600e-6, hourly_cost=1.173, client_overhead=0.032, session_pool=2,
)


class ZooKeeperService(ServiceSessionMixin):
    """The external coordination service actor (leader + implicit followers)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ZkConfig = ZK_SMALL,
        address: str = "zk",
        region: str = "us-west",
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.address = address
        self.region = region
        self.endpoint = RpcEndpoint(sim, network, address, region)
        #: The leader's serialized ordering/broadcast pipeline.
        self.pipeline = CpuResource(sim, 1, name=f"{address}-leader")
        self.data: Dict[str, object] = {}
        self.version: Dict[str, int] = {}
        self._watchers: List[str] = []
        self.writes_served = 0
        self.reads_served = 0
        for method, handler in (
            ("zk_write", self._h_write),
            ("zk_delete", self._h_delete),
            ("zk_read", self._h_read),
            ("zk_scan", self._h_scan),
            ("zk_watch", self._h_watch),
            ("zk_multi", self._h_multi),
        ):
            self.endpoint.register(method, handler)
        self._init_sessions()

    @property
    def hourly_cost(self) -> float:
        return self.config.hourly_cost

    def _quorum_delay(self) -> float:
        """One follower round trip plus follower+leader fsync overlap."""
        rtt = 2 * self.network.latency.intra
        return rtt + self.config.fsync

    def _h_write(self, path: str, value):
        yield from self.pipeline.run(self.config.write_service)
        yield Timeout(self._quorum_delay())
        self.data[path] = value
        self.version[path] = self.version.get(path, 0) + 1
        self.writes_served += 1
        self._notify(path, value)
        return self.version[path]

    def _h_delete(self, path: str):
        yield from self.pipeline.run(self.config.write_service)
        yield Timeout(self._quorum_delay())
        existed = path in self.data
        self.data.pop(path, None)
        self.writes_served += 1
        self._notify(path, None)
        return existed

    def _h_multi(self, ops: Tuple):
        """Atomic multi-op (one ordering slot, one quorum round)."""
        yield from self.pipeline.run(self.config.write_service * max(1, len(ops)))
        yield Timeout(self._quorum_delay())
        for kind, path, value in ops:
            if kind == "set":
                self.data[path] = value
                self.version[path] = self.version.get(path, 0) + 1
            elif kind == "delete":
                self.data.pop(path, None)
            self._notify(path, value if kind == "set" else None)
        self.writes_served += 1
        return True

    def _h_read(self, path: str):
        yield Timeout(self.config.read_service)
        self.reads_served += 1
        return self.data.get(path)

    def _h_scan(self, prefix: str):
        yield Timeout(self.config.read_service * 4)
        self.reads_served += 1
        return {
            path: value for path, value in self.data.items()
            if path.startswith(prefix)
        }

    def _h_watch(self, watcher_address: str):
        if watcher_address not in self._watchers:
            self._watchers.append(watcher_address)
        return True

    def _notify(self, path: str, value) -> None:
        for address in self._watchers:
            self.endpoint.cast(address, "zk_watch_event", path, value)
