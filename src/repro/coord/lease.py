"""Lease/TTL coordination backend (K8s Lease API style).

The fourth coordination mode, alongside Marlin's integrated system tables
and the ZooKeeper-/FDB-like services: coordination state lives in a small
replicated KV service (same single-leader quorum cost model as ZooKeeper),
and *liveness* is arbitrated by **TTL leases**.  Every compute node holds a
lease on its own granule group and renews it on a seeded interval; when a
node dies its renewals stop, the lease expires, and a successor
self-promotes by acquiring the expired lease (a CAS at the service — the
service grants an expired lease to exactly one claimant) and driving
``ExternalRuntime.recover_granules``.  This is the operator-less
sidecar-election pattern from the Kubernetes Lease API: failover latency is
bounded by ``ttl + check_interval``, paid for with continuous renewal
traffic — the detection-latency/renewal-traffic trade-off fig7 sweeps.

Three layers, separable for testing:

* :class:`LeaseTable` — the pure lease state machine (no simulator): grant /
  renew / release against explicit ``now`` timestamps.  The hypothesis
  property tests in ``tests/test_coord_lease.py`` drive this directly
  against a reference model.
* :class:`LeaseService` — the RPC actor: a ZooKeeper-shaped quorum store
  (serialized leader pipeline, quorum delay per write) that owns one
  LeaseTable plus a plain KV namespace for membership/ownership state.
* :class:`LeaseClient` — the node-side session client; carries the same
  surface as ``ZkClient`` so the unmodified :class:`ExternalRuntime` drives
  the data/reconfiguration path, plus the lease verbs the
  :class:`repro.core.failure.LeaseFailureDetector` uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.coord.external import _MEMBER_PREFIX, _OWNER_PREFIX, _ServiceClient
from repro.sim.core import Simulator, Timeout
from repro.sim.network import Network
from repro.sim.resources import CpuResource
from repro.sim.rpc import RpcEndpoint

__all__ = [
    "LEASE_DEFAULT",
    "LEASE_PREFIX",
    "LeaseClient",
    "LeaseConfig",
    "LeaseService",
    "LeaseTable",
    "lease_path",
]

#: Namespace for per-node granule-group leases in the service keyspace.
LEASE_PREFIX = "/lease/"


def lease_path(node_id: int) -> str:
    """The lease name guarding ``node_id``'s granule group."""
    return f"{LEASE_PREFIX}{node_id}"


@dataclass(frozen=True)
class LeaseConfig:
    """Deployment flavor + lease tunables for the lease backend."""

    name: str = "lease"
    #: Lease time-to-live: a holder that misses renewals for this long is
    #: considered dead and its lease becomes acquirable.  The dominant term
    #: in detection latency.
    ttl: float = 1.5
    #: Seeded renewal period per holder.  Renewal traffic is
    #: ``members / renew_interval`` RPCs per second; ttl/renew_interval is
    #: the number of missed renewals tolerated before expiry (here 3).
    renew_interval: float = 0.5
    #: Leader ordering-pipeline service time per write (same quorum store
    #: shape as ZooKeeper; leases are small so writes are cheap).
    write_service: float = 0.005
    read_service: float = 100e-6
    fsync: float = 800e-6
    #: Whole-cluster (3 VM) hourly cost — same hardware class as S-ZK.
    hourly_cost: float = 0.597
    #: Client-side per-request session cost.  Lease records are tiny
    #: (holder + expiry), cheaper to encode than znodes.
    client_overhead: float = 0.020
    session_pool: int = 2
    servers: int = 3


LEASE_DEFAULT = LeaseConfig()


class LeaseTable:
    """The pure lease state machine: ``name -> (holder, expires)``.

    No simulator dependency — every transition takes an explicit ``now`` so
    the semantics are property-testable in isolation.  Invariant (enforced
    here, asserted against a reference model in tests): at any instant a
    lease has at most one holder whose grant has not expired, and an
    expired lease is granted to exactly the first claimant to CAS it.
    """

    def __init__(self):
        self.leases: Dict[str, Tuple[int, float]] = {}

    def acquire(
        self, name: str, holder: int, ttl: float, now: float
    ) -> Tuple[bool, int, float]:
        """Try to take ``name``.  Granted iff the lease is absent, expired,
        or already held by ``holder`` (re-acquire refreshes the expiry).
        Returns ``(granted, current_holder, current_expires)``."""
        current = self.leases.get(name)
        if current is not None:
            cur_holder, expires = current
            if cur_holder != holder and expires > now:
                return False, cur_holder, expires
        self.leases[name] = (holder, now + ttl)
        return True, holder, now + ttl

    def renew(
        self, name: str, holder: int, ttl: float, now: float
    ) -> Tuple[bool, Optional[int]]:
        """Extend ``name`` iff ``holder`` still holds it.  An expired but
        unclaimed lease renews successfully (the holder won the race back);
        a lease taken over by a successor rejects — that rejection is how a
        fenced-but-alive holder learns to stand down."""
        current = self.leases.get(name)
        if current is None or current[0] != holder:
            return False, current[0] if current else None
        self.leases[name] = (holder, now + ttl)
        return True, holder

    def release(self, name: str, holder: int) -> bool:
        """Drop ``name`` iff ``holder`` holds it (e.g. after failover the
        successor retires the dead node's lease)."""
        current = self.leases.get(name)
        if current is None or current[0] != holder:
            return False
        del self.leases[name]
        return True

    def snapshot(self, prefix: str = "") -> Dict[str, Tuple[int, float]]:
        """Point-in-time copy of every lease under ``prefix``."""
        return {
            name: entry for name, entry in self.leases.items()
            if name.startswith(prefix)
        }


class LeaseService:
    """The lease coordination service actor (leader + implicit followers).

    Same quorum-store cost model as :class:`ZooKeeperService` — serialized
    leader pipeline per write, one follower round trip plus fsync — with a
    :class:`LeaseTable` for the lease namespace and a plain KV map for
    membership/ownership (so ``Cluster`` bootstrap seeding and the generic
    ``ZkClient``-shaped data path work unchanged).  Lease expiry is judged
    lazily against ``sim.now`` when a request is applied: there is no
    background expiry sweep, so a fault-free run costs no extra events and
    replays bit-identically.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: LeaseConfig = LEASE_DEFAULT,
        address: str = "lease",
        region: str = "us-west",
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.address = address
        self.region = region
        self.endpoint = RpcEndpoint(sim, network, address, region)
        #: The leader's serialized ordering pipeline (writes + lease CAS).
        self.pipeline = CpuResource(sim, 1, name=f"{address}-leader")
        self.data: Dict[str, object] = {}
        self.version: Dict[str, int] = {}
        self.table = LeaseTable()
        self.writes_served = 0
        self.reads_served = 0
        self.renews_served = 0
        self.acquires_granted = 0
        self.acquires_rejected = 0
        for method, handler in (
            ("lease_write", self._h_write),
            ("lease_delete", self._h_delete),
            ("lease_read", self._h_read),
            ("lease_scan", self._h_scan),
            ("lease_acquire", self._h_acquire),
            ("lease_renew", self._h_renew),
            ("lease_release", self._h_release),
            ("lease_table", self._h_table),
        ):
            self.endpoint.register(method, handler)

    @property
    def hourly_cost(self) -> float:
        return self.config.hourly_cost

    def _quorum_delay(self) -> float:
        """One follower round trip plus follower+leader fsync overlap."""
        rtt = 2 * self.network.latency.intra
        return rtt + self.config.fsync

    # -- plain KV (membership / granule ownership) -----------------------------

    def _h_write(self, path: str, value):
        yield from self.pipeline.run(self.config.write_service)
        yield Timeout(self._quorum_delay())
        self.data[path] = value
        self.version[path] = self.version.get(path, 0) + 1
        self.writes_served += 1
        return self.version[path]

    def _h_delete(self, path: str):
        yield from self.pipeline.run(self.config.write_service)
        yield Timeout(self._quorum_delay())
        existed = path in self.data
        self.data.pop(path, None)
        self.writes_served += 1
        return existed

    def _h_read(self, path: str):
        yield Timeout(self.config.read_service)
        self.reads_served += 1
        return self.data.get(path)

    def _h_scan(self, prefix: str):
        yield Timeout(self.config.read_service * 4)
        self.reads_served += 1
        return {
            path: value for path, value in self.data.items()
            if path.startswith(prefix)
        }

    # -- lease verbs -----------------------------------------------------------

    def _h_acquire(self, name: str, holder: int, ttl: float):
        """CAS-acquire: the leader pipeline serializes claimants, so when a
        lease expires exactly one racer observes it expired and wins; the
        rest see the winner's fresh grant and are rejected.  Expiry is
        judged at apply time (post quorum delay), the authoritative order."""
        yield from self.pipeline.run(self.config.write_service)
        yield Timeout(self._quorum_delay())
        granted, cur_holder, expires = self.table.acquire(
            name, holder, ttl, self.sim.now
        )
        self.writes_served += 1
        if granted:
            self.acquires_granted += 1
        else:
            self.acquires_rejected += 1
        return granted, cur_holder, expires

    def _h_renew(self, name: str, holder: int, ttl: float):
        yield from self.pipeline.run(self.config.write_service)
        yield Timeout(self._quorum_delay())
        ok, cur_holder = self.table.renew(name, holder, ttl, self.sim.now)
        self.writes_served += 1
        self.renews_served += 1
        return ok, cur_holder

    def _h_release(self, name: str, holder: int):
        yield from self.pipeline.run(self.config.write_service)
        yield Timeout(self._quorum_delay())
        released = self.table.release(name, holder)
        self.writes_served += 1
        return released

    def _h_table(self, prefix: str):
        """Read-only lease snapshot (the monitors' expiry-check scan)."""
        yield Timeout(self.config.read_service * 4)
        self.reads_served += 1
        return self.table.snapshot(prefix)


class LeaseClient(_ServiceClient):
    """Node-side client for the lease service.

    Carries the ``ZkClient`` surface (ownership/membership over the KV
    namespace) so the plain :class:`ExternalRuntime` runs the data and
    reconfiguration paths unchanged, plus the lease verbs the lease failure
    detector drives.  Request plumbing (bounded timeout, linear-backoff
    retry) is inherited from :class:`_ServiceClient`.
    """

    kind = "lease"

    def __init__(
        self,
        service_address: str = "lease",
        client_overhead: float = 0.0,
        session_pool: int = 2,
        **kwargs,
    ):
        super().__init__(
            service_address, client_overhead, session_pool, **kwargs
        )

    # -- ZkClient-shaped data/reconfig surface ---------------------------------

    def update_ownership(self, node, granule: int, owner: int) -> Generator:
        version = yield from self._request(
            node, "lease_write", f"{_OWNER_PREFIX}{granule}", owner
        )
        return version

    def register_member(self, node, node_id: int, address: str) -> Generator:
        yield from self._request(
            node, "lease_write", f"{_MEMBER_PREFIX}{node_id}", address
        )
        return True

    def unregister_member(self, node, node_id: int) -> Generator:
        yield from self._request(node, "lease_delete", f"{_MEMBER_PREFIX}{node_id}")
        return True

    def scan_ownership(self, node) -> Generator:
        raw = yield from self._request(node, "lease_scan", _OWNER_PREFIX)
        return {
            int(path[len(_OWNER_PREFIX):]): owner for path, owner in raw.items()
        }

    def scan_members(self, node) -> Generator:
        raw = yield from self._request(node, "lease_scan", _MEMBER_PREFIX)
        return {
            int(path[len(_MEMBER_PREFIX):]): addr for path, addr in raw.items()
        }

    # -- lease verbs -----------------------------------------------------------

    def acquire_lease(self, node, name: str, holder: int, ttl: float) -> Generator:
        result = yield from self._request(node, "lease_acquire", name, holder, ttl)
        return result

    def renew_lease(self, node, name: str, holder: int, ttl: float) -> Generator:
        result = yield from self._request(node, "lease_renew", name, holder, ttl)
        return result

    def release_lease(self, node, name: str, holder: int) -> Generator:
        result = yield from self._request(node, "lease_release", name, holder)
        return result

    def lease_table(self, node, prefix: str = LEASE_PREFIX) -> Generator:
        result = yield from self._request(node, "lease_table", prefix)
        return result
