"""FoundationDB-like external coordination service (§6.1.2 FDB).

Models the structure the paper's findings hinge on:

* transactions need **more round trips** than ZooKeeper — a
  ``GetReadVersion`` against the sequencer, then a commit through the proxy /
  resolver / tlog pipeline (the paper: "each migration triggers a metadata
  update in FDB, requiring multiple cross-region round trips") — which is why
  FDB loses badly in geo-distributed deployments (§6.5);
* **partitioned capacity** — commits resolve on one of ``shards`` parallel
  pipelines by key hash, so FDB out-scales the single-leader ZooKeeper in a
  single region (§6.4, Fig. 12c) but its capacity is *fixed*: it does not
  grow with the database it coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.coord.session import ServiceSessionMixin
from repro.sim.core import Simulator, Timeout
from repro.sim.network import Network
from repro.sim.resources import CpuResource
from repro.sim.rpc import RpcEndpoint

__all__ = ["FdbConfig", "FdbService", "FDB_DEFAULT"]


@dataclass(frozen=True)
class FdbConfig:
    name: str
    #: Number of parallel commit pipelines (transaction/storage shards).
    shards: int
    #: Sequencer service time for GetReadVersion.
    grv_service: float
    #: Per-commit service time on the owning shard pipeline.
    commit_service: float
    #: tlog fsync + resolver overhead charged per commit.
    fsync: float
    read_service: float
    #: Whole-cluster hourly cost ("hardware comparable to S-ZK", §6.1.2).
    hourly_cost: float
    #: Client-side per-transaction cost (key resolution, conflict ranges).
    client_overhead: float = 0.030
    #: Concurrent in-flight transactions per client node.
    session_pool: int = 2


#: Three nodes, one transaction + one storage + one stateless process each.
#: Calibrated so FDB out-scales ZooKeeper in one region (fixed ~300 updates/s
#: across 3 shards) but pays two cross-region round trips per update in the
#: geo setting — the structure behind Figures 12c and 13.
FDB_DEFAULT = FdbConfig(
    name="fdb", shards=3, grv_service=0.002, commit_service=0.010,
    fsync=0.001, read_service=100e-6, hourly_cost=0.597,
    client_overhead=0.030, session_pool=2,
)


class FdbService(ServiceSessionMixin):
    """Sequencer + sharded commit pipelines behind one RPC address."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: FdbConfig = FDB_DEFAULT,
        address: str = "fdb",
        region: str = "us-west",
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.address = address
        self.region = region
        self.endpoint = RpcEndpoint(sim, network, address, region)
        self.sequencer = CpuResource(sim, 1, name=f"{address}-sequencer")
        self.pipelines = [
            CpuResource(sim, 1, name=f"{address}-shard-{i}")
            for i in range(config.shards)
        ]
        self.data: Dict[str, object] = {}
        self.read_version = 0
        self.commits_served = 0
        self.reads_served = 0
        for method, handler in (
            ("fdb_get_read_version", self._h_grv),
            ("fdb_commit", self._h_commit),
            ("fdb_read", self._h_read),
            ("fdb_scan", self._h_scan),
        ):
            self.endpoint.register(method, handler)
        self._init_sessions()

    @property
    def hourly_cost(self) -> float:
        return self.config.hourly_cost

    def _shard_of(self, key: str) -> CpuResource:
        return self.pipelines[hash(key) % self.config.shards]

    def _h_grv(self):
        yield from self.sequencer.run(self.config.grv_service)
        return self.read_version

    def _h_commit(self, writes: Tuple, read_version: int):
        """Commit a write set: ``writes`` is a tuple of (key, value|None)."""
        if not writes:
            return self.read_version
        # All touched shards participate; the commit is paced by the first
        # key's pipeline plus the tlog fsync.
        shard = self._shard_of(writes[0][0])
        yield from shard.run(self.config.commit_service * len(writes))
        yield Timeout(self.config.fsync)
        for key, value in writes:
            if value is None:
                self.data.pop(key, None)
            else:
                self.data[key] = value
        self.read_version += 1
        self.commits_served += 1
        return self.read_version

    def _h_read(self, key: str):
        yield Timeout(self.config.read_service)
        self.reads_served += 1
        return self.data.get(key)

    def _h_scan(self, prefix: str):
        yield Timeout(self.config.read_service * 4)
        self.reads_served += 1
        return {k: v for k, v in self.data.items() if k.startswith(prefix)}
