"""Coordination mechanisms: Marlin and the external-service baselines.

``repro.coord.base`` defines the runtime interface a compute node programs
against; ``repro.coord.zookeeper`` and ``repro.coord.fdb`` model the paper's
S-ZK / L-ZK and FoundationDB baselines (§6.1.2); ``repro.coord.lease`` is
the lease/TTL backend (K8s Lease API style — expiry-driven failover); the
Marlin runtime itself lives in ``repro.core`` (it is the paper's
contribution, not a baseline).
"""

from repro.coord.base import CoordinationRuntime
from repro.coord.external import ExternalRuntime
from repro.coord.fdb import FdbService
from repro.coord.lease import LeaseClient, LeaseConfig, LeaseService, LeaseTable
from repro.coord.zookeeper import ZooKeeperService

__all__ = [
    "CoordinationRuntime",
    "ExternalRuntime",
    "FdbService",
    "LeaseClient",
    "LeaseConfig",
    "LeaseService",
    "LeaseTable",
    "ZooKeeperService",
]
