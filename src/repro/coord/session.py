"""Service-session liveness for the external coordination services.

Real ZooKeeper clients hold a *session* the service expires when heartbeats
stop; ephemeral znodes (and with them, leadership) vanish with the session.
FDB clients similarly keep a connection the cluster controller tracks.  The
simulated services model the liveness half of that: every compute node's
ring detector pings the service each probe round (``sess_ping``), and a
monitor that suspects a peer asks the service how stale that peer's session
is (``sess_check``) before fencing.

This is the baselines' analogue of Marlin's SysLog suspicion vote: a node
partitioned from its peers but *not* from the service keeps a fresh session,
so peer monitors stand down and there is no mutual fencing — matching real
ZK, where an isolated-but-sessioned leader keeps its ephemeral nodes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.core import Timeout

__all__ = ["ServiceSessionMixin"]


class ServiceSessionMixin:
    """Session-liveness handlers mixed into the external service actors.

    The host class must provide ``self.sim``, ``self.endpoint`` and a config
    with ``read_service``; it calls :meth:`_init_sessions` at the end of its
    ``__init__``.
    """

    def _init_sessions(self) -> None:
        self._last_seen: Dict[int, float] = {}
        self.pings_served = 0
        # sess_ping is a plain (non-generator) handler: a ping costs the
        # network round trip only, like a TCP keepalive the service absorbs.
        self.endpoint.register("sess_ping", self._h_sess_ping)
        self.endpoint.register("sess_check", self._h_sess_check)

    def _h_sess_ping(self, node_id: int) -> bool:
        self._last_seen[node_id] = self.sim.now
        self.pings_served += 1
        return True

    def _h_sess_check(self, node_id: int):
        """Age of ``node_id``'s session: seconds since its last ping, or
        ``None`` if the node never pinged (no session — treat as expired)."""
        yield Timeout(self.config.read_service)
        self.reads_served += 1
        last: Optional[float] = self._last_seen.get(node_id)
        if last is None:
            return None
        return self.sim.now - last
