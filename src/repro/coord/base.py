"""The coordination-runtime interface a compute node programs against.

A *runtime* encapsulates where coordination state lives and how it changes:

* :class:`repro.core.runtime.MarlinRuntime` — integrated, state in the
  database's own system tables (the paper's contribution);
* :class:`repro.coord.external.ExternalRuntime` — state in an external
  coordination service (ZooKeeper-like or FoundationDB-like).

Every method that performs I/O is a generator (simulation process fragment)
so protocol code composes with ``yield from``.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Generator, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.node import ComputeNode
    from repro.engine.txn import TxnContext

__all__ = ["CoordinationRuntime"]


class CoordinationRuntime(abc.ABC):
    """Per-node strategy object for coordination-state access."""

    #: Human-readable mechanism name ("marlin", "zookeeper", "fdb").
    kind: str = "abstract"

    def __init__(self):
        self.node: Optional["ComputeNode"] = None

    def attach(self, node: "ComputeNode") -> None:
        """Bind to a node; register any RPC handlers the mechanism needs."""
        self.node = node

    # -- user transaction path ------------------------------------------------

    @abc.abstractmethod
    def check_ownership(self, ctx: "TxnContext", granule: int) -> None:
        """Data-effectiveness check (Algorithm 1 lines 2-6).

        Must raise :class:`repro.engine.txn.WrongNodeError` if this node does
        not own ``granule``; in Marlin this also takes the GTable read lock
        that is held until commit.
        """

    @abc.abstractmethod
    def commit_user(self, ctx: "TxnContext") -> Generator:
        """Commit a user transaction coordinated by this node.

        Raises :class:`repro.engine.txn.TxnAborted` on failure.
        """

    # -- reconfiguration operations --------------------------------------------

    @abc.abstractmethod
    def migrate(self, granule: int, src_id: int, dst_id: int) -> Generator:
        """Run on the *destination* node: transfer ownership of ``granule``.

        Returns True on commit; raises :class:`TxnAborted` on conflict.
        """

    @abc.abstractmethod
    def add_node(self) -> Generator:
        """Register this node in the cluster membership (AddNodeTxn)."""

    @abc.abstractmethod
    def remove_node(self, node_id: int) -> Generator:
        """Remove ``node_id`` from the membership (DeleteNodeTxn)."""

    @abc.abstractmethod
    def recover_granules(self, dead_id: int, granules: Iterable[int]) -> Generator:
        """Take over ``granules`` from an unresponsive node (RecoveryMigrTxn)."""

    @abc.abstractmethod
    def scan_ownership(self) -> Generator:
        """Full granule->owner map for routing (ScanGTableTxn)."""

    def recover(self) -> Generator:
        """Replay-driven crash recovery on restart (WAL scan + in-doubt
        resolution).  Default: nothing to recover.  Runtimes that journal
        2PC progress override this (``repro.core.recovery``)."""
        return None
        yield  # pragma: no cover - makes this a generator

    def refresh_views(self) -> Generator:
        """Re-fetch authoritative membership/ownership views on restart.

        Default: nothing to refresh — Marlin's CAS-failure replay already
        folds the shared log into the system tables.  External runtimes
        override this to re-scan the coordination service so a restarted
        node does not serve granules a failover moved while it was down.
        """
        return None
        yield  # pragma: no cover - makes this a generator

    # -- bookkeeping ------------------------------------------------------------

    @abc.abstractmethod
    def members(self) -> Dict[int, str]:
        """Current membership view: node_id -> RPC address."""

    def owned_granules(self) -> List[int]:
        """Granules this node currently believes it owns."""
        node = self.node
        return sorted(
            g for g, owner in node.gtable.items() if owner == node.node_id
        )
