"""repro — a reproduction of "Marlin: Efficient Coordination for Autoscaling
Cloud DBMS" (SIGMOD 2025).

Public API quick map:

* :class:`repro.Cluster` / :class:`repro.ClusterConfig` — build a simulated
  storage-disaggregated, Partitioned-Writer database with Marlin or an
  external coordination service (``marlin`` / ``zk-small`` / ``zk-large`` /
  ``fdb``).
* :mod:`repro.core` — Marlin itself: MarlinCommit, the five reconfiguration
  transactions, ring failure detection, invariants, and the executable TLA+
  migration model.
* :mod:`repro.workload` — YCSB and TPC-C generators plus closed-loop clients.
* :mod:`repro.experiments` — the declarative experiment API
  (:class:`ScenarioSpec` / ``Sweep`` / SLO probes, run by ``run_spec``; see
  EXPERIMENTS.md) plus ``fig7`` … ``fig15``: one module per evaluation
  figure, each regenerating its table/series as thin specs.
  ``python -m repro.experiments`` runs them from the CLI.
* :mod:`repro.chaos` — deterministic fault injection: typed fault events,
  declarative :class:`FaultSchedule` timelines and the seeded
  :class:`ChaosController` (see CHAOS.md).
"""

from repro.chaos import ChaosController, FaultSchedule
from repro.cluster import Cluster, ClusterConfig, CostModel, MetricsCollector
from repro.core import MarlinRuntime, check_invariants, marlin_commit
from repro.core.autoscaler import Autoscaler
from repro.engine.node import NodeParams, TxnOp, TxnSpec
from repro.workload import Client, Router, TpccWorkload, YcsbWorkload

__version__ = "1.0.0"

__all__ = [
    "Autoscaler",
    "ChaosController",
    "Client",
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "FaultSchedule",
    "MarlinRuntime",
    "MetricsCollector",
    "NodeParams",
    "Router",
    "TpccWorkload",
    "TxnOp",
    "TxnSpec",
    "YcsbWorkload",
    "check_invariants",
    "marlin_commit",
    "__version__",
]
