"""Figure 13 — Cost vs. migration duration, geo-distributed (§6.5).

Clients and compute nodes span four regions (US West, Asia East, UK South,
Australia East); storage is co-located per region; ZooKeeper and FDB are
pinned in US West.  Paper findings: Marlin's migrations stay region-local
(up to 4.9x shorter than ZK-based methods and up to 9.5x shorter than FDB,
whose updates need two cross-region round trips); L-ZK's hardware advantage
is erased by cross-region latency; cost ratios match the single-region case.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments import fig12
from repro.experiments.harness import FigureResult, ScenarioResult, SYSTEM_LABELS
from repro.sim.network import AZURE_REGIONS

__all__ = ["GEO_SCALE_OUTS", "run", "run_sweep", "summarize"]

#: Geo sweep uses initial node counts divisible by the 4 regions.
GEO_SCALE_OUTS: Tuple[Tuple[str, int, int, int], ...] = (
    ("SO4-8", 4, 50, 6250),
    ("SO8-16", 8, 100, 12500),
)


def run_sweep(
    scale: float = 1.0,
    systems: Sequence[str] = fig12.ALL_SYSTEMS,
    seed: int = 1,
    scale_outs: Sequence[Tuple[str, int, int, int]] = GEO_SCALE_OUTS,
    workers: Optional[int] = None,
    cache=None,
) -> Dict[Tuple[str, str], ScenarioResult]:
    return fig12.run_sweep(
        scale=scale,
        systems=systems,
        seed=seed,
        scale_outs=scale_outs,
        regions=tuple(AZURE_REGIONS),
        workers=workers,
        cache=cache,
    )


def summarize(results: Dict[Tuple[str, str], ScenarioResult]) -> FigureResult:
    fig = fig12.summarize(
        results,
        figure="Figure 13",
        title="Cost vs. migration duration (geo-distributed, 4 regions)",
    )
    # Geo-specific headline: L-ZK's advantage over S-ZK disappears.
    scale_names = sorted({k[0] for k in results})
    largest = scale_names[-1]
    szk = results.get((largest, "zk-small"))
    lzk = results.get((largest, "zk-large"))
    if szk and lzk and lzk.migration_duration:
        fig.findings["szk_over_lzk_duration_geo"] = (
            szk.migration_duration / lzk.migration_duration
        )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = fig12.ALL_SYSTEMS,
    seed: int = 1,
    results: Optional[Dict[Tuple[str, str], ScenarioResult]] = None,
    workers: Optional[int] = None,
    cache=None,
) -> FigureResult:
    if results is None:
        results = run_sweep(
            scale=scale, systems=systems, seed=seed, workers=workers, cache=cache
        )
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.1).format_table())
