"""``run_spec``: the single executor behind every experiment.

One runner owns the whole lifecycle — build the cluster, start the fault
schedule, warm up, bind clients, fire timeline phases, drain, stop, verify,
probe — so individual experiments are *specs*, not harness forks.  The
execution order is kept exactly in step with the original per-figure
harnesses: for a given seed, a ported figure is bit-identical to its
pre-spec run (pinned by ``tests/test_experiment_spec.py``'s parity goldens).

Phase actions are looked up by name in :data:`ACTIONS`; experiments can add
their own with :func:`register_action` while keeping their specs
serializable (the registry is populated at import, the spec only stores the
name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.core.autoscaler import Autoscaler
from repro.core.invariants import check_view_consistency
from repro.core.reconfig import NodeAlreadyExistsError, NodeNotExistError
from repro.experiments.harness import ScenarioResult, start_clients
from repro.experiments.spec import ProbeSpec, ScenarioSpec
from repro.sim.core import Timeout

__all__ = [
    "ACTIONS",
    "ProbeResult",
    "RunContext",
    "SpecRunResult",
    "build_config",
    "register_action",
    "result_summary",
    "run_spec",
]


@dataclass
class ProbeResult:
    """One evaluated SLO probe: measured value vs. threshold.

    For series probes (``ProbeSpec.every``), ``series`` holds one
    ``(window_start, value, ok)`` entry per sub-window and
    ``violation_fraction`` is the share of *measured* windows that violated
    the threshold — the "violation fraction over time" view of an SLO; the
    top-level ``value`` / ``ok`` stay the whole-window verdict.  A probe
    that measured nothing (e.g. ``migration_latency`` over a cell with no
    recorded migrations) reports ``value=None`` / ``violation_fraction=None``
    — "unmeasured", deliberately distinct from a measured 0.0.
    """

    name: str
    kind: str
    value: Optional[float]
    threshold: float
    ok: bool
    series: Optional[List[Tuple[float, Optional[float], bool]]] = None
    violation_fraction: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "name": self.name,
            "kind": self.kind,
            "value": self.value,
            "threshold": self.threshold,
            "ok": self.ok,
        }
        if self.series is not None:
            out["series"] = [[t, v, ok] for t, v, ok in self.series]
            out["violation_fraction"] = self.violation_fraction
        return out


@dataclass
class SpecRunResult(ScenarioResult):
    """A :class:`ScenarioResult` plus the spec, probe verdicts and extras."""

    spec: Optional[ScenarioSpec] = None
    probes: List[ProbeResult] = field(default_factory=list)
    #: Action-specific outputs (e.g. ``membership_churn`` statistics).
    extras: Dict[str, Any] = field(default_factory=dict)
    #: Detached :class:`repro.obs.TraceData` when the spec enabled tracing.
    trace: Any = None

    @property
    def slo_ok(self) -> bool:
        return all(p.ok for p in self.probes)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready digest (what the CLI prints for spec-file runs)."""
        return result_summary(self)


def result_summary(result) -> Dict[str, Any]:
    """JSON-ready digest of a finished run.

    Works on anything with the run-result shape — a live
    :class:`SpecRunResult` or a
    :class:`repro.experiments.parallel.PortableRunResult` shipped back from
    a worker process.
    """
    m = result.metrics
    report = result.cost
    spec = result.spec
    return {
        "name": spec.name if spec else "",
        "system": result.system,
        "seed": spec.seed if spec else None,
        "duration_s": result.duration,
        "committed": m.total_committed,
        "aborted": m.total_aborted,
        "abort_ratio": m.abort_ratio(),
        "migrations": m.total_migrations,
        "migration_duration_s": m.migration_duration,
        "failovers": len(m.failovers),
        "latency_p99_s": m.latency_stats()["p99"],
        "cost_per_mtxn_usd": report.cost_per_million_txns,
        "slo_ok": result.slo_ok,
        "probes": [p.to_dict() for p in result.probes],
        "extras": result.extras,
    }


@dataclass
class RunContext:
    """Mutable run state handed to every phase action."""

    cluster: Cluster
    spec: ScenarioSpec
    result: SpecRunResult
    routers: Dict[str, Any] = field(default_factory=dict)
    pools: Dict[str, List[Any]] = field(default_factory=dict)
    autoscaler: Optional[Autoscaler] = None
    #: Called (in order) once the run reaches its end time, before clients
    #: stop — actions use these to snapshot their measurements.
    finalizers: List[Callable[[], None]] = field(default_factory=list)

    def _sync_client_count(self) -> None:
        self.cluster.client_count = sum(len(p) for p in self.pools.values())


#: Phase-action registry: name -> callable(ctx, **phase.params).
ACTIONS: Dict[str, Callable] = {}


def register_action(name: str):
    """Register a phase action under ``name`` (importable = runnable)."""

    def decorate(fn):
        ACTIONS[name] = fn
        return fn

    return decorate


@register_action("scale_out")
def _act_scale_out(ctx: RunContext, count: int, router: str = "primary") -> None:
    """Add ``count`` nodes, rebalance, and sync the named client router."""
    cluster = ctx.cluster

    def do_scale():
        yield from cluster.scale_out(count)
        target = ctx.routers.get(router)
        if target is not None:
            target.sync(cluster.assignment_from_views())

    proc = cluster.sim.spawn(do_scale(), name="scale-out", daemon=True)
    cluster.sim.run_until(proc.result, limit=ctx.spec.run_limit)


@register_action("scale_in")
def _act_scale_in(
    ctx: RunContext,
    victims: Optional[List[int]] = None,
    count: Optional[int] = None,
    router: str = "primary",
) -> None:
    """Drain and remove ``victims`` (or the last ``count`` live nodes)."""
    cluster = ctx.cluster
    if victims is None:
        if not count:
            raise ValueError("scale_in needs victims or count")
        victims = cluster.live_node_ids()[-count:]

    def do_scale():
        yield from cluster.scale_in(list(victims))
        target = ctx.routers.get(router)
        if target is not None:
            target.sync(cluster.assignment_from_views())

    proc = cluster.sim.spawn(do_scale(), name="scale-in", daemon=True)
    cluster.sim.run_until(proc.result, limit=ctx.spec.run_limit)


@register_action("clients_start")
def _act_clients_start(
    ctx: RunContext,
    pool: str = "burst",
    count: int = 0,
    seed_factor: Optional[int] = None,
    bind_to_nodes: Optional[List[int]] = None,
    workload: Optional[str] = None,
) -> None:
    """Attach an extra client pool (e.g. the §6.6 burst population)."""
    spec = ctx.spec
    # Default to a pool-distinct factor: reusing the primary pool's factor
    # verbatim would hand the burst clients byte-identical RNG seeds (and so
    # identical key sequences) to the primary population.
    factor = (
        seed_factor
        if seed_factor is not None
        else spec.workload.client_seed_factor + 101 * len(ctx.pools)
    )
    router, clients = start_clients(
        ctx.cluster,
        count,
        workload or spec.workload.kind,
        seed=spec.seed * factor,
        bind_to_nodes=bind_to_nodes,
        incr_fraction=spec.workload.incr_fraction,
        remote_fraction=spec.workload.remote_fraction,
    )
    ctx.routers[pool] = router
    ctx.pools[pool] = clients
    ctx._sync_client_count()


@register_action("clients_stop")
def _act_clients_stop(ctx: RunContext, pool: str = "burst") -> None:
    for client in ctx.pools.pop(pool, ()):
        client.stop()
    ctx.routers.pop(pool, None)
    ctx._sync_client_count()


@register_action("autoscaler")
def _act_autoscaler(
    ctx: RunContext,
    interval: float = 2.0,
    clients_per_node: float = 25.0,
    min_nodes: int = 1,
    max_nodes: int = 64,
    cooldown: float = 3.0,
    router: str = "primary",
) -> None:
    """Start the reactive autoscaler (stopped automatically at run end)."""
    scaler = Autoscaler(
        ctx.cluster,
        router=ctx.routers.get(router),
        interval=interval,
        clients_per_node=clients_per_node,
        min_nodes=min_nodes,
        max_nodes=max_nodes,
        cooldown=cooldown,
    )
    scaler.start()
    ctx.autoscaler = scaler


@register_action("membership_churn")
def _act_membership_churn(ctx: RunContext, interval: float = 15.0) -> None:
    """§6.7 MTable stress: every node leaves and re-joins once per interval.

    Statistics land in ``result.extras["membership_churn"]`` when the run
    reaches its (fixed) duration: offered vs. achieved update rate, latency
    percentiles, and — for Marlin — TryLog OCC retries.
    """
    cluster = ctx.cluster
    stats = {"updates": 0, "failures": 0}
    latencies: List[float] = []

    def stress_loop(node_id: int, offset: float):
        node = cluster.nodes[node_id]
        yield Timeout(offset)
        while True:
            t0 = cluster.sim.now
            try:
                ok = yield from node.runtime.remove_node(node_id)
                if ok:
                    stats["updates"] += 1
                ok = yield from node.runtime.add_node()
                if ok:
                    stats["updates"] += 1
            except (NodeAlreadyExistsError, NodeNotExistError):
                stats["failures"] += 1
            latencies.append((cluster.sim.now - t0) / 2.0)
            yield Timeout(interval)

    rng = cluster.sim.rng
    for node_id in list(cluster.nodes):
        cluster.nodes[node_id].spawn(
            stress_loop(node_id, rng.random() * interval),
            name=f"stress-{node_id}",
        )

    def finalize():
        duration = ctx.spec.duration or cluster.sim.now
        num_nodes = ctx.spec.topology.nodes
        achieved = stats["updates"] / duration
        offered = 2.0 * num_nodes / interval
        retries = 0
        if ctx.spec.topology.coordination == "marlin":
            retries = sum(
                getattr(n.runtime, "refreshes", 0)
                for n in cluster.nodes.values()
            )
        ctx.result.extras["membership_churn"] = {
            "offered_tps": offered,
            "achieved_tps": achieved,
            "efficiency": achieved / offered if offered else 0.0,
            "failures": stats["failures"],
            "mean_latency_s": float(np.mean(latencies)) if latencies else 0.0,
            "p99_latency_s": (
                float(np.percentile(latencies, 99)) if latencies else 0.0
            ),
            "retries": retries,
        }

    ctx.finalizers.append(finalize)


# -- config / probes -----------------------------------------------------------


def build_config(spec: ScenarioSpec) -> ClusterConfig:
    """Translate a spec into the :class:`ClusterConfig` it runs on."""
    topo, work = spec.topology, spec.workload
    kwargs: Dict[str, Any] = dict(
        coordination=topo.coordination,
        num_nodes=topo.nodes,
        regions=tuple(topo.regions),
        home_region=topo.home_region or topo.regions[0],
        num_keys=work.num_keys,
        keys_per_granule=work.keys_per_granule,
        node_params=topo.resolve_node_params(),
        metrics_bucket=topo.metrics_bucket,
        provision_delay=topo.provision_delay,
        seed=spec.seed,
    )
    if topo.replication is not None:
        kwargs["replication"] = topo.resolve_replication()
    if topo.storage_append_latency is not None:
        kwargs["storage_append_latency"] = topo.storage_append_latency
    if topo.storage_read_latency is not None:
        kwargs["storage_read_latency"] = topo.storage_read_latency
    if spec.faults is not None:
        kwargs.update(
            failure_detection=spec.faults.failure_detection,
            detector_interval=spec.faults.detector_interval,
            detector_timeout=spec.faults.detector_timeout,
            detector_misses=spec.faults.detector_misses,
            detector_vote_gate=spec.faults.detector_vote_gate,
        )
    return ClusterConfig(**kwargs)


def _probe_measure(probe: ProbeSpec, result, window: Tuple[float, float]):
    """Evaluate one probe over one ``[t0, t1)`` window: ``(value, ok)``."""
    t0, t1 = window
    metrics = result.metrics
    bucket = metrics.bucket
    if probe.kind == "latency":
        samples = [
            v
            for b, values in metrics.latencies.items()
            if t0 <= b * bucket < t1
            for v in values
        ]
        value = float(np.percentile(samples, probe.pct)) if samples else 0.0
        ok = value <= probe.threshold
    elif probe.kind == "throughput_floor":
        points = [v for t, v in result.throughput_series() if t0 <= t < t1]
        value = float(np.mean(points)) if points else 0.0
        ok = value >= probe.threshold
    elif probe.kind == "abort_ceiling":
        commits = sum(
            c for b, c in metrics.committed.items() if t0 <= b * bucket < t1
        )
        aborts = sum(
            c for b, c in metrics.aborted.items() if t0 <= b * bucket < t1
        )
        total = commits + aborts
        value = aborts / total if total else 0.0
        ok = value <= probe.threshold
    elif probe.kind == "unavailability":
        longest = current = 0.0
        for t, tps in result.throughput_series():
            if not t0 <= t < t1:
                continue
            current = current + bucket if tps == 0 else 0.0
            longest = max(longest, current)
        value = longest
        ok = value <= probe.threshold
    elif probe.kind == "migration_latency":
        samples = [
            v
            for b, values in metrics.migration_latency_buckets().items()
            if t0 <= b * bucket < t1
            for v in values
        ]
        if samples:
            value = float(np.percentile(samples, probe.pct))
            ok = value <= probe.threshold
        else:
            # No migrations in the window: the SLO is *unmeasured*, not
            # satisfied.  A 0.0 here reads as "instant failover" in cells
            # where no failover ever ran — the fig7 vacuous-SLO footgun.
            value = None
            ok = True
    elif probe.kind in ("rpo_bytes", "rto_s"):
        buckets = (
            metrics.rpo_buckets()
            if probe.kind == "rpo_bytes"
            else metrics.rto_buckets()
        )
        samples = [
            v
            for b, values in buckets.items()
            if t0 <= b * bucket < t1
            for v in values
        ]
        if samples:
            # Worst case over the window: one lossy (or slow) failover is a
            # violation even when siblings in the same window were clean.
            value = float(max(samples))
            ok = value <= probe.threshold
        else:
            # No failovers in the window: unmeasured, not "zero loss" — the
            # same vacuous-SLO footgun as migration_latency above.
            value = None
            ok = True
    elif probe.kind in ("counter_max", "counter_min"):
        # Whole-run counters from the tracing registry; windows do not
        # apply (counters are not bucketed).  An untraced run reads 0.
        counters = result.extras.get("counters") or {}
        value = float(counters.get(probe.counter, 0))
        if probe.kind == "counter_max":
            ok = value <= probe.threshold
        else:
            ok = value >= probe.threshold
    else:  # pragma: no cover - ProbeSpec validates kinds
        raise ValueError(f"unknown probe kind {probe.kind!r}")
    return value, ok


def _evaluate_probe(probe: ProbeSpec, result) -> ProbeResult:
    t0, t1 = probe.window or (0.0, result.duration)
    value, ok = _probe_measure(probe, result, (t0, t1))
    series = violation_fraction = None
    if probe.every is not None and t1 > t0:
        series = []
        count = int(np.ceil((t1 - t0) / probe.every))
        for k in range(count):
            w0 = t0 + k * probe.every
            w1 = min(t0 + (k + 1) * probe.every, t1)
            w_value, w_ok = _probe_measure(probe, result, (w0, w1))
            series.append((w0, w_value, w_ok))
        # Windows where the probe measured nothing (value None) are
        # excluded from the denominator; a probe that measured nothing at
        # all reports violation_fraction None — "unmeasured", never 0.0.
        measured = [(t, v, w_ok) for t, v, w_ok in series if v is not None]
        if series and not measured:
            violation_fraction = None
        else:
            violation_fraction = (
                sum(1 for _t, _v, w_ok in measured if not w_ok) / len(measured)
                if measured
                else 0.0
            )
    return ProbeResult(
        probe.name,
        probe.kind,
        value,
        probe.threshold,
        ok,
        series=series,
        violation_fraction=violation_fraction,
    )


# -- the runner ----------------------------------------------------------------


def _arm_fault_points(cluster: Cluster, points: List[Dict[str, Any]]) -> None:
    """Install one-shot FSM-edge crash hooks (``FaultSpec.fault_points``).

    Each point crashes its node the first time that node journals the named
    2PC transition at or after ``at`` sim-seconds — the kill lands at the
    current process's next yield, i.e. exactly before/after the WAL record
    becomes durable — then restarts it (WAL recovery included) after
    ``rejoin_after`` seconds.
    """
    by_node: Dict[int, List[Dict[str, Any]]] = {}
    for point in points:
        by_node.setdefault(int(point["node"]), []).append(dict(point))

    def make_hook(node_id: int, armed: List[Dict[str, Any]]):
        node = cluster.nodes[node_id]

        def restart(delay: float):
            yield Timeout(delay)
            yield from cluster.restart_node(node_id, rejoin=True)

        def hook(txn_id: str, edge: str, phase: str) -> None:
            now = cluster.sim.now
            for point in armed:
                if point.get("fired"):
                    continue
                if edge != point["edge"] or phase != point["phase"]:
                    continue
                if now < float(point.get("at", 0.0)):
                    continue
                point["fired"] = True
                tracer = cluster.tracer
                if tracer is not None:
                    tracer.instant(
                        node.address, "fault_point.fire",
                        args={"txn": txn_id, "edge": edge, "phase": phase},
                    )
                if all(p.get("fired") for p in armed):
                    node.fault_hook = None
                cluster.fail_node(node_id)
                cluster.sim.spawn(
                    restart(float(point.get("rejoin_after", 0.5))),
                    name=f"fault-point-restart:{node_id}",
                )
                return

        node.fault_hook = hook

    for node_id, armed in by_node.items():
        make_hook(node_id, armed)


def run_spec(spec: ScenarioSpec) -> SpecRunResult:
    """Execute one :class:`ScenarioSpec` end to end.

    Lifecycle: build cluster -> start fault schedule -> warmup -> bind
    clients -> timed phases -> drain (``tail`` after the last phase, or the
    fixed ``duration``) -> stop clients/autoscaler -> settle -> invariants ->
    probes.
    """
    cluster = Cluster(build_config(spec))
    tracer = None
    if spec.trace is not None and spec.trace.enabled:
        from repro.obs import Tracer

        tracer = Tracer(
            cluster.sim,
            ring_size=spec.trace.flight_recorder,
            prefixes=spec.trace.filter,
        )
        cluster.attach_tracer(tracer)
    result = SpecRunResult(
        system=spec.topology.coordination,
        duration=0.0,
        cluster=cluster,
        spec=spec,
    )
    ctx = RunContext(cluster=cluster, spec=spec, result=result)

    schedule = spec.faults.to_schedule() if spec.faults else None
    if (
        schedule is not None
        and spec.duration is not None
        and schedule.horizon > spec.duration
    ):
        # A fixed-horizon run never extends past `duration`, so a fault
        # landing or clearing beyond it would be silently skipped — that is
        # a spec inconsistency, not a runnable scenario.
        raise ValueError(
            f"fault schedule horizon ({schedule.horizon}s) exceeds the fixed "
            f"duration ({spec.duration}s); extend duration or trim the schedule"
        )
    schedule_proc = None
    if schedule is not None:
        schedule_proc = cluster.chaos.run_schedule(schedule)
    if spec.faults is not None and spec.faults.fault_points:
        _arm_fault_points(cluster, spec.faults.fault_points)

    cluster.run(until=spec.warmup)
    if spec.workload.kind != "none":
        router, clients = start_clients(
            cluster,
            spec.workload.clients,
            spec.workload.kind,
            seed=spec.seed * spec.workload.client_seed_factor,
            bind_to_nodes=spec.workload.bind_to_nodes,
            incr_fraction=spec.workload.incr_fraction,
            remote_fraction=spec.workload.remote_fraction,
        )
        ctx.routers["primary"] = router
        ctx.pools["primary"] = clients

    for phase in sorted(spec.phases, key=lambda p: p.at):
        if phase.at > cluster.sim.now:
            cluster.run(until=phase.at)
        action = ACTIONS.get(phase.action)
        if action is None:
            raise ValueError(
                f"unknown phase action {phase.action!r}; "
                f"registered: {sorted(ACTIONS)}"
            )
        action(ctx, **phase.params)

    if spec.duration is not None:
        end = spec.duration
        cluster.run(until=end)
    else:
        end = cluster.sim.now + spec.tail
        if schedule is not None:
            end = max(end, schedule.horizon + spec.faults.settle)
        cluster.run(until=end)
        if schedule_proc is not None:
            cluster.sim.run_until(schedule_proc.result, limit=end + 3600.0)
            cluster.settle(spec.faults.settle)

    for finalize in ctx.finalizers:
        finalize()
    for pool in list(ctx.pools.values()):
        for client in pool:
            client.stop()
    if ctx.autoscaler is not None:
        ctx.autoscaler.stop()
    if spec.settle:
        cluster.settle(spec.settle)

    result.duration = end
    result.scale_summaries = list(cluster.scale_events)
    if spec.check_invariants:
        from repro.obs.forensics import forensics

        with forensics(cluster):
            live = [cluster.nodes[n] for n in cluster.live_node_ids()]
            check_view_consistency(live, cluster.gmap.num_granules)
    fast = sum(n.stats["fast_path_commits"] for n in cluster.nodes.values())
    two_pc = sum(n.stats["two_pc_commits"] for n in cluster.nodes.values())
    if fast or two_pc:
        result.extras["coordination"] = {
            "fast_path_commits": fast,
            "two_pc_commits": two_pc,
            "avoided_fraction": fast / (fast + two_pc) if fast + two_pc else 0.0,
        }
    if cluster.recovery_reports:
        result.extras["recovery"] = {
            "passes": len(cluster.recovery_reports),
            "in_doubt": sum(r.in_doubt for r in cluster.recovery_reports),
            "begun_unvoted": sum(
                r.begun_unvoted for r in cluster.recovery_reports
            ),
            "coordinator_open": sum(
                r.coordinator_open for r in cluster.recovery_reports
            ),
            "committed": sum(r.committed for r in cluster.recovery_reports),
            "aborted": sum(r.aborted for r in cluster.recovery_reports),
        }
    if cluster.replicas is not None:
        result.extras["replication"] = cluster.replicas.stats()
    if cluster._all_detectors:
        result.extras["failure_detection"] = dict(
            mode=spec.topology.coordination,
            **cluster.failure_detection_stats(),
        )
    if tracer is not None:
        from repro.obs import span_summary

        tracer.count("commit.fast_path", fast)
        tracer.count("commit.two_pc", two_pc)
        tracer.count("txn.committed", cluster.metrics.total_committed)
        tracer.count("txn.aborted", cluster.metrics.total_aborted)
        trace = tracer.detach()
        result.trace = trace
        result.extras["counters"] = dict(sorted(trace.counters.items()))
        result.extras["span_summary"] = span_summary(trace)
    result.probes = [_evaluate_probe(p, result) for p in spec.probes]
    return result
