"""Content-addressed result cache for sweep cells.

Every sweep cell is a pure function of its :class:`ScenarioSpec` — the spec
dict carries the topology, workload, timeline, fault schedule, probes *and*
the seed — so a finished cell's :class:`PortableRunResult` can be keyed by
content and reused: re-summarizing a large grid, re-running after an
interrupted/partial sweep, or re-plotting a figure with one axis value added
re-executes only the missed cells.

Key derivation
--------------

``key(spec) = sha256("epoch=<E>;" + canonical_json(spec.to_dict()))`` where
canonical JSON is ``json.dumps(..., sort_keys=True, separators=(",", ":"))``.
The **code epoch** ``E`` folds the simulator's behavioural version into every
key.  It is *derived*, not hand-maintained: :data:`CACHE_EPOCH` is a content
hash of the determinism + spec-parity goldens
(:func:`repro.experiments.goldens.cache_epoch`), so any PR that changes what
a seeded run produces re-captures those goldens and thereby atomically
invalidates every cached cell — forgetting the bump is impossible.

Entries are stored as ``<root>/<key>.pkl`` — the pickled
:class:`~repro.experiments.parallel.PortableRunResult`, byte-identical to
what a pool worker ships back.  Writes go through a temp file +
``os.replace`` so concurrent writers (pool parents, parallel CI jobs on a
shared dir) never expose a torn entry; an unreadable/corrupt entry is
deleted and treated as a miss.  Failures are never cached — a
:class:`CellFailure` stays ephemeral.

Consumers: ``Sweep.run(cache=...)``, ``run_cells(cache=...)``,
:meth:`ProcessPoolRunner.run`, the sweep figures' ``run(cache=...)`` and the
CLI's ``--cache DIR`` / ``--no-cache`` (see EXPERIMENTS.md "Result
caching").
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
from typing import Any, Dict, Optional, Union

from repro.experiments.goldens import cache_epoch

__all__ = ["CACHE_EPOCH", "ResultCache", "resolve_cache"]

#: Behavioural version of the simulator folded into every cache key —
#: derived from the behavioural goldens (see module docstring); stale
#: entries miss instead of serving wrong results.
CACHE_EPOCH = cache_epoch()


class ResultCache:
    """A directory of content-addressed ``PortableRunResult`` pickles."""

    def __init__(self, root, epoch: str = CACHE_EPOCH):
        self.root = pathlib.Path(root)
        self.epoch = str(epoch)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------------

    def key(self, spec) -> str:
        """SHA-256 of the cell's canonical JSON spec (seed included) + epoch."""
        payload = json.dumps(
            spec.to_dict(), sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256()
        digest.update(f"epoch={self.epoch};".encode())
        digest.update(payload.encode())
        return digest.hexdigest()

    def path_for(self, spec) -> pathlib.Path:
        return self.root / f"{self.key(spec)}.pkl"

    # -- read/write ----------------------------------------------------------

    def get(self, spec) -> Optional[Any]:
        """The cached :class:`PortableRunResult` for ``spec``, or ``None``.

        A missing entry is a plain miss; an unreadable one (truncated write
        from a killed process, bit rot, a stray file) is deleted and counted
        as a miss — the cell simply re-executes and overwrites it.
        """
        from repro.experiments.parallel import PortableRunResult

        path = self.path_for(spec)
        try:
            with open(path, "rb") as f:
                result = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(result, PortableRunResult):
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, spec, result) -> None:
        """Store a finished cell (pickles ``result``; see ``put_serialized``)."""
        self.put_serialized(
            spec, pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def put_serialized(self, spec, payload: bytes) -> None:
        """Store an already-pickled ``PortableRunResult`` (what pool workers
        ship back) without a decode/re-encode round trip."""
        path = self.path_for(spec)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as f:
                f.write(payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # a failed replace leaves the temp file behind
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stores += 1

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache({str(self.root)!r}, epoch={self.epoch}, "
            f"hits={self.hits}, misses={self.misses}, stores={self.stores})"
        )


def resolve_cache(
    cache: Union[None, str, os.PathLike, ResultCache],
) -> Optional[ResultCache]:
    """Accept ``None`` (no caching), a directory path, or a ready cache."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
