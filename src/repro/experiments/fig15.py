"""Figure 15 — MTable stress test: membership updates vs. cluster size (§6.7).

Every node runs a thread issuing one membership update (leave then re-join)
per interval — the paper uses 15 s, matching autoscaler monitoring periods.
Paper findings: Marlin is comparable to the baselines up to ~160 nodes, then
degrades because TryLog's optimistic concurrency control on the single
SysLog retries under contention; ZooKeeper/FDB serialize at the service and
keep up.  This experiment is control-plane only, so the storage append
latency uses a realistic Azure Append Blob figure (15 ms), which places the
contention knee at the paper's scale.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.harness import FigureResult, SYSTEM_LABELS
from repro.experiments.runner import run_spec
from repro.experiments.spec import (
    PhaseSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = ["run", "run_stress", "stress_spec", "summarize"]

ALL_SYSTEMS = ("marlin", "zk-small", "zk-large", "fdb")
NODE_COUNTS = (20, 40, 80, 160, 240)
UPDATE_INTERVAL = 15.0
RUN_SECONDS = 60.0
SYSLOG_APPEND_LATENCY = 0.015


def stress_spec(
    system: str,
    num_nodes: int,
    interval: float = UPDATE_INTERVAL,
    duration: float = RUN_SECONDS,
    seed: int = 1,
) -> ScenarioSpec:
    """One (system, node-count) stress cell as a spec.

    Control-plane only: no clients (``kind="none"``), tiny page cache, and
    the realistic Azure Append Blob latency on SysLog; the
    ``membership_churn`` action drives one leave+rejoin per node per
    ``interval`` and reports its statistics in
    ``result.extras["membership_churn"]``.
    """
    return ScenarioSpec(
        name=f"fig15-stress-{system}-{num_nodes}",
        topology=TopologySpec(
            nodes=num_nodes,
            coordination=system,
            node_params="default",
            node_param_overrides={"cache_pages": 64},
            storage_append_latency=SYSLOG_APPEND_LATENCY,
            storage_read_latency=SYSLOG_APPEND_LATENCY,
        ),
        workload=WorkloadSpec(kind="none", granules=num_nodes),
        phases=[
            PhaseSpec(at=0.1, action="membership_churn", params={"interval": interval})
        ],
        seed=seed,
        duration=duration,
        settle=0.0,
        check_invariants=False,
    )


def run_stress(
    system: str,
    num_nodes: int,
    interval: float = UPDATE_INTERVAL,
    duration: float = RUN_SECONDS,
    seed: int = 1,
) -> Dict[str, float]:
    """One (system, node-count) cell: offered vs. achieved update rate."""
    result = run_spec(
        stress_spec(system, num_nodes, interval=interval, duration=duration, seed=seed)
    )
    return result.extras["membership_churn"]


def summarize(results: Dict[Tuple[str, int], Dict[str, float]]) -> FigureResult:
    fig = FigureResult("Figure 15", "MTable stress test (membership updates)")
    for (system, nodes), cell in sorted(results.items(), key=lambda x: (x[0][1], x[0][0])):
        fig.add_row(
            nodes=nodes,
            system=SYSTEM_LABELS.get(system, system),
            offered_tps=cell["offered_tps"],
            achieved_tps=cell["achieved_tps"],
            efficiency=cell["efficiency"],
            mean_latency_s=cell["mean_latency_s"],
        )
    node_counts = sorted({k[1] for k in results})
    systems = sorted({k[0] for k in results})
    if "marlin" in systems and len(node_counts) >= 2:
        small, large = node_counts[0], node_counts[-1]
        small_eff = results[("marlin", small)]["efficiency"]
        large_eff = results[("marlin", large)]["efficiency"]
        fig.findings["marlin_efficiency_small"] = small_eff
        fig.findings["marlin_efficiency_large"] = large_eff
        fig.findings["marlin_degradation"] = (
            small_eff / large_eff if large_eff else float("inf")
        )
        for other in systems:
            if other != "marlin":
                fig.findings[f"{other}_efficiency_large"] = results[
                    (other, large)
                ]["efficiency"]
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = ALL_SYSTEMS,
    seed: int = 1,
    node_counts: Optional[Sequence[int]] = None,
) -> FigureResult:
    if node_counts is None:
        node_counts = [max(4, int(round(n * scale))) for n in NODE_COUNTS]
    results = {}
    for system in systems:
        for nodes in node_counts:
            results[(system, nodes)] = run_stress(system, nodes, seed=seed)
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.5, systems=("marlin", "zk-small")).format_table())
