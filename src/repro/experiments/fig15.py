"""Figure 15 — MTable stress test: membership updates vs. cluster size (§6.7).

Every node runs a thread issuing one membership update (leave then re-join)
per interval — the paper uses 15 s, matching autoscaler monitoring periods.
Paper findings: Marlin is comparable to the baselines up to ~160 nodes, then
degrades because TryLog's optimistic concurrency control on the single
SysLog retries under contention; ZooKeeper/FDB serialize at the service and
keep up.  This experiment is control-plane only, so the storage append
latency uses a realistic Azure Append Blob figure (15 ms), which places the
contention knee at the paper's scale.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import Cluster, ClusterConfig
from repro.core.reconfig import NodeAlreadyExistsError, NodeNotExistError
from repro.engine.node import NodeParams
from repro.experiments.harness import FigureResult, SYSTEM_LABELS
from repro.sim.core import Timeout

__all__ = ["run", "run_stress", "summarize"]

ALL_SYSTEMS = ("marlin", "zk-small", "zk-large", "fdb")
NODE_COUNTS = (20, 40, 80, 160, 240)
UPDATE_INTERVAL = 15.0
RUN_SECONDS = 60.0
SYSLOG_APPEND_LATENCY = 0.015


def run_stress(
    system: str,
    num_nodes: int,
    interval: float = UPDATE_INTERVAL,
    duration: float = RUN_SECONDS,
    seed: int = 1,
) -> Dict[str, float]:
    """One (system, node-count) cell: offered vs. achieved update rate."""
    config = ClusterConfig(
        coordination=system,
        num_nodes=num_nodes,
        num_keys=num_nodes * 64,
        keys_per_granule=64,
        node_params=NodeParams(cache_pages=64),
        storage_append_latency=SYSLOG_APPEND_LATENCY,
        storage_read_latency=SYSLOG_APPEND_LATENCY,
        seed=seed,
    )
    cluster = Cluster(config)
    cluster.run(until=0.1)
    stats = {"updates": 0, "failures": 0}
    latencies: List[float] = []

    def stress_loop(node_id: int, offset: float):
        node = cluster.nodes[node_id]
        yield Timeout(offset)
        while True:
            t0 = cluster.sim.now
            try:
                ok = yield from node.runtime.remove_node(node_id)
                if ok:
                    stats["updates"] += 1
                ok = yield from node.runtime.add_node()
                if ok:
                    stats["updates"] += 1
            except (NodeAlreadyExistsError, NodeNotExistError):
                stats["failures"] += 1
            latencies.append((cluster.sim.now - t0) / 2.0)
            yield Timeout(interval)

    rng = cluster.sim.rng
    for node_id in list(cluster.nodes):
        cluster.nodes[node_id].spawn(
            stress_loop(node_id, rng.random() * interval),
            name=f"stress-{node_id}",
        )
    cluster.run(until=duration)
    achieved = stats["updates"] / duration
    offered = 2.0 * num_nodes / interval
    retries = 0
    if system == "marlin":
        retries = sum(
            getattr(n.runtime, "refreshes", 0) for n in cluster.nodes.values()
        )
    return {
        "offered_tps": offered,
        "achieved_tps": achieved,
        "efficiency": achieved / offered if offered else 0.0,
        "mean_latency_s": float(np.mean(latencies)) if latencies else 0.0,
        "p99_latency_s": (
            float(np.percentile(latencies, 99)) if latencies else 0.0
        ),
        "retries": retries,
    }


def summarize(results: Dict[Tuple[str, int], Dict[str, float]]) -> FigureResult:
    fig = FigureResult("Figure 15", "MTable stress test (membership updates)")
    for (system, nodes), cell in sorted(results.items(), key=lambda x: (x[0][1], x[0][0])):
        fig.add_row(
            nodes=nodes,
            system=SYSTEM_LABELS.get(system, system),
            offered_tps=cell["offered_tps"],
            achieved_tps=cell["achieved_tps"],
            efficiency=cell["efficiency"],
            mean_latency_s=cell["mean_latency_s"],
        )
    node_counts = sorted({k[1] for k in results})
    systems = sorted({k[0] for k in results})
    if "marlin" in systems and len(node_counts) >= 2:
        small, large = node_counts[0], node_counts[-1]
        small_eff = results[("marlin", small)]["efficiency"]
        large_eff = results[("marlin", large)]["efficiency"]
        fig.findings["marlin_efficiency_small"] = small_eff
        fig.findings["marlin_efficiency_large"] = large_eff
        fig.findings["marlin_degradation"] = (
            small_eff / large_eff if large_eff else float("inf")
        )
        for other in systems:
            if other != "marlin":
                fig.findings[f"{other}_efficiency_large"] = results[
                    (other, large)
                ]["efficiency"]
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = ALL_SYSTEMS,
    seed: int = 1,
    node_counts: Optional[Sequence[int]] = None,
) -> FigureResult:
    if node_counts is None:
        node_counts = [max(4, int(round(n * scale))) for n in NODE_COUNTS]
    results = {}
    for system in systems:
        for nodes in node_counts:
            results[(system, nodes)] = run_stress(system, nodes, seed=seed)
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.5, systems=("marlin", "zk-small")).format_table())
