"""Figure 11 — Realtime user-transaction throughput on TPC-C.

Paper findings: migration completes 2.5x / 1.5x faster than S-ZK / L-ZK
(fewer granules than YCSB — warehouses are the migration unit), with less
user-transaction degradation (higher throughput, lower abort ratio) during
reconfiguration.  TPC-C also exercises distributed transactions: 10% of
NEW-ORDER and 15% of PAYMENT cross warehouses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.family import DEFAULT_SYSTEMS
from repro.experiments.harness import (
    FigureResult,
    ScenarioResult,
    SYSTEM_LABELS,
    scaled,
)
from repro.experiments.runner import run_spec
from repro.experiments.spec import scale_out_spec

__all__ = ["run", "run_tpcc_family", "summarize"]

#: Paper: 1600 warehouses/server x 8 servers = 12.8K warehouses for 800
#: clients (16 per client).  Scaled: 1600 warehouses for 100 clients keeps
#: the same per-warehouse contention.
BASE_WAREHOUSES = 1600
BASE_CLIENTS = 100
SCALE_AT = 5.0


def run_tpcc_family(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
) -> Dict[str, ScenarioResult]:
    results = {}
    for system in systems:
        spec = scale_out_spec(
            system,
            initial_nodes=8,
            added_nodes=8,
            clients=scaled(BASE_CLIENTS, scale),
            granules=scaled(BASE_WAREHOUSES, scale, minimum=16),
            scale_at=SCALE_AT,
            tail=5.0,
            workload="tpcc",
            seed=seed,
            name=f"fig11-tpcc-{system}",
        )
        results[system] = run_spec(spec)
    return results


def summarize(results: Dict[str, ScenarioResult]) -> FigureResult:
    fig = FigureResult(
        "Figure 11", "Realtime throughput of user transactions (TPC-C)"
    )
    durations: Dict[str, float] = {}
    for system, result in results.items():
        tput = result.throughput_series()
        aborts = result.abort_series()
        end = min(SCALE_AT + result.migration_duration, result.duration - 1.0)
        during_t = [tps for t, tps in tput if SCALE_AT <= t < end + 1.0]
        during_a = [r for t, r in aborts if SCALE_AT <= t < end + 1.0]
        durations[system] = result.migration_duration
        fig.add_row(
            system=SYSTEM_LABELS.get(system, system),
            warehouses_migrated=result.metrics.total_migrations,
            migration_duration_s=result.migration_duration,
            tput_during_reconfig=float(np.mean(during_t)) if during_t else 0.0,
            abort_ratio_during=float(np.mean(during_a)) if during_a else 0.0,
        )
        fig.rows[-1]["tput_series"] = tput
    if "marlin" in results and durations.get("marlin"):
        for base in results:
            if base == "marlin":
                continue
            label = SYSTEM_LABELS.get(base, base)
            fig.findings[f"migration_speedup_vs_{label}"] = (
                durations[base] / durations["marlin"]
            )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    results: Optional[Dict[str, ScenarioResult]] = None,
) -> FigureResult:
    if results is None:
        results = run_tpcc_family(scale=scale, systems=systems, seed=seed)
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.25).format_table())
