"""Declarative, serializable experiment specs (the §6 grid as data).

The paper's evaluation is a grid — systems x workloads x topologies x fault
conditions — and every cell used to be a bespoke harness call.  This module
turns one cell into a :class:`ScenarioSpec`: pure data, JSON round-trippable
(``to_dict`` / ``from_dict``), composed from five orthogonal parts:

* :class:`TopologySpec` — nodes, regions, coordination mechanism, node
  parameters (a named preset plus overrides), storage latencies;
* :class:`WorkloadSpec` — workload kind, client population, table size,
  client/range binding;
* :class:`PhaseSpec` — the timeline: warmup -> timed actions (scale-out,
  client bursts, autoscaler, membership churn, ...) -> drain.  Actions are
  referenced by name and resolved in :mod:`repro.experiments.runner`'s
  registry, so specs stay serializable while figures can register custom
  actions;
* :class:`FaultSpec` — a ``repro.chaos`` fault schedule (declarative entry
  list, CHAOS.md vocabulary) plus the failure-detector parameters it is run
  against;
* :class:`ProbeSpec` — SLO probes (latency percentile ceilings, throughput
  floors, abort ceilings, unavailability windows) evaluated on the finished
  run.

:class:`Sweep` expands a base spec over named axes (``"faults.
detector_interval"``, ``"topology.coordination"``, ...) into the full grid.
``repro.experiments.runner.run_spec`` executes one spec; the ``python -m
repro.experiments`` CLI runs figures and ad-hoc spec files.  See
EXPERIMENTS.md for the format reference.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.chaos.events import FaultSchedule
from repro.engine.node import NodeParams

__all__ = [
    "FaultSpec",
    "NODE_PARAM_PRESETS",
    "PhaseSpec",
    "ProbeSpec",
    "ScenarioSpec",
    "Sweep",
    "TopologySpec",
    "TraceSpec",
    "WorkloadSpec",
    "scale_out_spec",
]


def _jsonify(value):
    """Tuples -> lists, recursively: canonical JSON-safe form."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    return value


#: Named :class:`NodeParams` bases for :attr:`TopologySpec.node_params`.
#: "experiment" is the calibrated preset every figure uses (see
#: EXPERIMENTS.md "Calibration"); "default" is the engine's raw default.
def _experiment_params() -> NodeParams:
    from repro.experiments.harness import EXP_NODE_PARAMS

    return EXP_NODE_PARAMS


NODE_PARAM_PRESETS = {
    "experiment": _experiment_params,
    "default": NodeParams,
}


class _SpecBase:
    """Shared ``to_dict`` / ``from_dict`` for the flat spec dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        return _jsonify(asdict(self))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "_SpecBase":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"{cls.__name__}: unknown spec keys {sorted(unknown)}"
            )
        return cls(**data)


@dataclass
class TopologySpec(_SpecBase):
    """The cluster under test: who coordinates, where, on what hardware."""

    nodes: int = 4
    coordination: str = "marlin"
    regions: Tuple[str, ...] = ("us-west",)
    #: Defaults to ``regions[0]`` (where SysLog and any external service live).
    home_region: Optional[str] = None
    #: Key into :data:`NODE_PARAM_PRESETS`.
    node_params: str = "experiment"
    #: Field overrides applied on top of the preset.
    node_param_overrides: Dict[str, Any] = field(default_factory=dict)
    storage_append_latency: Optional[float] = None
    storage_read_latency: Optional[float] = None
    provision_delay: float = 0.0
    metrics_bucket: float = 1.0
    #: Per-granule replica sets (``engine/replication.py``), as the plain
    #: dict form of :class:`repro.engine.replication.ReplicationSpec`
    #: (``{"factor": 3, "mode": "sync_quorum", "quorum": 2, ...}``) so sweep
    #: axes like ``"topology.replication.mode"`` work.  None = off.
    replication: Optional[Dict[str, Any]] = None

    def __post_init__(self):
        self.regions = tuple(self.regions)
        if self.node_params not in NODE_PARAM_PRESETS:
            raise ValueError(
                f"unknown node_params preset {self.node_params!r}; "
                f"expected one of {sorted(NODE_PARAM_PRESETS)}"
            )
        if self.replication is not None:
            # Validate eagerly so a bad sweep axis fails at expand time,
            # not deep inside a worker process.
            from repro.engine.replication import ReplicationSpec

            ReplicationSpec(**self.replication)

    def to_dict(self) -> Dict[str, Any]:
        # Omit ``replication`` when unset so pre-existing spec JSON (and the
        # content-addressed cache keys derived from it) stays byte-identical.
        data = _jsonify(asdict(self))
        if data.get("replication") is None:
            data.pop("replication", None)
        return data

    def resolve_replication(self):
        from repro.engine.replication import ReplicationSpec

        if self.replication is None:
            return None
        return ReplicationSpec(**self.replication)

    def resolve_node_params(self) -> NodeParams:
        base = NODE_PARAM_PRESETS[self.node_params]()
        if self.node_param_overrides:
            return replace(base, **self.node_param_overrides)
        return base


@dataclass
class WorkloadSpec(_SpecBase):
    """What the clients do.  ``kind="none"`` runs a clientless scenario."""

    kind: str = "ycsb"
    clients: int = 0
    granules: int = 200
    keys_per_granule: int = 64
    #: Restrict client binding to these nodes' key ranges (default: all).
    bind_to_nodes: Optional[List[int]] = None
    #: Client RNG seed = ``ScenarioSpec.seed * client_seed_factor``, so one
    #: scenario seed drives both the cluster and the workload.
    client_seed_factor: int = 977
    #: YCSB only: fraction of transactions that are cross-granule
    #: global-counter increments (coordination-free fast-path candidates).
    incr_fraction: float = 0.0
    #: Fraction of transactions that spill to a second owner.  YCSB: the
    #: remaining (non-incr) transactions also write a second random granule
    #: — plain writes, forced through full 2PC.  TPC-C: overrides both
    #: remote-warehouse mix knobs (``remote_new_order`` / ``remote_payment``)
    #: with this value; 0.0 keeps the workload's calibrated defaults.
    remote_fraction: float = 0.0

    def __post_init__(self):
        if self.kind not in ("ycsb", "tpcc", "none"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.bind_to_nodes is not None:
            self.bind_to_nodes = list(self.bind_to_nodes)
        for name in ("incr_fraction", "remote_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def num_keys(self) -> int:
        return self.granules * self.keys_per_granule


@dataclass
class PhaseSpec(_SpecBase):
    """One timed action on the scenario timeline.

    ``action`` names an entry in the runner's action registry
    (:data:`repro.experiments.runner.ACTIONS`): built-ins cover
    ``scale_out`` / ``scale_in`` / ``clients_start`` / ``clients_stop`` /
    ``autoscaler`` / ``membership_churn``; experiments may register more.
    Phases run in ``(at, declaration order)``; blocking actions (scale
    operations) run to completion before the timeline advances.
    """

    at: float = 0.0
    action: str = "scale_out"
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FaultSpec(_SpecBase):
    """Chaos schedule + the detector configuration it runs against.

    ``schedule`` is the declarative entry list of
    :meth:`repro.chaos.FaultSchedule.to_spec` (CHAOS.md vocabulary); an empty
    list means "no injected faults" but still applies the detector knobs —
    that is what detector-parameter sweeps vary.
    """

    schedule: List[Dict[str, Any]] = field(default_factory=list)
    #: FSM-edge fault points: each entry arms a one-shot crash hook on one
    #: node that fires the first time that node journals the named 2PC
    #: transition after ``at`` — ``{"node": 1, "edge": "vote",
    #: "phase": "before", "at": 3.0, "rejoin_after": 0.5}``.  Edges are the
    #: :data:`repro.core.participant.EDGE_NAMES` vocabulary; ``phase`` is
    #: ``"before"`` (WAL record not yet durable) or ``"after"``.  The node
    #: is restarted (with WAL recovery) ``rejoin_after`` seconds later.
    fault_points: List[Dict[str, Any]] = field(default_factory=list)
    failure_detection: bool = False
    detector_interval: float = 0.5
    detector_timeout: float = 0.25
    detector_misses: int = 3
    #: Gate RecoveryMigrTxn on a suspicion vote (see core/suspicion.py):
    #: a monitor that is itself suspected stands down instead of fencing.
    detector_vote_gate: bool = True
    #: Settle time after the schedule's horizon before quiescence checks.
    settle: float = 1.0

    def __post_init__(self):
        self.schedule = _jsonify(list(self.schedule))
        self.fault_points = _jsonify(list(self.fault_points))
        for point in self.fault_points:
            edge = point.get("edge")
            if edge not in ("begin", "vote", "decide", "prepare", "end"):
                raise ValueError(f"unknown fault-point edge {edge!r}")
            phase = point.get("phase")
            if phase not in ("before", "after"):
                raise ValueError(f"unknown fault-point phase {phase!r}")
            if "node" not in point:
                raise ValueError(f"fault point needs a 'node': {point}")

    def to_schedule(self) -> Optional[FaultSchedule]:
        if not self.schedule:
            return None
        return FaultSchedule.from_spec(self.schedule)

    @classmethod
    def from_schedule(cls, schedule: FaultSchedule, **kwargs) -> "FaultSpec":
        return cls(schedule=_jsonify(schedule.to_spec()), **kwargs)


@dataclass
class TraceSpec(_SpecBase):
    """Deterministic tracing configuration (off unless a spec carries one).

    When present (and ``enabled``), the runner attaches a
    :class:`repro.obs.Tracer` to the cluster before the run: every RPC,
    transaction, 2PC phase, WAL append, lock wait, migration, detector
    verdict and chaos action becomes a span/instant keyed by sim time, the
    run result carries the detached trace plus a counters registry, and
    each node keeps a bounded flight-recorder ring for failure forensics.
    Tracing is purely observational — a traced run executes the exact same
    event sequence as an untraced one.
    """

    enabled: bool = True
    #: Per-track flight-recorder ring size (last N span events kept).
    flight_recorder: int = 256
    #: Optional span-name prefixes; spans not matching any are dropped
    #: (counters and instants are always recorded).
    filter: Optional[List[str]] = None

    def __post_init__(self):
        if self.filter is not None:
            self.filter = [str(p) for p in self.filter]
        if self.flight_recorder <= 0:
            raise ValueError(
                f"flight_recorder must be positive, got {self.flight_recorder}"
            )


@dataclass
class ProbeSpec(_SpecBase):
    """One SLO probe evaluated on the finished run.

    Kinds:

    * ``latency`` — ``pct``-percentile latency over the window <= threshold
      (seconds);
    * ``throughput_floor`` — mean committed tps over the window >= threshold;
    * ``abort_ceiling`` — aborts / attempts over the window <= threshold;
    * ``unavailability`` — longest zero-throughput stretch (seconds) within
      the window <= threshold;
    * ``migration_latency`` — ``pct``-percentile of per-MigrationTxn latency
      over the window <= threshold (seconds): the control-plane SLO, not a
      user-transaction metric;
    * ``counter_max`` / ``counter_min`` — the named tracer counter (e.g.
      ``"lock.waits"``, ``"rpc.heartbeat"``, ``"detector.fencings"``) must
      be <= / >= threshold.  Requires ``counter`` and a spec with tracing
      enabled (:class:`TraceSpec`); windows do not apply;
    * ``rpo_bytes`` — worst acked-but-lost WAL bytes across the window's
      failover promotions <= threshold (requires replication; a window
      with no failovers reports ``value=None, ok=True`` — no data *measured*
      is not the same claim as no data *lost*);
    * ``rto_s`` — worst suspicion-to-first-serving failover latency
      (seconds) across the window's promotions <= threshold; same
      ``None``-when-unmeasured contract.

    ``every`` turns any probe into a *series* probe: besides the whole-window
    verdict, the probe is re-evaluated over consecutive ``every``-second
    sub-windows, and the result carries the per-window values plus the
    fraction of windows in violation (``ProbeResult.series`` /
    ``violation_fraction``).  ``every`` should be >= the topology's
    ``metrics_bucket`` — sub-bucket windows see no samples.
    """

    name: str = "slo"
    kind: str = "latency"
    threshold: float = 0.0
    pct: float = 99.0
    #: ``(t0, t1)`` absolute sim seconds; default = the whole run.
    window: Optional[Tuple[float, float]] = None
    #: Sub-window width (seconds) for the per-window probe series.
    every: Optional[float] = None
    #: Counter name for the ``counter_max`` / ``counter_min`` kinds.
    counter: Optional[str] = None

    KINDS = (
        "latency",
        "throughput_floor",
        "abort_ceiling",
        "unavailability",
        "migration_latency",
        "counter_max",
        "counter_min",
        "rpo_bytes",
        "rto_s",
    )

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(
                f"unknown probe kind {self.kind!r}; expected one of {self.KINDS}"
            )
        if self.window is not None:
            self.window = tuple(self.window)
        if self.every is not None and self.every <= 0:
            raise ValueError(f"probe `every` must be positive, got {self.every}")
        if self.kind in ("counter_max", "counter_min") and not self.counter:
            raise ValueError(f"probe kind {self.kind!r} needs a `counter` name")

    def to_dict(self) -> Dict[str, Any]:
        # Omit ``counter`` when unset so pre-existing spec JSON (and the
        # content-addressed cache keys derived from it) stays byte-identical.
        data = _jsonify(asdict(self))
        if data.get("counter") is None:
            data.pop("counter", None)
        return data


@dataclass
class ScenarioSpec(_SpecBase):
    """One experiment cell: topology + workload + timeline + faults + SLOs.

    Two end-of-run modes:

    * ``duration=None`` (scale-out figures): the run ends ``tail`` seconds
      after the last phase completes, extended past any fault schedule's
      horizon — each system is measured over its own reconfiguration window
      plus a stable after-phase, mirroring the paper's methodology;
    * ``duration=T`` (dynamic / stress figures): fixed horizon, identical
      measurement window for every system.
    """

    name: str = "scenario"
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    phases: List[PhaseSpec] = field(default_factory=list)
    faults: Optional[FaultSpec] = None
    probes: List[ProbeSpec] = field(default_factory=list)
    #: Deterministic tracing; ``None`` (the default) keeps tracing fully off.
    trace: Optional[TraceSpec] = None
    seed: int = 1
    warmup: float = 0.1
    tail: float = 10.0
    duration: Optional[float] = None
    settle: float = 0.2
    check_invariants: bool = True
    #: ``run_until`` limit for blocking phase actions (scale operations).
    run_limit: float = 3600.0

    def with_(self, **kwargs) -> "ScenarioSpec":
        """A modified copy (specs compose immutably in sweeps)."""
        return replace(self, **kwargs)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "topology": self.topology.to_dict(),
            "workload": self.workload.to_dict(),
            "phases": [p.to_dict() for p in self.phases],
            "faults": self.faults.to_dict() if self.faults else None,
            "probes": [p.to_dict() for p in self.probes],
            "seed": self.seed,
            "warmup": self.warmup,
            "tail": self.tail,
            "duration": self.duration,
            "settle": self.settle,
            "check_invariants": self.check_invariants,
            "run_limit": self.run_limit,
        }
        # Tracing is observability-only: omit the key entirely when unset so
        # default spec JSON — and every cache key derived from it — is
        # byte-identical to pre-tracing specs.
        if self.trace is not None:
            data["trace"] = self.trace.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"ScenarioSpec: unknown spec keys {sorted(unknown)}")
        if "topology" in data:
            data["topology"] = TopologySpec.from_dict(data["topology"] or {})
        if "workload" in data:
            data["workload"] = WorkloadSpec.from_dict(data["workload"] or {})
        data["phases"] = [
            PhaseSpec.from_dict(p) for p in data.get("phases") or ()
        ]
        if data.get("faults") is not None:
            data["faults"] = FaultSpec.from_dict(data["faults"])
        data["probes"] = [
            ProbeSpec.from_dict(p) for p in data.get("probes") or ()
        ]
        if data.get("trace") is not None:
            data["trace"] = TraceSpec.from_dict(data["trace"])
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        with open(path) as f:
            return cls.from_json(f.read())


def scale_out_spec(
    system: str,
    *,
    initial_nodes: int = 8,
    added_nodes: int = 8,
    clients: int = 100,
    granules: int = 12_500,
    keys_per_granule: int = 64,
    scale_at: float = 5.0,
    tail: float = 10.0,
    workload: str = "ycsb",
    regions: Sequence[str] = ("us-west",),
    seed: int = 1,
    node_params: Optional[NodeParams] = None,
    check_invariants: bool = True,
    fault_schedule: Optional[FaultSchedule] = None,
    failure_detection: bool = False,
    chaos_settle: float = 1.0,
    probes: Sequence[ProbeSpec] = (),
    name: Optional[str] = None,
) -> ScenarioSpec:
    """The canonical §6.2-§6.4 scale-out scenario as a spec.

    Same parameter vocabulary as the retired ``run_scale_out_scenario``
    harness entry point; every figure family builds on this shape.
    """
    preset, overrides = "experiment", {}
    if node_params is not None:
        preset, overrides = "default", asdict(node_params)
    faults = None
    if fault_schedule is not None or failure_detection:
        faults = FaultSpec(
            schedule=(
                _jsonify(fault_schedule.to_spec()) if fault_schedule else []
            ),
            failure_detection=failure_detection,
            settle=chaos_settle,
        )
    return ScenarioSpec(
        name=name or f"scale-out-{system}",
        topology=TopologySpec(
            nodes=initial_nodes,
            coordination=system,
            regions=tuple(regions),
            home_region=regions[0],
            node_params=preset,
            node_param_overrides=overrides,
        ),
        workload=WorkloadSpec(
            kind=workload,
            clients=clients,
            granules=granules,
            keys_per_granule=keys_per_granule,
        ),
        phases=[
            PhaseSpec(at=scale_at, action="scale_out", params={"count": added_nodes})
        ],
        faults=faults,
        probes=list(probes),
        seed=seed,
        tail=tail,
        check_invariants=check_invariants,
    )


class Sweep:
    """A base spec expanded over named axes into the full experiment grid.

    Axis keys are dotted paths into the spec dict (``"seed"``,
    ``"topology.coordination"``, ``"faults.detector_interval"``,
    ``"phases.0.params.count"``); values are the list of settings to grid
    over.  ``expand()`` yields every combination in axis-declaration order
    (last axis fastest), each as a fresh :class:`ScenarioSpec` named
    ``base[k=v,...]``.

    Axes are validated against the base spec at construction: a path that
    does not resolve (typo, bad list index, unknown field), a duplicate
    axis, or two axes where one is a dotted prefix of the other all raise
    ``ValueError`` naming the offending path — not a confusing failure deep
    inside ``expand()``.
    """

    def __init__(self, base: ScenarioSpec, axes):
        self.base = base
        pairs = list(axes.items()) if isinstance(axes, dict) else list(axes)
        if not pairs:
            raise ValueError("Sweep needs at least one axis")
        self.axes: Dict[str, List[Any]] = {}
        for path, values in pairs:
            if path in self.axes:
                raise ValueError(f"duplicate sweep axis {path!r}")
            values = list(values)
            if not values:
                raise ValueError(f"sweep axis {path!r} has no values")
            self.axes[path] = values
        self._validate_axes()

    def _validate_axes(self) -> None:
        paths = sorted(self.axes)
        for shorter, longer in zip(paths, paths[1:]):
            if longer.startswith(shorter + "."):
                raise ValueError(
                    f"overlapping sweep axes: {longer!r} is nested inside "
                    f"{shorter!r}; sweep them through the outer axis instead"
                )
        # Probe each axis value independently against the base spec so the
        # error names the axis (and value) at fault, not the first bad
        # combination deep inside expand().
        for path, values in self.axes.items():
            for value in values:
                data = self.base.to_dict()
                try:
                    self._set_path(data, path, value)
                    ScenarioSpec.from_dict(data)
                except Exception as exc:
                    raise ValueError(
                        f"sweep axis {path!r} (value {value!r}) does not "
                        f"apply to the base spec "
                        f"({type(exc).__name__}: {exc})"
                    ) from exc

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    @staticmethod
    def _set_path(data: Dict[str, Any], path: str, value: Any) -> None:
        parts = path.split(".")
        target = data
        for part in parts[:-1]:
            if isinstance(target, list):
                target = target[int(part)]
            else:
                if target.get(part) is None:
                    target[part] = {}
                target = target[part]
        leaf = parts[-1]
        if isinstance(target, list):
            target[int(leaf)] = value
        else:
            target[leaf] = value

    @staticmethod
    def point_label(point: Dict[str, Any]) -> str:
        return ",".join(
            f"{path.rsplit('.', 1)[-1]}={value}" for path, value in point.items()
        )

    def points(self) -> Iterator[Dict[str, Any]]:
        paths = list(self.axes)
        for combo in itertools.product(*(self.axes[p] for p in paths)):
            yield dict(zip(paths, combo))

    def expand(self) -> Iterator[Tuple[Dict[str, Any], ScenarioSpec]]:
        for point in self.points():
            data = self.base.to_dict()
            for path, value in point.items():
                self._set_path(data, path, value)
            spec = ScenarioSpec.from_dict(data)
            spec.name = f"{self.base.name}[{self.point_label(point)}]"
            yield point, spec

    def run(
        self,
        runner=None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        cache=None,
    ) -> List[Tuple[Dict[str, Any], Any]]:
        """Run every cell; returns ``[(point, result), ...]`` in grid order.

        ``workers > 1`` executes cells on a
        :class:`repro.experiments.parallel.ProcessPoolRunner`: results come
        back in the same deterministic cell order (keyed by index, not
        completion), seeded runs are bit-identical to the serial path, and a
        crashed / timed-out / failing cell yields a structured
        :class:`~repro.experiments.parallel.CellFailure` in its slot while
        the rest of the grid completes.  Serial mode (``workers`` None or
        <= 1) runs in-process and raises on the first failing cell.

        ``cache`` (a directory path or
        :class:`~repro.experiments.cache.ResultCache`) short-circuits cells
        whose content-addressed result is already stored and stores freshly
        executed ones — both serially and on a pool — so resuming an
        interrupted grid or re-summarizing a finished one re-executes only
        missed cells.  Cached summaries are bit-identical to cold runs.
        """
        if runner is not None and workers is not None and workers > 1:
            raise ValueError(
                "Sweep.run: a custom `runner` is serial by definition; "
                "pass either runner= or workers=, not both"
            )
        pairs = list(self.expand())
        if runner is None:
            from repro.experiments.parallel import run_cells

            results = run_cells(
                [spec for _point, spec in pairs],
                workers=workers,
                timeout=timeout,
                cache=cache,
            )
            return [
                (point, result)
                for (point, _spec), result in zip(pairs, results)
            ]
        if cache is not None:
            raise ValueError(
                "Sweep.run: result caching needs the default runner "
                "(a custom `runner`'s results are not PortableRunResults)"
            )
        return [(point, runner(spec)) for point, spec in pairs]

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"base": self.base.to_dict(), "axes": _jsonify(dict(self.axes))}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Sweep":
        return cls(ScenarioSpec.from_dict(data["base"]), data["axes"])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Sweep)
            and self.base == other.base
            and self.axes == other.axes
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sweep({self.base.name!r}, axes={list(self.axes)}, cells={len(self)})"
