"""Figure 10 — Migration latency and cost-per-user-transaction breakdown.

Paper findings: (a) Marlin's migration latency is 2.57x / 1.87x lower than
S-ZK / L-ZK; (b) Marlin's cost per user transaction is 1.35x / 1.61x lower,
primarily because the static coordination cluster's upfront cost (Meta Cost)
disappears.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.family import DEFAULT_SYSTEMS, run_family
from repro.experiments.harness import (
    FigureResult,
    ScenarioResult,
    SYSTEM_LABELS,
)

__all__ = ["run", "summarize"]


def summarize(results: Dict[str, ScenarioResult]) -> FigureResult:
    fig = FigureResult(
        "Figure 10", "Migration latency (a) and cost of UserTxn (b)"
    )
    latency: Dict[str, float] = {}
    cost_per_m: Dict[str, float] = {}
    for system, result in results.items():
        stats = result.metrics.migration_latency_stats()
        report = result.cost
        latency[system] = stats["mean"]
        cost_per_m[system] = report.cost_per_million_txns
        fig.add_row(
            system=SYSTEM_LABELS.get(system, system),
            migr_latency_mean_s=stats["mean"],
            migr_latency_p99_s=stats["p99"],
            db_cost_usd=report.db_cost,
            meta_cost_usd=report.meta_cost,
            cost_per_mtxn_usd=report.cost_per_million_txns,
            meta_fraction=report.meta_fraction,
        )
    if "marlin" in results:
        for base in results:
            if base == "marlin":
                continue
            label = SYSTEM_LABELS.get(base, base)
            if latency.get("marlin"):
                fig.findings[f"latency_reduction_vs_{label}"] = (
                    latency[base] / latency["marlin"]
                )
            if cost_per_m.get("marlin"):
                fig.findings[f"cost_reduction_vs_{label}"] = (
                    cost_per_m[base] / cost_per_m["marlin"]
                )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    results: Optional[Dict[str, ScenarioResult]] = None,
    clients: Optional[int] = None,
) -> FigureResult:
    if results is None:
        results = run_family(scale=scale, systems=systems, seed=seed, clients=clients)
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.25).format_table())
