"""Parallel sweep execution: a process pool over expanded experiment cells.

The §6 grids (fig12/13, the detector sweep) are dozens of independent
seeded simulations; since PR 3 every cell is a pure-data
:class:`~repro.experiments.spec.ScenarioSpec`, so the obvious way to make
full-paper-scale grids fast is to farm cells out to worker processes, one
simulator per worker.  :class:`ProcessPoolRunner` does exactly that, with
three properties the naive ``multiprocessing.Pool.map`` does not give you:

* **Determinism** — cells are shipped as their JSON-round-trippable dicts
  and re-hydrated with ``ScenarioSpec.from_dict`` in the worker, so a worker
  runs *exactly* what the serial path would (same spec, same seed, its own
  fresh simulator); results land in a slot keyed by cell index, never by
  completion order.  A seeded parallel sweep is bit-identical to serial.
* **Failure isolation** — a cell that raises, a worker process that dies
  (segfault, OOM-kill, ``os._exit``), or a cell that exceeds the per-cell
  wall-clock ``timeout`` becomes a structured :class:`CellFailure` in that
  cell's result slot while every other cell completes.  No hung grids, no
  lost grids.
* **Portable results** — a finished run's measurements cross the process
  boundary as a :class:`PortableRunResult`: the cell's
  :class:`~repro.cluster.metrics.MetricsCollector`, cost report, probe
  verdicts and extras, detached from the (unpicklable, generator-laden)
  live cluster.  It exposes the same reading surface as
  :class:`~repro.experiments.runner.SpecRunResult`, so figure summarizers
  work on either.

Entry points: ``Sweep.run(workers=N)``, the figure modules'
``run(..., workers=N)``, ``python -m repro.experiments run ... --workers N``,
or :func:`run_cells` / :class:`ProcessPoolRunner` directly.  See
EXPERIMENTS.md "Parallel execution".

All entry points also take ``cache=`` — a
:class:`~repro.experiments.cache.ResultCache` (or directory path) consulted
before a cell executes and fed after it finishes, so repeated or resumed
grids re-execute only missed cells.  See EXPERIMENTS.md "Result caching".
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cost import CostReport
from repro.experiments.cache import resolve_cache
from repro.experiments.runner import ProbeResult, result_summary, run_spec
from repro.experiments.spec import ScenarioSpec

__all__ = [
    "CellFailure",
    "PortableRunResult",
    "ProcessPoolRunner",
    "default_workers",
    "raise_failures",
    "run_cells",
]


def default_workers() -> int:
    """Default pool size: one worker per CPU (cells are CPU-bound sims)."""
    return os.cpu_count() or 1


@dataclass
class PortableRunResult:
    """A finished cell's measurements, shipped back from a worker process.

    Duck-types the reading surface of
    :class:`~repro.experiments.runner.SpecRunResult` (``metrics``, ``cost``,
    series accessors, ``probes``, ``slo_ok``, ``summary()``) minus the live
    ``cluster``, which never crosses the process boundary.
    """

    system: str
    duration: float
    spec: ScenarioSpec
    metrics: Any  # the cell's MetricsCollector, detached from its cluster
    cost_report: CostReport
    scale_summaries: List[dict] = field(default_factory=list)
    probes: List[ProbeResult] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)
    #: Detached :class:`repro.obs.TraceData` (plain data, pickles fine)
    #: when the cell's spec enabled tracing; ``None`` otherwise.
    trace: Any = None

    #: Distinguishes results from :class:`CellFailure` without isinstance.
    ok = True

    @property
    def cost(self) -> CostReport:
        return self.cost_report

    @property
    def migration_duration(self) -> float:
        return self.metrics.migration_duration

    @property
    def slo_ok(self) -> bool:
        return all(p.ok for p in self.probes)

    def throughput_series(self):
        return self.metrics.throughput_series(self.duration)

    def migration_series(self):
        return self.metrics.migration_series(self.duration)

    def abort_series(self):
        return self.metrics.abort_ratio_series(self.duration)

    def latency_series(self, pct=50.0):
        return self.metrics.latency_series(self.duration, pct=pct)

    def summary(self) -> Dict[str, Any]:
        return result_summary(self)

    @classmethod
    def from_run(cls, result) -> "PortableRunResult":
        """Detach a :class:`SpecRunResult` from its cluster (cost is priced
        now, while the cluster is still around)."""
        return cls(
            system=result.system,
            duration=result.duration,
            spec=result.spec,
            metrics=result.metrics,
            cost_report=result.cost,
            scale_summaries=list(result.scale_summaries),
            probes=list(result.probes),
            extras=dict(result.extras),
            trace=getattr(result, "trace", None),
        )


@dataclass
class CellFailure:
    """Structured per-cell error from a parallel sweep.

    ``kind`` is one of ``"error"`` (the cell raised inside the worker),
    ``"crash"`` (the worker process died mid-cell; ``exitcode`` holds how)
    or ``"timeout"`` (the cell exceeded the runner's per-cell wall-clock
    budget and its worker was terminated).
    """

    index: int
    name: str
    kind: str
    error: str
    message: str
    traceback: str = ""
    exitcode: Optional[int] = None

    ok = False

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "index": self.index,
            "name": self.name,
            "failed": True,
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
        }
        if self.exitcode is not None:
            out["exitcode"] = self.exitcode
        return out

    def summary(self) -> Dict[str, Any]:
        """Failure-shaped stand-in for ``SpecRunResult.summary()`` so sweep
        reports stay uniform when some cells failed."""
        return self.to_dict()

    def __str__(self) -> str:
        code = f", exitcode {self.exitcode}" if self.exitcode is not None else ""
        return f"cell {self.index} ({self.name}): {self.kind}{code}: {self.message}"


def _worker_main(task_q, result_q) -> None:
    """Worker loop: pull ``(index, spec_dict)`` tasks until the sentinel.

    The module import re-registers every figure's phase actions when the
    pool uses the ``spawn`` start method (``fork`` children inherit them).
    A failing cell must not take the worker down, so everything — including
    result pickling, which would otherwise fail silently in the queue's
    feeder thread — happens under the try.
    """
    import repro.experiments  # noqa: F401  (populates the action registry)

    while True:
        task = task_q.get()
        if task is None:
            return
        index, spec_data = task
        try:
            spec = ScenarioSpec.from_dict(spec_data)
            result = run_spec(spec)
            payload = pickle.dumps(
                PortableRunResult.from_run(result),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            result_q.put((index, "ok", payload))
        except BaseException as exc:
            result_q.put(
                (
                    index,
                    "error",
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                )
            )


class _Worker:
    """One pool slot: a process, its private task queue, and what it holds."""

    def __init__(self, ctx, result_q):
        self.task_q = ctx.SimpleQueue()
        self.proc = ctx.Process(
            target=_worker_main, args=(self.task_q, result_q), daemon=True
        )
        self.proc.start()
        self.current: Optional[int] = None
        self.started = 0.0

    def assign(self, index: int, payload: Dict[str, Any]) -> None:
        self.current = index
        self.started = time.monotonic()
        self.task_q.put((index, payload))

    def retire(self) -> None:
        """Ask a live worker to exit once its queue drains."""
        self.task_q.put(None)

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)


class ProcessPoolRunner:
    """Run :class:`ScenarioSpec` cells across worker processes.

    Parameters:

    * ``workers`` — pool size (default: :func:`default_workers`); capped at
      the number of cells.
    * ``timeout`` — optional per-cell wall-clock budget in seconds; a cell
      that exceeds it has its worker terminated and yields a
      :class:`CellFailure` of kind ``"timeout"``.
    * ``start_method`` — ``multiprocessing`` start method; default prefers
      ``fork`` (cheap, inherits registered custom actions) and falls back to
      the platform default where ``fork`` is unavailable.

    ``run(specs)`` returns one entry per input spec, in input order:
    a :class:`PortableRunResult`, or a :class:`CellFailure`.
    """

    #: Parent poll interval: bounds both crash-detection and timeout slack.
    _POLL_S = 0.1

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
    ):
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.timeout = timeout
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def run(self, specs: Sequence[ScenarioSpec], cache=None) -> List[Any]:
        specs = list(specs)
        if not specs:
            return []
        cache = resolve_cache(cache)
        names = [spec.name for spec in specs]
        n = len(specs)
        results: List[Any] = [None] * n
        done = 0
        if cache is not None:
            # Consult the cache before dispatching anything: hit cells settle
            # into their slots immediately and never reach a worker.
            for index, spec in enumerate(specs):
                hit = cache.get(spec)
                if hit is not None:
                    results[index] = hit
                    done += 1
            if done == n:
                return results
        pending = deque(i for i in range(n) if results[i] is None)
        payloads = [spec.to_dict() for spec in specs]
        ctx = mp.get_context(self.start_method)
        result_q = ctx.Queue()
        pool = [
            _Worker(ctx, result_q)
            for _ in range(min(self.workers, len(pending)))
        ]

        def feed(worker: _Worker) -> None:
            if pending:
                index = pending.popleft()
                worker.assign(index, payloads[index])
            else:
                worker.current = None
                worker.retire()

        def settle(index: int, outcome: Any) -> int:
            """Record a cell outcome once; late duplicates are dropped."""
            if results[index] is not None:
                return 0
            results[index] = outcome
            for worker in pool:
                if worker.current == index:
                    worker.current = None
                    feed(worker)
                    break
            return 1

        def drain(block: bool) -> int:
            settled = 0
            while True:
                try:
                    if block:
                        item = result_q.get(timeout=self._POLL_S)
                    else:
                        item = result_q.get_nowait()
                except queue_mod.Empty:
                    return settled
                index, status, payload = item
                if status == "ok":
                    if cache is not None:
                        # Store the worker's pickle verbatim (no re-encode);
                        # failures below never reach the cache.
                        cache.put_serialized(specs[index], payload)
                    settled += settle(index, pickle.loads(payload))
                else:
                    error, message, tb = payload
                    settled += settle(
                        index,
                        CellFailure(
                            index=index,
                            name=names[index],
                            kind="error",
                            error=error,
                            message=message,
                            traceback=tb,
                        ),
                    )
                block = False  # after one blocking get, sweep the backlog

        try:
            for worker in pool:
                feed(worker)
            while done < n:
                done += drain(block=True)
                now = time.monotonic()
                for slot, worker in enumerate(pool):
                    if worker.current is None:
                        continue
                    index = worker.current
                    if not worker.proc.is_alive():
                        # The result may have raced the exit: sweep the
                        # queue once more before declaring a crash.
                        done += drain(block=False)
                        if worker.current is None:
                            continue
                        # Detach *before* settling: settle() re-feeds the
                        # worker that held the cell, and a dead worker's
                        # queue would swallow the next pending cell.
                        worker.current = None
                        worker.kill()  # reap
                        done += settle(
                            index,
                            CellFailure(
                                index=index,
                                name=names[index],
                                kind="crash",
                                error="WorkerCrashed",
                                message=(
                                    "worker process died while running this "
                                    f"cell (exitcode {worker.proc.exitcode})"
                                ),
                                exitcode=worker.proc.exitcode,
                            ),
                        )
                        if pending:
                            pool[slot] = _Worker(ctx, result_q)
                            feed(pool[slot])
                    elif (
                        self.timeout is not None
                        and now - worker.started > self.timeout
                    ):
                        worker.current = None  # detach before settle re-feeds
                        worker.kill()
                        done += settle(
                            index,
                            CellFailure(
                                index=index,
                                name=names[index],
                                kind="timeout",
                                error="CellTimeout",
                                message=(
                                    f"cell exceeded the {self.timeout}s "
                                    "wall-clock budget; worker terminated"
                                ),
                            ),
                        )
                        if pending:
                            pool[slot] = _Worker(ctx, result_q)
                            feed(pool[slot])
        finally:
            for worker in pool:
                worker.kill()
            result_q.close()
            result_q.join_thread()
        return results


def run_cells(
    specs: Sequence[ScenarioSpec],
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    start_method: Optional[str] = None,
    cache=None,
) -> List[Any]:
    """Run a list of cells, serially or on a pool — the figures' entry point.

    Serial is forced when ``workers`` is None or <= 1, or when there are
    fewer than two cells; the serial path calls
    :func:`~repro.experiments.runner.run_spec` in-process (the bit-identical
    baseline) and raises on the first failing cell.  The parallel path
    completes the whole grid and returns :class:`CellFailure` entries for
    failed cells — see :func:`raise_failures` for callers that need
    everything to have succeeded.

    ``cache`` (a directory path or
    :class:`~repro.experiments.cache.ResultCache`) consults the
    content-addressed result cache before executing each cell and stores
    every freshly finished one; cached cells come back as
    :class:`PortableRunResult` regardless of execution mode, with summaries
    bit-identical to a cold run.
    """
    specs = list(specs)
    cache = resolve_cache(cache)
    if workers is None or workers <= 1 or len(specs) <= 1:
        if cache is None:
            return [run_spec(spec) for spec in specs]
        results: List[Any] = []
        for spec in specs:
            hit = cache.get(spec)
            if hit is not None:
                results.append(hit)
                continue
            result = run_spec(spec)
            # Detach now (cost priced while the cluster is alive) so the
            # stored artifact matches what a pool worker would ship.
            cache.put(spec, PortableRunResult.from_run(result))
            results.append(result)
        return results
    return ProcessPoolRunner(
        workers=workers, timeout=timeout, start_method=start_method
    ).run(specs, cache=cache)


def raise_failures(results: Sequence[Any], context: str = "sweep") -> None:
    """Raise if any entry is a :class:`CellFailure` (figure grids need every
    cell; ad-hoc sweeps keep the structured entries instead)."""
    failures = [r for r in results if isinstance(r, CellFailure)]
    if failures:
        lines = "\n  ".join(str(f) for f in failures)
        raise RuntimeError(
            f"{context}: {len(failures)} of {len(results)} cells failed:\n  {lines}"
        )
