"""Figure 7-style "SLO under chaos" — availability through messier faults.

The paper's Figure 7 shows throughput through a node failure and failover;
this experiment generalizes it into the benchmark the ROADMAP asks for:
marlin vs. the external-service baselines under *identical* fault schedules,
one per fault kind (network partition, packet loss, gray failure, storage
stall, crash+restart), each run measured against explicit SLO probes —
p99 latency ceiling, throughput floor, abort ceiling, and the longest
full-unavailability window.

Everything here is a thin spec: the grid is (fault kind x system) over
:func:`slo_spec`, executed by ``run_spec``.  Because the schedule is part of
the spec (not the harness), every system sees byte-identical fault timing —
the controlled comparison the old 17-kwarg harness could not express.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.harness import FigureResult, SYSTEM_LABELS, scaled
from repro.experiments.parallel import raise_failures, run_cells
from repro.experiments.runner import SpecRunResult
from repro.experiments.spec import (
    FaultSpec,
    ProbeSpec,
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
)

__all__ = ["FAULT_KINDS", "run", "run_grid", "slo_spec", "summarize"]

DEFAULT_SYSTEMS = ("marlin", "zk-small", "fdb", "lease")

#: The fault lands at t=3 into steady state; the run ends at a fixed horizon
#: so every (system, fault) cell is measured over the same window.
FAULT_AT = 3.0
DURATION = 14.0

#: One declarative schedule per fault kind (CHAOS.md vocabulary).  Node 1 is
#: always the victim; storage stalls hit the home region.
FAULT_KINDS: Dict[str, list] = {
    "partition": [
        {
            "at": FAULT_AT,
            "kind": "partition",
            "groups": [[1], [0, 2, 3]],
            "duration": 2.5,
        }
    ],
    "packet_loss": [
        {
            "at": FAULT_AT,
            "kind": "packet_loss",
            "pair": [0, 1],
            "rate": 0.4,
            "duration": 4.0,
        }
    ],
    "gray_failure": [
        {
            "at": FAULT_AT,
            "kind": "slow_node",
            "node": 1,
            "cpu_factor": 12.0,
            "rpc_lag": 0.35,
            "duration": 4.0,
        }
    ],
    "storage_stall": [
        {
            "at": FAULT_AT,
            "kind": "storage_stall",
            "region": "us-west",
            "duration": 1.2,
        }
    ],
    "crash_restart": [
        {
            "at": FAULT_AT,
            "kind": "crash",
            "node": 1,
            "rejoin": True,
            "duration": 4.0,
        }
    ],
}

#: SLO thresholds (probes) — intentionally tight enough that heavyweight
#: faults violate them; the measured value is the interesting output either
#: way.
SLO_P99_S = 0.6
SLO_ABORT_RATIO = 0.25
SLO_UNAVAILABILITY_S = 3.0
#: Control-plane SLO: p99 per-MigrationTxn latency (failover recovery moves).
#: Every coordination mode runs a failure detector now — Marlin's vote-gated
#: ring, zk/fdb the session-confirmed ring, lease mode TTL expiry + CAS
#: self-promotion — so crash cells fail over in all four modes and the
#: comparison is symmetric.  A cell that records no migrations (e.g. fault
#: kinds the detectors correctly ride out) reports migration_p99_s = None
#: ("unmeasured"), never a vacuous 0.0.
SLO_MIGRATION_P99_S = 2.0
#: Sub-window width for the per-window SLO series (violation fraction over
#: time); matches the metrics bucket.
PROBE_WINDOW_S = 1.0


def slo_spec(
    system: str,
    fault_kind: str,
    scale: float = 1.0,
    seed: int = 1,
    trace: Optional[TraceSpec] = None,
) -> ScenarioSpec:
    """One (system, fault kind) cell: steady load + the canned schedule."""
    schedule = FAULT_KINDS.get(fault_kind)
    if schedule is None:
        raise ValueError(
            f"unknown fault kind {fault_kind!r}; expected one of "
            f"{sorted(FAULT_KINDS)}"
        )
    clients = scaled(32, scale, minimum=8)
    return ScenarioSpec(
        name=f"fig7-{fault_kind}-{system}",
        topology=TopologySpec(nodes=4, coordination=system),
        workload=WorkloadSpec(
            kind="ycsb", clients=clients, granules=scaled(1600, scale, minimum=64)
        ),
        faults=FaultSpec(schedule=schedule, failure_detection=True),
        probes=[
            ProbeSpec(
                name="p99_latency",
                kind="latency",
                pct=99.0,
                threshold=SLO_P99_S,
                # Per-window series: which seconds of the fault violated p99.
                every=PROBE_WINDOW_S,
            ),
            ProbeSpec(
                name="throughput_floor",
                kind="throughput_floor",
                # A quarter of the nominal closed-loop rate (~10 tps/client).
                threshold=2.5 * clients,
                every=PROBE_WINDOW_S,
            ),
            ProbeSpec(
                name="abort_ceiling", kind="abort_ceiling", threshold=SLO_ABORT_RATIO
            ),
            ProbeSpec(
                name="unavailability",
                kind="unavailability",
                threshold=SLO_UNAVAILABILITY_S,
            ),
            ProbeSpec(
                name="migration_p99",
                kind="migration_latency",
                pct=99.0,
                threshold=SLO_MIGRATION_P99_S,
            ),
        ],
        trace=trace,
        seed=seed,
        duration=DURATION,
        # Fenced-but-alive victims legitimately hold stale views at the end
        # of a chaos run; ground-truth invariants are asserted by the chaos
        # tests, not per cell here.
        check_invariants=False,
    )


def run_grid(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    fault_kinds: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    cache=None,
    trace: Optional[TraceSpec] = None,
) -> Dict[Tuple[str, str], SpecRunResult]:
    """The (fault kind x system) grid; ``workers > 1`` runs cells on a
    process pool (every cell is an independent seeded simulation);
    ``cache`` reuses stored cell results (EXPERIMENTS.md "Result
    caching"); ``trace`` (a :class:`TraceSpec`) turns on deterministic
    tracing per cell, populating the ``prepare_s`` / ``decision_s``
    span-summary columns."""
    kinds = list(fault_kinds) if fault_kinds is not None else sorted(FAULT_KINDS)
    keys = [(kind, system) for kind in kinds for system in systems]
    specs = [
        slo_spec(system, kind, scale=scale, seed=seed, trace=trace)
        for kind, system in keys
    ]
    results = run_cells(specs, workers=workers, cache=cache)
    raise_failures(results, context="fig7")
    return dict(zip(keys, results))


def summarize(results: Dict[Tuple[str, str], SpecRunResult]) -> FigureResult:
    fig = FigureResult(
        "Figure 7", "SLO under chaos (identical fault schedules per system)"
    )
    committed: Dict[Tuple[str, str], int] = {}
    for (kind, system), result in sorted(results.items()):
        m = result.metrics
        probes = {p.name: p for p in result.probes}
        spans = result.extras.get("span_summary", {})
        fd = result.extras.get("failure_detection") or {}
        first_failover = fd.get("first_failover_s")
        tput = result.throughput_series()
        during = [
            tps for t, tps in tput if FAULT_AT <= t < result.duration - 1.0
        ]
        committed[(kind, system)] = m.total_committed
        fig.add_row(
            fault=kind,
            system=SYSTEM_LABELS.get(system, system),
            committed=m.total_committed,
            tput_through_fault=float(np.mean(during)) if during else 0.0,
            p99_s=probes["p99_latency"].value,
            # Share of 1 s windows violating the p99 SLO — "how long was it
            # bad", which the whole-run percentile alone hides.
            p99_violation_frac=probes["p99_latency"].violation_fraction,
            abort_ratio=probes["abort_ceiling"].value,
            unavail_s=probes["unavailability"].value,
            migration_p99_s=probes["migration_p99"].value,
            failovers=len(m.failovers),
            # Fault injection to first confirmed failover — each mode's
            # detection latency (None when no failover ran); and the
            # liveness-maintenance traffic (ring heartbeats + session
            # pings, or lease renews/acquires/scans) paid for it — the
            # detection-latency/renewal-traffic trade-off, per cell.
            detection_latency_s=(
                first_failover - FAULT_AT
                if first_failover is not None
                else None
            ),
            renewal_rpcs=fd.get("renewal_rpcs", 0),
            # Traced runs only: total sim time each 2PC phase held (zero
            # when the grid ran without a TraceSpec).
            prepare_s=spans.get("2pc.prepare", {}).get("total_s", 0.0),
            decision_s=spans.get("2pc.decision", {}).get("total_s", 0.0),
            slo_ok=result.slo_ok,
        )
        fig.rows[-1]["tput_series"] = tput
        fig.rows[-1]["latency_series"] = result.latency_series(pct=99.0)
        fig.rows[-1]["abort_series"] = result.abort_series()
        #: Per-window probe verdicts: [(window_start, value, ok)] per probe.
        fig.rows[-1]["slo_series"] = {
            p.name: p.series for p in result.probes if p.series is not None
        }
    kinds = sorted({k for k, _s in results})
    systems = sorted({s for _k, s in results})
    if "marlin" in systems:
        for kind in kinds:
            for other in systems:
                if other == "marlin" or not committed.get((kind, other)):
                    continue
                label = SYSTEM_LABELS.get(other, other)
                fig.findings[f"{kind}_committed_vs_{label}"] = (
                    committed[(kind, "marlin")] / committed[(kind, other)]
                )
        fig.findings["marlin_slo_ok_cells"] = sum(
            1
            for (kind, system), result in results.items()
            if system == "marlin" and result.slo_ok
        )
        marlin_fracs = [
            row["p99_violation_frac"]
            for row in fig.rows
            if row["system"] == SYSTEM_LABELS["marlin"]
        ]
        if marlin_fracs:
            fig.findings["marlin_mean_p99_violation_frac"] = float(
                np.mean(marlin_fracs)
            )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    fault_kinds: Optional[Sequence[str]] = None,
    results: Optional[Dict[Tuple[str, str], SpecRunResult]] = None,
    workers: Optional[int] = None,
    cache=None,
    trace: Optional[TraceSpec] = None,
) -> FigureResult:
    if results is None:
        results = run_grid(
            scale=scale,
            systems=systems,
            seed=seed,
            fault_kinds=fault_kinds,
            workers=workers,
            cache=cache,
            trace=trace,
        )
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.25).format_table())
