"""Figure 17 — replication modes: RPO/RTO vs. commit latency under chaos.

The replica-set subsystem (``engine/replication.py``) turns durability into
a dial: ``sync_quorum`` blocks every commit ack on a follower quorum,
``async`` ships on a lag budget, ``piggyback`` rides group-commit flush
batches.  This figure prices the dial.  Every cell runs fig13's
geo-distributed topology (four regions, one node per region) under a
*byte-identical* fault schedule — the primary on node 1 crashes mid-run and
a follower is promoted — and reports what each mode paid (commit p99) and
what it bought (``rpo_bytes`` lost at promotion, ``rto_s`` from suspicion
to ownership):

* ``off``       — no replicas; failover falls back to the storage-driven
  RecoveryMigrTxn path, RPO/RTO probes stay unmeasured (``None``).
* ``sync_q2``/``sync_q3`` — quorum acks before the client ack: RPO is 0 by
  construction, p99 absorbs the cross-region ship round trip.
* ``async``     — commit acks never wait: best p99, nonzero RPO (the
  unshipped lag window dies with the primary).
* ``piggyback`` — ships whole flush batches without blocking acks: near-zero
  RPO at near-async latency, the group-commit sweet spot.

The ``lagged_crash`` kind runs the same crash behind a
``replica_link_degradation`` window (asymmetric partition of the primary's
actual ship paths, placement-aware via ``planned_followers``), widening the
async lag that the crash then converts into measured RPO.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.chaos.scenarios import replica_link_degradation
from repro.engine.replication import planned_followers
from repro.experiments.harness import FigureResult, SYSTEM_LABELS, scaled
from repro.experiments.parallel import raise_failures, run_cells
from repro.experiments.runner import SpecRunResult
from repro.experiments.spec import (
    FaultSpec,
    ProbeSpec,
    ScenarioSpec,
    TopologySpec,
    TraceSpec,
    WorkloadSpec,
)
from repro.sim.network import AZURE_REGIONS

__all__ = [
    "CRASH_KINDS",
    "MODE_CELLS",
    "crash_schedule",
    "replication_spec",
    "run",
    "run_grid",
    "summarize",
]

SYSTEM = "marlin"

FAULT_AT = 3.0
#: Long enough that suspicion (~2.5 s of missed probes), the quorum vote and
#: the promotion all land while the primary is genuinely dead.
DOWN_FOR = 6.0
DURATION = 14.0
#: The crashed primary; node ids are stable (one per region, in
#: :data:`AZURE_REGIONS` order), so the schedule is pure data.
VICTIM = 1
NODES = 4
FACTOR = 3

#: The replication dial: cell name -> ``TopologySpec.replication`` dict.
MODE_CELLS: Tuple[Tuple[str, Optional[Dict[str, Any]]], ...] = (
    ("off", None),
    ("sync_q2", {"factor": FACTOR, "mode": "sync_quorum", "quorum": 2}),
    ("sync_q3", {"factor": FACTOR, "mode": "sync_quorum", "quorum": 3}),
    ("async", {"factor": FACTOR, "mode": "async", "quorum": 2}),
    ("piggyback", {"factor": FACTOR, "mode": "piggyback", "quorum": 2}),
)

CRASH_KINDS = ("crash", "lagged_crash")

#: Geo p99 SLO: the whole-run p99 absorbs the outage window's stalled
#: requests plus cross-region quorum ships, so the bound is far looser than
#: fig16's single-region 0.8s.  ``sync_q3`` (quorum == factor: every commit
#: waits on the farthest region, and one dead follower stalls the world) is
#: the cell this SLO is designed to flag.
SLO_P99_S = 6.0
#: "Zero data loss" SLO — sync_quorum meets it by construction; async is
#: *expected* to violate it under the same crash.  That asymmetry is the
#: figure's finding, so the violation is reported, not raised.
SLO_RPO_BYTES = 0.0
SLO_RTO_S = 5.0

#: Geo round trips (Australia<->UK ~0.28s) sit above the single-region
#: detector timeout; stretch the probe timeout so only real crashes fail,
#: keeping detection (~interval x misses + timeout) inside the outage.
DETECTOR = dict(
    failure_detection=True,
    detector_interval=0.5,
    detector_timeout=0.5,
    detector_misses=3,
)


def crash_schedule(kind: str, seed: int) -> list:
    """The declarative fault schedule for one cell — identical across modes.

    ``lagged_crash`` fronts the crash with a replica-link degradation window
    aimed at the victim's *planned* followers (same seed -> same placement
    the live cluster will choose), so ships queue before the kill lands.
    The window clears ``0.5`` s before the crash: the detector never sees it,
    only the replication lag does.
    """
    crash = {
        "at": FAULT_AT, "kind": "crash", "node": VICTIM, "rejoin": True,
        "duration": DOWN_FOR,
    }
    if kind == "crash":
        return [crash]
    if kind == "lagged_crash":
        followers = planned_followers(seed, VICTIM, range(NODES), FACTOR)
        schedule = replica_link_degradation(
            VICTIM, followers, at=1.5, duration=1.0
        )
        schedule.at(FAULT_AT, _crash_event())
        return schedule.to_spec()
    raise ValueError(
        f"unknown crash kind {kind!r}; expected one of {CRASH_KINDS}"
    )


def _crash_event():
    from repro.chaos.events import Crash

    return Crash(node=VICTIM, rejoin=True, duration=DOWN_FOR)


def replication_spec(
    cell: str,
    crash_kind: str = "crash",
    scale: float = 1.0,
    seed: int = 1,
    workload: str = "ycsb",
    remote_fraction: float = 0.25,
    trace: Optional[TraceSpec] = None,
) -> ScenarioSpec:
    """One (mode cell, crash kind) spec: geo topology, one primary crash."""
    replication = dict(MODE_CELLS).get(cell, "missing")
    if replication == "missing":
        raise ValueError(
            f"unknown mode cell {cell!r}; expected one of "
            f"{[name for name, _ in MODE_CELLS]}"
        )
    name = f"fig17-{cell}-{crash_kind}"
    if workload != "ycsb":
        name = f"{name}-{workload}"
    return ScenarioSpec(
        name=name,
        topology=TopologySpec(
            nodes=NODES,
            coordination=SYSTEM,
            regions=tuple(AZURE_REGIONS),
            replication=replication,
        ),
        workload=WorkloadSpec(
            kind=workload,
            clients=scaled(32, scale, minimum=8),
            granules=scaled(1600, scale, minimum=64),
            remote_fraction=remote_fraction,
        ),
        faults=FaultSpec(
            schedule=crash_schedule(crash_kind, seed), **DETECTOR
        ),
        probes=[
            ProbeSpec(
                name="p99_latency", kind="latency", pct=99.0,
                threshold=SLO_P99_S,
            ),
            ProbeSpec(
                name="rpo_bytes", kind="rpo_bytes", threshold=SLO_RPO_BYTES
            ),
            ProbeSpec(name="rto_s", kind="rto_s", threshold=SLO_RTO_S),
        ],
        trace=trace,
        seed=seed,
        duration=DURATION,
        # The fenced-then-restarted victim holds stale views at quiescence;
        # invariants are owned by the replication/chaos test suites.
        check_invariants=False,
    )


def run_grid(
    scale: float = 1.0,
    seed: int = 1,
    cells: Optional[Sequence[str]] = None,
    crash_kinds: Sequence[str] = CRASH_KINDS,
    workload: str = "ycsb",
    workers: Optional[int] = None,
    cache=None,
    trace: Optional[TraceSpec] = None,
) -> Dict[Tuple[str, str], SpecRunResult]:
    """The (mode cell x crash kind) grid; pool/cache semantics as fig7."""
    names = list(cells) if cells is not None else [n for n, _ in MODE_CELLS]
    keys = [(cell, kind) for cell in names for kind in crash_kinds]
    specs = [
        replication_spec(
            cell, kind, scale=scale, seed=seed, workload=workload,
            trace=trace,
        )
        for cell, kind in keys
    ]
    results = run_cells(specs, workers=workers, cache=cache)
    raise_failures(results, context="fig17_replication")
    return dict(zip(keys, results))


def summarize(results: Dict[Tuple[str, str], SpecRunResult]) -> FigureResult:
    fig = FigureResult(
        "Figure 17",
        "Replication modes: RPO/RTO vs. commit latency "
        f"({SYSTEM_LABELS[SYSTEM]}, geo, primary crash)",
    )
    for (cell, kind), result in sorted(results.items()):
        m = result.metrics
        probes = {p.name: p for p in result.probes}
        repl = result.extras.get("replication", {})
        fig.add_row(
            mode=repl.get("mode", "off"),
            cell=cell,
            crash=kind,
            quorum=repl.get("quorum", 0),
            committed=m.total_committed,
            aborted=m.total_aborted,
            failovers=len(m.failovers),
            promotions=repl.get("promotions", 0),
            ships=repl.get("ships", 0),
            bytes_shipped=repl.get("bytes_shipped", 0),
            quorum_stalls=repl.get("quorum_stalls", 0),
            p99_s=probes["p99_latency"].value,
            rpo_bytes=probes["rpo_bytes"].value,
            rto_s=probes["rto_s"].value,
            slo_ok=result.slo_ok,
        )
    sync_rpo = [
        row["rpo_bytes"]
        for row in fig.rows
        if row["cell"].startswith("sync") and row["rpo_bytes"] is not None
    ]
    async_rpo = [
        row["rpo_bytes"]
        for row in fig.rows
        if row["cell"] == "async" and row["rpo_bytes"] is not None
    ]
    if sync_rpo:
        fig.findings["sync_max_rpo_bytes"] = max(sync_rpo)
    if async_rpo:
        fig.findings["async_max_rpo_bytes"] = max(async_rpo)
    if sync_rpo and async_rpo:
        fig.findings["sync_rpo_zero"] = float(max(sync_rpo) == 0.0)
        fig.findings["async_loses_data"] = float(max(async_rpo) > 0.0)
    rtos = [r["rto_s"] for r in fig.rows if r["rto_s"] is not None]
    if rtos:
        fig.findings["worst_rto_s"] = max(rtos)
    return fig


def run(
    scale: float = 1.0,
    seed: int = 1,
    cells: Optional[Sequence[str]] = None,
    crash_kinds: Sequence[str] = CRASH_KINDS,
    workload: str = "ycsb",
    results: Optional[Dict[Tuple[str, str], SpecRunResult]] = None,
    workers: Optional[int] = None,
    cache=None,
    trace: Optional[TraceSpec] = None,
) -> FigureResult:
    if results is None:
        results = run_grid(
            scale=scale,
            seed=seed,
            cells=cells,
            crash_kinds=crash_kinds,
            workload=workload,
            workers=workers,
            cache=cache,
            trace=trace,
        )
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.25).format_table())
