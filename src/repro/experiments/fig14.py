"""Figure 14 — Dynamic (bursty) workload with autoscaling (§6.6).

The client population starts at 400, doubles to 800, holds, then drops back
(scaled 1/8 by default); an autoscaler drives the cluster 8 -> 16 -> 8.
Paper findings: Marlin completes scale-out 2.6x/2.3x and scale-in 3.8x/2.6x
faster than S-ZK/L-ZK, reaches the high-load throughput plateau sooner,
returns latency/abort ratio to normal faster, and — because idle nodes are
released sooner (12 s vs 45 s / 32 s after the load drop) — has the lowest
realtime cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.harness import (
    FigureResult,
    ScenarioResult,
    SYSTEM_LABELS,
    scaled,
)
from repro.experiments.runner import run_spec
from repro.experiments.spec import (
    PhaseSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = ["dynamic_spec", "run", "run_dynamic", "summarize"]

DEFAULT_SYSTEMS = ("marlin", "zk-small", "zk-large")

BASE_LOW_CLIENTS = 50
BASE_HIGH_CLIENTS = 100
BASE_GRANULES = 12_500
BURST_AT = 10.0
DROP_AT = 40.0
END_AT = 65.0


def dynamic_spec(system: str, scale: float = 1.0, seed: int = 1) -> ScenarioSpec:
    """The §6.6 bursty-workload timeline as a spec.

    The base population runs from warmup; a burst pool joins at
    ``BURST_AT`` bound to the original 8 nodes and leaves at ``DROP_AT``;
    the autoscaler (started right after the base clients) drives 8 -> 16 ->
    8.  Fixed ``duration`` so every system is measured over the same window.
    """
    low = scaled(BASE_LOW_CLIENTS, scale)
    high = scaled(BASE_HIGH_CLIENTS, scale)
    granules = scaled(BASE_GRANULES, scale, minimum=128)
    return ScenarioSpec(
        name=f"fig14-dynamic-{system}",
        topology=TopologySpec(nodes=8, coordination=system),
        workload=WorkloadSpec(
            kind="ycsb", clients=low, granules=granules, client_seed_factor=31
        ),
        phases=[
            PhaseSpec(
                at=0.1,
                action="autoscaler",
                params={
                    "interval": 1.0,
                    "clients_per_node": high / 16.0,
                    "min_nodes": 8,
                    "max_nodes": 16,
                    "cooldown": 2.0,
                },
            ),
            PhaseSpec(
                at=BURST_AT,
                action="clients_start",
                params={
                    "pool": "burst",
                    "count": high - low,
                    "seed_factor": 57,
                    "bind_to_nodes": list(range(8)),
                },
            ),
            PhaseSpec(at=DROP_AT, action="clients_stop", params={"pool": "burst"}),
        ],
        seed=seed,
        duration=END_AT,
        check_invariants=False,
    )


def run_dynamic(
    system: str,
    scale: float = 1.0,
    seed: int = 1,
) -> ScenarioResult:
    return run_spec(dynamic_spec(system, scale=scale, seed=seed))


def summarize(results: Dict[str, ScenarioResult]) -> FigureResult:
    fig = FigureResult(
        "Figure 14", "Realtime performance of dynamic workloads"
    )
    out_duration: Dict[str, float] = {}
    in_duration: Dict[str, float] = {}
    release_delay: Dict[str, float] = {}
    for system, result in results.items():
        outs = [e for e in result.scale_summaries if e["kind"] == "scale-out"]
        ins = [e for e in result.scale_summaries if e["kind"] == "scale-in"]
        out_d = sum(e["duration"] for e in outs)
        in_d = sum(e["duration"] for e in ins)
        # Time from the load drop until compute nodes are actually released.
        release = (
            min(e["start"] + e["duration"] for e in ins) - DROP_AT
            if ins
            else float("nan")
        )
        out_duration[system] = out_d
        in_duration[system] = in_d
        release_delay[system] = release
        report = result.cost
        fig.add_row(
            system=SYSTEM_LABELS.get(system, system),
            scale_out_s=out_d,
            scale_in_s=in_d,
            node_release_after_drop_s=release,
            total_cost_usd=report.total,
            cost_per_mtxn_usd=report.cost_per_million_txns,
            committed=result.metrics.total_committed,
        )
        fig.rows[-1]["tput_series"] = result.throughput_series()
        fig.rows[-1]["cost_series"] = result.cluster.cost_model.realtime_cost_series(
            result.metrics, until=result.duration
        )
        fig.rows[-1]["latency_series"] = result.latency_series()
        fig.rows[-1]["abort_series"] = result.abort_series()
        fig.rows[-1]["migration_series"] = result.migration_series()
    if "marlin" in results:
        for base in results:
            if base == "marlin":
                continue
            label = SYSTEM_LABELS.get(base, base)
            if out_duration.get("marlin"):
                fig.findings[f"scale_out_speedup_vs_{label}"] = (
                    out_duration[base] / out_duration["marlin"]
                )
            if in_duration.get("marlin"):
                fig.findings[f"scale_in_speedup_vs_{label}"] = (
                    in_duration[base] / in_duration["marlin"]
                )
            fig.findings[f"release_delay_{label}_s"] = release_delay[base]
        fig.findings["release_delay_marlin_s"] = release_delay["marlin"]
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    results: Optional[Dict[str, ScenarioResult]] = None,
) -> FigureResult:
    if results is None:
        results = {
            system: run_dynamic(system, scale=scale, seed=seed)
            for system in systems
        }
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.2).format_table())
