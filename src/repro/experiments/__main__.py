"""``python -m repro.experiments`` — list and run experiments from the CLI.

Commands::

    python -m repro.experiments list [--json]
    python -m repro.experiments run fig8 --scale 0.25 [--seed N]
        [--systems marlin,zk-small] [--clients N] [--json] [--series]
        [--workers N] [--cache DIR | --no-cache]
    python -m repro.experiments run path/to/spec.json [--json] [--workers N]
        [--cache DIR | --no-cache]

``run <figure>`` executes a registered figure (see ``list``) and prints its
table (or ``--json``).  ``run <file.json>`` loads an ad-hoc
:class:`~repro.experiments.spec.ScenarioSpec` — or a
:class:`~repro.experiments.spec.Sweep` when the file has an ``"axes"`` key —
executes it through ``run_spec``, and prints the run summaries (probe
verdicts included).  ``--workers N`` runs grid cells on a process pool
(sweep figures and sweep spec files; seeded results stay bit-identical to
serial — see EXPERIMENTS.md "Parallel execution").  ``--cache DIR`` (or
``$REPRO_SWEEP_CACHE``) stores finished cells in a content-addressed result
cache and reuses them on identical (spec, seed) cells, so an interrupted or
re-summarized grid re-executes only missed cells; cache hit/miss counts are
printed to stderr (see EXPERIMENTS.md "Result caching").
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Any, Dict

import numpy as np

from repro.experiments import FIGURES
from repro.experiments.runner import run_spec
from repro.experiments.spec import ScenarioSpec, Sweep


def _json_default(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):  # pragma: no cover - series are lists
        return value.tolist()
    if isinstance(value, bool):
        return value
    return str(value)


def _figure_doc(module) -> str:
    doc = (module.__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def _resolve_cache(args):
    """``--cache DIR`` / ``--no-cache`` / ``REPRO_SWEEP_CACHE`` -> ResultCache.

    Precedence: ``--no-cache`` wins, then an explicit ``--cache DIR``, then
    the ``REPRO_SWEEP_CACHE`` environment variable; default is no caching.
    """
    if args.no_cache:
        return None
    directory = args.cache or os.environ.get("REPRO_SWEEP_CACHE")
    if not directory:
        return None
    from repro.experiments.cache import ResultCache

    return ResultCache(directory)


def _report_cache(cache) -> None:
    if cache is not None:
        print(
            f"[cache] hits={cache.hits} misses={cache.misses} "
            f"stores={cache.stores} dir={cache.root}",
            file=sys.stderr,
        )


def _run_figure(name: str, args, cache=None) -> Dict[str, Any]:
    if args.trace:
        raise SystemExit(
            f"{name} is a figure; --trace only applies to a single "
            "ScenarioSpec file (save one cell's spec and run that)"
        )
    module = FIGURES[name]
    kwargs: Dict[str, Any] = {"scale": args.scale, "seed": args.seed}
    supported = inspect.signature(module.run).parameters
    if args.systems:
        if "systems" not in supported:
            raise SystemExit(f"{name} does not take --systems")
        kwargs["systems"] = tuple(args.systems.split(","))
    if args.clients is not None:
        if "clients" not in supported:
            raise SystemExit(f"{name} does not take --clients")
        kwargs["clients"] = args.clients
    if args.workers is not None:
        if "workers" not in supported:
            raise SystemExit(f"{name} does not take --workers (not a sweep figure)")
        kwargs["workers"] = args.workers
    if cache is not None:
        if "cache" not in supported:
            if args.cache:  # explicit flag on a non-sweep figure: loud error
                raise SystemExit(f"{name} does not take --cache (not a sweep figure)")
            # $REPRO_SWEEP_CACHE default on a non-sweep figure: say so and
            # drop the cache, so no misleading all-zero [cache] line prints.
            print(
                f"[cache] ignored: {name} is not a sweep figure",
                file=sys.stderr,
            )
            cache = None
        else:
            kwargs["cache"] = cache
    fig = module.run(**kwargs)
    return fig.to_dict(include_series=args.series), cache


def _run_spec_file(path: str, args, cache=None) -> Any:
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, dict) and "axes" in data:
        if args.trace:
            raise SystemExit(
                f"{path} is a sweep; --trace only applies to a single "
                "ScenarioSpec file (one trace file per run)"
            )
        sweep = Sweep.from_dict(data)
        out = []
        # Failed cells surface as failure-shaped summaries (CellFailure),
        # not a dead grid.
        for point, result in sweep.run(workers=args.workers, cache=cache):
            summary = result.summary()
            summary["point"] = point
            out.append(summary)
        return out
    if args.workers is not None:
        raise SystemExit(
            f"{path} is a single ScenarioSpec (no \"axes\" key); "
            "--workers only applies to sweeps"
        )
    spec = ScenarioSpec.from_dict(data)
    if args.trace:
        from repro.experiments.spec import TraceSpec
        from repro.obs import write_chrome_trace

        if spec.trace is None or not spec.trace.enabled:
            filters = (
                args.trace_filter.split(",") if args.trace_filter else None
            )
            spec = spec.with_(trace=TraceSpec(filter=filters))
        result = run_spec(spec)
        write_chrome_trace(result.trace, args.trace)
        print(f"[trace] wrote {args.trace}", file=sys.stderr)
        return result.summary()
    if cache is not None:
        from repro.experiments.parallel import run_cells

        return run_cells([spec], cache=cache)[0].summary()
    return run_spec(spec).summary()


def _print(payload, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, default=_json_default))
        return
    if isinstance(payload, dict) and "figure" in payload:
        # A figure table: re-render through FigureResult formatting.
        from repro.experiments.harness import FigureResult

        fig = FigureResult(payload["figure"], payload["title"])
        for row in payload["rows"]:
            fig.add_row(**{
                k: v for k, v in row.items() if not k.endswith("series")
            })
        fig.findings = payload["findings"]
        print(fig.format_table())
    else:
        print(json.dumps(payload, indent=2, default=_json_default))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="List and run the paper's experiments (see EXPERIMENTS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list runnable figures/experiments")
    p_list.add_argument("--json", action="store_true")

    p_run = sub.add_parser("run", help="run a figure or a spec JSON file")
    p_run.add_argument("target", help="figure name (see `list`) or spec file path")
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--systems", help="comma-separated coordination kinds")
    p_run.add_argument(
        "--clients", type=int, default=None,
        help="override the client population (family figures only)",
    )
    p_run.add_argument("--json", action="store_true", help="machine-readable output")
    p_run.add_argument(
        "--series", action="store_true",
        help="include the per-bucket time series in --json output",
    )
    p_run.add_argument(
        "--workers", type=int, default=None,
        help="run sweep cells on N worker processes (sweep figures and "
             "sweep spec files; results are bit-identical to serial)",
    )
    p_run.add_argument(
        "--cache", metavar="DIR", default=None,
        help="content-addressed result cache directory: finished cells are "
             "stored and identical (spec, seed) cells are reused — resuming "
             "an interrupted grid re-executes only missed cells "
             "(default: $REPRO_SWEEP_CACHE if set)",
    )
    p_run.add_argument(
        "--no-cache", action="store_true",
        help="disable result caching even if $REPRO_SWEEP_CACHE is set",
    )
    p_run.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="enable deterministic tracing and write the run's Chrome "
             "trace-event JSON (Perfetto-loadable) to OUT.json; single "
             "ScenarioSpec files only",
    )
    p_run.add_argument(
        "--trace-filter", metavar="PREFIXES", default=None,
        help="comma-separated span-name prefixes to keep (e.g. "
             "'2pc,rpc:prepare'); default keeps every span",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        listing = {name: _figure_doc(mod) for name, mod in FIGURES.items()}
        if args.json:
            print(json.dumps(listing, indent=2))
        else:
            width = max(len(n) for n in listing)
            for name, doc in listing.items():
                print(f"{name.ljust(width)}  {doc}")
        return 0

    cache = _resolve_cache(args)
    if args.target in FIGURES:
        payload, cache = _run_figure(args.target, args, cache=cache)
    elif os.path.exists(args.target):
        payload = _run_spec_file(args.target, args, cache=cache)
    else:
        parser.error(
            f"unknown target {args.target!r}: not a registered figure "
            f"({', '.join(sorted(FIGURES))}) and not a spec file"
        )
    _report_cache(cache)
    _print(payload, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
