"""Behavioural goldens + the derived cache epoch.

One module owns every golden the test suite pins a seeded run against:

* :data:`DETERMINISM_GOLDEN` — the kernel-determinism scenario
  (``tests/test_kernel_determinism.py``): exact event count, commit/abort/
  migration totals and final simulated time of one seeded scale-out run.
* :data:`SPEC_PARITY_GOLDENS` — the spec-runner parity scenarios
  (``tests/test_experiment_spec.py``): the fig8 family, fig14 dynamic and
  fig15 stress runs.
* :data:`FIG7_LEASE_GOLDEN` — the lease-mode fig7 crash cell
  (``tests/test_fig7_symmetry.py``): expiry-driven failover under the
  canonical crash+rejoin schedule, including detection latency and renewal
  traffic.
* :data:`FIG17_REPLICATION_GOLDEN` — the replicated lagged-crash cells
  (``tests/test_replication.py``): sync_quorum vs. async promotion under a
  ship-lag window, pinning RPO/RTO and the ship counters.

Centralising them buys the **cache-epoch automation**: the sweep result
cache must be invalidated by exactly the set of changes that alters what a
seeded run produces — which is, by definition, the set of changes that
re-captures these goldens.  :func:`cache_epoch` therefore derives the epoch
as a content hash of this module's golden values; re-capturing the goldens
*is* the epoch bump, and forgetting it is impossible (the parity tests fail
first).

Re-capture procedure (any PR that changes seeded-run behaviour):

1. run the failing determinism/parity tests and copy the actual values
   into this module;
2. done — ``CACHE_EPOCH`` changes automatically with the hash.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "DETERMINISM_GOLDEN",
    "FIG7_LEASE_GOLDEN",
    "FIG17_REPLICATION_GOLDEN",
    "SPEC_PARITY_GOLDENS",
    "cache_epoch",
]

#: run_scale_out_scenario("marlin", initial_nodes=2, added_nodes=2,
#: clients=8, granules=64, scale_at=1.0, tail=2.0, seed=3)
DETERMINISM_GOLDEN = {
    "events_executed": 15348,
    "total_committed": 265,
    "total_aborted": 73,
    "total_migrations": 32,
    "final_now": 3.572544273356236,
}

SPEC_PARITY_GOLDENS = {
    #: fig8.run_family(scale=0.08, systems=("marlin", "zk-small"), seed=11,
    #: clients=10)
    "family": {
        "marlin": {
            "committed": 1190,
            "aborted": 43,
            "migrations": 496,
            "first_migration": 5.200142544771348,
            "last_migration": 6.334701424738583,
            "duration": 11.334973112785585,
            "lat_mean": 0.0943011043561465,
        },
        "zk-small": {
            "committed": 1381,
            "aborted": 198,
            "migrations": 496,
            "first_migration": 5.591431866813494,
            "last_migration": 8.462466549324414,
            "duration": 13.462730299055718,
            "lat_mean": 0.09629657428228643,
        },
    },
    #: fig14.run_dynamic("marlin", scale=0.12, seed=11)
    "fig14": {
        "duration": 65.0,
        "committed": 5938,
        "aborted": 616,
        "migrations": 1496,
        "first_migration": 10.300308064530274,
        "last_migration": 41.987951813266285,
    },
    #: fig15.run_stress("marlin", 16, interval=1.5, duration=8.0, seed=11)
    "fig15": {
        "offered_tps": 21.333333333333332,
        "achieved_tps": 20.125,
        "efficiency": 0.943359375,
        "mean_latency_s": 0.040174319313766006,
        "p99_latency_s": 0.2247758592837733,
        "retries": 103,
    },
}


#: run_spec(fig7.slo_spec("lease", "crash_restart", scale=0.25, seed=1)):
#: node 1 crashes at t=3, its lease (ttl 1.5) expires, one checker wins the
#: CAS self-promotion and recovers all 100 granules; detection latency is
#: first_failover_s - 3.0.
FIG7_LEASE_GOLDEN = {
    "committed": 1052,
    "aborted": 155,
    "migrations": 100,
    "failovers": 1,
    "migration_p99_s": 2.6857628357567442,
    "first_failover_s": 4.51512726901963,
    "renewal_rpcs": 213,
}


#: run_spec(fig17_replication.replication_spec(cell, "lagged_crash",
#: scale=0.25, seed=1)) for the two cells whose contrast is the figure's
#: finding: a replica-link degradation window (1.5s-2.5s) queues ship lag,
#: then the primary dies at t=3 — sync_quorum promotes with zero lost bytes,
#: async loses exactly the un-shipped tail.  Pins the ship/ack counters too,
#: so any change to replication's seeded behaviour re-captures here (and
#: rotates the cache epoch).
FIG17_REPLICATION_GOLDEN = {
    "sync_q2": {
        "committed": 142,
        "aborted": 19,
        "failovers": 1,
        "promotions": 1,
        "ships": 478,
        "bytes_shipped": 53136,
        "rpo_bytes": 0.0,
        "rto_s": 1.3089310598703134,
    },
    "async": {
        "committed": 435,
        "aborted": 39,
        "failovers": 1,
        "promotions": 1,
        "ships": 1074,
        "bytes_shipped": 159362,
        "rpo_bytes": 2724.0,
        "rto_s": 0.9832130347739323,
    },
}


def cache_epoch() -> str:
    """The result-cache epoch: a content hash of the behavioural goldens.

    Any change to what a seeded run produces re-captures the goldens above,
    which changes this hash, which invalidates every cached sweep cell —
    no manual bump to remember.
    """
    payload = json.dumps(
        {
            "determinism": DETERMINISM_GOLDEN,
            "parity": SPEC_PARITY_GOLDENS,
            "fig7_lease": FIG7_LEASE_GOLDEN,
            "fig17_replication": FIG17_REPLICATION_GOLDEN,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
