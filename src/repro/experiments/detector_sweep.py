"""Detector-parameter sweep: probe cadence vs. false-positive fencing.

§4.4.2 leaves the failure detector's parameters — probe interval, timeout,
consecutive-miss threshold — to the operator, and the ROADMAP asks what they
cost: an aggressive detector under packet loss and clock jitter fences
*healthy* nodes (every fencing here is a false positive — no node in the
schedule ever dies), while a lenient one just rides the noise out.  The
sweep also toggles the suspicion-vote gate (``core/suspicion.py``): a
symmetrically-partitioned node whose own probes all time out stands down
instead of fencing its ring successor, so the gate should strictly reduce
false fencings on the partition leg of the schedule.

Pure spec composition: one base :class:`ScenarioSpec` expanded by
:class:`Sweep` over ``faults.detector_interval`` x ``faults.detector_misses``
x ``faults.detector_vote_gate``.  The 18-cell grid is the repo's canonical
parallel-sweep workload: ``run(workers=N)`` / ``--workers N`` farm cells out
to a process pool with bit-identical results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.harness import FigureResult, scaled
from repro.experiments.parallel import raise_failures
from repro.experiments.spec import (
    FaultSpec,
    ScenarioSpec,
    Sweep,
    TopologySpec,
    WorkloadSpec,
)

__all__ = ["build_sweep", "run", "summarize"]

#: Noise, not death: lossy link, a clock-jittered node, and one transient
#: symmetric isolation of node 2 — everything heals by t=7.
NOISE_SCHEDULE = [
    {"at": 1.0, "kind": "packet_loss", "pair": [0, 1], "rate": 0.5, "duration": 6.0},
    {"at": 2.0, "kind": "clock_jitter", "node": 3, "spread": 0.3, "duration": 5.0},
    {"at": 4.0, "kind": "partition", "groups": [[2], [0, 1, 3]], "duration": 2.0},
]

INTERVALS = (0.25, 0.5, 1.0)
MISSES = (1, 2, 4)
DURATION = 10.0


def build_sweep(
    scale: float = 1.0,
    seed: int = 1,
    intervals: Sequence[float] = INTERVALS,
    misses: Sequence[int] = MISSES,
    vote_gate: Sequence[bool] = (False, True),
) -> Sweep:
    base = ScenarioSpec(
        name="detector-sweep",
        topology=TopologySpec(nodes=4, coordination="marlin"),
        workload=WorkloadSpec(
            kind="ycsb",
            clients=scaled(16, scale, minimum=6),
            granules=scaled(512, scale, minimum=32),
        ),
        faults=FaultSpec(schedule=NOISE_SCHEDULE, failure_detection=True),
        seed=seed,
        duration=DURATION,
        # False fencings leave healthy-but-fenced nodes with stale views;
        # that asymmetry is the measurement, not an invariant violation.
        check_invariants=False,
    )
    return Sweep(
        base,
        {
            "faults.detector_vote_gate": list(vote_gate),
            "faults.detector_interval": list(intervals),
            "faults.detector_misses": list(misses),
        },
    )


def summarize(results) -> FigureResult:
    """``results`` is ``Sweep.run()`` output: ``[(point, SpecRunResult)]``."""
    fig = FigureResult(
        "Detector sweep", "False-positive fencing vs. detector parameters"
    )
    totals: Dict[bool, int] = {False: 0, True: 0}
    for point, result in results:
        m = result.metrics
        gate = bool(point["faults.detector_vote_gate"])
        fenced = sorted({dead for _t, dead, _g in m.failovers})
        totals[gate] += len(m.failovers)
        fig.add_row(
            interval_s=point["faults.detector_interval"],
            misses=point["faults.detector_misses"],
            vote_gate=gate,
            false_fencings=len(m.failovers),
            fenced_nodes=fenced,
            committed=m.total_committed,
            abort_ratio=m.abort_ratio(),
        )
    fig.findings["false_fencings_no_gate"] = float(totals[False])
    fig.findings["false_fencings_gate"] = float(totals[True])
    if totals[False]:
        fig.findings["gate_reduction"] = (
            (totals[False] - totals[True]) / totals[False]
        )
    lenient = [
        row["false_fencings"]
        for row in fig.rows
        if row["misses"] == max(r["misses"] for r in fig.rows)
    ]
    fig.findings["lenient_false_fencings"] = float(sum(lenient))
    return fig


def run(
    scale: float = 1.0,
    seed: int = 1,
    intervals: Sequence[float] = INTERVALS,
    misses: Sequence[int] = MISSES,
    vote_gate: Sequence[bool] = (False, True),
    results=None,
    workers: Optional[int] = None,
    cache=None,
) -> FigureResult:
    if results is None:
        sweep = build_sweep(
            scale=scale,
            seed=seed,
            intervals=intervals,
            misses=misses,
            vote_gate=vote_gate,
        )
        results = sweep.run(workers=workers, cache=cache)
        raise_failures(
            [cell for _point, cell in results], context="detector_sweep"
        )
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.5).format_table())
