"""Figure 8 — MigrationTxn throughput over time (YCSB scale-out).

Paper findings: Marlin achieves 2.3x / 1.9x higher migration-transaction
throughput than S-ZK / L-ZK, and completes the scale-out 2.6x / 1.9x faster,
because the partitioned GTable spreads metadata updates while ZooKeeper's
single-writer leader is the bottleneck.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.family import DEFAULT_SYSTEMS, run_family
from repro.experiments.harness import (
    FigureResult,
    ScenarioResult,
    SYSTEM_LABELS,
)

__all__ = ["run", "summarize"]


def summarize(results: Dict[str, ScenarioResult]) -> FigureResult:
    fig = FigureResult("Figure 8", "MigrationTxn throughput over time (YCSB)")
    peak: Dict[str, float] = {}
    duration: Dict[str, float] = {}
    for system, result in results.items():
        series = result.migration_series()
        busy = [tps for _t, tps in series if tps > 0]
        mean_tps = sum(busy) / len(busy) if busy else 0.0
        peak[system] = max(busy, default=0.0)
        duration[system] = result.migration_duration
        fig.add_row(
            system=SYSTEM_LABELS.get(system, system),
            migrations=result.metrics.total_migrations,
            mean_migr_tps=mean_tps,
            peak_migr_tps=peak[system],
            migration_duration_s=duration[system],
        )
        fig.rows[-1]["series"] = [
            (t, tps) for t, tps in series if tps > 0
        ]
    if "marlin" in results:
        for base in results:
            if base == "marlin":
                continue
            label = SYSTEM_LABELS.get(base, base)
            if peak.get(base):
                fig.findings[f"migration_tps_vs_{label}"] = (
                    peak["marlin"] / peak[base]
                )
            if duration.get("marlin"):
                fig.findings[f"scaleout_speedup_vs_{label}"] = (
                    duration[base] / duration["marlin"]
                )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    seed: int = 1,
    results: Optional[Dict[str, ScenarioResult]] = None,
    clients: Optional[int] = None,
) -> FigureResult:
    if results is None:
        results = run_family(scale=scale, systems=systems, seed=seed, clients=clients)
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.25).format_table())
