"""Figure 12 — Cost vs. migration duration across scale-out sizes (YCSB).

Four scale-outs — SO1-2, SO2-4, SO4-8, SO8-16 — with clients and table size
growing proportionally.  Paper findings:

* (a) Marlin sits in the best corner at every scale: lowest cost per million
  user transactions (up to 4.4x cheaper than L-ZK at SO1-2) and shortest
  migration (up to 2.5x faster than S-ZK at SO8-16);
* (b) Meta Cost's share of total cost shrinks as the cluster grows (75% ->
  28% for L-ZK), so Marlin's cost edge is largest at small scales;
* (c) Marlin's migration throughput grows linearly with scale, ZooKeeper's
  gains diminish toward its leader's ceiling, and FDB is faster than ZK but
  capped by its fixed resources.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import (
    FigureResult,
    ScenarioResult,
    SYSTEM_LABELS,
    scaled,
)
from repro.experiments.parallel import raise_failures, run_cells
from repro.experiments.spec import scale_out_spec

__all__ = ["SCALE_OUTS", "run", "run_sweep", "summarize"]

ALL_SYSTEMS = ("marlin", "zk-small", "zk-large", "fdb")

#: (name, initial_nodes, clients, granules) — §6.4's SO1-2 .. SO8-16,
#: clients 100..800 and tables 3..24 GB scaled down proportionally.
SCALE_OUTS: Tuple[Tuple[str, int, int, int], ...] = (
    ("SO1-2", 1, 12, 1562),
    ("SO2-4", 2, 25, 3125),
    ("SO4-8", 4, 50, 6250),
    ("SO8-16", 8, 100, 12500),
)


def run_sweep(
    scale: float = 1.0,
    systems: Sequence[str] = ALL_SYSTEMS,
    seed: int = 1,
    scale_outs: Sequence[Tuple[str, int, int, int]] = SCALE_OUTS,
    regions: Tuple[str, ...] = ("us-west",),
    workers: Optional[int] = None,
    cache=None,
) -> Dict[Tuple[str, str], ScenarioResult]:
    """The (scale-out x system) grid; ``workers > 1`` runs cells on a
    :class:`~repro.experiments.parallel.ProcessPoolRunner` (seeded results
    are bit-identical to the serial path); ``cache`` short-circuits cells
    already stored in a content-addressed result cache (EXPERIMENTS.md
    "Result caching")."""
    keys: List[Tuple[str, str]] = []
    specs = []
    for name, initial, clients, granules in scale_outs:
        for system in systems:
            keys.append((name, system))
            specs.append(
                scale_out_spec(
                    system,
                    initial_nodes=initial,
                    added_nodes=initial,
                    clients=scaled(clients, scale),
                    granules=scaled(granules, scale, minimum=8 * initial),
                    scale_at=2.0,
                    tail=5.0,
                    regions=regions,
                    seed=seed,
                    name=f"fig12-{name}-{system}",
                )
            )
    results = run_cells(specs, workers=workers, cache=cache)
    raise_failures(results, context="fig12")
    return dict(zip(keys, results))


def summarize(
    results: Dict[Tuple[str, str], ScenarioResult],
    figure: str = "Figure 12",
    title: str = "Cost vs. migration duration (single-region)",
) -> FigureResult:
    fig = FigureResult(figure, title)
    by_key: Dict[Tuple[str, str], Dict[str, float]] = {}
    for (scale_name, system), result in sorted(results.items()):
        report = result.cost
        busy = [tps for _t, tps in result.migration_series() if tps > 0]
        row = {
            "scale_out": scale_name,
            "system": SYSTEM_LABELS.get(system, system),
            "migration_duration_s": result.migration_duration,
            "migration_tps": max(busy, default=0.0),
            "cost_per_mtxn_usd": report.cost_per_million_txns,
            "meta_fraction": report.meta_fraction,
        }
        by_key[(scale_name, system)] = row
        fig.add_row(**row)

    scale_names = sorted({k[0] for k in results})
    systems = sorted({k[1] for k in results})
    # 12a headline ratios at the extremes.
    for other in systems:
        if other == "marlin":
            continue
        label = SYSTEM_LABELS.get(other, other)
        smallest, largest = scale_names[0], scale_names[-1]
        small_m = by_key.get((smallest, "marlin"))
        small_o = by_key.get((smallest, other))
        if small_m and small_o and small_m["cost_per_mtxn_usd"]:
            fig.findings[f"cost_ratio_{label}_at_{smallest}"] = (
                small_o["cost_per_mtxn_usd"] / small_m["cost_per_mtxn_usd"]
            )
        large_m = by_key.get((largest, "marlin"))
        large_o = by_key.get((largest, other))
        if large_m and large_o and large_m["migration_duration_s"]:
            fig.findings[f"migration_speedup_{label}_at_{largest}"] = (
                large_o["migration_duration_s"] / large_m["migration_duration_s"]
            )
    # 12c scaling linearity: peak migration tps largest/smallest scale.
    for system in systems:
        label = SYSTEM_LABELS.get(system, system)
        first = by_key.get((scale_names[0], system))
        last = by_key.get((scale_names[-1], system))
        if first and last and first["migration_tps"]:
            fig.findings[f"tps_scaling_{label}"] = (
                last["migration_tps"] / first["migration_tps"]
            )
    return fig


def run(
    scale: float = 1.0,
    systems: Sequence[str] = ALL_SYSTEMS,
    seed: int = 1,
    results: Optional[Dict[Tuple[str, str], ScenarioResult]] = None,
    workers: Optional[int] = None,
    cache=None,
) -> FigureResult:
    if results is None:
        results = run_sweep(
            scale=scale, systems=systems, seed=seed, workers=workers, cache=cache
        )
    return summarize(results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(scale=0.1).format_table())
